#!/usr/bin/env python3
"""Quickstart: generate a workload, simulate two systems, compare.

This reproduces the paper's headline comparison in miniature: the Shell
workload running on the Base machine of section 2.4 versus the same
workload with DMA-style block operations (Blk_Dma).

Run with:  python examples/quickstart.py
"""

from repro import Mode, generate, simulate, standard_configs
from repro.common.types import MissKind


def describe(name, metrics):
    os_time = metrics.os_time()
    kinds = metrics.miss_kind_fractions()
    print(f"--- {name}")
    print(f"  simulated cycles (makespan): {metrics.makespan:,}")
    print(f"  OS execution cycles:         {os_time.total:,}")
    print(f"  OS read misses (L1D):        {metrics.os_read_misses():,}")
    print(f"  miss sources: block-op {kinds[MissKind.BLOCK_OP]:.0%}, "
          f"coherence {kinds[MissKind.COHERENCE]:.0%}, "
          f"other {kinds[MissKind.OTHER]:.0%}")
    print(f"  OS share of time:            {metrics.mode_fraction(Mode.OS):.0%}")


def main():
    print("Generating the Shell workload (4 CPUs, multiprogrammed)...")
    trace = generate("Shell", seed=1996, scale=0.25)
    print(f"  {len(trace):,} trace records, "
          f"{len(trace.blockops)} block operations\n")

    configs = standard_configs()
    base = simulate(trace, configs["Base"])
    describe("Base machine (section 2.4)", base)

    dma = simulate(trace, configs["Blk_Dma"])
    describe("Blk_Dma (DMA-style block operations)", dma)

    speedup = base.os_time().total / max(1, dma.os_time().total)
    print(f"\nBlk_Dma runs the OS {speedup:.2f}x faster "
          f"({1 - 1 / speedup:.0%} time saved), and eliminates every "
          f"block-operation miss — compare Figure 2 of the paper.")


if __name__ == "__main__":
    main()
