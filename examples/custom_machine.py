#!/usr/bin/env python3
"""Explore cache-geometry sensitivity with a custom machine.

Reproduces the spirit of Figures 6-7: sweep the primary data cache size
and line size and watch how the Base machine and the optimized systems
respond.  Also shows how to build a machine the paper never evaluated
(a 128-KB L1D with 32-byte lines) through the public API.

Run with:  python examples/custom_machine.py
"""

from repro import BASE_MACHINE, generate, simulate, standard_configs
from repro.common.units import KB

WORKLOAD = "TRFD+Make"


def os_time(trace, config_name, machine):
    config = standard_configs(machine)[config_name]
    return simulate(trace, config).os_time().total


def main():
    trace = generate(WORKLOAD, seed=1996, scale=0.2)
    print(f"{WORKLOAD}: OS execution time, normalized to Base at each point\n")

    print("L1D size sweep (16-byte lines):")
    print(f"{'size':>8s} {'Base':>8s} {'Blk_Dma':>8s}")
    for size_kb in (16, 32, 64, 128):
        machine = BASE_MACHINE.with_l1d(size_bytes=size_kb * KB)
        base = os_time(trace, "Base", machine)
        dma = os_time(trace, "Blk_Dma", machine)
        print(f"{size_kb:>6d}KB {1.0:>8.3f} {dma / base:>8.3f}")

    print("\nL1D line-size sweep (32 KB cache, 64-byte L2 lines):")
    print(f"{'line':>8s} {'Base':>8s} {'Blk_Dma':>8s}")
    for line in (16, 32, 64):
        machine = BASE_MACHINE.with_l1d(line_bytes=line, l2_line_bytes=64)
        base = os_time(trace, "Base", machine)
        dma = os_time(trace, "Blk_Dma", machine)
        print(f"{line:>7d}B {1.0:>8.3f} {dma / base:>8.3f}")

    print("\nA machine the paper never built (128-KB L1D, 32-B lines):")
    machine = BASE_MACHINE.with_l1d(size_bytes=128 * KB, line_bytes=32)
    base = simulate(trace, standard_configs(machine)["Base"])
    print(f"  D-miss rate: {base.data_miss_rate():.2%}, "
          f"OS misses: {base.os_read_misses():,}")


if __name__ == "__main__":
    main()
