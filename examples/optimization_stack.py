#!/usr/bin/env python3
"""Walk the paper's full optimization stack on one workload.

Applies, one at a time, the machine/software changes of sections 4-6 —
Blk_Dma block operations, data privatization + relocation, the selective
Firefly update protocol, and hot-spot prefetching — and reports how the
OS data misses and OS execution time fall at each step, mirroring the
BCPref progression of Figures 3-5.

Run with:  python examples/optimization_stack.py [workload] [scale]
"""

import sys

from repro.experiments.runner import ExperimentRunner

STACK = [
    ("Base", "the unmodified machine of section 2.4"),
    ("Blk_Dma", "block operations move to a DMA-like bus engine (section 4)"),
    ("BCoh_Reloc", "+ counter privatization and data relocation (section 5.1)"),
    ("BCoh_RelUp", "+ Firefly updates on the shared variable core (section 5.2)"),
    ("BCPref", "+ software prefetching at the 12 miss hot spots (section 6)"),
]


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "TRFD_4"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    runner = ExperimentRunner(scale=scale)

    print(f"Optimization stack on {workload} (scale={scale})\n")
    base = runner.run(workload, "Base")
    base_misses = max(1, base.os_read_misses())
    base_time = max(1, base.os_time().total)

    print(f"{'system':12s} {'OS misses':>10s} {'(norm)':>7s} "
          f"{'OS time':>12s} {'(norm)':>7s}")
    for name, note in STACK:
        m = runner.run(workload, name)
        misses = m.os_read_misses()
        os_time = m.os_time().total
        print(f"{name:12s} {misses:>10,d} {misses / base_misses:>7.2f} "
              f"{os_time:>12,d} {os_time / base_time:>7.2f}   {note}")

    selection = runner.update_selection(workload)
    print(f"\nUpdate core chosen by the analysis (section 5.2): "
          f"{selection.core_bytes} bytes in {len(selection.pages)} page(s):")
    print("  " + ", ".join(selection.variables[:8])
          + (" ..." if len(selection.variables) > 8 else ""))

    hot = runner.hotspots(workload)
    from repro.synthetic.layout import KERNEL_PC
    names = {pc: name for name, pc in KERNEL_PC.items()}
    print(f"\nThe 12 miss hot spots (section 6):")
    print("  " + ", ".join(names.get(pc, hex(pc)) for pc in hot))


if __name__ == "__main__":
    main()
