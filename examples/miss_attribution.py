#!/usr/bin/env python3
"""Attribute misses to kernel code and data, then watch the machine run.

Reproduces the paper's methodology surface (section 2.2): map every miss
back to the basic block that issued it and the data structure it touched,
identify the hot spots of section 6, check how stable the headline ratios
are across seeds, and draw a short execution timeline of the simulated
machine.

Run with:  python examples/miss_attribution.py
"""

from repro.analysis.attribution import attribution_report
from repro.experiments.sensitivity import render_sweep, seed_sweep
from repro.sim import SystemConfig, simulate
from repro.sim.config import standard_configs
from repro.sim.system import MultiprocessorSystem
from repro.sim.timeline import TimelineRecorder, render_timeline
from repro.synthetic import generate


def main():
    print("=== Miss attribution (TRFD_4, Base machine) ===\n")
    trace = generate("TRFD_4", seed=1996, scale=0.2)
    metrics = simulate(trace, standard_configs()["Base"])
    print(attribution_report(metrics, top=8))

    print("\n=== Seed stability of the headline ratios (Shell) ===\n")
    spreads = seed_sweep("Shell", seeds=(1, 2, 3), scale=0.1)
    print(render_sweep("Shell", spreads))

    print("\n=== Execution timeline (first steps of TRFD_4) ===\n")
    system = MultiprocessorSystem(generate("TRFD_4", seed=1996, scale=0.05),
                                  SystemConfig("demo"))
    recorder = TimelineRecorder(system, limit=1500)
    recorder.run()
    print(render_timeline(recorder, width=70))


if __name__ == "__main__":
    main()
