#!/usr/bin/env python3
"""Inspect a synthetic trace: symbols, block operations, serialization.

Shows the trace-level API a researcher would use to study the workload
substitution itself: the kernel's symbol map, the block-operation
registry, per-structure reference counts, the deferred-copy analysis of
Table 4, and round-tripping a trace through the text format.

Run with:  python examples/trace_inspection.py
"""

import collections
import io

from repro.common.types import DataClass, Mode, Op
from repro.optim.deferred import analyze_deferred
from repro.synthetic import generate
from repro.trace import textio


def main():
    trace = generate("ARC2D+Fsck", seed=1996, scale=0.15)
    print(f"ARC2D+Fsck trace: {len(trace):,} records on {trace.num_cpus} CPUs")

    print("\nKernel symbol map (address-space layout):")
    for sym in list(trace.symbols)[:10]:
        print(f"  {sym.base:#010x}  {sym.size:>8,d} B  "
              f"{DataClass(sym.dclass).name:<14s} {sym.name}")

    print("\nReferences per data-structure class (OS mode):")
    counts = collections.Counter()
    for rec in trace.records():
        if rec.mode == Mode.OS and rec.op in (Op.READ, Op.WRITE):
            counts[DataClass(rec.dclass).name] += 1
    for name, count in counts.most_common(8):
        print(f"  {name:<16s} {count:>8,d}")

    ops = list(trace.blockops)
    sizes = collections.Counter(op.size for op in ops)
    print(f"\nBlock operations: {len(ops)} "
          f"({sum(1 for o in ops if o.is_copy)} copies)")
    for size, count in sorted(sizes.items()):
        print(f"  {size:>6,d} B x {count}")

    analysis = analyze_deferred(trace)
    print(f"\nDeferred-copy analysis (Table 4):")
    print(f"  small copies / copies:      {analysis.small_copy_fraction:.1%}")
    print(f"  read-only / small copies:   {analysis.read_only_fraction:.1%}")

    buf = io.StringIO()
    textio.dump(trace, buf)
    text = buf.getvalue()
    restored = textio.loads(text)
    print(f"\nText serialization round-trip: {len(text):,} bytes, "
          f"{len(restored):,} records restored, "
          f"identical={all(a == b for a, b in zip(trace.records(), restored.records()))}")


if __name__ == "__main__":
    main()
