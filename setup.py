"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` (and ``python setup.py develop``) work on
environments whose setuptools predates reliable PEP 660 editable
installs without the ``wheel`` package.
"""

from setuptools import setup

setup()
