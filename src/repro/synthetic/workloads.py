"""The four system-intensive workloads of section 2.3.

Each generator composes the kernel services and application models into a
round-based scenario:

* **TRFD_4** — four instances of hand-parallelized TRFD, 16 processes,
  gang-scheduled: matrix arithmetic punctuated by barriers, page faults,
  cross-processor interrupts and program switches.
* **TRFD+Make** — one TRFD instance interleaved with four parallel
  compilations (cc1): a parallel/serial mix forcing frequent changes of
  regime, cross-processor interrupts, forks/execs and substantial paging.
* **ARC2D+Fsck** — four gang-scheduled copies of ARC2D plus one Fsck job
  with a wide variety of I/O sizes.
* **Shell** — a heavily multiprogrammed shell script (21 background jobs):
  process creation/termination, small block operations, scheduler and
  VM activity, no gang barriers.

Rates below were calibrated so the Base simulation reproduces the shapes
of Tables 1-5 (OS time share, miss-category split, block-size
distribution, coherence-source split).  ``scale`` multiplies the number of
rounds; the reported quantities are ratios, so they are stable from about
``scale = 0.25`` upward.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.rng import RngStream
from repro.synthetic import apps, services
from repro.synthetic.kernel import Kernel, Process
from repro.trace.stream import Trace

#: Number of CPUs of the traced machine.
NUM_CPUS = 4

WorkloadFn = Callable[[int, float], Trace]


def _make_kernel(name: str, seed: int, scale: float,
                 frame_policy: str = "default") -> Kernel:
    rng = RngStream(seed, name)
    return Kernel(NUM_CPUS, rng,
                  metadata={"workload": name, "seed": seed, "scale": scale,
                            "frame_policy": frame_policy},
                  frame_policy=frame_policy)


def _current_buffer(k: Kernel, cpu: int, switch_prob: float = 0.2) -> int:
    """The buffer holding the file *cpu* is currently paging from.

    Page-ins read the same file buffer repeatedly (sequential file
    access), so source blocks are often already cached (Table 3 row 1);
    occasionally the job moves to another file.
    """
    if k.rng.chance(switch_prob):
        k.file_buffer[cpu] = k.rng.randint(0, 5)
    return k.layout.buffer(k.file_buffer[cpu])


def _fault_if_needed(k: Kernel, cpu: int, proc: Process, target: int,
                     copy_prob: float, steady_prob: float = 0.05,
                     chain_prob: float = 0.4) -> None:
    """Fault a page in when the process is below its resident target.

    ``copy_prob`` selects page-in copies over zero fills.  A page-in
    reads either the CPU's current file buffer (sequential file access,
    so source blocks are often partially cached) or — with probability
    ``chain_prob`` — copy-on-write-breaks the process's most recently
    faulted page, whose frame was itself the *destination* of the
    previous copy.  These chains are the paper's main source of inside
    reuses (section 4.1.3).
    """
    rng = k.rng
    below = len(proc.frames) < target
    if not (below and rng.chance(0.75)) and not rng.chance(steady_prob):
        return
    if rng.chance(copy_prob):
        if proc.frames and rng.chance(chain_prob):
            src = proc.frames[-1]
        else:
            src = _current_buffer(k, cpu)
        services.page_fault(k, cpu, proc, copy_from=src)
    else:
        services.page_fault(k, cpu, proc)


def _shared_touches(k: Kernel, rng, round_no: int) -> None:
    """Per-round producer-consumer traffic on the shared variable core
    and the event counters (Table 5's Infreq. Com. and Freq. Shared)."""
    writer = round_no % NUM_CPUS
    k.touch_freq_shared(writer, "load_average", write=True, block="sched_seq")
    k.touch_freq_shared(writer, "sched_hint", write=True, block="sched_seq")
    for cpu in range(NUM_CPUS):
        if cpu != writer:
            k.touch_freq_shared(cpu, "load_average", write=False,
                                block="sched_seq")
            if rng.chance(0.5):
                k.touch_freq_shared(cpu, "runq_length", write=rng.chance(0.3),
                                    block="sched_seq")
        k.bump_counter(cpu, rng.choice(
            ["v_trap", "v_sched", "v_io_done", "v_lock_wait", "v_idle"]))
        if rng.chance(0.4):
            k.bump_counter(cpu, rng.choice(
                ["v_pageins", "v_pageouts", "v_intr", "v_swtch", "v_syscall"]))
        if rng.chance(0.6):
            k.touch_freq_shared(cpu, rng.choice(
                ["resource_ptrs", "ipc_mailbox", "freelist_size"]),
                write=rng.chance(0.4), block="sched_seq")


def _sprinkle_interrupts(k: Kernel, round_no: int, timer_every: int = 2,
                         pager_every: int = 6) -> None:
    """Timer ticks (staggered across CPUs) and occasional pager scans."""
    if timer_every and round_no % timer_every == 0:
        services.timer_interrupt(k, round_no % NUM_CPUS)
        services.timer_interrupt(k, (round_no + 2) % NUM_CPUS)
    if pager_every and round_no % pager_every == pager_every - 1:
        services.pager_scan(k, (round_no // pager_every) % NUM_CPUS)


def _regime_change(k: Kernel, new_procs: List[Process]) -> None:
    """Gang switch: cross-processor interrupts then context switches.

    The outgoing gang loses its newest frames to memory pressure, so the
    incoming gang's faults reuse recently written frames (the owned
    destination lines of Table 3).
    """
    for cpu in range(1, NUM_CPUS):
        services.cross_interrupt(k, 0, cpu)
    for cpu, proc in enumerate(new_procs):
        old_pid = k.running[cpu]
        old = k.processes.get(old_pid) if old_pid else None
        if old is not None and len(old.frames) > 1:
            take = min(2, len(old.frames) - 1)
            k.free_frames(old.frames[-take:])
            del old.frames[-take:]
        services.context_switch(k, cpu, old if old else proc, proc)


def generate_trfd4(seed: int = 1996, scale: float = 1.0,
                   frame_policy: str = "default") -> Trace:
    """TRFD_4: 4 x 4-process TRFD, gang-scheduled, barrier-intensive."""
    k = _make_kernel("TRFD_4", seed, scale, frame_policy)
    rng = k.rng.substream("schedule")
    programs = [[k.spawn() for _ in range(NUM_CPUS)] for _ in range(4)]
    rounds = max(4, int(44 * scale))
    quantum = 8
    current = 0
    for r in range(rounds):
        if r % quantum == 0:
            current = (current + (1 if r else 0)) % len(programs)
            _regime_change(k, programs[current])
        gang = programs[current]
        for cpu, proc in enumerate(gang):
            _fault_if_needed(k, cpu, proc, target=2, copy_prob=0.6,
                             steady_prob=0.11)
            apps.trfd_chunk(k, cpu, proc, refs=340)
            k.kmem_walk(cpu, refs=170, jump_prob=0.26)
        k.barrier_all(k.next_barrier(), NUM_CPUS)
        for cpu, proc in enumerate(gang):
            apps.trfd_chunk(k, cpu, proc, refs=260)
        k.barrier_all(k.next_barrier(), NUM_CPUS)
        for cpu, proc in enumerate(gang):
            apps.trfd_chunk(k, cpu, proc, refs=180)
        k.barrier_all(k.next_barrier(), NUM_CPUS)
        if rng.chance(0.3):
            # Writing intermediate results / reading input decks.
            cpu = rng.randint(0, NUM_CPUS - 1)
            services.file_io(k, cpu, gang[cpu],
                             size=rng.choice([128, 256, 512, 1024]),
                             is_write=rng.chance(0.5),
                             buf=_current_buffer(k, cpu, 0.1))
        _shared_touches(k, rng, r)
        _sprinkle_interrupts(k, r)
        for cpu in range(NUM_CPUS):
            if rng.chance(0.6):
                k.idle(cpu, spins=rng.randint(80, 160))
    return k.build()


def generate_trfd_make(seed: int = 1996, scale: float = 1.0,
                       frame_policy: str = "default") -> Trace:
    """TRFD+Make: one TRFD instance plus four parallel cc1 compilations."""
    k = _make_kernel("TRFD+Make", seed, scale, frame_policy)
    rng = k.rng.substream("schedule")
    trfd = [k.spawn() for _ in range(NUM_CPUS)]
    compilers = [k.spawn() for _ in range(NUM_CPUS)]
    rounds = max(4, int(46 * scale))
    was_gang = False
    for r in range(rounds):
        gang_round = rng.chance(0.42)
        if gang_round != was_gang:
            _regime_change(k, trfd if gang_round else compilers)
            was_gang = gang_round
        if gang_round:
            for cpu, proc in enumerate(trfd):
                _fault_if_needed(k, cpu, proc, target=2, copy_prob=0.55,
                                 steady_prob=0.012)
                apps.trfd_chunk(k, cpu, proc, refs=300)
                k.kmem_walk(cpu, refs=240, jump_prob=0.3)
            k.barrier_all(k.next_barrier(), NUM_CPUS)
            for cpu, proc in enumerate(trfd):
                apps.trfd_chunk(k, cpu, proc, refs=220)
            k.barrier_all(k.next_barrier(), NUM_CPUS)
        else:
            for cpu in range(NUM_CPUS):
                proc = compilers[cpu]
                services.syscall(k, cpu, proc, nr=rng.randint(0, 64))
                _fault_if_needed(k, cpu, proc, target=2, copy_prob=0.6,
                                 steady_prob=0.008)
                apps.cc1_chunk(k, cpu, proc, refs=420)
                k.kmem_walk(cpu, refs=170, jump_prob=0.26)
                if rng.chance(0.06):
                    # Read a source file (~60 lines) or an include file.
                    size = rng.choice([2048, 4096, 4096, 512, 256])
                    services.file_io(k, cpu, proc, size=size,
                                     buf=_current_buffer(k, cpu, 0.1))
                if rng.chance(0.07):
                    # Pipe traffic between make and its children.
                    services.pipe_transfer(k, cpu, proc, proc,
                                           size=rng.choice([128, 256, 512]))
                if rng.chance(0.15):
                    # Write the assembler temp file; the next pass reads
                    # it back through the same (warm) buffer.
                    services.file_io(k, cpu, proc, size=2048, is_write=True,
                                     buf=_current_buffer(k, cpu, 0.08))
                if rng.chance(0.07):
                    # cc driver forks the next compiler pass.
                    child = services.fork(k, cpu, proc, copy_pages=1)
                    services.exec_image(k, cpu, child, arg_bytes=256,
                                        zero_pages=1)
                    services.process_exit(k, cpu, compilers[cpu])
                    compilers[cpu] = child
        _shared_touches(k, rng, r)
        _sprinkle_interrupts(k, r)
        for cpu in range(NUM_CPUS):
            if rng.chance(0.5):
                k.idle(cpu, spins=rng.randint(70, 140))
    return k.build()


def generate_arc2d_fsck(seed: int = 1996, scale: float = 1.0,
                        frame_policy: str = "default") -> Trace:
    """ARC2D+Fsck: gang-scheduled fluid dynamics plus a file-system check."""
    k = _make_kernel("ARC2D+Fsck", seed, scale, frame_policy)
    rng = k.rng.substream("schedule")
    arc = [k.spawn() for _ in range(NUM_CPUS)]
    fsck = k.spawn()
    rounds = max(4, int(46 * scale))
    was_fsck = False
    for r in range(rounds):
        fsck_round = rng.chance(0.45)
        if fsck_round != was_fsck:
            services.cross_interrupt(k, 0, NUM_CPUS - 1)
            was_fsck = fsck_round
        if fsck_round:
            # ARC2D's gang shrinks to three CPUs; Fsck runs on the fourth.
            for cpu in range(NUM_CPUS - 1):
                proc = arc[cpu]
                _fault_if_needed(k, cpu, proc, target=2, copy_prob=0.5,
                                 steady_prob=0.02, chain_prob=0.6)
                apps.arc2d_chunk(k, cpu, proc, refs=380)
                k.kmem_walk(cpu, refs=260, jump_prob=0.3)
            k.barrier_all(k.next_barrier(NUM_CPUS - 1), NUM_CPUS - 1,
                          cpus=list(range(NUM_CPUS - 1)))
            cpu = NUM_CPUS - 1
            services.syscall(k, cpu, fsck, nr=3)
            apps.fsck_chunk(k, cpu, fsck, refs=260)
            k.kmem_walk(cpu, refs=300, jump_prob=0.3)
            for _ in range(rng.randint(2, 3)):
                size = rng.weighted_choice(
                    [128, 256, 512, 1024, 2048, 3072, 4096],
                    [0.2, 0.22, 0.18, 0.14, 0.12, 0.06, 0.08])
                services.file_io(k, cpu, fsck, size=size,
                                 buf=_current_buffer(k, cpu, 0.12))
                if rng.chance(0.5):
                    # Fsck repairs what it just read: write the block
                    # back — the user page it reads from is the previous
                    # copy's destination (an inside-reuse chain).
                    services.file_io(k, cpu, fsck, size=size, is_write=True,
                                     buf=_current_buffer(k, cpu, 0.0))
            _fault_if_needed(k, cpu, fsck, target=4, copy_prob=0.5)
        else:
            for cpu in range(NUM_CPUS):
                proc = arc[cpu]
                _fault_if_needed(k, cpu, proc, target=2, copy_prob=0.5,
                                 steady_prob=0.02)
                apps.arc2d_chunk(k, cpu, proc, refs=360)
                k.kmem_walk(cpu, refs=240, jump_prob=0.3)
            k.barrier_all(k.next_barrier(), NUM_CPUS)
            for cpu in range(NUM_CPUS):
                apps.arc2d_chunk(k, cpu, arc[cpu], refs=240)
            k.barrier_all(k.next_barrier(), NUM_CPUS)
        if r % 5 == 4:
            # Memory pressure: one gang member loses a frame, refaulting
            # into a recently written frame soon after.
            proc = rng.choice(arc)
            if len(proc.frames) > 1:
                k.free_frames(proc.frames[-1:])
                del proc.frames[-1:]
        _shared_touches(k, rng, r)
        _sprinkle_interrupts(k, r, timer_every=2, pager_every=4)
        for cpu in range(NUM_CPUS):
            if rng.chance(0.65):
                k.idle(cpu, spins=rng.randint(90, 170))
    return k.build()


def generate_shell(seed: int = 1996, scale: float = 1.0,
                   frame_policy: str = "default") -> Trace:
    """Shell: 21 background jobs of popular shell commands."""
    k = _make_kernel("Shell", seed, scale, frame_policy)
    k.frame_reuse_prob = 0.25
    rng = k.rng.substream("schedule")
    # A pool of shells, one foreground process per CPU.
    jobs: List[Process] = [k.spawn() for _ in range(NUM_CPUS)]
    rounds = max(4, int(58 * scale))
    for r in range(rounds):
        for cpu in range(NUM_CPUS):
            if rng.chance(0.45):
                # Multiprogrammed load with serial jobs: CPUs go idle
                # whenever their run queue empties.
                k.idle(cpu, spins=rng.randint(330, 520))
                continue
            proc = jobs[cpu]
            services.syscall(k, cpu, proc, nr=rng.randint(0, 200))
            k.touch_freq_shared(cpu, rng.choice(
                ["resource_ptrs", "ipc_mailbox", "runq_length",
                 "load_average"]), write=rng.chance(0.45), block="sched_seq")
            if rng.chance(0.6):
                k.touch_freq_shared(cpu, rng.choice(
                    ["sched_hint", "freelist_size"]),
                    write=rng.chance(0.4), block="sched_seq")
            _fault_if_needed(k, cpu, proc, target=2, copy_prob=0.55,
                             steady_prob=0.02)
            apps.shell_chunk(k, cpu, proc, refs=260)
            k.kmem_walk(cpu, refs=330, jump_prob=0.3)
            if rng.chance(0.10):
                # Launch a pipeline stage: fork + exec with small copies —
                # and often fork again from the child (copy chains).
                child = services.fork(k, cpu, proc, copy_pages=1,
                                      page_size=rng.chance(0.3))
                services.exec_image(k, cpu, child,
                                    arg_bytes=rng.choice([128, 256, 512]),
                                    zero_pages=1 if rng.chance(0.4) else 0)
                if rng.chance(0.35):
                    grandchild = services.fork(k, cpu, child, copy_pages=1,
                                               page_size=False)
                    services.pipe_transfer(k, cpu, child, grandchild,
                                           size=rng.choice([128, 256, 512]))
                    services.process_exit(k, cpu, grandchild)
                services.context_switch(k, cpu, proc, child)
                services.process_exit(k, cpu, proc)
                jobs[cpu] = child
            if rng.chance(0.2):
                size = rng.weighted_choice(
                    [64, 128, 256, 512, 1024, 4096],
                    [0.24, 0.22, 0.2, 0.15, 0.11, 0.08])
                services.file_io(k, cpu, jobs[cpu], size=size,
                                 is_write=rng.chance(0.4),
                                 buf=_current_buffer(k, cpu, 0.35))
            if rng.chance(0.1):
                # rsh / finger / who: network traffic.
                size = rng.choice([128, 256, 512, 1024])
                if rng.chance(0.5):
                    services.network_receive(k, cpu, jobs[cpu], size)
                else:
                    services.network_send(k, cpu, jobs[cpu], size)
            if rng.chance(0.08):
                services.signal_delivery(k, cpu, jobs[cpu])
            if rng.chance(0.3):
                other = k.spawn()
                services.context_switch(k, cpu, jobs[cpu], other)
                services.context_switch(k, cpu, other, jobs[cpu])
                k.processes.pop(other.pid, None)
        _shared_touches(k, rng, r)
        _sprinkle_interrupts(k, r, timer_every=2, pager_every=5)
    return k.build()


#: All four workloads, keyed by the paper's names.
WORKLOADS: Dict[str, WorkloadFn] = {
    "TRFD_4": generate_trfd4,
    "TRFD+Make": generate_trfd_make,
    "ARC2D+Fsck": generate_arc2d_fsck,
    "Shell": generate_shell,
}

#: Paper order for tables and figures.
WORKLOAD_ORDER = ["TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"]


def generate(name: str, seed: int = 1996, scale: float = 1.0,
             frame_policy: str = "default") -> Trace:
    """Generate the named workload's trace.

    ``frame_policy="colored"`` enables the cache-color-aware page
    placement of section 7's future-work discussion.
    """
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {WORKLOAD_ORDER}") from None
    return fn(seed, scale, frame_policy)
