"""Declarative workload profiles.

The paper measures exactly four hand-built system-intensive workloads;
:mod:`repro.synthetic.workloads` hard-codes them as generator functions.
This module adds the layer the ROADMAP's "traffic diversity" axis needs:
a :class:`WorkloadProfile` is a *declarative spec* — CPU count, service
intensity mix, syscall/IO/fork rates, sharing degree, rounds, and an
intensity *pattern* (steady, bursty, diurnal) — that compiles down to the
same :class:`~repro.synthetic.kernel.Kernel` / ``services`` / ``apps``
primitives the paper workloads use, so every generated trace stays
compatible with every registered scheme, the conformance oracle, and the miss
tracer.

Three kinds of profile exist:

* **Paper profiles** — the four workloads of section 2.3, re-expressed as
  built-ins.  They carry a ``legacy`` tag and delegate to the original
  generator functions, so their traces are *bit-identical* to
  ``repro.synthetic.workloads.generate`` (regression-tested).
* **New built-in families** — workload mixes the paper never traced: a
  ``server`` family (network+FS-heavy, many short processes), a
  ``bursty_mp`` multiprogrammed mix, and a ``gang_diurnal`` gang-compute
  family with a diurnal intensity wave.
* **Custom profiles** — loaded from YAML/JSON specs
  (:func:`load_profile`) or produced by the seeded random sweep in
  :mod:`repro.synthetic.generator`.

Everything is deterministic: ``generate(name, seed, scale)`` draws every
stochastic decision from named :class:`~repro.common.rng.RngStream`
substreams, so the same (profile, seed, scale) triple always yields
byte-identical traces through :mod:`repro.trace.npzio`.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.common.errors import ProfileError
from repro.common.params import MAX_CPUS
from repro.common.rng import RngStream
from repro.synthetic import apps, services
from repro.synthetic.kernel import Kernel, Process
from repro.synthetic.workloads import (WORKLOAD_ORDER, WORKLOADS,
                                       _current_buffer, _fault_if_needed)
from repro.trace.stream import Trace

#: Recognized intensity patterns.
PATTERNS = ("steady", "bursty", "diurnal")

#: Application chunk models a profile can schedule.
APP_CHUNKS = {
    "trfd": apps.trfd_chunk,
    "arc2d": apps.arc2d_chunk,
    "cc1": apps.cc1_chunk,
    "fsck": apps.fsck_chunk,
    "shell": apps.shell_chunk,
}

#: Rounds of one bursty phase (high then low, alternating).
BURST_ROUNDS = 4

#: Intensity floor: even the quietest diurnal/bursty round does a little
#: work, as a real machine's background load would.
MIN_LEVEL = 0.25

_PROB_FIELDS = (
    "syscall_prob", "file_io_prob", "io_write_frac", "network_prob",
    "pipe_prob", "signal_prob", "fork_prob", "fault_copy_prob",
    "fault_steady_prob", "frame_reuse_prob", "sharing_degree", "idle_prob",
    "buffer_switch_prob",
)


@dataclass(frozen=True)
class WorkloadProfile:
    """A declarative workload spec, compilable to a trace.

    All per-round service rates are probabilities per CPU per round; the
    intensity pattern modulates them round by round.  ``rounds`` is the
    round count at ``scale=1.0``.
    """

    name: str
    #: Workload family tag (``paper``, ``server``, ``multiprog``,
    #: ``gang``, or ``custom``) — used by the sweep generator and docs.
    family: str = "custom"
    #: Non-empty = delegate to this paper generator for bit-compatibility.
    legacy: str = ""
    description: str = ""
    num_cpus: int = 4
    rounds: int = 48
    pattern: str = "steady"
    # -- application mix --
    app: str = "shell"
    app_refs: int = 260
    kmem_refs: int = 250
    kmem_jump_prob: float = 0.3
    #: Barrier-separated gang phases per round (0 = no gang scheduling).
    barrier_phases: int = 0
    # -- per-round service rates --
    syscall_prob: float = 0.5
    file_io_prob: float = 0.2
    io_write_frac: float = 0.4
    io_sizes: Tuple[int, ...] = (64, 128, 256, 512, 1024, 4096)
    io_weights: Tuple[float, ...] = (0.24, 0.22, 0.2, 0.15, 0.11, 0.08)
    network_prob: float = 0.0
    pipe_prob: float = 0.0
    signal_prob: float = 0.0
    #: Short-process churn: fork+exec a child, maybe pipe to a grandchild,
    #: then exit the parent (the Shell lifecycle).
    fork_prob: float = 0.0
    # -- memory behaviour --
    fault_target: int = 2
    fault_copy_prob: float = 0.55
    fault_steady_prob: float = 0.02
    frame_reuse_prob: float = 0.8
    #: How hard CPUs ping-pong the frequently-shared core per round.
    sharing_degree: float = 0.5
    buffer_switch_prob: float = 0.3
    # -- schedule shape --
    idle_prob: float = 0.35
    idle_spins: Tuple[int, int] = (120, 320)
    timer_every: int = 2
    pager_every: int = 5

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the spec; raises :class:`ProfileError` with the field."""
        def bad(fieldname: str, why: str) -> ProfileError:
            return ProfileError(
                f"profile {self.name!r}: bad {fieldname}: {why}")

        if not self.name or not isinstance(self.name, str):
            raise ProfileError("profile needs a non-empty string name")
        if self.legacy and self.legacy not in WORKLOADS:
            raise bad("legacy", f"{self.legacy!r} is not a paper workload "
                                f"(choose from {WORKLOAD_ORDER})")
        if self.pattern not in PATTERNS:
            raise bad("pattern", f"{self.pattern!r} not in {PATTERNS}")
        if self.app not in APP_CHUNKS:
            raise bad("app", f"{self.app!r} not in {sorted(APP_CHUNKS)}")
        if not 1 <= self.num_cpus <= MAX_CPUS:
            raise bad("num_cpus", f"{self.num_cpus} outside [1, {MAX_CPUS}]")
        if self.rounds < 1:
            raise bad("rounds", f"{self.rounds} < 1")
        if not 0 <= self.barrier_phases <= 4:
            raise bad("barrier_phases", f"{self.barrier_phases} outside [0, 4]")
        for fieldname in _PROB_FIELDS:
            value = getattr(self, fieldname)
            if not 0.0 <= value <= 1.0:
                raise bad(fieldname, f"{value} is not a probability")
        for fieldname in ("app_refs", "kmem_refs", "fault_target"):
            if getattr(self, fieldname) < 1:
                raise bad(fieldname, f"{getattr(self, fieldname)} < 1")
        if not 0.0 <= self.kmem_jump_prob <= 1.0:
            raise bad("kmem_jump_prob", "not a probability")
        if (not self.io_sizes or len(self.io_sizes) != len(self.io_weights)
                or any(s < 4 for s in self.io_sizes)
                or any(w <= 0 for w in self.io_weights)):
            raise bad("io_sizes/io_weights",
                      "need equal-length, positive size/weight lists "
                      "with sizes >= 4 bytes")
        lo, hi = self.idle_spins
        if not 1 <= lo <= hi:
            raise bad("idle_spins", f"({lo}, {hi}) is not a valid range")
        if self.timer_every < 0 or self.pager_every < 0:
            raise bad("timer_every/pager_every", "must be >= 0")

    # ------------------------------------------------------------------
    # Spec serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON-able dict (tuples become lists)."""
        out: Dict[str, object] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    def replaced(self, **changes) -> "WorkloadProfile":
        """A validated copy with *changes* applied."""
        profile = dataclasses.replace(self, **changes)
        profile.validate()
        return profile


_TUPLE_FIELDS = {"io_sizes", "io_weights", "idle_spins"}
_FIELD_NAMES = {f.name for f in dataclasses.fields(WorkloadProfile)}


def profile_from_dict(spec: Dict[str, object]) -> WorkloadProfile:
    """Build and validate a profile from a spec dict (YAML/JSON shape)."""
    if not isinstance(spec, dict):
        raise ProfileError(f"profile spec must be a mapping, got "
                           f"{type(spec).__name__}")
    unknown = sorted(set(spec) - _FIELD_NAMES)
    if unknown:
        raise ProfileError(f"unknown profile fields {unknown}; "
                           f"known fields: {sorted(_FIELD_NAMES)}")
    if "name" not in spec:
        raise ProfileError("profile spec needs a 'name'")
    kwargs = dict(spec)
    for key in _TUPLE_FIELDS & set(kwargs):
        value = kwargs[key]
        if not isinstance(value, (list, tuple)):
            raise ProfileError(f"profile field {key!r} must be a list")
        kwargs[key] = tuple(value)
    try:
        profile = WorkloadProfile(**kwargs)  # type: ignore[arg-type]
    except TypeError as err:
        raise ProfileError(f"bad profile spec: {err}") from None
    profile.validate()
    return profile


def load_profile(path: str) -> WorkloadProfile:
    """Load a profile spec from a ``.json`` / ``.yaml`` / ``.yml`` file."""
    with open(path) as fp:
        text = fp.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:  # pragma: no cover - env without PyYAML
            raise ProfileError(
                f"{path}: loading YAML profiles needs PyYAML; "
                "install it or use a .json spec") from None
        spec = yaml.safe_load(text)
    else:
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as err:
            raise ProfileError(f"{path}: not valid JSON: {err}") from None
    try:
        return profile_from_dict(spec)
    except ProfileError as err:
        raise ProfileError(f"{path}: {err}") from None


def save_profile(profile: WorkloadProfile, path: str) -> None:
    """Write *profile* as a JSON (or, by extension, YAML) spec file."""
    spec = profile.to_dict()
    with open(path, "w") as fp:
        if path.endswith((".yaml", ".yml")):
            try:
                import yaml
            except ImportError:  # pragma: no cover - env without PyYAML
                raise ProfileError(
                    f"{path}: writing YAML profiles needs PyYAML; "
                    "use a .json path") from None
            yaml.safe_dump(spec, fp, sort_keys=False)
        else:
            json.dump(spec, fp, indent=2)
            fp.write("\n")


# ======================================================================
# Intensity patterns
# ======================================================================
def intensity(pattern: str, round_no: int, rounds: int) -> float:
    """Activity multiplier of *round_no* under *pattern*, in [MIN_LEVEL, 1].

    ``steady`` is constant full intensity; ``bursty`` alternates
    full/quiet phases every :data:`BURST_ROUNDS` rounds; ``diurnal`` is
    one sinusoidal day over the whole run.  Pure function of its
    arguments, so generation stays deterministic.
    """
    if pattern == "steady":
        return 1.0
    if pattern == "bursty":
        return 1.0 if (round_no // BURST_ROUNDS) % 2 == 0 else MIN_LEVEL
    if pattern == "diurnal":
        phase = 2.0 * math.pi * round_no / max(1, rounds)
        return MIN_LEVEL + (1.0 - MIN_LEVEL) * 0.5 * (1.0 - math.cos(phase))
    raise ProfileError(f"unknown intensity pattern {pattern!r}; "
                       f"choose from {PATTERNS}")


# ======================================================================
# Compiler: profile -> trace
# ======================================================================
def _shared_round(k: Kernel, rng: RngStream, round_no: int,
                  degree: float) -> None:
    """Producer-consumer traffic on the shared core, CPU-count-generic.

    The per-round analogue of the paper workloads' ``_shared_touches``,
    with the read/write ping-pong volume scaled by ``degree``.
    """
    ncpu = k.num_cpus
    writer = round_no % ncpu
    k.touch_freq_shared(writer, "load_average", write=True, block="sched_seq")
    if rng.chance(degree):
        k.touch_freq_shared(writer, "sched_hint", write=True,
                            block="sched_seq")
    for cpu in range(ncpu):
        if cpu != writer and rng.chance(0.4 + 0.6 * degree):
            k.touch_freq_shared(cpu, "load_average", write=False,
                                block="sched_seq")
            if rng.chance(0.5 * degree):
                k.touch_freq_shared(cpu, "runq_length",
                                    write=rng.chance(0.3), block="sched_seq")
        k.bump_counter(cpu, rng.choice(
            ["v_trap", "v_sched", "v_io_done", "v_lock_wait", "v_idle"]))
        if rng.chance(0.4 * degree):
            k.bump_counter(cpu, rng.choice(
                ["v_pageins", "v_pageouts", "v_intr", "v_swtch", "v_syscall"]))
        if rng.chance(0.6 * degree):
            k.touch_freq_shared(cpu, rng.choice(
                ["resource_ptrs", "ipc_mailbox", "freelist_size"]),
                write=rng.chance(0.4), block="sched_seq")


def _interrupt_round(k: Kernel, round_no: int, timer_every: int,
                     pager_every: int) -> None:
    """Timer ticks and pager scans, CPU-count-generic."""
    ncpu = k.num_cpus
    if timer_every and round_no % timer_every == 0:
        services.timer_interrupt(k, round_no % ncpu)
        if ncpu > 1:
            services.timer_interrupt(k, (round_no + ncpu // 2) % ncpu)
    if pager_every and round_no % pager_every == pager_every - 1:
        services.pager_scan(k, (round_no // pager_every) % ncpu)


def _process_churn(k: Kernel, rng: RngStream, cpu: int, proc: Process,
                   pipe_chance: float) -> Process:
    """One short-process lifecycle: fork+exec, optional grandchild pipe,
    parent exit.  Returns the new foreground process for *cpu*."""
    child = services.fork(k, cpu, proc, copy_pages=1,
                          page_size=rng.chance(0.3))
    services.exec_image(k, cpu, child,
                        arg_bytes=rng.choice([128, 256, 512]),
                        zero_pages=1 if rng.chance(0.4) else 0)
    if rng.chance(pipe_chance):
        grandchild = services.fork(k, cpu, child, copy_pages=1,
                                   page_size=False)
        services.pipe_transfer(k, cpu, child, grandchild,
                               size=rng.choice([128, 256, 512]))
        services.process_exit(k, cpu, grandchild)
    services.context_switch(k, cpu, proc, child)
    services.process_exit(k, cpu, proc)
    return child


def compile_profile(profile: WorkloadProfile, seed: int = 1996,
                    scale: float = 1.0,
                    frame_policy: str = "default") -> Trace:
    """Compile *profile* into a validated trace.

    Paper (``legacy``) profiles delegate to the original generator so
    their traces stay bit-identical; everything else runs the generic
    round loop over the same kernel/service/app primitives.
    """
    profile.validate()
    if profile.legacy:
        return WORKLOADS[profile.legacy](seed, scale, frame_policy)
    p = profile
    k = Kernel(p.num_cpus, RngStream(seed, p.name),
               metadata={"workload": p.name, "seed": seed, "scale": scale,
                         "frame_policy": frame_policy, "family": p.family,
                         "pattern": p.pattern, "profile": p.to_dict()},
               frame_policy=frame_policy)
    k.frame_reuse_prob = p.frame_reuse_prob
    rng = k.rng.substream("schedule")
    ncpu = p.num_cpus
    app_fn = APP_CHUNKS[p.app]
    jobs: List[Process] = [k.spawn() for _ in range(ncpu)]
    rounds = max(4, int(p.rounds * scale))
    for r in range(rounds):
        level = intensity(p.pattern, r, rounds)
        for cpu in range(ncpu):
            # Quiet rounds push CPUs toward the idle loop, the way a real
            # multiprogrammed machine's run queues drain off-peak.
            if rng.chance(min(0.95, p.idle_prob + (1.0 - level) * 0.5)):
                k.idle(cpu, spins=rng.randint(*p.idle_spins))
                continue
            proc = jobs[cpu]
            if rng.chance(p.syscall_prob * level):
                services.syscall(k, cpu, proc, nr=rng.randint(0, 200))
            if rng.chance(p.sharing_degree):
                k.touch_freq_shared(cpu, rng.choice(
                    ["resource_ptrs", "ipc_mailbox", "runq_length",
                     "load_average"]), write=rng.chance(0.45),
                    block="sched_seq")
            _fault_if_needed(k, cpu, proc, target=p.fault_target,
                             copy_prob=p.fault_copy_prob,
                             steady_prob=p.fault_steady_prob)
            app_fn(k, cpu, proc, refs=max(32, int(p.app_refs * level)))
            k.kmem_walk(cpu, refs=max(32, int(p.kmem_refs * level)),
                        jump_prob=p.kmem_jump_prob)
            if rng.chance(p.fork_prob * level):
                jobs[cpu] = _process_churn(k, rng, cpu, proc,
                                           pipe_chance=0.35)
            if rng.chance(p.file_io_prob * level):
                size = rng.weighted_choice(p.io_sizes, p.io_weights)
                services.file_io(
                    k, cpu, jobs[cpu], size=size,
                    is_write=rng.chance(p.io_write_frac),
                    buf=_current_buffer(k, cpu, p.buffer_switch_prob))
            if rng.chance(p.network_prob * level):
                size = rng.choice([128, 256, 512, 1024])
                if rng.chance(0.5):
                    services.network_receive(k, cpu, jobs[cpu], size)
                else:
                    services.network_send(k, cpu, jobs[cpu], size)
            if rng.chance(p.pipe_prob * level):
                services.pipe_transfer(k, cpu, jobs[cpu], jobs[cpu],
                                       size=rng.choice([128, 256, 512]))
            if rng.chance(p.signal_prob * level):
                services.signal_delivery(k, cpu, jobs[cpu])
        for _phase in range(p.barrier_phases):
            for cpu in range(ncpu):
                app_fn(k, cpu, jobs[cpu],
                       refs=max(32, int(p.app_refs * level) // 2))
            k.barrier_all(k.next_barrier(), ncpu)
        _shared_round(k, rng, r, p.sharing_degree)
        _interrupt_round(k, r, p.timer_every, p.pager_every)
    return k.build()


# ======================================================================
# Built-in profiles and the generate() front door
# ======================================================================
def _paper_profile(name: str, description: str) -> WorkloadProfile:
    return WorkloadProfile(name=name, family="paper", legacy=name,
                           description=description)


#: Built-in profiles: the four paper workloads (bit-compatible
#: delegation) plus the new families the paper never measured.
BUILTIN_PROFILES: Dict[str, WorkloadProfile] = {
    "TRFD_4": _paper_profile(
        "TRFD_4", "4 x 4-process TRFD, gang-scheduled, barrier-intensive"),
    "TRFD+Make": _paper_profile(
        "TRFD+Make", "one TRFD instance plus four parallel compilations"),
    "ARC2D+Fsck": _paper_profile(
        "ARC2D+Fsck", "gang-scheduled fluid dynamics plus a filesystem "
                      "check"),
    "Shell": _paper_profile(
        "Shell", "heavily multiprogrammed shell script, 21 background "
                 "jobs"),
    "server": WorkloadProfile(
        name="server", family="server",
        description="network+FS-heavy server mix: many short processes, "
                    "high syscall and sharing rates, small I/O sizes",
        app="shell", rounds=56, pattern="steady",
        app_refs=220, kmem_refs=300, kmem_jump_prob=0.32,
        syscall_prob=0.8, file_io_prob=0.45, io_write_frac=0.35,
        io_sizes=(64, 128, 256, 512, 1024, 2048),
        io_weights=(0.3, 0.24, 0.18, 0.12, 0.1, 0.06),
        network_prob=0.5, pipe_prob=0.12, signal_prob=0.08, fork_prob=0.22,
        fault_target=2, fault_copy_prob=0.6, fault_steady_prob=0.03,
        frame_reuse_prob=0.45, sharing_degree=0.7, buffer_switch_prob=0.4,
        idle_prob=0.18, idle_spins=(80, 200), pager_every=4),
    "bursty_mp": WorkloadProfile(
        name="bursty_mp", family="multiprog",
        description="bursty multiprogrammed compile-farm mix: compiler "
                    "chunks, temp-file I/O, fork churn, alternating "
                    "load phases",
        app="cc1", rounds=52, pattern="bursty",
        app_refs=340, kmem_refs=220, kmem_jump_prob=0.28,
        syscall_prob=0.55, file_io_prob=0.3, io_write_frac=0.45,
        io_sizes=(256, 512, 1024, 2048, 4096),
        io_weights=(0.2, 0.2, 0.22, 0.22, 0.16),
        pipe_prob=0.08, signal_prob=0.04, fork_prob=0.1,
        fault_target=2, fault_copy_prob=0.6, fault_steady_prob=0.012,
        sharing_degree=0.5, idle_prob=0.3, idle_spins=(200, 420)),
    "gang_diurnal": WorkloadProfile(
        name="gang_diurnal", family="gang",
        description="gang-scheduled stencil compute under a diurnal "
                    "intensity wave, with checkpoint file I/O",
        app="arc2d", rounds=48, pattern="diurnal", barrier_phases=2,
        app_refs=360, kmem_refs=240, kmem_jump_prob=0.3,
        syscall_prob=0.3, file_io_prob=0.18, io_write_frac=0.5,
        io_sizes=(512, 1024, 2048, 4096),
        io_weights=(0.2, 0.25, 0.25, 0.3),
        fault_target=2, fault_copy_prob=0.5, fault_steady_prob=0.02,
        sharing_degree=0.55, idle_prob=0.25, idle_spins=(90, 170),
        pager_every=4),
}

#: Paper order first, then the new families.
PROFILE_ORDER = list(WORKLOAD_ORDER) + ["server", "bursty_mp",
                                        "gang_diurnal"]

#: Profiles registered at runtime (``--profile-spec`` files, sweeps).
_RUNTIME_PROFILES: Dict[str, WorkloadProfile] = {}


def register_profile(profile: WorkloadProfile) -> WorkloadProfile:
    """Register *profile* for by-name generation in this process."""
    profile.validate()
    if profile.name in BUILTIN_PROFILES:
        raise ProfileError(
            f"cannot shadow built-in profile {profile.name!r}")
    _RUNTIME_PROFILES[profile.name] = profile
    return profile


def available_profiles() -> List[str]:
    """Names resolvable by :func:`generate`, built-ins first."""
    return PROFILE_ORDER + sorted(
        set(_RUNTIME_PROFILES) - set(PROFILE_ORDER))


def get_profile(name: str) -> WorkloadProfile:
    """Resolve *name* to a profile.

    Accepts built-in names, runtime-registered names, and the
    self-describing ``gen:...`` names minted by
    :mod:`repro.synthetic.generator` (which are reconstructed from the
    name alone, so they work across worker processes).
    """
    if name in BUILTIN_PROFILES:
        return BUILTIN_PROFILES[name]
    if name in _RUNTIME_PROFILES:
        return _RUNTIME_PROFILES[name]
    if name.startswith("gen:"):
        from repro.synthetic import generator
        return generator.from_name(name).profile
    raise KeyError(f"unknown workload profile {name!r}; choose from "
                   f"{available_profiles()} or a 'gen:' sweep name")


def generate(name: Union[str, WorkloadProfile], seed: int = 1996,
             scale: float = 1.0, frame_policy: str = "default") -> Trace:
    """Generate a trace from a profile name or profile object.

    The drop-in successor of ``repro.synthetic.workloads.generate``: the
    four paper names produce bit-identical traces (their profiles
    delegate to the original generators), and every other built-in,
    registered, or ``gen:`` profile compiles through
    :func:`compile_profile`.
    """
    profile = get_profile(name) if isinstance(name, str) else name
    return compile_profile(profile, seed=seed, scale=scale,
                           frame_policy=frame_policy)
