"""User-level application models.

Each function emits one *chunk* of user-mode computation for a process —
a scheduling quantum's worth of references with the app's characteristic
locality.  User code has much better cache behaviour than the kernel
(Table 1: user data miss rates are low), so every model works a small hot
set intensively while streaming through new data slowly:

* **TRFD** — blocked dense matrix arithmetic: an inner vector is reused
  continuously while the outer operand streams.
* **ARC2D** — sparse 2-D fluid dynamics: stencil sweeps with good reuse
  plus occasional indexed gathers.
* **cc1** — the C compiler's second phase: a hot working set of symbol
  tables and the current AST region, with cold pointer chases.
* **Fsck** — sequential bitmap scans (high spatial locality).
* **Shell utilities** — tiny hot loops between system calls.
"""

from __future__ import annotations

from repro.common.types import DataClass, Mode, Op
from repro.synthetic.kernel import Kernel, Process
from repro.synthetic.layout import user_pc
from repro.trace.record import TraceRecord


def _emit_user(k: Kernel, cpu: int, op: Op, addr: int, pc: int,
               icount: int) -> None:
    k.builder.emit(cpu, TraceRecord(op, addr, Mode.USER, DataClass.USER_DATA,
                                    pc, icount))


def trfd_chunk(k: Kernel, cpu: int, proc: Process, refs: int) -> None:
    """Blocked matrix multiply: a 2-KB inner vector is reused every pass
    while one operand row streams through memory."""
    base = k.layout.user_segment(proc.pid)
    vector, stream, result = base, base + 0x41200, base + 0x82400
    pos = proc.user_pos
    pc = user_pc(proc.pid, 0)
    for i in range(refs):
        _emit_user(k, cpu, Op.READ, vector + ((pos + i) * 4) % 2048, pc, 5)
        if i % 32 == 0:
            # Streaming operand: one new element per unrolled iteration.
            _emit_user(k, cpu, Op.READ, stream + ((pos + i) * 4) % 0x40000,
                       pc, 2)
        if i % 16 == 15:
            _emit_user(k, cpu, Op.WRITE, result + ((pos + i) // 16 * 4) % 4096,
                       pc, 2)
    proc.user_pos += refs


def arc2d_chunk(k: Kernel, cpu: int, proc: Process, refs: int) -> None:
    """Stencil sweep over a hot grid tile with occasional sparse gathers."""
    base = k.layout.user_segment(proc.pid)
    tile, coeff = base, base + 0x101800
    pos = proc.user_pos
    pc = user_pc(proc.pid, 1)
    for i in range(refs):
        # Five-point stencil around a slowly advancing centre: heavy reuse.
        centre = ((pos + i) // 4 * 4) % 6144
        _emit_user(k, cpu, Op.READ, tile + centre, pc, 5)
        if i % 4 == 1:
            _emit_user(k, cpu, Op.READ, tile + (centre + 128) % 6144, pc, 1)
        if i % 4 == 3:
            _emit_user(k, cpu, Op.WRITE, tile + centre, pc, 1)
        if i % 32 == 9:
            # Sparse coefficient gather: poor locality, rare.
            off = ((pos + i) * 2654435761) % 0x40000 & ~3
            _emit_user(k, cpu, Op.READ, coeff + off, pc, 3)
    proc.user_pos += refs


def cc1_chunk(k: Kernel, cpu: int, proc: Process, refs: int) -> None:
    """Compiler: hot symbol-table region plus cold AST pointer chases."""
    base = k.layout.user_segment(proc.pid) + 0x200000
    symtab, heap = base, base + 0x11600
    pos = proc.user_pos
    pc = user_pc(proc.pid, 2)
    heap_size = min(0x10000, 0x4000 + pos * 8)
    for i in range(refs):
        if i % 12 < 11:
            # Symbol-table lookups in a 4-KB hot region.
            off = ((pos + i) * 28) % 4096 & ~3
            _emit_user(k, cpu, Op.READ, symtab + off, pc, 5)
        else:
            off = ((pos + i) * 40503) % heap_size & ~3
            _emit_user(k, cpu, Op.READ, heap + off, pc, 3)
        if i % 12 == 11:
            frontier = ((pos + i) * 24) % heap_size & ~3
            _emit_user(k, cpu, Op.WRITE, heap + frontier, pc, 2)
    proc.user_pos += refs


def fsck_chunk(k: Kernel, cpu: int, proc: Process, refs: int) -> None:
    """Fsck: sequential scan of block/inode bitmaps (word stride)."""
    base = k.layout.user_segment(proc.pid) + 0x300000
    pos = proc.user_pos
    pc = user_pc(proc.pid, 3)
    for i in range(refs):
        _emit_user(k, cpu, Op.READ, base + ((pos + i) * 4) % 0x2000, pc, 5)
        if i % 16 == 15:
            _emit_user(k, cpu, Op.WRITE,
                       base + 0x20000 + ((pos + i) // 4) % 4096 & ~3, pc, 1)
    proc.user_pos += refs


def shell_chunk(k: Kernel, cpu: int, proc: Process, refs: int) -> None:
    """A shell utility's burst of user work between system calls."""
    base = k.layout.user_segment(proc.pid) + 0x10000
    pos = proc.user_pos
    pc = user_pc(proc.pid, 4)
    for i in range(refs):
        _emit_user(k, cpu, Op.READ, base + ((pos + i) * 8) % 2048, pc, 5)
        if i % 10 == 9:
            _emit_user(k, cpu, Op.WRITE, base + 2048 + ((pos + i) * 4) % 1024,
                       pc, 1)
    proc.user_pos += refs
