"""Seeded random workload generator: profile parameter sweeps.

The LITMUS^RT workload generator sweeps (#cores, tasks-per-core,
utilization) and emits N random-but-reproducible task sets per parameter
point.  This module does the same for cache-scheme workloads: a
:class:`SweepSpec` names the axes — profile family, CPU count, intensity
level, intensity pattern — and :func:`sweep` emits ``count`` seeded
:class:`GeneratedWorkload` instances per point, each a jittered variant
of the family's base profile from :mod:`repro.synthetic.profiles`.

Every generated workload is **self-describing**: its name encodes the
full parameter point plus the jitter seed
(``gen:server:c4:i060:bursty:0:3``), and :func:`from_name` rebuilds the
exact profile from the name alone.  That makes generated workloads
usable anywhere a workload name is — the CLI, the experiment runner, the
parallel sweep engine's worker processes, the artifact cache — without
shipping profile objects across process boundaries.

Determinism contract: the jitter RNG is seeded from the name, the trace
seed is derived from the name, and profile compilation draws only from
named :class:`~repro.common.rng.RngStream` substreams — so the same
sweep spec always yields byte-identical traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.common.errors import ProfileError
from repro.common.params import MAX_CPUS
from repro.common.rng import derive_seed
from repro.synthetic.profiles import (BUILTIN_PROFILES, PATTERNS,
                                      WorkloadProfile, compile_profile)
from repro.trace.stream import Trace

#: Families the sweep can draw from: the non-legacy built-in profiles.
SWEEP_FAMILIES: Tuple[str, ...] = ("server", "bursty_mp", "gang_diurnal")

#: Probability fields scaled by the sweep's intensity axis.
_ACTIVITY_FIELDS = ("syscall_prob", "file_io_prob", "network_prob",
                    "pipe_prob", "signal_prob", "fork_prob")

#: Probability fields jittered (but not intensity-scaled).
_JITTER_PROB_FIELDS = ("io_write_frac", "fault_copy_prob",
                       "fault_steady_prob", "frame_reuse_prob",
                       "sharing_degree", "buffer_switch_prob")

_PROB_CAP = 0.95


@dataclass(frozen=True)
class SweepSpec:
    """Parameter ranges of one sweep (the LITMUS-RT ``mktasks`` shape).

    ``count`` workloads are emitted per (family, cpus, intensity,
    pattern) point; ``seed`` makes the whole sweep reproducible.
    """

    families: Tuple[str, ...] = SWEEP_FAMILIES
    num_cpus: Tuple[int, ...] = (4,)
    intensities: Tuple[float, ...] = (0.6, 1.0)
    patterns: Tuple[str, ...] = PATTERNS
    count: int = 2
    seed: int = 0

    def validate(self) -> None:
        for family in self.families:
            _base_profile(family)
        for pattern in self.patterns:
            if pattern not in PATTERNS:
                raise ProfileError(f"unknown sweep pattern {pattern!r}; "
                                   f"choose from {PATTERNS}")
        for cpus in self.num_cpus:
            if not 1 <= cpus <= MAX_CPUS:
                raise ProfileError(
                    f"sweep num_cpus {cpus} outside [1, {MAX_CPUS}]")
        for level in self.intensities:
            if not 0.05 <= level <= 1.0:
                raise ProfileError(
                    f"sweep intensity {level} outside [0.05, 1.0]")
        if self.count < 1:
            raise ProfileError(f"sweep count {self.count} < 1")

    def points(self) -> List[Tuple[str, int, float, str]]:
        """The cartesian parameter grid, in deterministic order."""
        return [(family, cpus, level, pattern)
                for family in self.families
                for cpus in self.num_cpus
                for level in self.intensities
                for pattern in self.patterns]


class GeneratedWorkload:
    """One seeded workload: a jittered profile plus its trace seed."""

    __slots__ = ("name", "profile", "seed")

    def __init__(self, name: str, profile: WorkloadProfile,
                 seed: int) -> None:
        self.name = name
        self.profile = profile
        self.seed = seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeneratedWorkload({self.name!r})"

    def generate(self, scale: float = 1.0,
                 frame_policy: str = "default") -> Trace:
        """Compile this workload's trace (deterministic for the name)."""
        return compile_profile(self.profile, seed=self.seed, scale=scale,
                               frame_policy=frame_policy)


# ======================================================================
# Point derivation
# ======================================================================
def _base_profile(family: str) -> WorkloadProfile:
    base = BUILTIN_PROFILES.get(family)
    if base is None or base.legacy:
        raise ProfileError(
            f"unknown sweep family {family!r}; choose from "
            f"{list(SWEEP_FAMILIES)} (paper workloads are fixed-parameter "
            "and cannot be swept)")
    return base


def _clamp(value: float, lo: float = 0.0, hi: float = _PROB_CAP) -> float:
    return max(lo, min(hi, value))


def point_name(family: str, cpus: int, level: float, pattern: str,
               seed: int, index: int) -> str:
    """The canonical self-describing name of one generated workload."""
    return (f"gen:{family}:c{cpus}:i{int(round(level * 100)):03d}"
            f":{pattern}:{seed}:{index}")


def _make_workload(family: str, cpus: int, level: float, pattern: str,
                   seed: int, index: int) -> GeneratedWorkload:
    """Jitter the family's base profile, seeded purely by the name.

    Draws happen in a fixed field order so the name -> profile map never
    shifts when unrelated code changes.
    """
    name = point_name(family, cpus, level, pattern, seed, index)
    base = _base_profile(family)
    rng = random.Random(derive_seed(seed, name))
    changes: dict = {
        "name": name,
        "num_cpus": cpus,
        "pattern": pattern,
        "rounds": max(8, int(base.rounds * rng.uniform(0.75, 1.25))),
        "app_refs": max(32, int(base.app_refs * rng.uniform(0.7, 1.3))),
        "kmem_refs": max(32, int(base.kmem_refs * rng.uniform(0.7, 1.3))),
        "kmem_jump_prob": _clamp(base.kmem_jump_prob
                                 * rng.uniform(0.7, 1.3)),
    }
    for fieldname in _ACTIVITY_FIELDS:
        jittered = getattr(base, fieldname) * rng.uniform(0.7, 1.3)
        changes[fieldname] = _clamp(jittered * level)
    for fieldname in _JITTER_PROB_FIELDS:
        changes[fieldname] = _clamp(getattr(base, fieldname)
                                    * rng.uniform(0.75, 1.25))
    # Off-peak points spend more rounds idle, like a lightly loaded box.
    changes["idle_prob"] = _clamp(
        base.idle_prob * rng.uniform(0.8, 1.2) + (1.0 - level) * 0.25)
    lo, hi = base.idle_spins
    stretch = rng.uniform(0.8, 1.3)
    changes["idle_spins"] = (max(1, int(lo * stretch)),
                             max(2, int(hi * stretch)))
    changes["io_weights"] = tuple(
        w * rng.uniform(0.6, 1.4) for w in base.io_weights)
    changes["fault_target"] = max(1, base.fault_target
                                  + rng.choice((-1, 0, 0, 1)))
    profile = base.replaced(**changes)
    return GeneratedWorkload(name, profile, derive_seed(seed, f"trace:{name}"))


def from_name(name: str) -> GeneratedWorkload:
    """Rebuild a generated workload from its self-describing name."""
    parts = name.split(":")
    if len(parts) != 7 or parts[0] != "gen":
        raise ProfileError(
            f"{name!r} is not a generated-workload name "
            "(expected gen:<family>:c<cpus>:i<level>:<pattern>:<seed>:<n>)")
    _, family, cpus_s, level_s, pattern, seed_s, index_s = parts
    try:
        if not cpus_s.startswith("c") or not level_s.startswith("i"):
            raise ValueError
        cpus = int(cpus_s[1:])
        level = int(level_s[1:]) / 100.0
        seed = int(seed_s)
        index = int(index_s)
    except ValueError:
        raise ProfileError(f"malformed generated-workload name {name!r}") \
            from None
    if pattern not in PATTERNS:
        raise ProfileError(f"{name!r}: unknown pattern {pattern!r}")
    workload = _make_workload(family, cpus, level, pattern, seed, index)
    if workload.name != name:
        raise ProfileError(f"{name!r} does not round-trip "
                           f"(canonical: {workload.name!r})")
    return workload


# ======================================================================
# Sweeps and sampling
# ======================================================================
def sweep(spec: SweepSpec) -> List[GeneratedWorkload]:
    """All workloads of *spec*: ``count`` per parameter point."""
    spec.validate()
    return [_make_workload(family, cpus, level, pattern, spec.seed, index)
            for (family, cpus, level, pattern) in spec.points()
            for index in range(spec.count)]


def sample(count: int, seed: int = 0,
           families: Optional[Iterable[str]] = None,
           num_cpus: Tuple[int, ...] = (4,),
           intensities: Tuple[float, ...] = (0.6, 1.0),
           patterns: Tuple[str, ...] = PATTERNS,
           ) -> List[GeneratedWorkload]:
    """Exactly *count* workloads, round-robin over the parameter grid.

    Coverage-first ordering: the first ``len(grid)`` samples each come
    from a distinct (family, cpus, intensity, pattern) point; further
    samples revisit points with fresh indices.  Used by the conformance
    fuzzer and the CI workload matrix.
    """
    spec = SweepSpec(families=tuple(families) if families else SWEEP_FAMILIES,
                     num_cpus=num_cpus, intensities=intensities,
                     patterns=patterns, count=1, seed=seed)
    spec.validate()
    points = spec.points()
    return [_make_workload(*points[i % len(points)], seed, i // len(points))
            for i in range(count)]
