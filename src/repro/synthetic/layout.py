"""Address-space layout of the synthetic kernel and its processes.

The trace substitution reproduces the *structure* of Concentrix's memory
use, not its literal addresses.  The layout places:

* OS code (basic-block addresses, including the 12 miss-hot-spot blocks of
  section 6),
* a synchronization page holding the gang-scheduling barrier words, the
  kernel spin locks, and the frequently-shared producer-consumer core —
  exactly the 384 bytes that section 5.2 maps to the Firefly update
  protocol (they are statically allocated, so one page holds them all),
* the infrequently-communicated event counters (vmmeter et al.), packed
  several to a cache line as a naively parallelized uniprocessor kernel
  would — the false sharing that section 5.1's relocation removes,
* the big kernel arrays (page tables, process table, buffer cache,
  syscall table, timers, free-page list), and
* per-process user segments and a physical page-frame pool.

Everything is registered in a :class:`~repro.trace.annotations.SymbolMap`
so analyses can attribute any address to its structure.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.types import DataClass
from repro.trace.annotations import SymbolMap

#: Page size of the synthetic kernel.
PAGE = 4096

# ----------------------------------------------------------------------
# OS code segment: one pc per named basic block.
# ----------------------------------------------------------------------
OS_CODE_BASE = 0x0010_0000

#: Basic blocks of the synthetic kernel.  The first twelve are the miss
#: hot spots of section 6 — five loops and seven sequences.
KERNEL_BLOCKS = [
    # -- the 12 hot spots (section 6) --
    "pte_init_loop",      # loop: initialize page-table entries
    "pte_copy_loop",      # loop: copy page-table entries (fork)
    "pte_scan_loop",      # loop: scan PTEs (pageout / unmap)
    "pte_unmap_loop",     # loop: invalidate PTEs on exit
    "freelist_walk",      # loop: walk the free-page list
    "resume_seq",         # sequence: resume a process
    "timer_seq",          # sequence: timer / system accounting
    "trap_syscall_seq",   # sequence: execute the trap system call
    "ctxsw_seq",          # sequence: context switch
    "sched_seq",          # sequence: schedule a process
    "intr_seq",           # sequence: cross-processor interrupt dispatch
    "exit_seq",           # sequence: process teardown
    # -- other kernel code --
    "fault_entry", "fault_exit", "fork_entry", "exec_entry", "io_entry",
    "io_copyloop", "bcopy", "bzero", "lock_code", "barrier_code",
    "counter_code", "idle_loop", "syscall_entry", "pipe_code",
    "namei_code", "select_code", "pageout_code",
] + [f"kmisc_{i:02d}" for i in range(40)]

#: Bytes of code per basic block (keeps pcs on distinct I-cache lines).
BLOCK_CODE_BYTES = 256

#: pc of each named kernel basic block.
KERNEL_PC: Dict[str, int] = {
    name: OS_CODE_BASE + i * BLOCK_CODE_BYTES
    for i, name in enumerate(KERNEL_BLOCKS)
}

#: The 12 hot-spot basic blocks, by name (order matters: 5 loops then
#: 7 sequences, as in section 6).
HOTSPOT_BLOCKS = KERNEL_BLOCKS[:12]

#: User code region (per-process pc bases are derived from this).
USER_CODE_BASE = 0x0018_0000


def user_pc(pid: int, block: int) -> int:
    """pc of basic block *block* of process *pid*'s code."""
    return USER_CODE_BASE + (pid % 64) * 1024 + (block % 16) * 64


# ----------------------------------------------------------------------
# Kernel static data.
# ----------------------------------------------------------------------
SYNC_PAGE = 0x0020_0000          # barriers + locks + shared core (one page)
COUNTER_BASE = 0x0020_1000       # vmmeter-style event counters
SCHED_BASE = 0x0020_2000         # run queue & scheduler state
TIMER_BASE = 0x0020_3000         # high-resolution timer & accounting
SYSCALL_TABLE = 0x0020_4000      # system-call dispatch table (1 KB)
PROC_TABLE = 0x0021_0000         # process table, 256 B per entry
PAGE_TABLE = 0x0030_0000         # page-table entry arrays
FREELIST_BASE = 0x0040_0000      # free-page list nodes
KMEM_BASE = 0x0050_0000          # kmem pools: vnodes, name cache, cblocks
KMEM_BYTES = 256 * 1024
MBUF_POOL = 0x0070_0000          # network mbufs and pipe buffers
NUM_MBUFS = 64
MBUF_BYTES = 2048
NIC_RING = 0x0078_0000           # network interface receive/transmit ring
NUM_NIC_SLOTS = 32
NIC_SLOT_BYTES = 2048
BUFFER_CACHE = 0x0080_0000       # file-system buffer cache
FRAME_POOL = 0x0100_0000         # physical page frames
PRIVATE_BASE = 0x0060_0000       # per-CPU privatized counter replicas

NUM_PROCS = 64
PROC_ENTRY_BYTES = 256
NUM_PTES_PER_PROC = 1024         # 4 KB of PTEs per process
PTE_BYTES = 4
NUM_FREELIST_NODES = 512
FREELIST_NODE_BYTES = 16
NUM_BUFFERS = 128
BUFFER_BYTES = PAGE
NUM_FRAMES = 2048

#: Number of distinct gang-scheduling barrier words (48 bytes total).
NUM_BARRIERS = 12
#: Kernel spin locks, most-active first (the 10 hottest get updates).
KERNEL_LOCKS = [
    "sched_lock", "memalloc_lock", "timer_lock", "accounting_lock",
    "proc_lock", "callout_lock", "buffer_lock", "vm_lock", "file_lock",
    "network_lock", "tty_lock", "inode_lock",
]
#: Frequently-shared variables with (partly) producer-consumer behaviour;
#: 176 bytes total (section 5.2).
FREQ_SHARED_VARS = [
    ("freelist_size", 4),
    ("cpievents", 64),           # per-CPU cross-interrupt info array
    ("runq_length", 4),
    ("sched_hint", 4),
    ("resource_ptrs", 64),       # system resource table pointers
    ("pageout_target", 4),
    ("load_average", 8),
    ("ipc_mailbox", 24),
]
#: Infrequently-communicated counters (updated often by every CPU, read
#: rarely by the pager/accounting).  Packed four to a 16-byte line.
INFREQ_COUNTERS = [
    "v_intr", "v_xcall", "v_pgfault", "v_syscall", "v_swtch", "v_trap",
    "v_fork", "v_exec", "v_read", "v_write", "v_pageins", "v_pageouts",
    "v_idle", "v_sched", "v_lock_wait", "v_io_done",
]

USER_BASE = 0x4000_0000
USER_SEGMENT_BYTES = 0x0100_0000


class KernelLayout:
    """Concrete addresses for every kernel structure, plus the symbol map."""

    def __init__(self) -> None:
        self.symbols = SymbolMap()
        self.barrier_addrs: List[int] = []
        self.lock_addr: Dict[str, int] = {}
        self.freq_shared_addr: Dict[str, int] = {}
        self.counter_addr: Dict[str, int] = {}
        self._build_sync_page()
        self._build_counters()
        self._build_big_structures()

    # -- construction ---------------------------------------------------
    def _build_sync_page(self) -> None:
        addr = SYNC_PAGE
        for i in range(NUM_BARRIERS):
            self.barrier_addrs.append(addr)
            addr += 4
        self.symbols.add("gang_barriers", SYNC_PAGE, addr - SYNC_PAGE,
                         DataClass.BARRIER_VAR)
        # One lock per 16-byte line (already relocated in the layout; the
        # paper's relocation pass separates synchronization variables).
        addr = SYNC_PAGE + 64
        for name in KERNEL_LOCKS:
            self.lock_addr[name] = addr
            self.symbols.add(name, addr, 16, DataClass.LOCK_VAR)
            addr += 16
        # The frequently-shared core: 176 bytes, contiguous.
        addr = SYNC_PAGE + 64 + len(KERNEL_LOCKS) * 16
        for name, size in FREQ_SHARED_VARS:
            self.freq_shared_addr[name] = addr
            self.symbols.add(name, addr, size, DataClass.FREQ_SHARED)
            addr += size

    def _build_counters(self) -> None:
        # Four 4-byte counters per 16-byte line: false sharing by design,
        # as in a kernel whose uniprocessor counters were marked shared.
        addr = COUNTER_BASE
        for name in INFREQ_COUNTERS:
            self.counter_addr[name] = addr
            self.symbols.add(name, addr, 4, DataClass.INFREQ_COMM)
            addr += 4

    def _build_big_structures(self) -> None:
        self.symbols.add("runqueue", SCHED_BASE, 512, DataClass.SCHED)
        self.symbols.add("hrtimer", TIMER_BASE, 256, DataClass.TIMER)
        self.symbols.add("syscall_table", SYSCALL_TABLE, 1024,
                         DataClass.SYSCALL_TABLE)
        self.symbols.add("proc_table", PROC_TABLE,
                         NUM_PROCS * PROC_ENTRY_BYTES, DataClass.PROC_TABLE)
        self.symbols.add("page_tables", PAGE_TABLE,
                         NUM_PROCS * NUM_PTES_PER_PROC * PTE_BYTES,
                         DataClass.PAGE_TABLE)
        self.symbols.add("freelist", FREELIST_BASE,
                         NUM_FREELIST_NODES * FREELIST_NODE_BYTES,
                         DataClass.FREELIST)
        self.symbols.add("kmem_pools", KMEM_BASE, KMEM_BYTES,
                         DataClass.OTHER_KERNEL)
        self.symbols.add("mbuf_pool", MBUF_POOL, NUM_MBUFS * MBUF_BYTES,
                         DataClass.BUFFER)
        self.symbols.add("nic_ring", NIC_RING, NUM_NIC_SLOTS * NIC_SLOT_BYTES,
                         DataClass.BUFFER)
        self.symbols.add("buffer_cache", BUFFER_CACHE,
                         NUM_BUFFERS * BUFFER_BYTES, DataClass.BUFFER)
        self.symbols.add("frame_pool", FRAME_POOL, NUM_FRAMES * PAGE,
                         DataClass.PAGE_FRAME)

    # -- accessors --------------------------------------------------------
    def barrier(self, index: int) -> int:
        """Address of gang barrier *index*."""
        return self.barrier_addrs[index % NUM_BARRIERS]

    def lock(self, name: str) -> int:
        return self.lock_addr[name]

    def counter(self, name: str) -> int:
        return self.counter_addr[name]

    def freq_shared(self, name: str) -> int:
        return self.freq_shared_addr[name]

    def proc_entry(self, pid: int) -> int:
        return PROC_TABLE + (pid % NUM_PROCS) * PROC_ENTRY_BYTES

    def pte(self, pid: int, index: int) -> int:
        base = PAGE_TABLE + (pid % NUM_PROCS) * NUM_PTES_PER_PROC * PTE_BYTES
        return base + (index % NUM_PTES_PER_PROC) * PTE_BYTES

    def freelist_node(self, index: int) -> int:
        return FREELIST_BASE + (index % NUM_FREELIST_NODES) * FREELIST_NODE_BYTES

    def buffer(self, index: int) -> int:
        return BUFFER_CACHE + (index % NUM_BUFFERS) * BUFFER_BYTES

    def mbuf(self, index: int) -> int:
        return MBUF_POOL + (index % NUM_MBUFS) * MBUF_BYTES

    def nic_slot(self, index: int) -> int:
        return NIC_RING + (index % NUM_NIC_SLOTS) * NIC_SLOT_BYTES

    def frame(self, index: int) -> int:
        return FRAME_POOL + (index % NUM_FRAMES) * PAGE

    def user_segment(self, pid: int) -> int:
        # Stagger segments so different processes' arrays do not all map
        # to the same primary-cache sets (segment size is a multiple of
        # the cache size).
        return (USER_BASE + (pid % NUM_PROCS) * USER_SEGMENT_BYTES
                + (pid % 8) * 0x12C0)

    def update_core_pages(self) -> List[int]:
        """Pages to run the Firefly update protocol on (section 5.2).

        The barriers, locks and frequently-shared core are all laid out in
        SYNC_PAGE, so one page suffices — as the paper notes for
        statically allocated variables.
        """
        return [SYNC_PAGE]

    def hot_locks(self, count: int = 10) -> List[int]:
        """Addresses of the *count* most-active kernel locks."""
        return [self.lock_addr[name] for name in KERNEL_LOCKS[:count]]
