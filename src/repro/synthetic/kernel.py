"""The synthetic kernel: mutable state plus low-level emission helpers.

A :class:`Kernel` owns the address-space layout, the trace builder, the
deterministic random streams, and the dynamic state a real kernel would
keep: which process runs on each CPU, which page frames are allocated,
which buffers hold which files.  The OS *services* built on these helpers
live in :mod:`repro.synthetic.services`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.rng import RngStream
from repro.common.types import DataClass, Mode
from repro.synthetic import layout as lay
from repro.synthetic.layout import KERNEL_PC, KernelLayout, PAGE
from repro.trace.record import TraceRecord
from repro.common.types import Op
from repro.trace.stream import TraceBuilder


class Process:
    """A synthetic process: identity plus its resident pages."""

    __slots__ = ("pid", "parent", "frames", "next_pte", "user_pos")

    def __init__(self, pid: int, parent: Optional[int] = None) -> None:
        self.pid = pid
        self.parent = parent
        #: Physical frames backing this process, in fault order.
        self.frames: List[int] = []
        self.next_pte = 0
        #: Progress cursor into the process's user data (for apps).
        self.user_pos = 0


class Kernel:
    """Synthetic-kernel state shared by all service emitters."""

    def __init__(self, num_cpus: int, rng: RngStream,
                 metadata: Optional[Dict[str, object]] = None,
                 frame_policy: str = "default") -> None:
        if frame_policy not in ("default", "colored"):
            raise ValueError(f"unknown frame policy {frame_policy!r}")
        #: Physical frame allocation policy: "default" (LIFO free list +
        #: jittered round-robin) or "colored" (cache-color aware placement
        #: in the spirit of Kessler & Hill — the section 7 extension).
        self.frame_policy = frame_policy
        self.layout = KernelLayout()
        self.builder = TraceBuilder(num_cpus, symbols=self.layout.symbols,
                                    metadata=metadata)
        self.rng = rng
        self.num_cpus = num_cpus
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_frame = 0
        #: Probability that an allocation reuses a recently freed frame.
        self.frame_reuse_prob = 0.8
        #: LIFO free-frame stack: recently freed frames are reallocated
        #: first, as a real page allocator's free list behaves.  This is
        #: what makes destination blocks warm in the caches (Table 3).
        self._free_frames: List[int] = []
        #: Per-color allocation cursors for the "colored" policy.
        self._color_cursor: Dict[int, int] = {}
        #: Episode counters per participant count (distinct barrier words
        #: serve full-gang and partial-gang episodes so each word always
        #: sees a consistent participant count).
        self._barrier_round: Dict[int, int] = {}
        #: Current process on each CPU (None = idle).
        self.running: List[Optional[int]] = [None] * num_cpus
        #: Per-CPU current file buffer (sticky across sequential I/O).
        self.file_buffer: List[int] = [cpu % 4 for cpu in range(num_cpus)]
        #: Per-CPU hot object sets in the kmem pools (see :meth:`kmem_walk`).
        self._kmem_hot: List[List[int]] = [[] for _ in range(num_cpus)]
        #: Globally hot kmem objects (root vnodes, tty structs): shared by
        #: all CPUs, so writes to them invalidate remote copies — the
        #: "Other" coherence misses of Table 5.
        self._kmem_global: List[int] = [obj * 8192 for obj in range(12)]

    # ------------------------------------------------------------------
    # Process and frame management
    # ------------------------------------------------------------------
    def spawn(self, parent: Optional[int] = None) -> Process:
        """Create a process (assigning the next pid)."""
        proc = Process(self._next_pid, parent)
        self.processes[proc.pid] = proc
        self._next_pid += 1
        return proc

    #: Cache colors for the "colored" policy: one per L2-sized stripe of
    #: page-aligned frames (256 KB / 4 KB pages = 64 colors).
    NUM_COLORS = 64

    def alloc_frame(self, color: Optional[int] = None) -> int:
        """Allocate a physical page frame.

        Under the default policy, recently freed frames are reused first
        (LIFO free list); otherwise a fresh frame is taken round-robin
        with jitter.  The jitter spreads frames across cache sets the way
        a real allocator's free list would, producing the *random
        conflicts* of section 6 rather than pathological same-set
        collisions.

        Under the "colored" policy (section 7's page-placement
        extension), a *color* — the frame's position within an L2-sized
        stripe — may be requested; the allocator then prefers a free
        frame of that color and otherwise carves a fresh one, so that a
        process's pages spread evenly over the cache and copy sources
        and destinations never collide.
        """
        if self.frame_policy == "colored" and color is not None:
            color %= self.NUM_COLORS
            for i in range(len(self._free_frames) - 1, -1, -1):
                frame = self._free_frames[i]
                if (frame // lay.PAGE) % self.NUM_COLORS == color:
                    del self._free_frames[i]
                    return frame
            base = self._color_cursor.get(color, 0)
            self._color_cursor[color] = base + 1
            index = (color + base * self.NUM_COLORS) % lay.NUM_FRAMES
            return self.layout.frame(index)
        if self._free_frames and self.rng.chance(self.frame_reuse_prob):
            return self._free_frames.pop()
        self._next_frame = (self._next_frame
                            + 1 + self.rng.randint(0, 5)) % lay.NUM_FRAMES
        return self.layout.frame(self._next_frame)

    def frame_color(self, addr: int) -> int:
        """Cache color of the page containing *addr*."""
        return (addr // lay.PAGE) % self.NUM_COLORS

    def free_frames(self, frames: List[int]) -> None:
        """Return frames to the LIFO free list."""
        self._free_frames.extend(frames)
        if len(self._free_frames) > 64:
            del self._free_frames[:-64]

    def next_barrier(self, participants: Optional[int] = None) -> int:
        """Barrier word for the next gang-scheduling episode.

        Full-gang episodes rotate over the first eight barrier words;
        partial gangs (when a serial job occupies a CPU) use the rest.
        """
        parties = participants if participants is not None else self.num_cpus
        count = self._barrier_round.get(parties, 0)
        self._barrier_round[parties] = count + 1
        if parties == self.num_cpus:
            index = count % 8
        else:
            index = 8 + count % (lay.NUM_BARRIERS - 8)
        return self.layout.barrier(index)

    # ------------------------------------------------------------------
    # Low-level emission helpers (all OS mode unless noted)
    # ------------------------------------------------------------------
    def read(self, cpu: int, addr: int, dclass: DataClass, block: str,
             icount: int = 2, mode: Mode = Mode.OS) -> None:
        self.builder.emit(cpu, TraceRecord(Op.READ, addr, mode, dclass,
                                           KERNEL_PC[block], icount))

    def write(self, cpu: int, addr: int, dclass: DataClass, block: str,
              icount: int = 2, mode: Mode = Mode.OS) -> None:
        self.builder.emit(cpu, TraceRecord(Op.WRITE, addr, mode, dclass,
                                           KERNEL_PC[block], icount))

    def bump_counter(self, cpu: int, name: str, block: str = "counter_code") -> None:
        """Increment an infrequently-communicated event counter."""
        addr = self.layout.counter(name)
        self.read(cpu, addr, DataClass.INFREQ_COMM, block, icount=1)
        self.write(cpu, addr, DataClass.INFREQ_COMM, block, icount=1)

    def read_all_counters(self, cpu: int, block: str = "counter_code") -> None:
        """The pager/accounting path: read every event counter."""
        for name in lay.INFREQ_COUNTERS:
            self.read(cpu, self.layout.counter(name), DataClass.INFREQ_COMM,
                      block, icount=1)

    def lock(self, cpu: int, name: str) -> None:
        from repro.trace.record import lock_acquire
        self.builder.emit(cpu, lock_acquire(self.layout.lock(name),
                                            pc=KERNEL_PC["lock_code"]))

    def unlock(self, cpu: int, name: str) -> None:
        from repro.trace.record import lock_release
        self.builder.emit(cpu, lock_release(self.layout.lock(name),
                                            pc=KERNEL_PC["lock_code"]))

    def touch_freq_shared(self, cpu: int, name: str, write: bool,
                          block: str) -> None:
        addr = self.layout.freq_shared(name)
        if write:
            self.write(cpu, addr, DataClass.FREQ_SHARED, block, icount=1)
        else:
            self.read(cpu, addr, DataClass.FREQ_SHARED, block, icount=1)

    def pte_loop(self, cpu: int, pid: int, start: int, count: int,
                 block: str, writes: bool) -> None:
        """Loop over *count* page-table entries (a section-6 hot spot)."""
        for i in range(count):
            addr = self.layout.pte(pid, start + i)
            self.read(cpu, addr, DataClass.PAGE_TABLE, block, icount=3)
            if writes:
                self.write(cpu, addr, DataClass.PAGE_TABLE, block, icount=1)

    def freelist_walk(self, cpu: int, steps: int) -> None:
        """Walk the free-page list to find a frame (hot-spot loop).

        Emits only the list traversal; the caller performs the actual
        allocation (possibly color-aware) via :meth:`alloc_frame`.
        """
        start = self.rng.randint(0, lay.NUM_FREELIST_NODES - 1)
        for i in range(steps):
            self.read(cpu, self.layout.freelist_node(start + i * 7),
                      DataClass.FREELIST, "freelist_walk", icount=3)
        self.touch_freq_shared(cpu, "freelist_size", write=True,
                               block="freelist_walk")

    def readahead_touch(self, cpu: int, base: int, size: int,
                        fraction: float = 0.6,
                        dclass: DataClass = DataClass.BUFFER) -> None:
        """Touch part of a buffer before it is copied.

        Models the buffer-cache work (readahead completion, checksums,
        uiomove bookkeeping) that leaves much of a source block already
        cached when the copy loop starts — Table 3 row 1.
        """
        line = self.layout  # noqa: F841 - kept for symmetry/debugging
        step = 16
        span = int(size * fraction) // step * step
        start = base + (size - span) // 2 // step * step
        for off in range(0, span, step):
            self.read(cpu, start + off, dclass, "io_entry", icount=1)

    def block_copy(self, cpu: int, src: int, dst: int, size: int,
                   src_dclass: DataClass = DataClass.BUFFER,
                   dst_dclass: DataClass = DataClass.PAGE_FRAME,
                   block: str = "bcopy") -> None:
        self.builder.emit_block_copy(cpu, src=src, dst=dst, size=size,
                                     pc=KERNEL_PC[block],
                                     src_dclass=src_dclass,
                                     dst_dclass=dst_dclass)

    def block_zero(self, cpu: int, dst: int, size: int,
                   block: str = "bzero") -> None:
        self.builder.emit_block_zero(cpu, dst=dst, size=size,
                                     pc=KERNEL_PC[block])

    def barrier_all(self, addr: int, participants: int,
                    cpus: Optional[List[int]] = None) -> None:
        """Emit one barrier arrival per participating CPU."""
        from repro.trace.record import barrier
        cpus = cpus if cpus is not None else list(range(self.num_cpus))
        for cpu in cpus:
            self.builder.emit(cpu, barrier(addr, participants,
                                           pc=KERNEL_PC["barrier_code"]))

    def kmem_walk(self, cpu: int, refs: int, block: str = "namei_code",
                  jump_prob: float = 0.1, write_prob: float = 0.14) -> None:
        """Background kernel data traffic: vnodes, name cache, cblocks.

        Visits kmem objects the way path-name translation and descriptor
        lookups do: a small per-CPU hot set of objects is revisited
        constantly (hits), while new objects are pulled in occasionally —
        the scattered references behind the *random conflict* misses of
        section 6.  Other CPUs write the same pools, so a slice of these
        misses is coherence ("Other" in Table 5).
        """
        hot = self._kmem_hot[cpu]
        emitted = 0
        while emitted < refs:
            if self.rng.chance(0.25):
                obj = self.rng.choice(self._kmem_global)
            elif not hot or self.rng.chance(jump_prob):
                obj = self.rng.randint(0, (lay.KMEM_BYTES - 64) // 32) * 32
                hot.append(obj)
                if len(hot) > 24:
                    hot.pop(0)
            else:
                obj = self.rng.choice(hot)
            # Read several fields of the object (a couple of cache
            # lines).  The access path depends on the object's pool, so
            # the misses spread over many basic blocks — only the hottest
            # few become section-6 hot spots.
            obj_block = f"kmisc_{(obj // 32) % 40:02d}"
            for field in range(min(7, refs - emitted)):
                addr = lay.KMEM_BASE + obj + (field % 8) * 4
                self.read(cpu, addr, DataClass.OTHER_KERNEL, obj_block,
                          icount=3)
                emitted += 1
            if self.rng.chance(write_prob):
                self.write(cpu, lay.KMEM_BASE + obj, DataClass.OTHER_KERNEL,
                           obj_block, icount=1)

    def idle(self, cpu: int, spins: int) -> None:
        """Idle loop: cheap private reads in IDLE mode."""
        addr = lay.SCHED_BASE + 256 + cpu * 16
        for _ in range(spins):
            self.builder.emit(cpu, TraceRecord(
                Op.READ, addr, Mode.IDLE, DataClass.SCHED,
                KERNEL_PC["idle_loop"], 24))

    def build(self, validate: bool = True):
        """Finish trace construction."""
        return self.builder.build(validate=validate)
