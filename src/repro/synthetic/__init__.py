"""Synthetic multiprocessor-OS workload generation (trace substitution)."""

from repro.synthetic.kernel import Kernel, Process
from repro.synthetic.layout import (
    HOTSPOT_BLOCKS,
    KERNEL_PC,
    KernelLayout,
    PAGE,
)
from repro.synthetic.workloads import (
    WORKLOAD_ORDER,
    WORKLOADS,
    generate,
    generate_arc2d_fsck,
    generate_shell,
    generate_trfd4,
    generate_trfd_make,
)

__all__ = [
    "HOTSPOT_BLOCKS",
    "KERNEL_PC",
    "Kernel",
    "KernelLayout",
    "PAGE",
    "Process",
    "WORKLOADS",
    "WORKLOAD_ORDER",
    "generate",
    "generate_arc2d_fsck",
    "generate_shell",
    "generate_trfd4",
    "generate_trfd_make",
]
