"""Operating-system services of the synthetic kernel.

Each function emits the reference stream of one kernel service on one CPU,
mirroring the activities the paper names: page-fault handling (with page
zeroing or page-in copies), process creation (fork's page copies — the
source of the copy chains behind *inside reuses*), exec, context switching,
scheduling, timer/accounting interrupts, cross-processor interrupts, and
the file-I/O paths that move data through the buffer cache.

The basic-block pcs are chosen so the 12 hot spots of section 6 (five
loops, seven sequences) are exactly the blocks the paper lists.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.types import DataClass, Mode
from repro.synthetic import layout as lay
from repro.synthetic.kernel import Kernel, Process
from repro.synthetic.layout import PAGE


def page_fault(k: Kernel, cpu: int, proc: Process, *,
               copy_from: int = 0) -> int:
    """Handle a page fault for *proc*; returns the frame mapped in.

    With ``copy_from`` non-zero the new page is filled by a block copy from
    that address (page-in / copy-on-write); otherwise it is zero-filled.
    """
    # Trap entry and fault decoding.
    k.read(cpu, k.layout.proc_entry(proc.pid), DataClass.PROC_TABLE,
           "fault_entry", icount=6)
    # Find a free frame: freelist walk (hot-spot loop) under the
    # physical-memory allocation lock.  The colored allocator (section
    # 7's page-placement extension) spreads the process's pages over the
    # cache and keeps a copy's destination off its source's color.
    k.lock(cpu, "memalloc_lock")
    k.freelist_walk(cpu, steps=k.rng.randint(2, 8))
    if k.frame_policy == "colored":
        color = (proc.pid * 7 + proc.next_pte) % k.NUM_COLORS
        if copy_from and k.frame_color(copy_from) % 8 == color % 8:
            color = (color + 1) % k.NUM_COLORS
        frame = k.alloc_frame(color=color)
    else:
        frame = k.alloc_frame()
    k.unlock(cpu, "memalloc_lock")
    # Map it: PTE initialization loop (hot-spot loop).
    k.pte_loop(cpu, proc.pid, proc.next_pte, count=k.rng.randint(2, 6),
               block="pte_init_loop", writes=True)
    proc.next_pte += 1
    # Fill the page.
    if copy_from:
        if k.rng.chance(0.6):
            k.readahead_touch(cpu, copy_from, PAGE,
                              fraction=k.rng.choice([0.4, 0.6, 0.8]))
        k.block_copy(cpu, src=copy_from, dst=frame, size=PAGE,
                     src_dclass=DataClass.PAGE_FRAME)
    else:
        k.block_zero(cpu, dst=frame, size=PAGE)
    proc.frames.append(frame)
    k.bump_counter(cpu, "v_pgfault", block="fault_exit")
    k.read(cpu, k.layout.proc_entry(proc.pid) + 16, DataClass.PROC_TABLE,
           "fault_exit", icount=4)
    return frame


def fork(k: Kernel, cpu: int, parent: Process, *, copy_pages: int = 2,
         page_size: bool = True) -> Process:
    """Create a child of *parent*, copying page tables and data pages.

    The data-page copies read the parent's most recently written frames —
    which are often the *destinations* of an earlier copy, reproducing the
    fork-fork copy chains of section 4.1.3.
    """
    child = k.spawn(parent.pid)
    k.lock(cpu, "proc_lock")
    k.write(cpu, k.layout.proc_entry(child.pid), DataClass.PROC_TABLE,
            "fork_entry", icount=8)
    k.touch_freq_shared(cpu, "resource_ptrs", write=True, block="fork_entry")
    k.unlock(cpu, "proc_lock")
    # Copy the parent's page-table entries (hot-spot loop).
    k.pte_loop(cpu, parent.pid, 0, count=k.rng.randint(4, 10),
               block="pte_copy_loop", writes=False)
    k.pte_loop(cpu, child.pid, 0, count=k.rng.randint(4, 10),
               block="pte_copy_loop", writes=True)
    # Copy data pages parent -> child.
    size = PAGE if page_size else k.rng.choice([128, 256, 512, 1024, 2048])
    for i in range(copy_pages):
        if parent.frames:
            src = parent.frames[-1 - (i % len(parent.frames))]
        else:
            src = k.alloc_frame()
        dst = k.alloc_frame()
        k.block_copy(cpu, src=src, dst=dst, size=size,
                     src_dclass=DataClass.PAGE_FRAME)
        child.frames.append(dst)
    k.bump_counter(cpu, "v_fork")
    return child


def exec_image(k: Kernel, cpu: int, proc: Process, *, arg_bytes: int = 0,
               zero_pages: int = 1) -> None:
    """Overlay *proc* with a new image: zero BSS pages, copy arguments."""
    k.write(cpu, k.layout.proc_entry(proc.pid) + 32, DataClass.PROC_TABLE,
            "exec_entry", icount=10)
    if arg_bytes:
        # Argument strings: a small block copy from the caller's stack
        # page — usually the destination of a recent fork copy.
        src = proc.frames[-1] if proc.frames else k.layout.buffer(0)
        dst = k.alloc_frame()
        k.block_copy(cpu, src=src, dst=dst, size=arg_bytes,
                     src_dclass=DataClass.BUFFER)
        proc.frames.append(dst)
    for _ in range(zero_pages):
        frame = k.alloc_frame()
        k.block_zero(cpu, dst=frame, size=PAGE)
        proc.frames.append(frame)
    k.pte_loop(cpu, proc.pid, 0, count=k.rng.randint(3, 8),
               block="pte_init_loop", writes=True)
    k.bump_counter(cpu, "v_exec")


def file_io(k: Kernel, cpu: int, proc: Process, size: int, *,
            is_write: bool = False, buf: int = -1) -> None:
    """read()/write() through the buffer cache: header work + block copy.

    ``buf`` pins the buffer (sequential access to one file); otherwise a
    random buffer is used (cold file).
    """
    k.read(cpu, k.layout.freq_shared("resource_ptrs") + 8 * (proc.pid % 8),
           DataClass.FREQ_SHARED, "io_entry", icount=5)
    k.lock(cpu, "buffer_lock")
    if buf < 0:
        buf = k.layout.buffer(k.rng.randint(0, lay.NUM_BUFFERS - 1))
    k.read(cpu, buf, DataClass.BUFFER, "io_entry", icount=4)
    k.unlock(cpu, "buffer_lock")
    if not proc.frames:
        proc.frames.append(k.alloc_frame())
    user_page = proc.frames[proc.pid % len(proc.frames)]
    if is_write:
        k.block_copy(cpu, src=user_page, dst=buf, size=size,
                     src_dclass=DataClass.PAGE_FRAME,
                     dst_dclass=DataClass.BUFFER, block="io_copyloop")
        k.bump_counter(cpu, "v_write", block="io_entry")
    else:
        if k.rng.chance(0.5):
            k.readahead_touch(cpu, buf, size,
                              fraction=k.rng.choice([0.4, 0.6, 0.8]))
        k.block_copy(cpu, src=buf, dst=user_page, size=size,
                     src_dclass=DataClass.BUFFER,
                     dst_dclass=DataClass.PAGE_FRAME, block="io_copyloop")
        k.bump_counter(cpu, "v_read", block="io_entry")


def syscall(k: Kernel, cpu: int, proc: Process, nr: int) -> None:
    """System-call entry: trap sequence + dispatch-table read (hot spot)."""
    k.read(cpu, lay.SYSCALL_TABLE + (nr % 256) * 4, DataClass.SYSCALL_TABLE,
           "trap_syscall_seq", icount=8)
    k.read(cpu, k.layout.proc_entry(proc.pid) + 48, DataClass.PROC_TABLE,
           "trap_syscall_seq", icount=6)
    k.bump_counter(cpu, "v_syscall", block="trap_syscall_seq")


def context_switch(k: Kernel, cpu: int, old: Process, new: Process) -> None:
    """Switch *cpu* from *old* to *new* (hot-spot sequences)."""
    k.lock(cpu, "sched_lock")
    k.read(cpu, lay.SCHED_BASE, DataClass.SCHED, "sched_seq", icount=6)
    k.touch_freq_shared(cpu, "runq_length", write=True, block="sched_seq")
    k.read(cpu, k.layout.proc_entry(new.pid), DataClass.PROC_TABLE,
           "sched_seq", icount=5)
    k.unlock(cpu, "sched_lock")
    # Save old context, restore new (resume sequence).
    k.write(cpu, k.layout.proc_entry(old.pid) + 64, DataClass.PROC_TABLE,
            "ctxsw_seq", icount=10)
    k.read(cpu, k.layout.proc_entry(new.pid) + 64, DataClass.PROC_TABLE,
           "resume_seq", icount=10)
    k.write(cpu, lay.SCHED_BASE + 32 + cpu * 8, DataClass.SCHED,
            "resume_seq", icount=4)
    k.bump_counter(cpu, "v_swtch", block="ctxsw_seq")
    k.running[cpu] = new.pid


def timer_interrupt(k: Kernel, cpu: int) -> None:
    """Clock tick: timer sequence + accounting (hot-spot sequence)."""
    k.read(cpu, lay.TIMER_BASE, DataClass.TIMER, "timer_seq", icount=6)
    k.write(cpu, lay.TIMER_BASE + 8, DataClass.TIMER, "timer_seq", icount=3)
    k.lock(cpu, "accounting_lock")
    k.write(cpu, lay.TIMER_BASE + 64 + cpu * 16, DataClass.TIMER,
            "timer_seq", icount=4)
    k.unlock(cpu, "accounting_lock")


def cross_interrupt(k: Kernel, sender: int, receiver: int) -> None:
    """Cross-processor interrupt: sender posts, receiver dispatches."""
    k.touch_freq_shared(sender, "cpievents", write=True, block="intr_seq")
    k.touch_freq_shared(receiver, "cpievents", False, "intr_seq")
    k.read(receiver, lay.SCHED_BASE + 16, DataClass.SCHED, "intr_seq",
           icount=8)
    k.bump_counter(receiver, "v_intr", block="intr_seq")
    k.bump_counter(receiver, "v_xcall", block="intr_seq")


def pager_scan(k: Kernel, cpu: int) -> None:
    """The pager: reads every event counter, scans PTEs (hot-spot loop),
    and reclaims a few frames onto the free list (so future page faults
    reuse warm frames — the owned destination lines of Table 3)."""
    k.read_all_counters(cpu, block="pte_scan_loop")
    procs = list(k.processes.values())
    for _ in range(min(1, len(procs))):
        victim = k.rng.choice(procs)
        k.pte_loop(cpu, victim.pid, k.rng.randint(0, 64),
                   count=k.rng.randint(6, 16), block="pte_scan_loop",
                   writes=False)
        if len(victim.frames) > 1:
            take = k.rng.randint(1, min(3, len(victim.frames) - 1))
            reclaimed = victim.frames[-take:]
            del victim.frames[-take:]
            for frame in reclaimed:
                if k.rng.chance(0.45):
                    # Dirty page: write it out through the buffer cache.
                    # The frame is usually the *destination* of an earlier
                    # fault copy — the copy chains behind inside reuses.
                    buf = k.layout.buffer(k.rng.randint(0, lay.NUM_BUFFERS - 1))
                    k.block_copy(cpu, src=frame, dst=buf, size=PAGE,
                                 src_dclass=DataClass.PAGE_FRAME,
                                 dst_dclass=DataClass.BUFFER,
                                 block="pageout_code")
            k.free_frames(reclaimed)
    k.touch_freq_shared(cpu, "pageout_target", write=True,
                        block="pte_scan_loop")


def process_exit(k: Kernel, cpu: int, proc: Process) -> None:
    """Teardown: unmap PTEs (hot-spot loop), free frames, reap entry."""
    k.pte_loop(cpu, proc.pid, 0, count=min(8, 2 + len(proc.frames)),
               block="pte_unmap_loop", writes=True)
    k.lock(cpu, "memalloc_lock")
    for frame in proc.frames[:4]:
        k.write(cpu, k.layout.freelist_node(frame // PAGE),
                DataClass.FREELIST, "exit_seq", icount=2)
    k.touch_freq_shared(cpu, "freelist_size", write=True, block="exit_seq")
    k.unlock(cpu, "memalloc_lock")
    k.lock(cpu, "proc_lock")
    k.write(cpu, k.layout.proc_entry(proc.pid), DataClass.PROC_TABLE,
            "exit_seq", icount=6)
    k.unlock(cpu, "proc_lock")
    k.free_frames(proc.frames)
    k.processes.pop(proc.pid, None)


def network_receive(k: Kernel, cpu: int, proc: Process, size: int) -> None:
    """Receive a network packet (the rsh/network traffic of Shell).

    The driver copies the packet from the interface ring into an mbuf,
    the protocol stack walks the headers, and ``soreceive`` copies the
    payload into the user's buffer — two chained block copies (the mbuf
    written by the first copy is the source of the second), exactly the
    pattern behind section 4.1.3's inside reuses.
    """
    slot = k.layout.nic_slot(k.rng.randint(0, lay.NUM_NIC_SLOTS - 1))
    mbuf = k.layout.mbuf(k.rng.randint(0, lay.NUM_MBUFS - 1))
    size = min(size, lay.MBUF_BYTES)
    k.lock(cpu, "network_lock")
    k.read(cpu, slot, DataClass.BUFFER, "intr_seq", icount=6)
    k.block_copy(cpu, src=slot, dst=mbuf, size=size,
                 src_dclass=DataClass.BUFFER, dst_dclass=DataClass.BUFFER,
                 block="pipe_code")
    k.unlock(cpu, "network_lock")
    # Protocol processing: header walks over the fresh mbuf.
    for off in range(0, min(64, size), 8):
        k.read(cpu, mbuf + off, DataClass.BUFFER, "select_code", icount=4)
    if not proc.frames:
        proc.frames.append(k.alloc_frame())
    user_page = proc.frames[-1]
    k.block_copy(cpu, src=mbuf, dst=user_page, size=size,
                 src_dclass=DataClass.BUFFER,
                 dst_dclass=DataClass.PAGE_FRAME, block="io_copyloop")
    k.bump_counter(cpu, "v_intr", block="intr_seq")
    k.bump_counter(cpu, "v_io_done", block="intr_seq")


def network_send(k: Kernel, cpu: int, proc: Process, size: int) -> None:
    """Send a packet: user buffer -> mbuf -> interface ring."""
    mbuf = k.layout.mbuf(k.rng.randint(0, lay.NUM_MBUFS - 1))
    slot = k.layout.nic_slot(k.rng.randint(0, lay.NUM_NIC_SLOTS - 1))
    size = min(size, lay.MBUF_BYTES)
    if not proc.frames:
        proc.frames.append(k.alloc_frame())
    user_page = proc.frames[-1]
    k.block_copy(cpu, src=user_page, dst=mbuf, size=size,
                 src_dclass=DataClass.PAGE_FRAME,
                 dst_dclass=DataClass.BUFFER, block="io_copyloop")
    for off in range(0, min(48, size), 8):
        k.write(cpu, mbuf + off, DataClass.BUFFER, "select_code", icount=3)
    k.lock(cpu, "network_lock")
    k.block_copy(cpu, src=mbuf, dst=slot, size=size,
                 src_dclass=DataClass.BUFFER, dst_dclass=DataClass.BUFFER,
                 block="pipe_code")
    k.unlock(cpu, "network_lock")
    k.bump_counter(cpu, "v_write", block="intr_seq")


def pipe_transfer(k: Kernel, cpu: int, writer: Process, reader: Process,
                  size: int) -> None:
    """Move *size* bytes through a pipe: writer page -> pipe buffer ->
    reader page.  The pipe buffer written by the first copy is the source
    of the second — another inside-reuse chain."""
    pipe_buf = k.layout.mbuf(k.rng.randint(0, lay.NUM_MBUFS - 1))
    size = min(size, lay.MBUF_BYTES)
    for proc in (writer, reader):
        if not proc.frames:
            proc.frames.append(k.alloc_frame())
    k.lock(cpu, "file_lock")
    k.block_copy(cpu, src=writer.frames[-1], dst=pipe_buf, size=size,
                 src_dclass=DataClass.PAGE_FRAME,
                 dst_dclass=DataClass.BUFFER, block="pipe_code")
    k.unlock(cpu, "file_lock")
    k.block_copy(cpu, src=pipe_buf, dst=reader.frames[-1], size=size,
                 src_dclass=DataClass.BUFFER,
                 dst_dclass=DataClass.PAGE_FRAME, block="pipe_code")
    k.bump_counter(cpu, "v_read", block="pipe_code")


def signal_delivery(k: Kernel, cpu: int, proc: Process) -> None:
    """Deliver a signal: proc-table bookkeeping plus a small sigcontext
    copy onto the user stack (one of the kernel's many sub-page copies)."""
    k.lock(cpu, "proc_lock")
    k.read(cpu, k.layout.proc_entry(proc.pid) + 96, DataClass.PROC_TABLE,
           "trap_syscall_seq", icount=6)
    k.write(cpu, k.layout.proc_entry(proc.pid) + 96, DataClass.PROC_TABLE,
            "trap_syscall_seq", icount=3)
    k.unlock(cpu, "proc_lock")
    if not proc.frames:
        proc.frames.append(k.alloc_frame())
    stack_page = proc.frames[0]
    src = k.layout.proc_entry(proc.pid)
    k.block_copy(cpu, src=src, dst=stack_page + 3840,
                 size=k.rng.choice([128, 192, 256]),
                 src_dclass=DataClass.PROC_TABLE,
                 dst_dclass=DataClass.PAGE_FRAME, block="trap_syscall_seq")
    k.bump_counter(cpu, "v_trap", block="trap_syscall_seq")


# ----------------------------------------------------------------------
# Service attribution (observability: repro.obs joins miss sites to the
# kernel service that issued them through this map).
# ----------------------------------------------------------------------

#: Kernel basic block -> owning service.  Blocks shared by several
#: services are attributed to the one that dominates their miss traffic
#: in the paper's workloads (e.g. ``pte_init_loop`` runs for both page
#: faults and exec, but page-fault zero-fills dominate).
SERVICE_OF_BLOCK: Dict[str, str] = {
    "fault_entry": "page_fault", "fault_exit": "page_fault",
    "pte_init_loop": "page_fault",
    "pte_copy_loop": "process_create", "fork_entry": "process_create",
    "exec_entry": "exec",
    "io_entry": "file_io", "io_copyloop": "file_io",
    "bcopy": "block_ops", "bzero": "block_ops",
    "trap_syscall_seq": "syscall", "syscall_entry": "syscall",
    "ctxsw_seq": "scheduling", "resume_seq": "scheduling",
    "sched_seq": "scheduling",
    "timer_seq": "timer",
    "intr_seq": "interrupt",
    "pte_scan_loop": "paging", "pageout_code": "paging",
    "freelist_walk": "paging",
    "pte_unmap_loop": "process_exit", "exit_seq": "process_exit",
    "lock_code": "synchronization", "barrier_code": "synchronization",
    "counter_code": "synchronization",
    "idle_loop": "idle",
    "pipe_code": "pipe",
    "namei_code": "filesystem", "select_code": "filesystem",
}


def service_of_block(block: str) -> Optional[str]:
    """Owning service of kernel basic block *block* (None if unmapped)."""
    service = SERVICE_OF_BLOCK.get(block)
    if service is not None:
        return service
    if block.startswith("kmisc_"):
        return "kernel_misc"
    return None


def service_of_pc(pc: int) -> Optional[str]:
    """Owning service of the basic block containing *pc*.

    Returns ``"user"`` for pcs in the user code region and ``None`` for
    pcs outside the synthetic kernel's code segment entirely.
    """
    if pc >= lay.USER_CODE_BASE:
        return "user"
    if pc < lay.OS_CODE_BASE:
        return None
    idx = (pc - lay.OS_CODE_BASE) // lay.BLOCK_CODE_BYTES
    if idx >= len(lay.KERNEL_BLOCKS):
        return None
    return service_of_block(lay.KERNEL_BLOCKS[idx])
