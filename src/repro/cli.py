"""Command-line interface.

Subcommands::

    repro generate  <profile> -o trace.npz [--scale S] [--seed N] [--text]
                    [--profile-spec FILE] [--frame-policy P]
    repro inspect   <trace.npz|.txt>
    repro simulate  <profile|trace file> [--config Base] [--scale S]
                    [--profile-spec FILE] [--frame-policy P]
                    [--check] [--trace-out t.json] [--trace-limit N]
                    [--profile] [--timeline] [--no-batch]
                    [--assoc A] [--bus-width B]
    repro sweep     [--samples N] [--families F1,F2] [--configs C1,C2]
                    [--scale S] [--seed N] [--cpus 2,4] [--workers N]
                    [--assoc A] [--bus-width B]
    repro report    [--scale S] [--only table1,figure3] [--ascii] [-o FILE]
                    [--workers N] [--cache-dir DIR] [--no-cache]
                    [--ledger PATH] [--max-retries N] [--job-timeout S]
    repro ablation  <study> [--workload W] [--scale S] [--cache-dir DIR]
    repro calibrate [--scale S] [--only table2]
    repro serve     [--host H] [--port P] [--cache-dir DIR] [--workers N]
    repro submit    [--url U] [--workloads W1,W2] [--configs C1,C2]
                    [--scales S1,S2] [--generate N] [--wait]
    repro status    [JOB] [--url U] [--all] [--results] [--full]
                    [--events N]
    repro cancel    <JOB> [--url U]

``generate``/``simulate``/``sweep`` accept any workload-profile name: the
four paper workloads, the built-in families (``server``, ``bursty_mp``,
``gang_diurnal``), self-describing ``gen:...`` sweep names, or a custom
spec file via ``--profile-spec`` (see docs/workloads.md).

Run as ``python -m repro.cli`` (or the module functions directly).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.common.errors import ConfigError, ProfileError
from repro.common.params import machine_for
from repro.common.types import Mode
from repro.experiments.artifacts import DEFAULT_CACHE_DIR
from repro.sim.config import resolve_config
from repro.sim.system import simulate
from repro.synthetic.profiles import (PROFILE_ORDER, available_profiles,
                                      generate, load_profile,
                                      register_profile)
from repro.trace import npzio, textio
from repro.trace.stream import Trace


def _load_trace(path: str) -> Trace:
    if path.endswith(".npz"):
        return npzio.load(path)
    with open(path) as fp:
        return textio.load(fp)


def _save_trace(trace: Trace, path: str, text: bool) -> None:
    if text or path.endswith(".txt"):
        with open(path, "w") as fp:
            textio.dump(trace, fp)
    else:
        npzio.save(trace, path)


def _machine_from_args(num_cpus: int, args: argparse.Namespace):
    """Machine sized to *num_cpus* with the CLI's --assoc/--bus-width.

    Sizing the machine to the trace's actual CPU count (rather than
    keeping the 4-CPU Base for narrower traces) means a 1-2-CPU trace
    no longer simulates with phantom idle processors.
    """
    return machine_for(num_cpus,
                       assoc=getattr(args, "assoc", 1),
                       bus_width_bytes=getattr(args, "bus_width", None))


def _resolve_workload(args: argparse.Namespace) -> Optional[str]:
    """The workload name to generate, after loading any ``--profile-spec``.

    Returns ``None`` (having printed the error) when the name cannot be
    resolved, so callers can exit with status 2.
    """
    name = args.workload
    if getattr(args, "profile_spec", ""):
        try:
            profile = register_profile(load_profile(args.profile_spec))
        except ProfileError as err:
            print(f"bad --profile-spec: {err}", file=sys.stderr)
            return None
        if not name:
            name = profile.name
        elif name != profile.name:
            print(f"--profile-spec defines {profile.name!r} but "
                  f"{name!r} was requested", file=sys.stderr)
            return None
    if not name:
        print("no workload given (name argument or --profile-spec)",
              file=sys.stderr)
        return None
    from repro.synthetic.profiles import get_profile
    try:
        get_profile(name)
    except (KeyError, ProfileError):
        print(f"unknown workload {name!r}; available profiles: "
              f"{', '.join(available_profiles())} "
              "(or a gen:... sweep name, or --profile-spec FILE)",
              file=sys.stderr)
        return None
    return name


def cmd_generate(args: argparse.Namespace) -> int:
    name = _resolve_workload(args)
    if name is None:
        return 2
    trace = generate(name, seed=args.seed, scale=args.scale,
                     frame_policy=args.frame_policy)
    _save_trace(trace, args.output, args.text)
    print(f"{name}: {len(trace):,} records, "
          f"{len(trace.blockops)} block ops -> {args.output}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis.tracestats import TraceStats
    trace = _load_trace(args.trace)
    print(f"trace: {args.trace}")
    print(f"metadata: {trace.metadata}")
    print(TraceStats(trace).summary())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.common.errors import ConformanceError
    # Scheme names are machine-independent: validate them up front, before
    # any (possibly expensive) trace load or generation happens, so a typo
    # fails as fast as an unknown --profile-spec does.
    try:
        resolve_config(args.config)
    except KeyError as err:
        print(f"{err.args[0]}", file=sys.stderr)
        return 2
    if os.path.exists(args.input) and not args.profile_spec:
        trace = _load_trace(args.input)
    else:
        args.workload = args.input
        name = _resolve_workload(args)
        if name is None:
            return 2
        trace = generate(name, seed=args.seed, scale=args.scale,
                         frame_policy=args.frame_policy)
    try:
        machine = _machine_from_args(trace.num_cpus, args)
    except ConfigError as err:
        print(f"bad machine: {err}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out or args.profile or args.timeline:
        from repro.obs import Tracer
        tracer = Tracer(max_events=args.trace_limit)
    try:
        metrics = simulate(trace, resolve_config(args.config, machine),
                           check=True if args.check else None,
                           tracer=tracer,
                           batch=False if args.no_batch else None)
    except ConformanceError as err:
        print(f"conformance violation [{err.kind}]: {err}", file=sys.stderr)
        return 1
    if args.check:
        print("conformance: ok (oracle + invariants)")
    tb = metrics.os_time()
    print(f"config:      {args.config}")
    print(f"makespan:    {metrics.makespan:,} cycles")
    print(f"OS time:     {tb.total:,} cycles "
          f"(exec {tb.exec_cycles:,}, imiss {tb.imiss:,}, "
          f"dread {tb.dread:,}, dwrite {tb.dwrite:,}, pref {tb.pref:,})")
    print(f"OS misses:   {metrics.os_read_misses():,}")
    print(f"miss rate:   {metrics.data_miss_rate():.2%}")
    print(f"mode shares: " + ", ".join(
        f"{m.name.lower()} {metrics.mode_fraction(m):.0%}" for m in Mode))
    print(f"bus busy:    {metrics.bus_utilization():.0%} of makespan")
    if tracer is not None:
        if args.trace_out:
            from repro.obs import save_chrome_trace
            count = save_chrome_trace(tracer, args.trace_out)
            dropped = (f" ({tracer.dropped:,} dropped past --trace-limit)"
                       if tracer.dropped else "")
            print(f"trace:       {count:,} events -> {args.trace_out}"
                  f"{dropped}")
        if args.profile:
            from repro.obs import MissProfile
            print()
            print(MissProfile(tracer).render())
        if args.timeline:
            from repro.analysis.timeline_view import render_miss_timeline
            print()
            print(render_miss_timeline(tracer))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Generate a seeded batch of random workloads and simulate them."""
    from repro.experiments.artifacts import ArtifactCache
    from repro.experiments.runner import ExperimentRunner
    from repro.synthetic import generator

    families = tuple(f.strip() for f in args.families.split(",")
                     if f.strip()) or generator.SWEEP_FAMILIES
    cpus = tuple(int(c) for c in args.cpus.split(",") if c.strip()) or (4,)
    intensities = tuple(float(v) for v in args.intensities.split(",")
                        if v.strip()) or (0.6, 1.0)
    patterns = tuple(p.strip() for p in args.patterns.split(",")
                     if p.strip()) or None
    try:
        workloads = generator.sample(
            args.samples, seed=args.seed, families=families,
            num_cpus=cpus, intensities=intensities,
            **({"patterns": patterns} if patterns else {}))
    except ProfileError as err:
        print(f"bad sweep: {err}", file=sys.stderr)
        return 2
    config_names = [c.strip() for c in args.configs.split(",") if c.strip()]
    try:
        machine = _machine_from_args(max(cpus), args)
    except ConfigError as err:
        print(f"bad sweep machine: {err}", file=sys.stderr)
        return 2
    unknown = []
    for c in config_names:
        try:
            resolve_config(c, machine)
        except KeyError:
            unknown.append(c)
    if unknown:
        print(f"unknown configs {unknown}; registered schemes plus "
              "'Hyb_UpdN@N<k>' / 'Hyb_Deg@T<k>' are accepted",
              file=sys.stderr)
        return 2
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    runner = ExperimentRunner(scale=args.scale, seed=args.seed,
                              machine=machine, cache=cache,
                              workers=args.workers)
    print(f"sweep: {len(workloads)} workloads x {len(config_names)} "
          f"configs at scale {args.scale} (seed {args.seed})")
    cells = [(w.name, c, None) for w in workloads for c in config_names]
    runner.run_cells(cells, verbose=not args.quiet)
    name_w = max(len(w.name) for w in workloads)
    conf_w = max(10, max(len(c) for c in config_names))
    header = (f"{'workload':<{name_w}}  {'config':<{conf_w}}  "
              f"{'OS time':>12}  {'OS misses':>10}  {'miss rate':>9}")
    lines = [header, "-" * len(header)]
    for w in workloads:
        base_total = None
        for config_name in config_names:
            metrics = runner.run(w.name, config_name)
            total = metrics.os_time().total
            if base_total is None:
                base_total = total
            rel = (f"  ({total / base_total:.2f}x)"
                   if config_name != config_names[0] and base_total else "")
            lines.append(
                f"{w.name:<{name_w}}  {config_name:<{conf_w}}  {total:>12,}  "
                f"{metrics.os_read_misses():>10,}  "
                f"{metrics.data_miss_rate():>8.2%}{rel}")
    report = "\n".join(lines)
    print(report)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(report + "\n")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.all import run_all
    only = [n.strip() for n in args.only.split(",") if n.strip()] or None
    cache_dir = None if args.no_cache else args.cache_dir
    report = run_all(scale=args.scale, seed=args.seed, only=only,
                     verbose=not args.quiet, workers=args.workers,
                     cache_dir=cache_dir, ledger=args.ledger or None,
                     max_retries=args.max_retries,
                     job_timeout=args.job_timeout)
    if args.ascii:
        from repro.analysis.ascii_charts import ascii_render
        from repro.analysis.figures import ALL_FIGURES
        from repro.experiments.artifacts import ArtifactCache
        from repro.experiments.runner import ExperimentRunner
        cache = ArtifactCache(cache_dir) if cache_dir else None
        runner = ExperimentRunner(scale=args.scale, seed=args.seed,
                                  cache=cache)
        chunks = [report]
        for name in (only or list(ALL_FIGURES)):
            if name in ALL_FIGURES:
                chunks.append(f"### {name} (ascii)")
                chunks.append(ascii_render(ALL_FIGURES[name](runner)))
        report = "\n\n".join(chunks)
    print(report)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(report)
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import ALL_STUDIES, render_study, run_study
    if args.study not in ALL_STUDIES:
        print(f"unknown study {args.study!r}; choose from "
              f"{sorted(ALL_STUDIES)}", file=sys.stderr)
        return 2
    points = run_study(args.study, workload=args.workload, scale=args.scale,
                       seed=args.seed, cache_dir=args.cache_dir or None)
    print(render_study(f"{args.study} ({args.workload})", points))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.compare import calibration_report
    only = [n.strip() for n in args.only.split(",") if n.strip()] or None
    print(calibration_report(scale=args.scale, seed=args.seed, which=only))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep service daemon (see docs/sweep-service.md)."""
    from repro.experiments.faults import RetryPolicy
    from repro.experiments.service import SweepService
    policy = None
    if args.max_retries is not None or args.job_timeout is not None:
        policy = RetryPolicy(
            **({"max_retries": args.max_retries}
               if args.max_retries is not None else {}),
            **({"job_timeout": args.job_timeout}
               if args.job_timeout is not None else {}))
    service = SweepService(args.cache_dir, workers=args.workers,
                           retry_policy=policy,
                           heartbeat_interval=args.heartbeat,
                           verbose=not args.quiet)
    service.serve(host=args.host, port=args.port)
    return 0


def _service_call(args: argparse.Namespace, call) -> int:
    """Run one client call, printing JSON; exit 1 on service errors."""
    import json

    from repro.experiments.service import ServiceError, SweepClient
    client = SweepClient(args.url, timeout=args.timeout)
    try:
        payload = call(client)
    except ServiceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a sweep matrix to a running service."""
    body: dict = {}
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    if workloads:
        body["workloads"] = workloads
    if args.generate:
        generate_block: dict = {"count": args.generate,
                                "seed": args.generate_seed}
        if args.families:
            generate_block["families"] = [
                f.strip() for f in args.families.split(",") if f.strip()]
        if args.cpus:
            generate_block["cpus"] = [
                int(c) for c in args.cpus.split(",") if c.strip()]
        body["generate"] = generate_block
    body["configs"] = [c.strip() for c in args.configs.split(",")
                       if c.strip()]
    body["scales"] = [float(s) for s in args.scales.split(",") if s.strip()]
    body["seed"] = args.seed
    if args.assoc != 1:
        body["assoc"] = args.assoc
    if args.bus_width is not None:
        body["bus_width"] = args.bus_width

    def call(client):
        status = client.submit(body)
        if args.wait:
            status = client.wait(status["job_id"], timeout=args.timeout)
        return status

    return _service_call(args, call)


def cmd_status(args: argparse.Namespace) -> int:
    """Query a running service: health, one job, or its results."""
    def call(client):
        if not args.job:
            return client.healthz() if not args.all else \
                {"jobs": client.jobs()}
        if args.results or args.full:
            return client.results(args.job, full=args.full)
        if args.events is not None:
            return client.events(args.job, since=args.events)
        return client.status(args.job)

    return _service_call(args, call)


def cmd_cancel(args: argparse.Namespace) -> int:
    return _service_call(args, lambda client: client.cancel(args.job))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for Xia & Torrellas, HPCA 1996")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a workload trace")
    p.add_argument("workload", nargs="?", default="",
                   help="profile name (paper workload, built-in family, "
                        "or gen:... sweep name); optional with "
                        "--profile-spec")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--profile-spec", default="",
                   help="load a custom workload profile from this "
                        "JSON/YAML spec file")
    p.add_argument("--frame-policy", default="default",
                   choices=["default", "colored"],
                   help="physical frame allocation policy "
                        "(default: 'default')")
    p.add_argument("--text", action="store_true",
                   help="write the text format instead of .npz")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("inspect", help="summarize a trace file")
    p.add_argument("trace")
    p.set_defaults(fn=cmd_inspect)

    p = sub.add_parser("simulate", help="simulate a workload or trace file")
    p.add_argument("input", nargs="?", default="",
                   help="profile name (paper workload, built-in family, "
                        "gen:... sweep name) or trace file path")
    p.add_argument("--config", default="Base")
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--profile-spec", default="",
                   help="load a custom workload profile from this "
                        "JSON/YAML spec file")
    p.add_argument("--frame-policy", default="default",
                   choices=["default", "colored"],
                   help="frame allocation policy for generated workloads")
    p.add_argument("--check", action="store_true",
                   help="run the coherence conformance checker "
                        "(reference oracle + MESI/Firefly invariants)")
    p.add_argument("--trace-out", default="",
                   help="write a Chrome/Perfetto trace JSON of the miss "
                        "lifecycle to this path (load in ui.perfetto.dev)")
    p.add_argument("--trace-limit", type=int, default=1_000_000,
                   help="cap on recorded trace events (profile stats stay "
                        "exact past the cap; default 1000000)")
    p.add_argument("--profile", action="store_true",
                   help="print the per-site miss profile (Table 6 style) "
                        "and per-service attribution")
    p.add_argument("--timeline", action="store_true",
                   help="print an ASCII miss/bus density timeline")
    p.add_argument("--no-batch", action="store_true",
                   help="force the scalar (one step per record) scheduler; "
                        "equivalent to REPRO_NO_BATCH=1")
    p.add_argument("--assoc", type=int, default=1,
                   help="set associativity of all caches (power of two; "
                        "default 1 = the paper's direct-mapped machine)")
    p.add_argument("--bus-width", type=int, default=None,
                   help="bus width in bytes (power of two; default 8)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("sweep",
                       help="simulate a seeded batch of generated "
                            "workloads (LITMUS-RT-style random sweep)")
    p.add_argument("--samples", type=int, default=6,
                   help="number of generated workloads (default 6)")
    p.add_argument("--families", default="",
                   help="comma-separated profile families "
                        "(default: all sweepable families)")
    p.add_argument("--configs", default="Base,Blk_Dma",
                   help="comma-separated scheme names "
                        "(default Base,Blk_Dma)")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cpus", default="4",
                   help="comma-separated CPU counts to sweep (default 4)")
    p.add_argument("--assoc", type=int, default=1,
                   help="set associativity of all caches (power of two; "
                        "default 1 = the paper's direct-mapped machine)")
    p.add_argument("--bus-width", type=int, default=None,
                   help="bus width in bytes (power of two; default 8)")
    p.add_argument("--intensities", default="0.6,1.0",
                   help="comma-separated intensity levels in (0, 1]")
    p.add_argument("--patterns", default="",
                   help="comma-separated intensity patterns "
                        "(default: steady,bursty,diurnal)")
    p.add_argument("--workers", type=int, default=os.cpu_count(),
                   help="parallel sweep processes (default: os.cpu_count())")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="on-disk artifact cache directory "
                        f"(default {DEFAULT_CACHE_DIR!r})")
    p.add_argument("--no-cache", action="store_true",
                   help="do not persist traces/artifacts on disk")
    p.add_argument("-o", "--output", default="")
    p.add_argument("-q", "--quiet", action="store_true")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("report", help="regenerate tables and figures")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--only", default="")
    p.add_argument("--ascii", action="store_true",
                   help="append ASCII drawings of the figures")
    p.add_argument("-o", "--output", default="")
    p.add_argument("-q", "--quiet", action="store_true")
    p.add_argument("--workers", type=int, default=os.cpu_count(),
                   help="parallel sweep processes (default: os.cpu_count())")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="on-disk artifact cache directory "
                        f"(default {DEFAULT_CACHE_DIR!r})")
    p.add_argument("--no-cache", action="store_true",
                   help="do not persist traces/artifacts on disk")
    p.add_argument("--ledger", default="",
                   help="JSONL run-ledger path (default: a fresh file "
                        "inside the cache directory)")
    p.add_argument("--max-retries", type=int, default=None,
                   help="re-submissions allowed per failed sweep job "
                        "(default 2)")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds "
                        "(default: unlimited)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("ablation", help="run a design-choice study")
    p.add_argument("study")
    p.add_argument("--workload", default="TRFD_4", choices=PROFILE_ORDER)
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--cache-dir", default="",
                   help="reuse/populate this artifact cache directory")
    p.set_defaults(fn=cmd_ablation)

    p = sub.add_parser("calibrate",
                       help="measured-vs-paper report for Tables 1-5")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--only", default="")
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("serve",
                       help="run the persistent sweep-service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="artifact cache shared by every sweep "
                        f"(default {DEFAULT_CACHE_DIR!r})")
    p.add_argument("--workers", type=int, default=os.cpu_count(),
                   help="persistent worker-pool size "
                        "(default: os.cpu_count())")
    p.add_argument("--heartbeat", type=float, default=5.0,
                   help="seconds between ledger heartbeats (default 5)")
    p.add_argument("--max-retries", type=int, default=None,
                   help="re-submissions allowed per failed sweep job")
    p.add_argument("--job-timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("-q", "--quiet", action="store_true")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a sweep matrix to a running service")
    p.add_argument("--url", default="http://127.0.0.1:8765",
                   help="service base URL (default http://127.0.0.1:8765)")
    p.add_argument("--workloads", default="",
                   help="comma-separated workload names (profiles or "
                        "gen:... sweep names)")
    p.add_argument("--configs", default="Base,Blk_Dma",
                   help="comma-separated scheme names "
                        "(default Base,Blk_Dma)")
    p.add_argument("--scales", default="0.1",
                   help="comma-separated scale factors (default 0.1)")
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--generate", type=int, default=0, metavar="N",
                   help="also generate N random workloads server-side")
    p.add_argument("--generate-seed", type=int, default=0)
    p.add_argument("--families", default="",
                   help="families for --generate (comma-separated)")
    p.add_argument("--cpus", default="",
                   help="CPU counts for --generate (comma-separated)")
    p.add_argument("--assoc", type=int, default=1,
                   help="set associativity of all caches (power of two; "
                        "default 1 = the paper's direct-mapped machine)")
    p.add_argument("--bus-width", type=int, default=None,
                   help="bus width in bytes (power of two; default 8)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    p.add_argument("--timeout", type=float, default=600.0)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status",
                       help="query a running sweep service")
    p.add_argument("job", nargs="?", default="",
                   help="job id; omitted: service health")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--all", action="store_true",
                   help="list every job instead of service health")
    p.add_argument("--results", action="store_true",
                   help="fetch the job's per-cell summary")
    p.add_argument("--full", action="store_true",
                   help="fetch full SystemMetrics snapshots")
    p.add_argument("--events", type=int, default=None, metavar="N",
                   help="stream ledger events from line N on")
    p.add_argument("--timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("cancel", help="cancel a queued or running sweep")
    p.add_argument("job")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_cancel)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
