"""The paper's software optimizations as reusable analysis/transform passes."""

from repro.optim.deferred import (
    DeferredAnalysis,
    analyze_deferred,
    apply_deferred,
    deferred_miss_saving,
)
from repro.optim.hotspots import (
    HotspotPrefetcher,
    find_hotspots,
    hotspot_coverage,
    insert_hotspot_prefetches,
)
from repro.optim.privatize import (
    PrivatizeRelocate,
    privatize_and_relocate,
    replica_addr,
)
from repro.optim.update_select import UpdateSelection, select_update_core

__all__ = [
    "DeferredAnalysis",
    "HotspotPrefetcher",
    "PrivatizeRelocate",
    "UpdateSelection",
    "analyze_deferred",
    "apply_deferred",
    "deferred_miss_saving",
    "find_hotspots",
    "hotspot_coverage",
    "insert_hotspot_prefetches",
    "privatize_and_relocate",
    "replica_addr",
    "select_update_core",
]
