"""Selection of the update-protocol variable core (section 5.2).

The paper applies the Firefly update protocol to three sets of variables —
the barriers (48 bytes), the 10 most active locks, and 176 bytes of
frequently-shared variables with producer-consumer behaviour — a 384-byte
core that, being statically allocated, fits in one page.

:func:`select_update_core` reproduces the *analysis*: given the metrics of
a Base run it ranks synchronization/shared variables by coherence misses,
keeps the profitable ones, and returns the page(s) containing them plus a
report of what was chosen.  On the synthetic kernel the chosen variables
all live in the layout's SYNC_PAGE, matching the paper's one-page outcome.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.common.types import DataClass
from repro.sim.metrics import SystemMetrics
from repro.trace.annotations import SymbolMap


class UpdateSelection(NamedTuple):
    """Outcome of the update-core analysis."""

    #: Page-aligned addresses to run the update protocol on.
    pages: List[int]
    #: Chosen variable names, most coherence misses first.
    variables: List[str]
    #: Total bytes of chosen variables.
    core_bytes: int
    #: Coherence misses covered by the chosen variables.
    covered_misses: int


#: Data classes eligible for the update protocol.
_ELIGIBLE = (DataClass.BARRIER_VAR, DataClass.LOCK_VAR, DataClass.FREQ_SHARED)


def select_update_core(metrics: SystemMetrics, symbols: SymbolMap,
                       page_bytes: int = 4096, max_locks: int = 10,
                       min_misses: int = 2) -> UpdateSelection:
    """Choose the variables (and pages) to run Firefly update on.

    Barriers always qualify (their sharing pattern clearly favours
    updates); locks are capped at the *max_locks* most active; frequently
    shared variables qualify when they took at least *min_misses*
    coherence misses in the profiling run.
    """
    misses_by_symbol: Dict[str, int] = {}
    sym_of: Dict[str, object] = {}
    for line, count in metrics.os_coh_addr.items():
        sym = symbols.lookup(line)
        if sym is None or sym.dclass not in _ELIGIBLE:
            continue
        misses_by_symbol[sym.name] = misses_by_symbol.get(sym.name, 0) + count
        sym_of[sym.name] = sym

    chosen: List[str] = []
    locks_taken = 0
    for name, count in sorted(misses_by_symbol.items(),
                              key=lambda item: -item[1]):
        sym = sym_of[name]
        if sym.dclass == DataClass.BARRIER_VAR:
            chosen.append(name)
        elif sym.dclass == DataClass.LOCK_VAR:
            if locks_taken < max_locks:
                chosen.append(name)
                locks_taken += 1
        elif count >= min_misses:
            chosen.append(name)

    pages = sorted({sym_of[name].base - sym_of[name].base % page_bytes
                    for name in chosen})
    core_bytes = sum(sym_of[name].size for name in chosen)
    covered = sum(misses_by_symbol[name] for name in chosen)
    return UpdateSelection(pages, chosen, core_bytes, covered)
