"""Miss-hot-spot detection and prefetch insertion (section 6).

The paper measures the data misses of every basic block, picks the 12 most
active *miss hot spots* (5 loops and 7 sequences), and hand-inserts
software prefetches: loop unrolling + software pipelining for the loops,
prefetches hoisted as early as possible for the sequences — limited by
when the address operands become available.

:func:`find_hotspots` reproduces the measurement; :class:`HotspotPrefetcher`
reproduces the insertion as a trace transformation: for each read issued
by a hot basic block, a PREFETCH record is inserted ``lead`` records
earlier in the same CPU's stream (clamped by the operand-availability
horizon, drawn per insertion).  Prefetches of a line already prefetched a
few records back are skipped, which keeps the instruction overhead to a
few percent — the paper measured 3.2 %.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.rng import RngStream
from repro.common.types import Op
from repro.sim.metrics import SystemMetrics
from repro.trace.record import TraceRecord, prefetch
from repro.trace.stream import Trace


def find_hotspots(metrics: SystemMetrics, count: int = 12) -> List[int]:
    """The *count* basic blocks with the most OS data misses."""
    return metrics.hottest_pcs(count)


def hotspot_coverage(metrics: SystemMetrics, hot_pcs: Sequence[int]) -> float:
    """Fraction of OS misses attributable to *hot_pcs* in a profiled run."""
    total = sum(metrics.os_miss_pc.values())
    if not total:
        return 0.0
    hot = sum(metrics.os_miss_pc.get(pc, 0) for pc in hot_pcs)
    return hot / total


class HotspotPrefetcher:
    """Insert prefetches covering the reads of hot basic blocks."""

    def __init__(self, hot_pcs: Sequence[int], lead: int = 24,
                 min_lead: int = 6, line_bytes: int = 16,
                 seed: int = 7) -> None:
        self.hot_pcs = set(hot_pcs)
        self.lead = lead
        self.min_lead = min_lead
        self.line_bytes = line_bytes
        self.rng = RngStream(seed, "hotspot-prefetch")
        self.inserted = 0
        self.skipped_duplicates = 0

    def apply(self, trace: Trace) -> Trace:
        """Return a copy of *trace* with hot-spot prefetches inserted."""
        out = Trace(trace.num_cpus, blockops=trace.blockops,
                    symbols=trace.symbols,
                    metadata={**trace.metadata, "hotspot_prefetch": 1})
        for cpu, stream in enumerate(trace.streams):
            out.streams[cpu] = self._rewrite_stream(stream)
        return out

    def _rewrite_stream(self, stream: List[TraceRecord]) -> List[TraceRecord]:
        # First pass: for every hot read, choose its insertion point.
        inserts: Dict[int, List[TraceRecord]] = {}
        recent: Dict[int, int] = {}
        for i, rec in enumerate(stream):
            if rec.op != Op.READ or rec.pc not in self.hot_pcs:
                continue
            if rec.blockop:
                continue  # block operations are handled by their scheme
            line = rec.addr - rec.addr % self.line_bytes
            last = recent.get(line)
            if last is not None and i - last < self.lead:
                self.skipped_duplicates += 1
                continue
            recent[line] = i
            # Operand availability limits how far back the prefetch can
            # be hoisted (paper: "the unavailability of the operands...
            # limits how far back the prefetches can be pushed").
            horizon = self.rng.randint(self.min_lead, self.lead)
            at = max(0, i - horizon)
            inserts.setdefault(at, []).append(
                prefetch(rec.addr, mode=rec.mode, dclass=rec.dclass,
                         pc=rec.pc, lead=i - at))
            self.inserted += 1
        if not inserts:
            return list(stream)
        # Second pass: rebuild the stream with insertions in place.
        new_stream: List[TraceRecord] = []
        for i, rec in enumerate(stream):
            pending = inserts.get(i)
            if pending:
                new_stream.extend(pending)
            new_stream.append(rec)
        return new_stream


def insert_hotspot_prefetches(trace: Trace, hot_pcs: Sequence[int],
                              lead: int = 24) -> Trace:
    """Convenience wrapper around :class:`HotspotPrefetcher`."""
    return HotspotPrefetcher(hot_pcs, lead=lead).apply(trace)
