"""Data privatization and relocation (section 5.1).

Two kernel-source changes, modelled as trace transformations:

* **Privatization** — each infrequently-communicated event counter is
  split into one sub-counter per processor, each on its own cache line in
  a private region.  Updates go to the updating CPU's replica; the rare
  reader (the pager) reads all replicas and sums them, so a READ by the
  pager's basic block expands into ``num_cpus`` reads.

* **Relocation** — variables responsible for obvious false sharing are
  moved to their own cache lines: the per-CPU ``cpievents`` entries are
  spread within the synchronization page (keeping them under the update
  protocol's page), and the per-CPU timer accounting slots are spread in
  the private region.

The transformation is pure: it returns a new :class:`Trace` and leaves the
input untouched.  Data-class annotations are preserved so Table 5's
breakdown still attributes any residual misses correctly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.synthetic import layout as lay
from repro.common.types import DataClass, Op
from repro.synthetic.layout import KERNEL_PC
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

#: Bytes reserved per privatized counter replica (its own L2 line).
REPLICA_STRIDE = 64

#: Relocated cpievents entries: one 64-byte slot each, still in SYNC_PAGE.
CPIEVENTS_RELOC = lay.SYNC_PAGE + 0x800

#: Relocated per-CPU timer accounting slots.
TIMER_RELOC = lay.PRIVATE_BASE + 0x1000


def replica_addr(counter_index: int, cpu: int, num_cpus: int) -> int:
    """Address of CPU *cpu*'s replica of counter *counter_index*."""
    return (lay.PRIVATE_BASE
            + (counter_index * num_cpus + cpu) * REPLICA_STRIDE)


class PrivatizeRelocate:
    """The section 5.1 transformation."""

    def __init__(self, num_cpus: int = 4) -> None:
        self.num_cpus = num_cpus
        self._counter_index: Dict[int, int] = {
            lay.COUNTER_BASE + i * 4: i
            for i in range(len(lay.INFREQ_COUNTERS))
        }
        #: Basic blocks whose counter READs are aggregate reads (the
        #: pager); everything else is the read half of a local update.
        self._aggregate_pcs = {KERNEL_PC["pte_scan_loop"]}
        cpi = lay.SYNC_PAGE + 64 + len(lay.KERNEL_LOCKS) * 16 + 4
        self._cpievents_base = cpi
        self._cpievents_end = cpi + 64
        self._timer_slots_base = lay.TIMER_BASE + 64
        self._timer_slots_end = lay.TIMER_BASE + 64 + 4 * 16

    # ------------------------------------------------------------------
    def apply(self, trace: Trace) -> Trace:
        """Return a privatized/relocated copy of *trace*."""
        out = Trace(trace.num_cpus, blockops=trace.blockops,
                    symbols=trace.symbols,
                    metadata={**trace.metadata, "privatized": 1})
        for cpu, stream in enumerate(trace.streams):
            new_stream = out.streams[cpu]
            for rec in stream:
                new_stream.extend(self._rewrite(cpu, rec))
        return out

    # ------------------------------------------------------------------
    def _rewrite(self, cpu: int, rec: TraceRecord) -> List[TraceRecord]:
        if rec.dclass == DataClass.INFREQ_COMM and rec.op in (Op.READ,
                                                              Op.WRITE):
            return self._rewrite_counter(cpu, rec)
        if (self._cpievents_base <= rec.addr < self._cpievents_end
                and rec.op in (Op.READ, Op.WRITE)):
            return [self._relocate(rec, self._cpievents_base,
                                   CPIEVENTS_RELOC, 16)]
        if (self._timer_slots_base <= rec.addr < self._timer_slots_end
                and rec.op in (Op.READ, Op.WRITE)):
            return [self._relocate(rec, self._timer_slots_base,
                                   TIMER_RELOC, 16)]
        return [rec]

    def _rewrite_counter(self, cpu: int, rec: TraceRecord) -> List[TraceRecord]:
        index = self._counter_index.get(rec.addr)
        if index is None:
            return [rec]
        if rec.op == Op.READ and rec.pc in self._aggregate_pcs:
            # The pager now reads every CPU's replica and sums them.
            records = []
            for reader in range(self.num_cpus):
                r = rec.copy()
                r.addr = replica_addr(index, reader, self.num_cpus)
                r.dclass = DataClass.INFREQ_COMM
                records.append(r)
            return records
        # Local update (or its read half): the CPU's own replica.
        r = rec.copy()
        r.addr = replica_addr(index, cpu, self.num_cpus)
        r.dclass = DataClass.INFREQ_COMM
        return [r]

    @staticmethod
    def _relocate(rec: TraceRecord, old_base: int, new_base: int,
                  slot_bytes: int) -> TraceRecord:
        """Move a slotted per-CPU variable to its own 64-byte line."""
        slot, offset = divmod(rec.addr - old_base, slot_bytes)
        r = rec.copy()
        r.addr = new_base + slot * REPLICA_STRIDE + offset
        return r


def privatize_and_relocate(trace: Trace, num_cpus: int = 4) -> Trace:
    """Convenience wrapper around :class:`PrivatizeRelocate`."""
    return PrivatizeRelocate(num_cpus).apply(trace)
