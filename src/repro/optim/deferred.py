"""Deferred copying of sub-page blocks (section 4.2.1, Table 4).

Copy-on-write already defers page-sized copies; the VMP machine's
mechanism (Cheriton et al.) extends deferral to arbitrary block sizes.
The paper evaluates it by (1) finding all copies of blocks smaller than a
page, (2) finding the *read-only* ones — neither source nor destination
written after the operation — whose copy would therefore never be
performed, and (3) simulating the deferral to count the misses saved.
The outcome (0.1-0.4 % of misses) argues against supporting the scheme.

Ordering across CPUs is approximated by normalized stream position (the
streams progress at comparable rates); the paper's own criterion ("never
written in our traces after the block operation") has the same
end-of-trace horizon.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set, Tuple

from repro.common.types import Op
from repro.trace.blockop import BlockOpDescriptor
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


class DeferredAnalysis(NamedTuple):
    """Outcome of the small-block-copy analysis."""

    #: Copies of blocks smaller than a page / all block copies.
    small_copy_fraction: float
    #: Read-only small copies / small copies.
    read_only_fraction: float
    #: Ids of the read-only small copies (deferral candidates).
    read_only_ids: Set[int]
    total_copies: int
    small_copies: int


def _locate_spans(trace: Trace) -> Dict[int, Tuple[int, float]]:
    """Map op id -> (cpu, normalized end position of the op)."""
    spans: Dict[int, Tuple[int, float]] = {}
    for cpu, stream in enumerate(trace.streams):
        length = max(1, len(stream))
        for idx, rec in enumerate(stream):
            if rec.op == Op.BLOCK_END:
                spans[rec.blockop] = (cpu, idx / length)
    return spans


def _page_index(ops: List[BlockOpDescriptor], page_bytes: int
                ) -> Dict[int, List[Tuple[int, int, int]]]:
    """Page -> [(op_id, lo, hi)] for both ranges of each op."""
    index: Dict[int, List[Tuple[int, int, int]]] = {}
    for desc in ops:
        ranges = [(desc.dst, desc.dst + desc.size)]
        if desc.is_copy:
            ranges.append((desc.src, desc.src + desc.size))
        for lo, hi in ranges:
            page = lo - lo % page_bytes
            while page < hi:
                index.setdefault(page, []).append((desc.op_id, lo, hi))
                page += page_bytes
    return index


def analyze_deferred(trace: Trace, page_bytes: int = 4096) -> DeferredAnalysis:
    """Classify small block copies and find the read-only ones."""
    copies = [d for d in trace.blockops if d.is_copy]
    small = [d for d in copies if d.size < page_bytes]
    spans = _locate_spans(trace)
    index = _page_index(small, page_bytes)
    written: Set[int] = set()
    for cpu, stream in enumerate(trace.streams):
        length = max(1, len(stream))
        for idx, rec in enumerate(stream):
            if rec.op != Op.WRITE:
                continue
            candidates = index.get(rec.addr - rec.addr % page_bytes)
            if not candidates:
                continue
            pos = idx / length
            for op_id, lo, hi in candidates:
                if rec.blockop == op_id or op_id in written:
                    continue
                if lo <= rec.addr < hi and pos > spans[op_id][1]:
                    written.add(op_id)
    read_only = {d.op_id for d in small} - written
    return DeferredAnalysis(
        small_copy_fraction=len(small) / len(copies) if copies else 0.0,
        read_only_fraction=len(read_only) / len(small) if small else 0.0,
        read_only_ids=read_only,
        total_copies=len(copies),
        small_copies=len(small),
    )


def apply_deferred(trace: Trace, read_only_ids: Set[int]) -> Trace:
    """Defer the given read-only copies.

    Their word-level records disappear (the copy never happens) and later
    reads of the destination range are remapped to the source — the
    remapping hardware of the VMP scheme.
    """
    remap: List[Tuple[int, int, int, int, float]] = []  # lo, hi, delta, cpu, end
    spans = _locate_spans(trace)
    for op_id in read_only_ids:
        desc = trace.blockops.get(op_id)
        cpu, end = spans[op_id]
        remap.append((desc.dst, desc.dst + desc.size, desc.src - desc.dst,
                      cpu, end))
    out = Trace(trace.num_cpus, blockops=trace.blockops,
                symbols=trace.symbols,
                metadata={**trace.metadata, "deferred_copy": 1})
    for cpu, stream in enumerate(trace.streams):
        length = max(1, len(stream))
        new_stream = out.streams[cpu]
        for idx, rec in enumerate(stream):
            if rec.blockop in read_only_ids:
                continue  # the copy is deferred away
            if rec.op == Op.READ:
                pos = idx / length
                for lo, hi, delta, _op_cpu, end in remap:
                    if lo <= rec.addr < hi and pos > end:
                        rec = rec.copy()
                        rec.addr += delta
                        break
            new_stream.append(rec)
    return out


def deferred_miss_saving(trace: Trace, config=None) -> float:
    """Fraction of all data misses eliminated by deferred copying.

    Runs the Base simulation on the original and the deferred trace and
    compares total (OS + user) primary-cache read misses — Table 4 row 3.
    """
    from repro.sim.config import SystemConfig
    from repro.sim.system import simulate

    if config is None:
        config = SystemConfig("deferred-probe")
    analysis = analyze_deferred(trace)
    if not analysis.read_only_ids:
        return 0.0
    base = simulate(trace, config)
    deferred = simulate(apply_deferred(trace, analysis.read_only_ids), config)
    saved = base.total_data_misses() - deferred.total_data_misses()
    total = base.total_data_misses()
    return saved / total if total else 0.0
