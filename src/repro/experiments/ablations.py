"""Ablation studies on the paper's design choices.

The paper justifies several specific choices with side measurements; each
function here reproduces one of those arguments as a parameter study:

* :func:`update_policy_study` — invalidate-only vs *selective* update vs
  *pure* update (section 5.2: selective update gets within a few percent
  of pure update's misses while saving a large share of its traffic).
* :func:`prefetch_lead_study` — the software-pipelining depth of
  Blk_Pref (section 4.1.1: prefetches must be issued early enough, but
  the prolog grows with the depth).
* :func:`dma_rate_study` — the Blk_Dma bus transfer rate (section 4.2:
  8 bytes per 2 bus cycles; a slower engine erodes the win).
* :func:`write_buffer_depth_study` — write-buffer depth (section 4.1.2:
  "obvious techniques to reduce this stall include deeper write
  buffers").
* :func:`hotspot_count_study` — how many miss hot spots to prefetch
  (section 6 picks 12).

Each study returns a list of :class:`AblationPoint` rows, ready for
:func:`render_study`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.common.params import MachineParams
from repro.common.types import MissKind, Scheme
from repro.experiments.runner import ExperimentRunner
from repro.optim.hotspots import HotspotPrefetcher
from repro.sim.config import SystemConfig
from repro.sim.system import simulate


@dataclasses.dataclass(frozen=True)
class AblationPoint:
    """One configuration point of a study."""

    label: str
    os_misses: int
    os_time: int
    extra: Dict[str, float]

    def normalized(self, base: "AblationPoint") -> Dict[str, float]:
        return {
            "os_misses": self.os_misses / max(1, base.os_misses),
            "os_time": self.os_time / max(1, base.os_time),
        }


def _point(label: str, metrics, **extra: float) -> AblationPoint:
    return AblationPoint(label, metrics.os_read_misses(),
                         metrics.os_time().total, dict(extra))


def update_policy_study(runner: ExperimentRunner,
                        workload: str) -> List[AblationPoint]:
    """Invalidate-only vs selective update vs pure update (section 5.2)."""
    trace = runner.privatized_trace(workload)
    pages = runner.update_selection(workload).pages
    machine = runner.machine
    invalidate = simulate(trace, SystemConfig(
        "Invalidate", machine, Scheme.DMA, privatize=True))
    selective = simulate(trace, SystemConfig(
        "Selective", machine, Scheme.DMA, privatize=True,
        selective_update=True), update_pages=pages)
    pure = simulate(trace, SystemConfig(
        "Pure", machine, Scheme.DMA, privatize=True, pure_update=True))
    return [
        _point("invalidate", invalidate,
               update_cycles=invalidate.update_traffic_cycles(),
               bus_busy=invalidate.bus_busy_cycles,
               coherence=invalidate.os_miss_kind.get(MissKind.COHERENCE, 0)),
        _point("selective", selective,
               update_cycles=selective.update_traffic_cycles(),
               bus_busy=selective.bus_busy_cycles,
               coherence=selective.os_miss_kind.get(MissKind.COHERENCE, 0)),
        _point("pure", pure,
               update_cycles=pure.update_traffic_cycles(),
               bus_busy=pure.bus_busy_cycles,
               coherence=pure.os_miss_kind.get(MissKind.COHERENCE, 0)),
    ]


def prefetch_lead_study(runner: ExperimentRunner, workload: str,
                        leads: Sequence[int] = (2, 4, 8, 12)
                        ) -> List[AblationPoint]:
    """Blk_Pref software-pipelining depth sweep."""
    trace = runner.trace(workload)
    points = []
    for lead in leads:
        config = SystemConfig(f"Blk_Pref/{lead}", runner.machine,
                              Scheme.PREF, pref_lead_lines=lead)
        metrics = simulate(trace, config)
        points.append(_point(
            f"lead={lead}", metrics,
            block_misses=metrics.os_miss_kind.get(MissKind.BLOCK_OP, 0),
            pref_stall=metrics.os_time().pref,
            prefetches=metrics.prefetches_issued))
    return points


def dma_rate_study(runner: ExperimentRunner, workload: str,
                   bus_cycles_per_beat: Sequence[int] = (1, 2, 4, 8)
                   ) -> List[AblationPoint]:
    """Blk_Dma transfer-rate sweep (the paper's engine: 2 bus cycles)."""
    trace = runner.trace(workload)
    points = []
    for beat in bus_cycles_per_beat:
        machine = dataclasses.replace(
            runner.machine,
            dma=dataclasses.replace(runner.machine.dma,
                                    bus_cycles_per_beat=beat))
        metrics = simulate(trace, SystemConfig(f"Blk_Dma/{beat}", machine,
                                               Scheme.DMA))
        points.append(_point(f"{beat} bus cycles / 8 B", metrics,
                             dma_stall=metrics.dma_stall,
                             dma_ops=metrics.dma_ops))
    return points


def write_buffer_depth_study(runner: ExperimentRunner, workload: str,
                             depths: Sequence[int] = (1, 2, 4, 8, 16)
                             ) -> List[AblationPoint]:
    """Word write-buffer depth sweep (Base machine: 4 entries)."""
    trace = runner.trace(workload)
    points = []
    for depth in depths:
        machine = dataclasses.replace(
            runner.machine,
            write_buffers=dataclasses.replace(
                runner.machine.write_buffers, l1_depth=depth))
        metrics = simulate(trace, SystemConfig(f"wb{depth}", machine))
        points.append(_point(f"depth={depth}", metrics,
                             dwrite=metrics.os_time().dwrite))
    return points


def hotspot_count_study(runner: ExperimentRunner, workload: str,
                        counts: Sequence[int] = (4, 8, 12, 18, 24)
                        ) -> List[AblationPoint]:
    """How many miss hot spots to prefetch (the paper picks 12)."""
    profile = runner.run(workload, "BCoh_RelUp")
    trace = runner.privatized_trace(workload)
    pages = runner.update_selection(workload).pages
    points = []
    for count in counts:
        hot = profile.hottest_pcs(count)
        prefetcher = HotspotPrefetcher(hot)
        transformed = prefetcher.apply(trace)
        config = SystemConfig(f"BCPref/{count}", runner.machine, Scheme.DMA,
                              privatize=True, selective_update=True,
                              hotspot_prefetch=True)
        metrics = simulate(transformed, config, update_pages=pages,
                           hotspot_pcs=hot)
        points.append(_point(f"top-{count}", metrics,
                             prefetches=prefetcher.inserted,
                             pref_stall=metrics.os_time().pref))
    return points


ALL_STUDIES = {
    "update_policy": update_policy_study,
    "prefetch_lead": prefetch_lead_study,
    "dma_rate": dma_rate_study,
    "write_buffer_depth": write_buffer_depth_study,
    "hotspot_count": hotspot_count_study,
}


def render_study(title: str, points: List[AblationPoint]) -> str:
    """Aligned-text rendering of one study's rows."""
    extra_keys: List[str] = []
    for point in points:
        for key in point.extra:
            if key not in extra_keys:
                extra_keys.append(key)
    label_w = max(len(p.label) for p in points) + 2
    lines = [title, ""]
    header = (f"{'point':<{label_w}}{'OS misses':>12}{'OS time':>14}"
              + "".join(f"{k:>14}" for k in extra_keys))
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        row = (f"{p.label:<{label_w}}{p.os_misses:>12,}{p.os_time:>14,}"
               + "".join(f"{p.extra.get(k, 0):>14,.0f}" for k in extra_keys))
        lines.append(row)
    return "\n".join(lines)


#: Studies whose derivation inputs need profiling runs of the standard
#: systems; the runner pre-computes those cells through the parallel
#: engine when built with multiple workers.
_PROFILED_STUDIES = {
    "update_policy": ["Base"],
    "hotspot_count": ["Base", "BCoh_RelUp"],
}


def run_study(name: str, workload: str = "TRFD_4", scale: float = 0.3,
              seed: int = 1996,
              runner: Optional[ExperimentRunner] = None,
              cache_dir: Optional[str] = None,
              workers: Optional[int] = 1) -> List[AblationPoint]:
    """Run one named study (convenience for the CLI and benches).

    *cache_dir* attaches the on-disk artifact cache so a study reuses
    traces/derivations produced by earlier sweeps; *workers* > 1 runs
    the study's profiling cells through the parallel engine first.
    """
    if runner is None:
        from repro.experiments.artifacts import ArtifactCache
        cache = ArtifactCache(cache_dir) if cache_dir else None
        runner = ExperimentRunner(scale=scale, seed=seed, cache=cache,
                                  workers=workers)
    try:
        study = ALL_STUDIES[name]
    except KeyError:
        raise KeyError(f"unknown study {name!r}; "
                       f"choose from {sorted(ALL_STUDIES)}") from None
    profiles = _PROFILED_STUDIES.get(name)
    if profiles and runner.workers > 1:
        runner.run_cells([(workload, config, None) for config in profiles])
    return study(runner, workload)
