"""Sweep submissions and the service's thread-safe job queue.

The sweep service (:mod:`repro.experiments.service`) accepts sweep
requests — workload x scheme x scale matrices — from many clients and
runs them one at a time against a shared warm
:class:`~repro.experiments.parallel.WorkerPool` and artifact cache.
This module holds the data model of that pipeline:

* :class:`SweepRequest` — an immutable, validated submission.  Built
  from a JSON payload (:meth:`SweepRequest.from_payload`), which may
  name workloads directly (built-in profiles or self-describing
  ``gen:...`` names) or carry a ``generate`` block that the service
  expands through :func:`repro.synthetic.generator.sample`.
* :class:`SweepJob` — one queued request plus its mutable lifecycle
  state (``queued -> running -> done | failed | cancelled``), a cancel
  event the engine polls, and the result/summary payloads the HTTP API
  serves.
* :class:`JobQueue` — a condition-variable queue the HTTP handlers
  push into and the service's dispatcher thread pops from.

Nothing here touches HTTP or processes; the queue is plain threading so
it is directly testable without sockets.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ProfileError, ReproError

#: Lifecycle states of a job.  Terminal states are DONE/FAILED/CANCELLED.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL = (DONE, FAILED, CANCELLED)


class BadRequestError(ReproError):
    """A sweep submission is malformed (HTTP 400)."""


def cell_id(workload: str, config: str, scale: float) -> str:
    """Stable string key of one (workload, config, scale) cell."""
    return f"{workload}|{config}|{scale:g}"


@dataclasses.dataclass(frozen=True)
class SweepRequest:
    """One validated sweep submission: the full cross product of
    ``workloads x configs x scales`` at a fixed trace seed."""

    workloads: Tuple[str, ...]
    configs: Tuple[str, ...]
    scales: Tuple[float, ...] = (0.1,)
    seed: int = 1996
    #: Cache set associativity of the simulated machine (1 = the
    #: paper's direct-mapped testbed).
    assoc: int = 1
    #: Bus width in bytes; ``None`` keeps the Base machine's 8.
    bus_width: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Any) -> "SweepRequest":
        """Build a request from a decoded JSON body, validating shape.

        Raises :class:`BadRequestError` (mapped to HTTP 400) on any
        malformed field.  A ``generate`` block is expanded here — at
        submission time, not run time — so the job's workload list is
        concrete and the status API can echo it back.
        """
        if not isinstance(payload, dict):
            raise BadRequestError("body must be a JSON object")
        known = {"workloads", "configs", "scales", "scale", "seed",
                 "generate", "assoc", "bus_width"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise BadRequestError(f"unknown fields {unknown}; "
                                  f"expected {sorted(known)}")
        workloads = list(_str_list(payload, "workloads"))
        workloads.extend(_expand_generate(payload.get("generate")))
        if not workloads:
            raise BadRequestError(
                "no workloads: give 'workloads' and/or a 'generate' block")
        configs = _str_list(payload, "configs")
        if not configs:
            raise BadRequestError("'configs' must name at least one scheme")
        scales = payload.get("scales", payload.get("scale", (0.1,)))
        if isinstance(scales, (int, float)):
            scales = (scales,)
        if not isinstance(scales, (list, tuple)) or not scales:
            raise BadRequestError("'scales' must be a number or a "
                                  "non-empty list of numbers")
        try:
            scales = tuple(float(s) for s in scales)
        except (TypeError, ValueError):
            raise BadRequestError("'scales' must contain numbers")
        if any(not 0.0 < s <= 4.0 for s in scales):
            raise BadRequestError("every scale must be in (0, 4]")
        seed = payload.get("seed", 1996)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise BadRequestError("'seed' must be an integer")
        assoc = payload.get("assoc", 1)
        if not isinstance(assoc, int) or isinstance(assoc, bool):
            raise BadRequestError("'assoc' must be an integer")
        bus_width = payload.get("bus_width")
        if bus_width is not None and (
                not isinstance(bus_width, int) or isinstance(bus_width, bool)):
            raise BadRequestError("'bus_width' must be an integer")
        request = cls(workloads=tuple(workloads), configs=tuple(configs),
                      scales=scales, seed=seed, assoc=assoc,
                      bus_width=bus_width)
        request.validate()
        return request

    def validate(self) -> None:
        """Resolve every workload and scheme name, or raise 400."""
        from repro.sim.config import all_configs, resolve_config
        from repro.synthetic.profiles import get_profile
        for name in self.workloads:
            try:
                get_profile(name)
            except (KeyError, ProfileError) as err:
                raise BadRequestError(f"unknown workload {name!r}: {err}")
        unknown = []
        for c in self.configs:
            try:
                resolve_config(c)
            except KeyError:
                unknown.append(c)
        if unknown:
            raise BadRequestError(f"unknown configs {unknown}; choose "
                                  f"from {list(all_configs())} or a "
                                  f"'Hyb_UpdN@N<k>' / 'Hyb_Deg@T<k>'")
        from repro.common.errors import ConfigError
        try:
            self.machine()
        except ConfigError as err:
            raise BadRequestError(f"bad machine: {err}")

    def num_cpus(self) -> int:
        """The widest CPU count any workload in the matrix needs."""
        from repro.synthetic.profiles import get_profile
        return max(get_profile(name).num_cpus for name in self.workloads)

    def machine(self):
        """The simulated machine the whole matrix runs on: sized to the
        widest workload, with the request's associativity/bus width."""
        from repro.common.params import machine_for
        return machine_for(self.num_cpus(), assoc=self.assoc,
                           bus_width_bytes=self.bus_width)

    def cells(self, scale: float) -> List[Tuple[str, str, None]]:
        """The engine cells of one scale (machine filled in by caller)."""
        return [(w, c, None) for w in self.workloads for c in self.configs]

    def total_cells(self) -> int:
        return len(self.workloads) * len(self.configs) * len(self.scales)

    def describe(self) -> Dict[str, Any]:
        described = {"workloads": list(self.workloads),
                     "configs": list(self.configs),
                     "scales": list(self.scales), "seed": self.seed,
                     "cells": self.total_cells()}
        if self.assoc != 1:
            described["assoc"] = self.assoc
        if self.bus_width is not None:
            described["bus_width"] = self.bus_width
        return described


def _str_list(payload: Dict[str, Any], field: str) -> Tuple[str, ...]:
    value = payload.get(field, ())
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, (list, tuple)) or \
            not all(isinstance(v, str) and v for v in value):
        raise BadRequestError(f"'{field}' must be a list of names")
    return tuple(value)


def _expand_generate(block: Any) -> List[str]:
    """Expand a ``generate`` block into concrete ``gen:...`` names."""
    if block is None:
        return []
    if not isinstance(block, dict):
        raise BadRequestError("'generate' must be an object")
    from repro.synthetic import generator
    known = {"count", "seed", "families", "cpus", "intensities", "patterns"}
    unknown = sorted(set(block) - known)
    if unknown:
        raise BadRequestError(f"unknown generate fields {unknown}; "
                              f"expected {sorted(known)}")
    count = block.get("count", 4)
    if not isinstance(count, int) or isinstance(count, bool) or \
            not 1 <= count <= 256:
        raise BadRequestError("'generate.count' must be an int in [1, 256]")
    kwargs: Dict[str, Any] = {"seed": block.get("seed", 0)}
    if not isinstance(kwargs["seed"], int) or isinstance(kwargs["seed"], bool):
        raise BadRequestError("'generate.seed' must be an integer")
    if block.get("families"):
        kwargs["families"] = tuple(block["families"])
    if block.get("cpus"):
        kwargs["num_cpus"] = tuple(int(c) for c in block["cpus"])
    if block.get("intensities"):
        kwargs["intensities"] = tuple(float(v) for v in block["intensities"])
    if block.get("patterns"):
        kwargs["patterns"] = tuple(block["patterns"])
    try:
        workloads = generator.sample(count, **kwargs)
    except (ProfileError, TypeError, ValueError) as err:
        raise BadRequestError(f"bad generate block: {err}")
    return [w.name for w in workloads]


class SweepJob:
    """One submission's lifecycle state, shared between the HTTP
    handlers (readers) and the dispatcher thread (writer).

    Mutable fields are guarded by the owning :class:`JobQueue` lock —
    always go through :meth:`JobQueue.update` / :meth:`status` rather
    than poking attributes from another thread.
    """

    def __init__(self, job_id: str, request: SweepRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.state = QUEUED
        self.cancel_event = threading.Event()
        self.error: Optional[str] = None
        #: Per-job JSONL ledger (set by the service when the job starts).
        self.ledger_path: Optional[str] = None
        #: cell_id -> SystemMetrics snapshot dict, filled when DONE.
        self.results: Dict[str, Dict[str, Any]] = {}
        #: Aggregate counters: cells served from the warm metrics cache,
        #: sim/trace/derive jobs actually executed, cache hits.
        self.counters: Dict[str, int] = {}

    def status(self) -> Dict[str, Any]:
        """JSON-ready status snapshot (no full metrics)."""
        return {"job_id": self.job_id, "state": self.state,
                "request": self.request.describe(),
                "error": self.error,
                "ledger": self.ledger_path,
                "counters": dict(self.counters)}


class JobQueue:
    """FIFO queue of :class:`SweepJob` with blocking hand-off.

    The HTTP layer calls :meth:`submit` / :meth:`cancel` / :meth:`get`;
    the dispatcher thread blocks in :meth:`next_job`.  :meth:`close`
    wakes the dispatcher so the service can shut down promptly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, SweepJob] = {}
        self._fifo: List[str] = []
        self._ids = itertools.count(1)
        self._closed = False

    def submit(self, request: SweepRequest) -> SweepJob:
        with self._ready:
            if self._closed:
                raise ReproError("queue is closed")
            job = SweepJob(f"job-{next(self._ids):04d}", request)
            self._jobs[job.job_id] = job
            self._fifo.append(job.job_id)
            self._ready.notify()
            return job

    def next_job(self, timeout: Optional[float] = None,
                 ) -> Optional[SweepJob]:
        """Pop the oldest queued job, marking it RUNNING.

        Blocks up to *timeout* seconds; returns ``None`` on timeout or
        once the queue is closed.  Jobs cancelled while still queued are
        drained here (marked CANCELLED, never dispatched).
        """
        with self._ready:
            while True:
                while self._fifo:
                    job = self._jobs[self._fifo.pop(0)]
                    if job.cancel_event.is_set():
                        job.state = CANCELLED
                        continue
                    job.state = RUNNING
                    return job
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None

    def get(self, job_id: str) -> Optional[SweepJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def update(self, job: SweepJob, state: Optional[str] = None,
               error: Optional[str] = None, **counters: int) -> None:
        """Atomically publish dispatcher-side progress on *job*."""
        with self._lock:
            if state is not None:
                job.state = state
            if error is not None:
                job.error = error
            job.counters.update(counters)

    def cancel(self, job_id: str) -> Optional[SweepJob]:
        """Request cancellation; returns the job, or ``None`` if unknown.

        A queued job is cancelled immediately; a running job's engine
        raises :class:`~repro.common.errors.SweepCancelledError` at its
        next scheduling point.  Terminal jobs are left untouched.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state not in TERMINAL:
                job.cancel_event.set()
                if job.state == QUEUED:
                    job.state = CANCELLED
            return job

    def jobs(self) -> List[SweepJob]:
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def close(self) -> None:
        with self._ready:
            self._closed = True
            self._ready.notify_all()
