"""Parallel experiment engine: the sweep matrix as a job DAG.

A paper sweep is a workload x configuration matrix.  Serially it is
bottlenecked by Python's single-core simulation loop; but the matrix
decomposes naturally into independent jobs:

* ``trace`` — generate one workload's trace (no dependencies);
* ``derive`` — run the derivation pipeline of one workload (profile on
  Base, select the update core, profile on BCoh_RelUp, pick hot spots,
  build the prefetched trace); depends on that workload's trace;
* ``sim`` — simulate one (workload, config, machine) cell; depends on
  the trace, plus the derivation when the config uses privatization,
  selective update, or hot-spot prefetching.

:class:`ParallelEngine` schedules these jobs across a
:class:`concurrent.futures.ProcessPoolExecutor` (worker count
configurable, default ``os.cpu_count()``).  Workers exchange artifacts
through the content-addressed on-disk cache
(:mod:`repro.experiments.artifacts`) rather than over pickled pipes:
a ``derive`` job writes the privatized/prefetched traces, update pages,
and hot-spot list into the cache, and the ``sim`` jobs that depend on it
read them back.  Every job is a deterministic function of its inputs,
so the merged result map is bit-identical to a serial sweep regardless
of worker count, completion order, or cache temperature.

The ``derive`` job necessarily simulates Base and BCoh_RelUp on the
engine's machine (the paper derives its optimizations from profiling
runs); those metrics are returned as results, so requested cells they
cover are never simulated twice.
"""

from __future__ import annotations

import dataclasses
import os
import sys
import tempfile
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import BASE_MACHINE, MachineParams
from repro.experiments.artifacts import ArtifactCache, SimKey
from repro.sim.config import standard_configs
from repro.sim.metrics import SystemMetrics

#: A simulation cell: (workload, config name, machine).
Cell = Tuple[str, str, MachineParams]

#: Config names whose metrics fall out of a derivation run for free.
DERIVE_PROFILES = ("Base", "BCoh_RelUp")


@dataclasses.dataclass(frozen=True)
class Job:
    """One node of the sweep DAG."""

    job_id: str
    kind: str  # "trace" | "derive" | "sim"
    workload: str
    config: str = ""
    machine: Optional[MachineParams] = None
    deps: Tuple[str, ...] = ()
    #: For derive jobs: requested profile configs whose metrics this job
    #: must return (on a warm cache the derivation alone runs no sims).
    profiles: Tuple[str, ...] = ()

    def label(self) -> str:
        parts = [self.kind, self.workload]
        if self.config:
            parts.append(self.config)
        return " ".join(parts)


def _needs_derivation(config_name: str) -> bool:
    config = standard_configs()[config_name]
    return (config.privatize or config.selective_update
            or config.hotspot_prefetch)


def plan_jobs(cells: Sequence[Cell],
              machine: MachineParams) -> List[Job]:
    """Decompose *cells* into a dependency-ordered job list.

    *machine* is the engine's profiling machine: derivations run on it
    (matching :class:`~repro.experiments.runner.ExperimentRunner`), and
    cells it covers via :data:`DERIVE_PROFILES` get no ``sim`` job.
    """
    workloads: List[str] = []
    derive: List[str] = []
    for workload, config, _m in cells:
        if workload not in workloads:
            workloads.append(workload)
        if _needs_derivation(config) and workload not in derive:
            derive.append(workload)

    covered: Dict[str, List[str]] = {w: [] for w in derive}
    sims: List[Job] = []
    seen = set()
    for workload, config, cell_machine in cells:
        key = SimKey.of(workload, config, cell_machine)
        if key in seen:
            continue
        seen.add(key)
        if (workload in derive and config in DERIVE_PROFILES
                and cell_machine == machine):
            covered[workload].append(config)  # produced by the derive job
            continue
        dep = (f"derive:{workload}" if _needs_derivation(config)
               else f"trace:{workload}")
        sims.append(Job(f"sim:{workload}:{config}:{key.machine}", "sim",
                        workload, config=config, machine=cell_machine,
                        deps=(dep,)))

    jobs: List[Job] = []
    for workload in workloads:
        jobs.append(Job(f"trace:{workload}", "trace", workload))
    for workload in derive:
        jobs.append(Job(f"derive:{workload}", "derive", workload,
                        deps=(f"trace:{workload}",),
                        profiles=tuple(covered[workload])))
    jobs.extend(sims)
    return jobs


def _execute_job(payload: dict) -> Tuple[str, float, List[Tuple[SimKey, SystemMetrics]], dict]:
    """Worker entry point: run one job against the shared disk cache."""
    from repro.experiments.runner import ExperimentRunner

    start = time.time()
    cache = ArtifactCache(payload["cache_dir"])
    runner = ExperimentRunner(scale=payload["scale"], seed=payload["seed"],
                              machine=payload["machine"],
                              cache=cache, workers=1)
    kind = payload["kind"]
    results: List[Tuple[SimKey, SystemMetrics]] = []
    if kind == "trace":
        runner.trace(payload["workload"])
    elif kind == "derive":
        runner.derive_all(payload["workload"])
        for config in payload["profiles"]:
            runner.run(payload["workload"], config)
        results = sorted(runner._metrics.items(),
                         key=lambda item: (item[0].workload, item[0].config))
    elif kind == "sim":
        metrics = runner.run(payload["workload"], payload["config"],
                             machine=payload["sim_machine"])
        results = [(SimKey.of(payload["workload"], payload["config"],
                              payload["sim_machine"]), metrics)]
    else:  # pragma: no cover - planner only emits the kinds above
        raise ValueError(f"unknown job kind {kind!r}")
    return payload["job_id"], time.time() - start, results, dict(cache.stats)


class ParallelEngine:
    """Executes a sweep's job DAG across a process pool."""

    def __init__(self, scale: float = 0.5, seed: int = 1996,
                 machine: MachineParams = BASE_MACHINE,
                 cache: Optional[ArtifactCache] = None,
                 workers: Optional[int] = None) -> None:
        self.scale = scale
        self.seed = seed
        self.machine = machine
        self.cache = cache
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        #: Aggregated worker-side cache stats of the last execute() call.
        self.last_stats: Counter = Counter()

    def _payload(self, job: Job, cache_dir: str) -> dict:
        return {
            "job_id": job.job_id,
            "kind": job.kind,
            "workload": job.workload,
            "config": job.config,
            "sim_machine": job.machine,
            "profiles": job.profiles,
            "scale": self.scale,
            "seed": self.seed,
            "machine": self.machine,
            "cache_dir": cache_dir,
        }

    def execute(self, cells: Sequence[Cell], verbose: bool = False,
                ) -> Dict[SimKey, SystemMetrics]:
        """Run every cell; returns metrics keyed by :class:`SimKey`.

        The result map also contains the Base/BCoh_RelUp profiling
        metrics of derived workloads (they fall out of the derive jobs),
        which callers may merge into their own caches.
        """
        cells = [(w, c, m if m is not None else self.machine)
                 for (w, c, m) in cells]
        jobs = plan_jobs(cells, self.machine)
        tmp: Optional[tempfile.TemporaryDirectory] = None
        if self.cache is not None:
            cache_dir = self.cache.root
        else:
            tmp = tempfile.TemporaryDirectory(prefix="repro-artifacts-")
            cache_dir = tmp.name
        try:
            return self._run_jobs(jobs, cache_dir, verbose)
        finally:
            if tmp is not None:
                tmp.cleanup()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _run_jobs(self, jobs: List[Job], cache_dir: str,
                  verbose: bool) -> Dict[SimKey, SystemMetrics]:
        by_id = {job.job_id: job for job in jobs}
        pending = {job.job_id: set(job.deps) for job in jobs}
        for job_id, deps in pending.items():
            missing = deps - by_id.keys()
            if missing:  # pragma: no cover - planner invariant
                raise ValueError(f"job {job_id} depends on unknown {missing}")
        start = time.time()
        done_count = 0
        results: Dict[SimKey, SystemMetrics] = {}
        self.last_stats: Counter = Counter()
        self._log(verbose, f"[engine] {len(jobs)} jobs across "
                           f"{self.workers} workers (cache: {cache_dir})")
        max_workers = max(1, min(self.workers, len(jobs)))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            running = {}

            def submit_ready() -> None:
                for job_id in list(pending):
                    if not pending[job_id]:
                        job = by_id[job_id]
                        running[pool.submit(
                            _execute_job,
                            self._payload(job, cache_dir))] = job_id
                        del pending[job_id]

            submit_ready()
            while running:
                finished, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in finished:
                    job_id = running.pop(future)
                    done_id, elapsed, job_results, stats = future.result()
                    assert done_id == job_id
                    for key, metrics in job_results:
                        results[key] = metrics
                    self.last_stats.update(stats)
                    done_count += 1
                    self._log(verbose,
                              f"[{done_count:>3}/{len(jobs)}] "
                              f"{elapsed:>6.1f}s  {by_id[job_id].label()}")
                    for deps in pending.values():
                        deps.discard(job_id)
                submit_ready()
        hits = sum(n for e, n in self.last_stats.items()
                   if e.endswith(".hit"))
        stores = sum(n for e, n in self.last_stats.items()
                     if e.endswith(".store"))
        self._log(verbose, f"[engine] sweep finished in "
                           f"{time.time() - start:.1f}s "
                           f"({done_count} jobs, cache: {hits} hits, "
                           f"{stores} stores)")
        return results

    @staticmethod
    def _log(verbose: bool, message: str) -> None:
        if verbose:
            print(message, file=sys.stderr, flush=True)
