"""Extension experiments: section 7's future-work directions, built out.

The paper's discussion names two further optimizations it did not
evaluate:

* *"page placement schemes that reduce conflicts in the secondary
  cache"* (Bershad et al., Kessler & Hill) — :func:`page_coloring_study`
  re-generates a workload with a cache-color-aware frame allocator and
  measures the conflict-miss change, including the paper's caveat that
  page-grain placement cannot help the kernel's many sub-page
  structures;
* *"the insertion of more prefetches"*, limited by the kernel's
  pointer-intensive nature — covered by
  :func:`repro.experiments.ablations.hotspot_count_study`.

Both are reported as extensions in EXPERIMENTS.md rather than as paper
reproductions: the paper gives no numbers to match, only the direction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.common.params import BASE_MACHINE, MachineParams
from repro.common.types import MissKind
from repro.sim.config import SystemConfig
from repro.sim.system import simulate
from repro.synthetic.workloads import WORKLOAD_ORDER, generate


@dataclasses.dataclass(frozen=True)
class ColoringResult:
    """Default-vs-colored page placement on one workload."""

    workload: str
    default_misses: int
    colored_misses: int
    default_other: int
    colored_other: int
    default_os_time: int
    colored_os_time: int

    @property
    def miss_ratio(self) -> float:
        return self.colored_misses / max(1, self.default_misses)

    @property
    def other_ratio(self) -> float:
        """Conflict-dominated ("Other") misses: the target of coloring."""
        return self.colored_other / max(1, self.default_other)

    @property
    def time_ratio(self) -> float:
        return self.colored_os_time / max(1, self.default_os_time)


def page_coloring_study(workload: str, seed: int = 1996, scale: float = 0.3,
                        machine: MachineParams = BASE_MACHINE,
                        ) -> ColoringResult:
    """Measure cache-color-aware page placement on *workload*."""
    config = SystemConfig("coloring-probe", machine)
    default = simulate(generate(workload, seed=seed, scale=scale), config)
    colored = simulate(
        generate(workload, seed=seed, scale=scale, frame_policy="colored"),
        config)
    return ColoringResult(
        workload=workload,
        default_misses=default.os_read_misses(),
        colored_misses=colored.os_read_misses(),
        default_other=default.os_miss_kind.get(MissKind.OTHER, 0),
        colored_other=colored.os_miss_kind.get(MissKind.OTHER, 0),
        default_os_time=default.os_time().total,
        colored_os_time=colored.os_time().total,
    )


def page_coloring_sweep(seed: int = 1996, scale: float = 0.3,
                        workloads: List[str] = None,
                        workers: int = 1) -> Dict[str, ColoringResult]:
    """Run the coloring study on every workload.

    The per-workload studies are independent, so *workers* > 1 fans
    them out across a process pool; results are merged in workload
    order, identical to a serial sweep.
    """
    workloads = list(workloads or WORKLOAD_ORDER)
    if workers > 1 and len(workloads) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(
                max_workers=min(workers, len(workloads))) as pool:
            futures = {w: pool.submit(page_coloring_study, w,
                                      seed=seed, scale=scale)
                       for w in workloads}
            return {w: futures[w].result() for w in workloads}
    return {w: page_coloring_study(w, seed=seed, scale=scale)
            for w in workloads}


def render_coloring(results: Dict[str, ColoringResult]) -> str:
    """Aligned-text rendering of a coloring sweep."""
    lines = ["Page-coloring extension (section 7)", ""]
    lines.append(f"{'workload':<12}{'OS misses':>22}{'Other misses':>22}"
                 f"{'OS time':>10}")
    lines.append("-" * 66)
    for workload, r in results.items():
        lines.append(
            f"{workload:<12}"
            f"{r.default_misses:>10,} -> {r.colored_misses:<8,}"
            f"{r.default_other:>10,} -> {r.colored_other:<8,}"
            f"{r.time_ratio:>9.3f}")
    return "\n".join(lines)
