"""Content-addressed on-disk artifact cache for experiment sweeps.

A full table/figure sweep needs, per workload, a generated trace plus
four derived artifacts (the privatized trace, the update-core selection,
the hot-spot PC list, and the prefetch-annotated trace).  All of them
are deterministic functions of ``(scale, seed, workload, machine
parameters, derivation stage)``, so they can be cached on disk and
shared both *across runs* (a second ``experiments/all.py`` sweep skips
every generation/derivation step) and *across processes* (the parallel
engine's workers exchange artifacts through the cache instead of
pickling multi-megabyte traces over pipes).

Design:

* **Content-addressed keys.**  :func:`stage_key` hashes the canonical
  JSON encoding of every input that the artifact depends on — including
  a full fingerprint of the machine parameters
  (:func:`machine_fingerprint`) and the cache format version — so any
  parameter change lands in a fresh slot and stale entries are simply
  never read again.
* **NPZ payloads for traces** via :mod:`repro.trace.npzio`; small
  artifacts (update selections, hot-spot lists) are stored as JSON.
* **Corruption safety.**  Writes go to a temporary file in the same
  directory followed by an atomic :func:`os.replace`, and every payload
  gets a SHA-256 sidecar (``<entry>.sha256``) computed at store time.
  Loads verify the sidecar first; an entry whose bytes no longer match
  (bit rot, torn write, manual tampering) is **quarantined** — renamed
  to ``<entry>.quarantined`` so the evidence survives for post-mortems —
  counted as a miss, and recomputed by the caller.  Parse failures on
  legacy entries without a sidecar are quarantined the same way, so a
  bad artifact can never crash a sweep or be silently re-read.  Every
  quarantine is recorded as an ``artifact_corrupt`` event on the run
  ledger (when one is attached), and only the specific corruption
  error classes are caught — an unexpected exception propagates as
  the bug it is.

:class:`SimKey` is the typed key shared by the in-memory metrics cache
of :class:`repro.experiments.runner.ExperimentRunner` and the parallel
engine's result maps.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import zipfile
from collections import Counter
from typing import Any, Dict, List, Optional

from repro.common.errors import ArtifactCorruptError, TraceError
from repro.common.params import MachineParams
from repro.optim.update_select import UpdateSelection
from repro.sim.metrics import SystemMetrics
from repro.trace import npzio
from repro.trace.stream import Trace

#: Bump when the on-disk layout or any cached payload format changes;
#: old entries become unreachable (different key space) rather than
#: misinterpreted.
CACHE_VERSION = 1

#: Known derivation stages, in pipeline order (used for reporting).
STAGES = ("trace", "privatized", "update", "hotspots", "prefetched")

#: Default on-disk cache location used by the CLI (relative to the CWD).
DEFAULT_CACHE_DIR = ".repro-cache"


def machine_fingerprint(machine: MachineParams) -> str:
    """Stable short hash of *every* machine parameter.

    The in-memory runner used to key results by the (L1D, L2) geometry
    tuple only; a persistent cache needs the full parameter set or an
    ablation that tweaks, say, the DMA beat rate would alias the Base
    machine's entries.
    """
    blob = json.dumps(dataclasses.asdict(machine), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class SimKey:
    """Typed key of one simulation cell: who ran, under what, on what."""

    workload: str
    config: str
    machine: str  # machine_fingerprint() of the simulated machine

    @classmethod
    def of(cls, workload: str, config: str,
           machine: MachineParams) -> "SimKey":
        return cls(workload, config, machine_fingerprint(machine))


def stage_key(stage: str, scale: float, seed: int, workload: str,
              machine: Optional[MachineParams] = None,
              extra: Optional[Dict[str, Any]] = None) -> str:
    """Content hash identifying one artifact.

    *machine* is omitted for stages that do not depend on the hardware
    (trace generation and privatization are pure trace transforms).
    """
    payload = {
        "version": CACHE_VERSION,
        "stage": stage,
        "scale": scale,
        "seed": seed,
        "workload": workload,
        "machine": machine_fingerprint(machine) if machine else None,
        "extra": extra or {},
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def metrics_key(scale: float, seed: int, key: SimKey,
                profiling_machine: str) -> str:
    """Content hash identifying one cached simulation *result*.

    Unlike :func:`stage_key`, this keys a finished
    :class:`~repro.sim.metrics.SystemMetrics`, so repeat cells can be
    served without re-simulating (the sweep service's warm path).
    *profiling_machine* is the fingerprint of the machine the derivation
    pipeline profiled on: the update-page set and hot-spot list depend
    on it even when the simulated machine differs (Figures 6-7 sweep
    hardware under a kernel tuned on the Base machine), so conflating
    the two would alias distinct results.
    """
    payload = {
        "version": CACHE_VERSION,
        "stage": "metrics",
        "scale": scale,
        "seed": seed,
        "workload": key.workload,
        "machine": key.machine,
        "extra": {"config": key.config, "profiling": profiling_machine},
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactCache:
    """Directory of content-addressed experiment artifacts.

    Layout: ``<root>/v<CACHE_VERSION>/<key[:2]>/<key>.{npz,json}``.
    Instances are cheap; every worker process opens its own handle on
    the shared directory.  ``stats`` counts ``"<stage>.hit"``,
    ``"<stage>.miss"`` and ``"<stage>.store"`` events so callers (and
    the benchmark suite) can assert what was recomputed.
    """

    def __init__(self, root: str, ledger=None) -> None:
        self.root = os.fspath(root)
        self.dir = os.path.join(self.root, f"v{CACHE_VERSION}")
        self.stats: Counter = Counter()
        #: Optional :class:`repro.experiments.ledger.RunLedger`; every
        #: quarantined artifact is recorded as an ``artifact_corrupt``
        #: event instead of being silently swallowed.
        if ledger is None:
            from repro.experiments.ledger import RunLedger
            ledger = RunLedger.null()
        self.ledger = ledger

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> str:
        return os.path.join(self.dir, key[:2], f"{key}.{kind}")

    @staticmethod
    def _digest(path: str) -> str:
        sha = hashlib.sha256()
        with open(path, "rb") as fp:
            for chunk in iter(lambda: fp.read(1 << 20), b""):
                sha.update(chunk)
        return sha.hexdigest()

    def _atomic_write(self, path: str, writer) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=os.path.basename(path))
        os.close(fd)
        try:
            writer(tmp)
            digest = self._digest(tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        # Sidecar written second: an entry without one is treated as a
        # legacy (parse-validated) entry, never as corrupt.
        self._atomic_sidecar(path, digest)

    def _atomic_sidecar(self, path: str, digest: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".sha256")
        with os.fdopen(fd, "w") as fp:
            fp.write(digest)
        os.replace(tmp, path + ".sha256")

    def _verify(self, path: str) -> None:
        """Check *path* against its hash sidecar, if one exists.

        Raises :class:`ArtifactCorruptError` on mismatch.  Entries from
        caches written before sidecars existed pass (the subsequent
        parse is their only validation, as it always was).
        """
        sidecar = path + ".sha256"
        try:
            with open(sidecar) as fp:
                expected = fp.read().strip()
        except OSError:
            return
        if self._digest(path) != expected:
            raise ArtifactCorruptError(
                f"artifact failed hash verification: {path}", path=path)

    def _quarantine(self, path: str, stage: str = "?",
                    error: Optional[BaseException] = None) -> None:
        """Move a corrupt entry (and its sidecar) out of the key space.

        The renamed ``*.quarantined`` copy keeps the evidence for
        debugging; the original path becomes a plain miss so the caller
        regenerates it.  Falls back to deletion if the rename fails.
        The corruption is recorded as an ``artifact_corrupt`` ledger
        event (with the triggering error), never silently swallowed.
        """
        self.ledger.record("artifact_corrupt", stage=stage, path=path,
                           error=repr(error) if error is not None else None,
                           worker_pid=os.getpid())
        for victim in (path, path + ".sha256"):
            if not os.path.exists(victim):
                continue
            try:
                os.replace(victim, victim + ".quarantined")
            except OSError:
                try:
                    os.unlink(victim)
                except OSError:
                    pass

    def _drop(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def load_trace(self, key: str, stage: str = "trace") -> Optional[Trace]:
        """The cached trace under *key*, or ``None`` (miss/corrupt)."""
        path = self._path(key, "npz")
        if not os.path.exists(path):
            self.stats[f"{stage}.miss"] += 1
            return None
        try:
            self._verify(path)
            trace = npzio.load(path)
        except (ArtifactCorruptError, TraceError, zipfile.BadZipFile,
                OSError, ValueError, KeyError, EOFError) as err:
            # Bit rot, truncated write, version skew: quarantine the
            # evidence and let the caller recompute.  Anything outside
            # this set is a real bug and propagates.
            self._quarantine(path, stage=stage, error=err)
            self.stats[f"{stage}.miss"] += 1
            self.stats[f"{stage}.corrupt"] += 1
            self.stats[f"{stage}.quarantine"] += 1
            return None
        self.stats[f"{stage}.hit"] += 1
        return trace

    def store_trace(self, key: str, trace: Trace,
                    stage: str = "trace") -> None:
        self._atomic_write(self._path(key, "npz"),
                           lambda tmp: npzio.save(trace, tmp))
        self.stats[f"{stage}.store"] += 1

    # ------------------------------------------------------------------
    # JSON artifacts
    # ------------------------------------------------------------------
    def load_json(self, key: str, stage: str) -> Optional[Any]:
        """The cached JSON payload under *key*, or ``None``."""
        path = self._path(key, "json")
        if not os.path.exists(path):
            self.stats[f"{stage}.miss"] += 1
            return None
        try:
            self._verify(path)
            with open(path) as fp:
                envelope = json.load(fp)
            if not isinstance(envelope, dict):
                raise ValueError("cache envelope is not an object")
            if envelope.get("version") != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            payload = envelope["payload"]
        except (ArtifactCorruptError, OSError, ValueError,
                KeyError) as err:
            self._quarantine(path, stage=stage, error=err)
            self.stats[f"{stage}.miss"] += 1
            self.stats[f"{stage}.corrupt"] += 1
            self.stats[f"{stage}.quarantine"] += 1
            return None
        self.stats[f"{stage}.hit"] += 1
        return payload

    def store_json(self, key: str, payload: Any, stage: str) -> None:
        envelope = {"version": CACHE_VERSION, "stage": stage,
                    "payload": payload}

        def writer(tmp: str) -> None:
            with open(tmp, "w") as fp:
                json.dump(envelope, fp)

        self._atomic_write(self._path(key, "json"), writer)
        self.stats[f"{stage}.store"] += 1

    # ------------------------------------------------------------------
    # Typed helpers for the derivation pipeline's small artifacts
    # ------------------------------------------------------------------
    def load_update_selection(self, key: str) -> Optional[UpdateSelection]:
        payload = self.load_json(key, "update")
        if payload is None:
            return None
        try:
            return UpdateSelection(
                pages=[int(p) for p in payload["pages"]],
                variables=[str(v) for v in payload["variables"]],
                core_bytes=int(payload["core_bytes"]),
                covered_misses=int(payload["covered_misses"]))
        except (KeyError, TypeError, ValueError) as err:
            # Valid JSON, wrong shape: quarantine so the entry is
            # regenerated instead of failing identically forever.
            self._quarantine(self._path(key, "json"), stage="update",
                             error=err)
            self.stats["update.corrupt"] += 1
            self.stats["update.quarantine"] += 1
            return None

    def store_update_selection(self, key: str,
                               selection: UpdateSelection) -> None:
        self.store_json(key, {
            "pages": list(selection.pages),
            "variables": list(selection.variables),
            "core_bytes": selection.core_bytes,
            "covered_misses": selection.covered_misses,
        }, "update")

    def load_hotspots(self, key: str) -> Optional[List[int]]:
        payload = self.load_json(key, "hotspots")
        if payload is None:
            return None
        try:
            return [int(pc) for pc in payload]
        except (TypeError, ValueError) as err:
            self._quarantine(self._path(key, "json"), stage="hotspots",
                             error=err)
            self.stats["hotspots.corrupt"] += 1
            self.stats["hotspots.quarantine"] += 1
            return None

    def store_hotspots(self, key: str, pcs: List[int]) -> None:
        self.store_json(key, list(pcs), "hotspots")

    def load_metrics(self, key: str) -> Optional[SystemMetrics]:
        """The cached simulation result under *key*, or ``None``.

        Restores through :meth:`SystemMetrics.from_snapshot`, whose
        round trip is exact — a cell served from here is bit-identical
        (snapshot-equal) to re-running the simulation.
        """
        payload = self.load_json(key, "metrics")
        if payload is None:
            return None
        try:
            return SystemMetrics.from_snapshot(payload)
        except (KeyError, TypeError, ValueError, AttributeError) as err:
            # Valid JSON, wrong shape (or a snapshot from an
            # incompatible interpreter): quarantine and re-simulate.
            self._quarantine(self._path(key, "json"), stage="metrics",
                             error=err)
            self.stats["metrics.corrupt"] += 1
            self.stats["metrics.quarantine"] += 1
            return None

    def store_metrics(self, key: str, metrics: SystemMetrics) -> None:
        """Persist a simulation result; a no-op when already stored.

        Simulation is deterministic, so a current-version entry under
        *key* already holds exactly these bytes — skipping the rewrite
        keeps warm re-runs store-free.  A bit-flipped entry still
        self-heals: the next load quarantines it (renaming the file),
        after which this store writes a fresh copy.
        """
        try:
            with open(self._path(key, "json")) as fp:
                if json.load(fp).get("version") == CACHE_VERSION:
                    return
        except (OSError, ValueError):
            pass  # absent, unreadable, or garbage: (re)write below
        self.store_json(key, metrics.snapshot(), "metrics")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hits(self) -> int:
        return sum(n for e, n in self.stats.items() if e.endswith(".hit"))

    def misses(self) -> int:
        return sum(n for e, n in self.stats.items() if e.endswith(".miss"))

    def stores(self) -> int:
        return sum(n for e, n in self.stats.items() if e.endswith(".store"))

    def quarantines(self) -> int:
        return sum(n for e, n in self.stats.items()
                   if e.endswith(".quarantine"))

    def summary(self) -> str:
        text = (f"{self.hits()} hits, {self.misses()} misses, "
                f"{self.stores()} stores")
        if self.quarantines():
            text += f", {self.quarantines()} quarantined"
        return text
