"""Content-addressed on-disk artifact cache for experiment sweeps.

A full table/figure sweep needs, per workload, a generated trace plus
four derived artifacts (the privatized trace, the update-core selection,
the hot-spot PC list, and the prefetch-annotated trace).  All of them
are deterministic functions of ``(scale, seed, workload, machine
parameters, derivation stage)``, so they can be cached on disk and
shared both *across runs* (a second ``experiments/all.py`` sweep skips
every generation/derivation step) and *across processes* (the parallel
engine's workers exchange artifacts through the cache instead of
pickling multi-megabyte traces over pipes).

Design:

* **Content-addressed keys.**  :func:`stage_key` hashes the canonical
  JSON encoding of every input that the artifact depends on — including
  a full fingerprint of the machine parameters
  (:func:`machine_fingerprint`) and the cache format version — so any
  parameter change lands in a fresh slot and stale entries are simply
  never read again.
* **NPZ payloads for traces** via :mod:`repro.trace.npzio`; small
  artifacts (update selections, hot-spot lists) are stored as JSON.
* **Corruption safety.**  Writes go to a temporary file in the same
  directory followed by an atomic :func:`os.replace`; loads treat *any*
  failure (truncated archive, bad JSON, version mismatch) as a cache
  miss, delete the offending file, and let the caller recompute.

:class:`SimKey` is the typed key shared by the in-memory metrics cache
of :class:`repro.experiments.runner.ExperimentRunner` and the parallel
engine's result maps.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from collections import Counter
from typing import Any, Dict, List, Optional

from repro.common.params import MachineParams
from repro.optim.update_select import UpdateSelection
from repro.trace import npzio
from repro.trace.stream import Trace

#: Bump when the on-disk layout or any cached payload format changes;
#: old entries become unreachable (different key space) rather than
#: misinterpreted.
CACHE_VERSION = 1

#: Known derivation stages, in pipeline order (used for reporting).
STAGES = ("trace", "privatized", "update", "hotspots", "prefetched")

#: Default on-disk cache location used by the CLI (relative to the CWD).
DEFAULT_CACHE_DIR = ".repro-cache"


def machine_fingerprint(machine: MachineParams) -> str:
    """Stable short hash of *every* machine parameter.

    The in-memory runner used to key results by the (L1D, L2) geometry
    tuple only; a persistent cache needs the full parameter set or an
    ablation that tweaks, say, the DMA beat rate would alias the Base
    machine's entries.
    """
    blob = json.dumps(dataclasses.asdict(machine), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class SimKey:
    """Typed key of one simulation cell: who ran, under what, on what."""

    workload: str
    config: str
    machine: str  # machine_fingerprint() of the simulated machine

    @classmethod
    def of(cls, workload: str, config: str,
           machine: MachineParams) -> "SimKey":
        return cls(workload, config, machine_fingerprint(machine))


def stage_key(stage: str, scale: float, seed: int, workload: str,
              machine: Optional[MachineParams] = None,
              extra: Optional[Dict[str, Any]] = None) -> str:
    """Content hash identifying one artifact.

    *machine* is omitted for stages that do not depend on the hardware
    (trace generation and privatization are pure trace transforms).
    """
    payload = {
        "version": CACHE_VERSION,
        "stage": stage,
        "scale": scale,
        "seed": seed,
        "workload": workload,
        "machine": machine_fingerprint(machine) if machine else None,
        "extra": extra or {},
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ArtifactCache:
    """Directory of content-addressed experiment artifacts.

    Layout: ``<root>/v<CACHE_VERSION>/<key[:2]>/<key>.{npz,json}``.
    Instances are cheap; every worker process opens its own handle on
    the shared directory.  ``stats`` counts ``"<stage>.hit"``,
    ``"<stage>.miss"`` and ``"<stage>.store"`` events so callers (and
    the benchmark suite) can assert what was recomputed.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self.dir = os.path.join(self.root, f"v{CACHE_VERSION}")
        self.stats: Counter = Counter()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _path(self, key: str, kind: str) -> str:
        return os.path.join(self.dir, key[:2], f"{key}.{kind}")

    def _atomic_write(self, path: str, writer) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=os.path.basename(path))
        os.close(fd)
        try:
            writer(tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _drop(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Traces
    # ------------------------------------------------------------------
    def load_trace(self, key: str, stage: str = "trace") -> Optional[Trace]:
        """The cached trace under *key*, or ``None`` (miss/corrupt)."""
        path = self._path(key, "npz")
        if not os.path.exists(path):
            self.stats[f"{stage}.miss"] += 1
            return None
        try:
            trace = npzio.load(path)
        except Exception:
            # Truncated download, crashed writer, version skew: recompute.
            self._drop(path)
            self.stats[f"{stage}.miss"] += 1
            self.stats[f"{stage}.corrupt"] += 1
            return None
        self.stats[f"{stage}.hit"] += 1
        return trace

    def store_trace(self, key: str, trace: Trace,
                    stage: str = "trace") -> None:
        self._atomic_write(self._path(key, "npz"),
                           lambda tmp: npzio.save(trace, tmp))
        self.stats[f"{stage}.store"] += 1

    # ------------------------------------------------------------------
    # JSON artifacts
    # ------------------------------------------------------------------
    def load_json(self, key: str, stage: str) -> Optional[Any]:
        """The cached JSON payload under *key*, or ``None``."""
        path = self._path(key, "json")
        if not os.path.exists(path):
            self.stats[f"{stage}.miss"] += 1
            return None
        try:
            with open(path) as fp:
                envelope = json.load(fp)
            if envelope.get("version") != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            payload = envelope["payload"]
        except Exception:
            self._drop(path)
            self.stats[f"{stage}.miss"] += 1
            self.stats[f"{stage}.corrupt"] += 1
            return None
        self.stats[f"{stage}.hit"] += 1
        return payload

    def store_json(self, key: str, payload: Any, stage: str) -> None:
        envelope = {"version": CACHE_VERSION, "stage": stage,
                    "payload": payload}

        def writer(tmp: str) -> None:
            with open(tmp, "w") as fp:
                json.dump(envelope, fp)

        self._atomic_write(self._path(key, "json"), writer)
        self.stats[f"{stage}.store"] += 1

    # ------------------------------------------------------------------
    # Typed helpers for the derivation pipeline's small artifacts
    # ------------------------------------------------------------------
    def load_update_selection(self, key: str) -> Optional[UpdateSelection]:
        payload = self.load_json(key, "update")
        if payload is None:
            return None
        try:
            return UpdateSelection(
                pages=[int(p) for p in payload["pages"]],
                variables=[str(v) for v in payload["variables"]],
                core_bytes=int(payload["core_bytes"]),
                covered_misses=int(payload["covered_misses"]))
        except Exception:
            return None

    def store_update_selection(self, key: str,
                               selection: UpdateSelection) -> None:
        self.store_json(key, {
            "pages": list(selection.pages),
            "variables": list(selection.variables),
            "core_bytes": selection.core_bytes,
            "covered_misses": selection.covered_misses,
        }, "update")

    def load_hotspots(self, key: str) -> Optional[List[int]]:
        payload = self.load_json(key, "hotspots")
        if payload is None:
            return None
        try:
            return [int(pc) for pc in payload]
        except Exception:
            return None

    def store_hotspots(self, key: str, pcs: List[int]) -> None:
        self.store_json(key, list(pcs), "hotspots")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hits(self) -> int:
        return sum(n for e, n in self.stats.items() if e.endswith(".hit"))

    def misses(self) -> int:
        return sum(n for e, n in self.stats.items() if e.endswith(".miss"))

    def stores(self) -> int:
        return sum(n for e, n in self.stats.items() if e.endswith(".store"))

    def summary(self) -> str:
        return (f"{self.hits()} hits, {self.misses()} misses, "
                f"{self.stores()} stores")
