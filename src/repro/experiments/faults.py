"""Fault tolerance for sweep execution: retry policy, timeouts, injection.

A multi-hour sweep must survive the failure modes long unattended runs
actually hit: a worker process dying mid-job (OOM killer, segfaulting
native extension), a simulation hanging past any reasonable bound, and
on-disk cache artifacts rotting between runs.  This module holds the
pieces the parallel engine composes:

* :class:`RetryPolicy` — bounded retries with exponential backoff whose
  jitter is a pure function of ``(seed, job_id, attempt)``, so two runs
  of the same sweep back off identically and test logs are reproducible.
* :func:`soft_timeout` — a worker-side wall-clock limit implemented with
  ``SIGALRM``/``setitimer``; a job that overruns raises
  :class:`~repro.common.errors.JobTimeoutError` inside the worker, which
  travels back to the scheduler as an ordinary failed future instead of
  wedging the pool.
* **Fault injection** (:func:`arm_fault` / :func:`consume_fault`) — a
  directory of one-shot marker files that workers consume atomically via
  ``os.unlink``, so a test can arm "SIGKILL the worker running job X,
  exactly once" and the retried attempt runs clean.  Production sweeps
  simply pass no fault directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import signal
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.common.errors import JobTimeoutError

#: Injectable fault actions.
FAULT_KILL = "kill"    # SIGKILL the worker process (worker death)
FAULT_HANG = "hang"    # sleep far past any job timeout
FAULT_RAISE = "raise"  # raise a RuntimeError from the job body

_FAULT_SUFFIX = ".fault"

#: How long an injected hang sleeps; long enough that any sane job
#: timeout fires first, short enough that a misconfigured test without
#: one eventually finishes.
HANG_SECONDS = 120.0


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry behaviour for one sweep.

    ``delay`` grows exponentially with the attempt number, capped at
    ``backoff_cap``, and is jittered by a hash of
    ``(seed, job_id, attempt)`` — deterministic given the run seed, but
    decorrelated across jobs so a burst of failures does not resubmit in
    lockstep.
    """

    #: Re-submissions allowed per job after its first failure.
    max_retries: int = 2
    #: First-retry backoff in seconds.
    backoff_base: float = 0.25
    #: Multiplier per further attempt.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff sleep, seconds.
    backoff_cap: float = 8.0
    #: Worker-side wall-clock limit per job, seconds (None = unlimited).
    job_timeout: Optional[float] = None
    #: Pool reconstructions allowed after worker death before the engine
    #: degrades to serial in-process execution.
    max_pool_rebuilds: int = 2

    def delay(self, seed: int, job_id: str, attempt: int) -> float:
        """Backoff before retry *attempt* (1-based) of *job_id*."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff_cap,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))
        digest = hashlib.sha256(
            f"{seed}:{job_id}:{attempt}".encode()).digest()
        jitter = digest[0] / 255.0  # deterministic in [0, 1]
        return base * (0.5 + 0.5 * jitter)

    def exhausted(self, attempts: int) -> bool:
        """True once *attempts* failures leave no retry budget."""
        return attempts > self.max_retries


# ----------------------------------------------------------------------
# Worker-side wall-clock timeout
# ----------------------------------------------------------------------
@contextmanager
def soft_timeout(seconds: Optional[float],
                 label: str = "job") -> Iterator[None]:
    """Raise :class:`JobTimeoutError` if the body runs past *seconds*.

    Uses ``SIGALRM``, so it only arms in a process's main thread on
    platforms that have it; elsewhere it is a no-op and the scheduler's
    hard deadline is the only guard.
    """
    if not seconds or seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _alarm(signum, frame):
        raise JobTimeoutError(
            f"{label} exceeded its {seconds:g}s wall-clock timeout",
            job_id=label)

    try:
        previous = signal.signal(signal.SIGALRM, _alarm)
    except ValueError:  # not in the main thread: cannot arm a timer
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Fault injection (tests only; no fault_dir => no faults)
# ----------------------------------------------------------------------
def arm_fault(fault_dir: str, action: str, job_match: str,
              count: int = 1) -> None:
    """Arm *count* one-shot faults for jobs whose id starts with
    *job_match*.

    Each armed fault is one marker file; a worker that picks up a
    matching job atomically consumes (unlinks) one marker and executes
    the action, so every fault fires exactly once no matter how many
    workers race for it.
    """
    if action not in (FAULT_KILL, FAULT_HANG, FAULT_RAISE):
        raise ValueError(f"unknown fault action {action!r}")
    os.makedirs(fault_dir, exist_ok=True)
    encoded = job_match.replace(os.sep, "_")
    for n in range(count):
        path = os.path.join(fault_dir,
                            f"{action}@{encoded}@{n}{_FAULT_SUFFIX}")
        with open(path, "w") as fp:
            fp.write(job_match)


def consume_fault(fault_dir: Optional[str],
                  job_id: str) -> Optional[str]:
    """Atomically claim one armed fault matching *job_id*, if any.

    Returns the fault action, or ``None``.  Losing an unlink race to
    another worker simply means that worker owns the fault.
    """
    if not fault_dir or not os.path.isdir(fault_dir):
        return None
    for name in sorted(os.listdir(fault_dir)):
        if not name.endswith(_FAULT_SUFFIX):
            continue
        action, _, _ = name.partition("@")
        try:
            with open(os.path.join(fault_dir, name)) as fp:
                job_match = fp.read()
        except OSError:
            continue
        if not job_id.startswith(job_match):
            continue
        try:
            os.unlink(os.path.join(fault_dir, name))
        except OSError:
            continue  # another worker claimed it first
        return action
    return None


def inject(action: str, *, in_worker: bool = True) -> None:
    """Execute a claimed fault action inside the current process.

    ``kill`` is only honoured when running in a disposable worker
    process (``in_worker``); in the engine's own process (serial
    fallback) it degrades to ``raise`` so a test cannot take down the
    test runner.
    """
    if action == FAULT_KILL and in_worker:
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == FAULT_HANG:
        time.sleep(HANG_SECONDS)
    # kill-in-parent degrades to an ordinary failure:
    raise RuntimeError(f"injected fault: {action}")
