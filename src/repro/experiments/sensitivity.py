"""Seed-sensitivity analysis: how stable are the reported quantities?

The synthetic workloads are stochastic; before arguing from a measured
ratio the harness should know its spread.  :func:`seed_sweep` re-runs a
workload across seeds and reports mean/min/max/stddev for the key
normalized quantities of Tables 1-2 and Figure 3:

* OS share of time, reads and misses;
* the block/coherence/other miss split;
* the Blk_Dma and BCPref speedups over Base.

The benchmark/shape assertions in ``benchmarks/`` were set with these
spreads in mind.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

from repro.common.types import MissKind, Mode
from repro.experiments.runner import ExperimentRunner


@dataclasses.dataclass(frozen=True)
class Spread:
    """Summary statistics of one quantity across seeds."""

    mean: float
    stddev: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Spread":
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / n
        return cls(mean, math.sqrt(var), min(values), max(values))

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean — a quick stability indicator."""
        return (self.maximum - self.minimum) / self.mean if self.mean else 0.0


def _quantities(runner: ExperimentRunner, workload: str,
                with_optimized: bool) -> Dict[str, float]:
    base = runner.run(workload, "Base")
    kinds = base.miss_kind_fractions()
    out = {
        "os_time_share": base.mode_fraction(Mode.OS),
        "os_read_share": base.os_read_share(),
        "os_miss_share": base.os_miss_share(),
        "block_miss_share": kinds[MissKind.BLOCK_OP],
        "coherence_miss_share": kinds[MissKind.COHERENCE],
        "other_miss_share": kinds[MissKind.OTHER],
    }
    if with_optimized:
        base_time = max(1, base.os_time().total)
        out["dma_time_ratio"] = (
            runner.run(workload, "Blk_Dma").os_time().total / base_time)
        out["bcpref_time_ratio"] = (
            runner.run(workload, "BCPref").os_time().total / base_time)
        out["bcpref_miss_ratio"] = (
            runner.run(workload, "BCPref").os_read_misses()
            / max(1, base.os_read_misses()))
    return out


def _sweep_one(args: tuple) -> Dict[str, float]:
    """One seed's quantities (top-level so worker processes can run it)."""
    workload, seed, scale, with_optimized, cache_dir = args
    cache = None
    if cache_dir:
        from repro.experiments.artifacts import ArtifactCache
        cache = ArtifactCache(cache_dir)
    runner = ExperimentRunner(scale=scale, seed=seed, cache=cache)
    return _quantities(runner, workload, with_optimized)


def seed_sweep(workload: str, seeds: Sequence[int] = (1, 2, 3, 4, 5),
               scale: float = 0.25, with_optimized: bool = False,
               workers: int = 1,
               cache_dir: str = "") -> Dict[str, Spread]:
    """Run *workload* across *seeds* and summarize the key quantities.

    Each seed's runs are independent, so *workers* > 1 fans the seeds
    out across a process pool; the merged spreads are identical to a
    serial sweep.  *cache_dir* lets the per-seed runners share the
    on-disk artifact cache (each seed keys its own artifacts).
    """
    jobs = [(workload, seed, scale, with_optimized, cache_dir)
            for seed in seeds]
    if workers > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            per_seed = list(pool.map(_sweep_one, jobs))
    else:
        per_seed = [_sweep_one(job) for job in jobs]
    samples: Dict[str, List[float]] = {}
    for quantities in per_seed:
        for name, value in quantities.items():
            samples.setdefault(name, []).append(value)
    return {name: Spread.of(values) for name, values in samples.items()}


def render_sweep(workload: str, spreads: Dict[str, Spread]) -> str:
    """Aligned-text rendering of a seed sweep."""
    name_w = max(len(n) for n in spreads) + 2
    lines = [f"Seed sensitivity: {workload}", ""]
    lines.append(f"{'quantity':<{name_w}}{'mean':>9}{'std':>9}"
                 f"{'min':>9}{'max':>9}{'spread':>9}")
    lines.append("-" * (name_w + 45))
    for name, spread in spreads.items():
        lines.append(
            f"{name:<{name_w}}{spread.mean:>9.3f}{spread.stddev:>9.3f}"
            f"{spread.minimum:>9.3f}{spread.maximum:>9.3f}"
            f"{spread.relative_spread:>9.2f}")
    return "\n".join(lines)
