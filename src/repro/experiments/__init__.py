"""Experiment drivers: the runner and the regenerate-everything entry point."""

from repro.experiments.ablations import (
    ALL_STUDIES,
    AblationPoint,
    render_study,
    run_study,
)
from repro.experiments.extensions import (
    ColoringResult,
    page_coloring_study,
    page_coloring_sweep,
    render_coloring,
)
from repro.experiments.faults import RetryPolicy
from repro.experiments.runner import ExperimentRunner, NUM_HOTSPOTS
from repro.experiments.sensitivity import Spread, render_sweep, seed_sweep

__all__ = [
    "ALL_STUDIES",
    "AblationPoint",
    "ColoringResult",
    "ExperimentRunner",
    "NUM_HOTSPOTS",
    "RetryPolicy",
    "Spread",
    "page_coloring_study",
    "page_coloring_sweep",
    "render_coloring",
    "render_sweep",
    "seed_sweep",
    "render_study",
    "run_study",
]
