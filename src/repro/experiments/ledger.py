"""Structured JSONL run ledger for sweep execution.

Every job lifecycle event of a parallel sweep — scheduled, finished,
retried, timed out, quarantined artifacts, worker-pool breakage — is
appended as one JSON object per line to a ledger file.  A crash leaves
behind a complete, append-only record of what ran, what failed, and
what was recovered; a clean run leaves an auditable timing profile.

Event schema (field presence varies by event)::

    {"ts": <unix seconds>, "event": "<name>", "job": "<job id>",
     "kind": "trace|derive|sim", "workload": ..., "config": ...,
     "attempt": N, "duration": seconds, "worker_pid": pid,
     "cache": {"hits": H, "misses": M, "stores": S, "quarantines": Q},
     "sim_keys": [{"workload": ..., "config": ..., "machine": ...}],
     ...}

Event names: ``sweep_start``, ``scheduled``, ``finished``, ``retried``,
``timed_out``, ``quarantined``, ``artifact_corrupt``, ``heartbeat``,
``job_failed``, ``pool_broken``, ``pool_rebuilt``, ``degraded_serial``,
``sweep_end``.

Timing fields: the ``ts`` wall-clock stamp is for humans reading the
file; every ``duration``/``elapsed`` field is measured with
``time.monotonic()`` so an NTP step or suspend/resume cannot corrupt
(or make negative) the profile.

``python -m repro.experiments.ledger --summarize <ledger.jsonl>``
renders per-stage timing, retry counts, fault totals, cache hit rate,
and throughput — including live progress from ``heartbeat`` events when
the sweep is still running.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional

#: Canonical ledger filename prefix used when no path is given.
DEFAULT_BASENAME = "sweep-ledger"


class RunLedger:
    """Append-only JSONL event log for one sweep.

    Opened lazily on the first :meth:`record` so a ledger object can be
    constructed unconditionally and never touch disk if nothing runs.
    A ``path`` of ``None`` discards every event (null ledger).
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._fp = None

    @classmethod
    def null(cls) -> "RunLedger":
        return cls(None)

    def record(self, event: str, **fields: Any) -> None:
        """Append one event; never raises (a dying ledger must not kill
        the sweep it documents).

        The line is serialized first (unencodable values degrade to their
        ``repr``) and written with a single ``write`` call, so a failure
        can never leave a torn half-line for concurrent writers — with
        ``O_APPEND`` semantics, whole-line appends from several worker
        processes interleave but never interleave *within* a line.
        """
        if self.path is None:
            return
        entry = {"ts": round(time.time(), 3), "event": event}
        entry.update(fields)
        try:
            line = json.dumps(entry, sort_keys=True, default=repr)
            if self._fp is None:
                os.makedirs(os.path.dirname(self.path) or ".",
                            exist_ok=True)
                self._fp = open(self.path, "a")
            self._fp.write(line + "\n")
            self._fp.flush()
        except Exception:
            pass

    def close(self) -> None:
        if self._fp is not None:
            try:
                self._fp.close()
            finally:
                self._fp = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse a ledger file, skipping lines truncated by a crash."""
    events = []
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # torn tail write from a crashed run
    return events


def summarize(path: str) -> str:
    """Human-readable per-stage timing / retry / fault summary."""
    events = read_events(path)
    per_kind: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"jobs": 0, "seconds": 0.0})
    counts: Counter = Counter()
    cache = Counter()
    retried_jobs: Counter = Counter()
    for ev in events:
        name = ev.get("event", "?")
        counts[name] += 1
        if name == "finished":
            kind = ev.get("kind", "?")
            per_kind[kind]["jobs"] += 1
            per_kind[kind]["seconds"] += float(ev.get("duration", 0.0))
            for stat, n in (ev.get("cache") or {}).items():
                cache[stat] += n
        elif name in ("retried", "timed_out"):
            retried_jobs[ev.get("job", "?")] += 1

    lines = [f"run ledger: {path}",
             f"events: {sum(counts.values())}"]
    starts = [ev for ev in events if ev.get("event") == "sweep_start"]
    ends = [ev for ev in events if ev.get("event") == "sweep_end"]
    beats = [ev for ev in events if ev.get("event") == "heartbeat"]
    finished = counts.get("finished", 0)
    elapsed = None
    if ends and isinstance(ends[-1].get("elapsed"), (int, float)):
        lines.append(f"sweep wall-clock: {ends[-1]['elapsed']:.1f}s")
        elapsed = float(ends[-1]["elapsed"])
    elif starts and ends:
        lines.append(f"sweep wall-clock: "
                     f"{max(0.0, ends[-1]['ts'] - starts[0]['ts']):.1f}s")
    elif beats:
        last = beats[-1]
        lines.append(f"in progress: {last.get('done', '?')} done, "
                     f"{last.get('running', '?')} running, "
                     f"{last.get('pending', '?')} pending "
                     f"(heartbeat at +{last.get('elapsed', 0.0):.1f}s)")
        if isinstance(last.get("elapsed"), (int, float)):
            elapsed = float(last["elapsed"])
    if elapsed and finished:
        lines.append(f"throughput: {finished / elapsed:.2f} jobs/s "
                     f"({finished} jobs in {elapsed:.1f}s)")
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    if hits + misses:
        lines.append(f"cache hit rate: {hits / (hits + misses):.0%} "
                     f"({hits} hits, {misses} misses)")
    lines.append("")
    lines.append(f"{'stage':<10} {'jobs':>6} {'total s':>9} {'mean s':>8}")
    for kind in sorted(per_kind):
        row = per_kind[kind]
        jobs = int(row["jobs"])
        mean = row["seconds"] / jobs if jobs else 0.0
        lines.append(f"{kind:<10} {jobs:>6} {row['seconds']:>9.1f} "
                     f"{mean:>8.2f}")
    lines.append("")
    for name in ("retried", "timed_out", "quarantined", "artifact_corrupt",
                 "job_failed", "pool_broken", "pool_rebuilt",
                 "degraded_serial", "heartbeat", "served_cached",
                 "sweep_cancelled"):
        lines.append(f"{name:<16} {counts.get(name, 0):>4}")
    if retried_jobs:
        lines.append("")
        lines.append("jobs with retries:")
        for job, n in retried_jobs.most_common():
            lines.append(f"  {job}  x{n}")
    if cache:
        lines.append("")
        lines.append("cache: " + ", ".join(
            f"{n} {stat}" for stat, n in sorted(cache.items())))
    return "\n".join(lines)


def default_path(directory: str) -> str:
    """A fresh ledger path inside *directory*, unique per process."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return os.path.join(directory,
                        f"{DEFAULT_BASENAME}-{stamp}-{os.getpid()}.jsonl")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Inspect a sweep run ledger (JSONL)")
    parser.add_argument("ledger", help="path to a *.jsonl run ledger")
    parser.add_argument("--summarize", action="store_true", default=True,
                        help="render per-stage timing and retry counts "
                             "(default)")
    args = parser.parse_args(argv)
    if not os.path.exists(args.ledger):
        print(f"no such ledger: {args.ledger}", file=sys.stderr)
        return 2
    print(summarize(args.ledger))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
