"""Regenerate every table and figure of the paper.

Usage::

    python -m repro.experiments.all [--scale 0.5] [--seed 1996]
        [--only table1,figure3] [--out results.txt]
        [--workers N] [--cache-dir DIR] [--no-cache]
        [--ledger PATH] [--max-retries N] [--job-timeout SECONDS]

One :class:`~repro.experiments.runner.ExperimentRunner` is shared across
all artifacts so each trace, transform and simulation runs once.  With
``--workers > 1`` the full workload x configuration matrix behind the
selected artifacts is decomposed into jobs and pre-computed by the
parallel engine (:mod:`repro.experiments.parallel`), printing a live job
ledger; the table/figure builders then render from the warm in-memory
cache.  ``--cache-dir`` (default ``.repro-cache``) persists traces and
derived artifacts across runs — a repeat sweep skips every generation
and derivation stage.  The rendered output prints the same rows/series
the paper reports and is identical for any worker count and cache
temperature.

Parallel sweeps are fault tolerant: failed or timed-out jobs are
retried with deterministic backoff (``--max-retries``,
``--job-timeout``), dead workers get a rebuilt pool, and corrupt cache
artifacts are quarantined and regenerated.  Every lifecycle event lands
in a JSONL run ledger (``--ledger``, default: inside the cache
directory) whose path is printed at sweep end; summarize it with
``python -m repro.experiments.ledger --summarize <path>``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.analysis.figures import (ALL_FIGURES, FIG2_SYSTEMS, FIG3_SYSTEMS,
                                    FIG4_SYSTEMS, FIG5_SYSTEMS, SWEEP_SYSTEMS)
from repro.analysis.report import render
from repro.analysis.tables import (ALL_TABLES, HYBRID_COMPARE_SCHEMES,
                                   HYBRID_FAMILIES, MACHINE_COMPARE_SCHEMES,
                                   MACHINE_POINTS, machine_point,
                                   machine_workload)
from repro.common.params import BASE_MACHINE
from repro.common.units import KB
from repro.experiments.artifacts import DEFAULT_CACHE_DIR, ArtifactCache
from repro.experiments.faults import RetryPolicy
from repro.experiments.runner import Cell, ExperimentRunner
from repro.synthetic.workloads import WORKLOAD_ORDER

#: Paper order of artifacts.
ARTIFACT_ORDER = [
    "table1", "table2", "figure1", "table3", "figure2", "figure3",
    "table4", "table5", "figure4", "figure5", "figure6", "figure7",
]

#: Artifacts ``--only`` accepts beyond the default report: the hybrid
#: comparison table and the machine-shape comparison are opt-in (they
#: are not paper reproductions).
EXTRA_ARTIFACTS = ["hybrid", "machines"]

#: L1D sizes (KB) swept by Figure 6 and line sizes (B) swept by Figure 7.
FIG6_SIZES_KB = (16, 32, 64)
FIG7_LINES = (16, 32, 64)


def artifact_cells(name: str) -> List[Cell]:
    """The (workload, config, machine) cells *name*'s builder will ask
    the runner for — the parallel engine pre-computes exactly these."""
    systems: List[str]
    if name in ("table1", "table2", "table5", "figure1"):
        systems = ["Base"]
    elif name == "table3":
        systems = ["Base", "Blk_Bypass"]
    elif name == "table4":
        return []  # static trace analysis; no simulation cells
    elif name == "figure2":
        systems = FIG2_SYSTEMS
    elif name == "figure3":
        systems = FIG3_SYSTEMS
    elif name == "figure4":
        systems = FIG4_SYSTEMS
    elif name == "figure5":
        systems = FIG5_SYSTEMS
    elif name == "hybrid":
        # Off the paper's workload grid: the generated profile families
        # against Base plus the hybrid comparison ladder.
        return [(w, s, None) for w in HYBRID_FAMILIES
                for s in ["Base"] + HYBRID_COMPARE_SCHEMES]
    elif name == "machines":
        # The machine axis: each point runs its own-sized server
        # workload on its own machine, Base plus the comparison ladder.
        return [(machine_workload(cpus), s, machine_point(cpus, assoc, bw))
                for (_label, cpus, assoc, bw) in MACHINE_POINTS
                for s in ["Base"] + MACHINE_COMPARE_SCHEMES]
    elif name in ("figure6", "figure7"):
        cells: List[Cell] = []
        if name == "figure6":
            machines = [BASE_MACHINE.with_l1d(size_bytes=kb * KB)
                        for kb in FIG6_SIZES_KB]
        else:
            machines = [BASE_MACHINE.with_l1d(line_bytes=b, l2_line_bytes=64)
                        for b in FIG7_LINES]
        for machine in machines:
            for workload in WORKLOAD_ORDER:
                for system in ["Base"] + [s for s in SWEEP_SYSTEMS
                                          if s != "Base"]:
                    cells.append((workload, system, machine))
        return cells
    else:
        raise KeyError(f"unknown artifact {name!r}; "
                       f"choose from {ARTIFACT_ORDER + EXTRA_ARTIFACTS}")
    return [(w, s, None) for w in WORKLOAD_ORDER for s in systems]


def run_all(scale: float = 0.5, seed: int = 1996,
            only: Optional[List[str]] = None, verbose: bool = True,
            workers: Optional[int] = 1,
            cache_dir: Optional[str] = None,
            ledger: Optional[str] = None,
            max_retries: Optional[int] = None,
            job_timeout: Optional[float] = None) -> str:
    """Build the selected artifacts; returns the rendered report.

    *workers* > 1 routes the sweep through the parallel engine (``None``
    means ``os.cpu_count()``); *cache_dir* attaches a persistent on-disk
    artifact cache.  *ledger*, *max_retries* and *job_timeout* tune the
    engine's fault tolerance.  None of these change the report's
    contents — a sweep that survived retries, pool rebuilds, or
    artifact quarantine renders bit-identically to a clean serial run.
    """
    cache = ArtifactCache(cache_dir) if cache_dir else None
    policy = None
    if max_retries is not None or job_timeout is not None:
        defaults = RetryPolicy()
        policy = RetryPolicy(
            max_retries=(max_retries if max_retries is not None
                         else defaults.max_retries),
            job_timeout=job_timeout)
    runner = ExperimentRunner(scale=scale, seed=seed, cache=cache,
                              workers=workers, retry_policy=policy,
                              ledger_path=ledger)
    wanted = only if only else ARTIFACT_ORDER
    unknown = [n for n in wanted
               if n not in ALL_TABLES and n not in ALL_FIGURES]
    if unknown:
        raise KeyError(f"unknown artifact {unknown[0]!r}; "
                       f"choose from {ARTIFACT_ORDER + EXTRA_ARTIFACTS}")
    if runner.workers > 1:
        cells: List[Cell] = []
        seen = set()
        for name in wanted:
            for cell in artifact_cells(name):
                marker = (cell[0], cell[1], cell[2])
                if marker not in seen:
                    seen.add(marker)
                    cells.append(cell)
        runner.run_cells(cells, verbose=verbose)
    chunks = [f"Reproduction report (scale={scale}, seed={seed})",
              "=" * 60, ""]
    for name in wanted:
        builder = ALL_TABLES.get(name) or ALL_FIGURES.get(name)
        # Monotonic, like every other duration in the package: an NTP
        # step or suspend must not corrupt the reported build time.
        start = time.monotonic()
        artifact = builder(runner)
        elapsed = time.monotonic() - start
        if verbose:
            print(f"[{name} built in {elapsed:.1f}s]", file=sys.stderr)
        chunks.append(f"### {name}")
        chunks.append(render(artifact))
        chunks.append("")
    if verbose and runner.cache is not None:
        print(f"[artifact cache: {runner.cache.summary()}]", file=sys.stderr)
    if verbose and runner.last_ledger_path:
        print(f"[run ledger: {runner.last_ledger_path} — summarize with "
              f"'python -m repro.experiments.ledger --summarize "
              f"{runner.last_ledger_path}']", file=sys.stderr)
    return "\n".join(chunks)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the paper")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload length multiplier (default 0.5)")
    parser.add_argument("--seed", type=int, default=1996)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated artifact names")
    parser.add_argument("--out", type=str, default="",
                        help="also write the report to this file")
    parser.add_argument("--workers", type=int, default=os.cpu_count(),
                        help="parallel sweep processes "
                             "(default: os.cpu_count())")
    parser.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                        help="on-disk artifact cache directory "
                             f"(default {DEFAULT_CACHE_DIR!r})")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not persist traces/artifacts on disk")
    parser.add_argument("--ledger", type=str, default="",
                        help="JSONL run-ledger path (default: a fresh "
                             "file inside the cache directory)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="re-submissions allowed per failed job "
                             "(default 2)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        help="per-job wall-clock timeout in seconds "
                             "(default: unlimited)")
    args = parser.parse_args(argv)
    only = [n.strip() for n in args.only.split(",") if n.strip()] or None
    cache_dir = None if args.no_cache else args.cache_dir
    report = run_all(scale=args.scale, seed=args.seed, only=only,
                     workers=args.workers, cache_dir=cache_dir,
                     ledger=args.ledger or None,
                     max_retries=args.max_retries,
                     job_timeout=args.job_timeout)
    print(report)
    if args.out:
        with open(args.out, "w") as fp:
            fp.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
