"""Regenerate every table and figure of the paper.

Usage::

    python -m repro.experiments.all [--scale 0.5] [--seed 1996]
        [--only table1,figure3] [--out results.txt]

One :class:`~repro.experiments.runner.ExperimentRunner` is shared across
all artifacts so each trace, transform and simulation runs once.  The
rendered output prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.figures import ALL_FIGURES
from repro.analysis.report import render
from repro.analysis.tables import ALL_TABLES
from repro.experiments.runner import ExperimentRunner

#: Paper order of artifacts.
ARTIFACT_ORDER = [
    "table1", "table2", "figure1", "table3", "figure2", "figure3",
    "table4", "table5", "figure4", "figure5", "figure6", "figure7",
]


def run_all(scale: float = 0.5, seed: int = 1996,
            only: Optional[List[str]] = None, verbose: bool = True) -> str:
    """Build the selected artifacts; returns the rendered report."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    wanted = only if only else ARTIFACT_ORDER
    chunks = [f"Reproduction report (scale={scale}, seed={seed})",
              "=" * 60, ""]
    for name in wanted:
        builder = ALL_TABLES.get(name) or ALL_FIGURES.get(name)
        if builder is None:
            raise KeyError(f"unknown artifact {name!r}; "
                           f"choose from {ARTIFACT_ORDER}")
        start = time.time()
        artifact = builder(runner)
        elapsed = time.time() - start
        if verbose:
            print(f"[{name} built in {elapsed:.1f}s]", file=sys.stderr)
        chunks.append(f"### {name}")
        chunks.append(render(artifact))
        chunks.append("")
    return "\n".join(chunks)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every table and figure of the paper")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload length multiplier (default 0.5)")
    parser.add_argument("--seed", type=int, default=1996)
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated artifact names")
    parser.add_argument("--out", type=str, default="",
                        help="also write the report to this file")
    args = parser.parse_args(argv)
    only = [n.strip() for n in args.only.split(",") if n.strip()] or None
    report = run_all(scale=args.scale, seed=args.seed, only=only)
    print(report)
    if args.out:
        with open(args.out, "w") as fp:
            fp.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
