"""Sweep-as-a-service: a persistent daemon around the parallel engine.

A one-shot :class:`~repro.experiments.parallel.ParallelEngine` pays the
pool spin-up, trace generation, and derivation cost on every invocation.
Experiments at production scale — many concurrent users submitting
sweeps against one warm cache, or the hundreds of workload x scheme
cells a hybrid update/invalidate comparison needs — amortize all three:

* :class:`SweepService` owns one
  :class:`~repro.experiments.parallel.WorkerPool` (processes stay warm
  across sweeps) and one :class:`~repro.experiments.artifacts.ArtifactCache`
  (traces, derivations, *and simulation results* persist across sweeps
  and across daemon restarts);
* submissions land in a :class:`~repro.experiments.queue.JobQueue` and
  a dispatcher thread runs them FIFO, one engine ``execute()`` per
  scale, with ``reuse_sims=True`` so repeat cells are served straight
  from the store by :class:`~repro.experiments.artifacts.SimKey` —
  bit-identically, because the cached snapshot round-trips through
  :meth:`~repro.sim.metrics.SystemMetrics.from_snapshot`;
* a small stdlib HTTP/JSON API exposes submit/status/results/cancel
  plus a progress stream backed by the per-job PR 5 run ledger.

The retry/timeout/quarantine machinery is the engine's own
(:mod:`repro.experiments.faults`): the service passes a
:class:`RetryPolicy` down per job rather than reimplementing any of it.
Engine-raised :class:`~repro.common.errors.SweepCancelledError` maps to
job state ``cancelled``; :class:`~repro.common.errors.JobFailedError`
(retries exhausted) maps to ``failed`` — the daemon itself survives
both.

HTTP API (all JSON)::

    GET  /healthz                    liveness + queue/pool snapshot
    GET  /sweeps                     all jobs, oldest first
    POST /sweeps                     submit; body: {"workloads": [...],
                                     "configs": [...], "scales": [...],
                                     "seed": N} and/or {"generate":
                                     {"count": N, "seed": N, ...}}
                                     -> 202 {"job_id": ...}
    GET  /sweeps/<id>                status snapshot
    GET  /sweeps/<id>/results        per-cell summary (409 until done);
                                     ?full=1 adds SystemMetrics snapshots
    GET  /sweeps/<id>/events?since=N ledger events from line N on
    POST /sweeps/<id>/cancel         cancel queued or running job

Run with ``repro serve``; drive with ``repro submit`` / ``repro
status`` / ``repro cancel`` or :class:`SweepClient`.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import (JobFailedError, ReproError,
                                 SweepCancelledError)
from repro.experiments.artifacts import ArtifactCache, SimKey
from repro.experiments.faults import RetryPolicy
from repro.experiments.ledger import read_events
from repro.experiments.parallel import ParallelEngine, WorkerPool
from repro.experiments.queue import (TERMINAL, BadRequestError, JobQueue,
                                     SweepJob, SweepRequest, cell_id)

#: How long the dispatcher blocks waiting for a submission before it
#: rechecks the shutdown flag.
_DISPATCH_POLL = 0.2


class SweepService:
    """The daemon: one warm pool + one artifact cache + a job queue.

    Pure threading object — usable (and tested) without the HTTP layer
    via :meth:`submit` / :meth:`queue`.  :meth:`start` launches the
    dispatcher thread; :meth:`serve` additionally binds the HTTP server
    and blocks.  Restarting a service on the same ``cache_dir`` resumes
    from the persisted artifact store: resubmitted matrices are served
    from cached simulation results without running a single sim job.
    """

    def __init__(self, cache_dir: str,
                 workers: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 heartbeat_interval: Optional[float] = 5.0,
                 verbose: bool = False) -> None:
        self.cache_dir = cache_dir
        self.cache = ArtifactCache(cache_dir)
        self.workers = workers if workers is not None else (os.cpu_count()
                                                           or 1)
        self.retry_policy = retry_policy
        self.heartbeat_interval = heartbeat_interval
        self.verbose = verbose
        self.pool = WorkerPool(self.workers)
        self.queue = JobQueue()
        self.ledger_dir = os.path.join(cache_dir, "service-ledgers")
        self._dispatcher: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._dispatcher is not None:
            return
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="sweep-dispatcher",
            daemon=True)
        self._dispatcher.start()

    def stop(self) -> None:
        """Stop accepting work, cancel the running job, drain, shut the
        pool down.  Safe to call more than once."""
        self._stopping.set()
        self.queue.close()
        for job in self.queue.jobs():
            if job.state not in TERMINAL:
                self.queue.cancel(job.job_id)
        if self._dispatcher is not None:
            if self._dispatcher.is_alive():
                self._dispatcher.join(timeout=30.0)
            self._dispatcher = None
        self.pool.shutdown(wait=False)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None

    def submit(self, payload: Any) -> SweepJob:
        """Validate *payload* and enqueue it (the POST /sweeps body)."""
        return self.queue.submit(SweepRequest.from_payload(payload))

    def health(self) -> Dict[str, Any]:
        jobs = self.queue.jobs()
        return {"ok": True,
                "uptime": round(time.monotonic() - self._started_monotonic,
                                3),
                "jobs": len(jobs),
                "queued": sum(j.state == "queued" for j in jobs),
                "running": sum(j.state == "running" for j in jobs),
                "workers": self.workers,
                "pool_generation": self.pool.generation,
                "cache_dir": self.cache_dir}

    def _log(self, message: str) -> None:
        if self.verbose:
            print(message, file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            job = self.queue.next_job(timeout=_DISPATCH_POLL)
            if job is None:
                if self._stopping.is_set():
                    return
                continue
            self._run_job(job)

    def _run_job(self, job: SweepJob) -> None:
        """Execute one job: one engine ``execute()`` call per scale,
        all sharing the warm pool, the artifact cache, and one per-job
        ledger (``<cache>/service-ledgers/<job_id>.jsonl``)."""
        request = job.request
        job.ledger_path = os.path.join(self.ledger_dir,
                                       f"{job.job_id}.jsonl")
        machine = request.machine()
        self._log(f"[service] {job.job_id}: {request.total_cells()} cells "
                  f"({len(request.workloads)} workloads x "
                  f"{len(request.configs)} configs x "
                  f"{len(request.scales)} scales)")
        results: Dict[str, Dict[str, Any]] = {}
        cached_cells = sim_jobs = trace_jobs = derive_jobs = hits = 0
        try:
            for scale in request.scales:
                engine = ParallelEngine(
                    scale=scale, seed=request.seed, machine=machine,
                    cache=self.cache, workers=self.workers,
                    retry_policy=self.retry_policy,
                    ledger_path=job.ledger_path,
                    heartbeat_interval=self.heartbeat_interval,
                    pool=self.pool, reuse_sims=True)
                metrics = engine.execute(request.cells(scale),
                                         verbose=self.verbose,
                                         cancel=job.cancel_event)
                for workload in request.workloads:
                    for config in request.configs:
                        key = SimKey.of(workload, config, machine)
                        results[cell_id(workload, config, scale)] = \
                            metrics[key].snapshot()
                cached_cells += engine.last_cached
                sim_jobs += engine.last_job_kinds.get("sim", 0)
                trace_jobs += engine.last_job_kinds.get("trace", 0)
                derive_jobs += engine.last_job_kinds.get("derive", 0)
                hits += sum(n for e, n in engine.last_stats.items()
                            if e.endswith(".hit"))
                self.queue.update(job, cached_cells=cached_cells,
                                  sim_jobs=sim_jobs,
                                  trace_jobs=trace_jobs,
                                  derive_jobs=derive_jobs,
                                  cache_hits=hits,
                                  scales_done=list(request.scales)
                                  .index(scale) + 1)
        except SweepCancelledError:
            self.queue.update(job, state="cancelled")
            self._log(f"[service] {job.job_id}: cancelled")
            return
        except (JobFailedError, ReproError) as err:
            self.queue.update(job, state="failed", error=str(err))
            self._log(f"[service] {job.job_id}: failed: {err}")
            return
        except Exception as err:  # daemon must survive anything
            self.queue.update(job, state="failed", error=repr(err))
            self._log(f"[service] {job.job_id}: failed: {err!r}")
            return
        job.results = results
        self.queue.update(job, state="done", cached_cells=cached_cells,
                          sim_jobs=sim_jobs, trace_jobs=trace_jobs,
                          derive_jobs=derive_jobs, cache_hits=hits)
        self._log(f"[service] {job.job_id}: done "
                  f"({cached_cells} cells from cached sims, "
                  f"{sim_jobs} sim jobs run)")

    # ------------------------------------------------------------------
    # Results rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _summarize_cell(snapshot: Dict[str, Any]) -> Dict[str, Any]:
        from repro.sim.metrics import SystemMetrics
        metrics = SystemMetrics.from_snapshot(snapshot)
        return {"os_time": metrics.os_time().total,
                "os_read_misses": metrics.os_read_misses(),
                "data_miss_rate": metrics.data_miss_rate()}

    def results_payload(self, job: SweepJob,
                        full: bool = False) -> Dict[str, Any]:
        cells = {cid: self._summarize_cell(snap)
                 for cid, snap in sorted(job.results.items())}
        payload = {"job_id": job.job_id, "state": job.state,
                   "counters": dict(job.counters), "cells": cells}
        if full:
            payload["metrics"] = {cid: job.results[cid]
                                  for cid in sorted(job.results)}
        return payload

    def events_payload(self, job: SweepJob, since: int) -> Dict[str, Any]:
        """Ledger events from line *since* on (the progress stream)."""
        events: List[Dict[str, Any]] = []
        if job.ledger_path and os.path.exists(job.ledger_path):
            events = read_events(job.ledger_path)
        return {"job_id": job.job_id, "state": job.state,
                "events": events[since:], "next": len(events)}

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    def start_http(self, host: str = "127.0.0.1",
                   port: int = 0) -> Tuple[str, int]:
        """Bind the HTTP server and serve it on a daemon thread.

        Returns the bound ``(host, port)`` — pass ``port=0`` to let the
        OS pick (tests do).  Also starts the dispatcher."""
        self.start()
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        thread = threading.Thread(target=self._server.serve_forever,
                                  name="sweep-http", daemon=True)
        thread.start()
        bound = self._server.server_address
        return str(bound[0]), int(bound[1])

    def serve(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Blocking entry point for ``repro serve``."""
        host, port = self.start_http(host, port)
        print(f"[service] listening on http://{host}:{port} "
              f"(cache: {self.cache_dir})", file=sys.stderr, flush=True)
        try:
            while not self._stopping.is_set():
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()


def _make_handler(service: SweepService):
    """A request-handler class closed over *service*."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # ----------------------------------------------------------
        def log_message(self, format: str, *args: Any) -> None:
            if service.verbose:  # default HTTP chatter only with -v
                super().log_message(format, *args)

        def _send(self, code: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, sort_keys=True).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, message: str) -> None:
            self._send(code, {"error": message})

        def _job(self, job_id: str) -> Optional[SweepJob]:
            job = service.queue.get(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
            return job

        def _route(self) -> Tuple[str, Dict[str, str]]:
            path, _, query_string = self.path.partition("?")
            query: Dict[str, str] = {}
            for pair in query_string.split("&"):
                if pair:
                    key, _, value = pair.partition("=")
                    query[key] = value
            return path.rstrip("/") or "/", query

        # ----------------------------------------------------------
        def do_GET(self) -> None:
            path, query = self._route()
            if path == "/healthz":
                return self._send(200, service.health())
            if path == "/sweeps":
                return self._send(200, {"jobs": [
                    job.status() for job in service.queue.jobs()]})
            parts = path.strip("/").split("/")
            if parts[0] != "sweeps" or len(parts) not in (2, 3):
                return self._error(404, f"no route {path!r}")
            job = self._job(parts[1])
            if job is None:
                return None
            if len(parts) == 2:
                return self._send(200, job.status())
            if parts[2] == "results":
                if job.state not in TERMINAL:
                    return self._error(
                        409, f"job {job.job_id} is {job.state}; results "
                             f"are available once it reaches a terminal "
                             f"state")
                return self._send(200, service.results_payload(
                    job, full=query.get("full") in ("1", "true")))
            if parts[2] == "events":
                try:
                    since = int(query.get("since", "0"))
                except ValueError:
                    return self._error(400, "'since' must be an integer")
                return self._send(200,
                                  service.events_payload(job, since))
            return self._error(404, f"no route {path!r}")

        def do_POST(self) -> None:
            path, _query = self._route()
            if path == "/sweeps":
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    payload = json.loads(self.rfile.read(length) or b"{}")
                except (ValueError, json.JSONDecodeError):
                    return self._error(400, "body must be valid JSON")
                try:
                    job = service.submit(payload)
                except BadRequestError as err:
                    return self._error(400, str(err))
                except ReproError as err:
                    return self._error(503, str(err))
                return self._send(202, job.status())
            parts = path.strip("/").split("/")
            if parts[0] == "sweeps" and len(parts) == 3 \
                    and parts[2] == "cancel":
                job = service.queue.cancel(parts[1])
                if job is None:
                    return self._error(404, f"unknown job {parts[1]!r}")
                return self._send(200, job.status())
            return self._error(404, f"no route {path!r}")

    return Handler


class ServiceError(ReproError):
    """The sweep service answered an HTTP error (``status``, ``error``)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class SweepClient:
    """Thin stdlib client for the service API (``repro submit`` etc.)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as err:
            try:
                detail = json.loads(err.read()).get("error", str(err))
            except Exception:
                detail = str(err)
            raise ServiceError(detail, status=err.code)
        except (urllib.error.URLError, socket.timeout, OSError) as err:
            raise ServiceError(f"cannot reach {self.base_url}: {err}")

    # ----------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/sweeps", payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/sweeps")["jobs"]

    def results(self, job_id: str, full: bool = False) -> Dict[str, Any]:
        suffix = "?full=1" if full else ""
        return self._request("GET", f"/sweeps/{job_id}/results{suffix}")

    def events(self, job_id: str, since: int = 0) -> Dict[str, Any]:
        return self._request("GET",
                             f"/sweeps/{job_id}/events?since={since}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/sweeps/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Block until *job_id* reaches a terminal state; returns the
        final status.  Raises :class:`ServiceError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)
