"""Experiment runner: workload x configuration matrix with caching.

Reproducing a figure needs several coordinated steps — generate the
workload trace, profile it on the Base machine, derive the optimization
inputs (the privatized trace, the update-protocol page set, the hot-spot
basic blocks, the prefetch-annotated trace), and simulate the requested
configuration.  :class:`ExperimentRunner` performs and caches each step so
a full table/figure sweep generates each trace and derived artifact once.

Caching is two-level: every artifact lives in this process's in-memory
maps, and — when the runner is given an
:class:`~repro.experiments.artifacts.ArtifactCache` — traces and derived
artifacts also persist in the content-addressed on-disk cache, shared
across runs and across the parallel engine's worker processes.
Simulation results are keyed by the frozen
:class:`~repro.experiments.artifacts.SimKey` dataclass.

The derivation pipeline mirrors the paper's methodology:

* privatization/relocation and hot-spot prefetching are kernel source
  changes -> trace transformations;
* the update-protocol core is chosen by analyzing coherence misses of a
  profiling run (section 5.2) and handed to the coherence controller;
* hot spots are the 12 basic blocks with the most misses remaining after
  the block and coherence optimizations (section 6), i.e. they are
  measured on the BCoh_RelUp system, not on Base.

Profiling runs (and therefore the derived artifacts) always use the
runner's *own* machine, even when :meth:`run` is asked to simulate a
machine variant: Figures 6 and 7 sweep the hardware under a kernel that
was tuned on the Base machine.  The one exception is a workload wider
than the runner's machine (e.g. a 16-CPU ``gen:`` profile under a
4-CPU runner), whose profiling runs widen the CPU count — and nothing
else — so the trace fits.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.params import BASE_MACHINE, MachineParams
from repro.experiments.artifacts import ArtifactCache, SimKey, stage_key
from repro.experiments.faults import RetryPolicy
from repro.optim.hotspots import HotspotPrefetcher, find_hotspots
from repro.optim.privatize import privatize_and_relocate
from repro.optim.update_select import UpdateSelection, select_update_core
from repro.sim.config import SystemConfig, resolve_config, standard_configs
from repro.sim.metrics import SystemMetrics
from repro.sim.system import simulate
from repro.synthetic.profiles import generate
from repro.synthetic.workloads import WORKLOAD_ORDER
from repro.trace.stream import Trace

#: Number of hot spots the paper selects (section 6).
NUM_HOTSPOTS = 12

#: A simulation cell: (workload, config name, machine or None=runner's).
Cell = Tuple[str, str, Optional[MachineParams]]


class ExperimentRunner:
    """Caches traces, derived artifacts, and simulation results.

    :param cache: optional on-disk artifact cache shared across runs and
        worker processes.  Without one, artifacts live only in memory.
    :param workers: process count for :meth:`run_matrix` /
        :meth:`run_cells`; ``1`` keeps the historical serial behaviour,
        ``None`` means ``os.cpu_count()``.  A multi-worker runner with no
        cache gets a private temporary cache for the life of the runner,
        since workers exchange artifacts through the cache directory.
    :param retry_policy: fault-tolerance policy for parallel sweeps
        (retries, backoff, per-job timeout); ``None`` uses the default
        :class:`~repro.experiments.faults.RetryPolicy`.
    :param ledger_path: JSONL run-ledger destination for parallel
        sweeps; ``None`` writes one inside the cache directory.  The
        ledger of the most recent sweep is on :attr:`last_ledger_path`.
    """

    def __init__(self, scale: float = 0.5, seed: int = 1996,
                 machine: MachineParams = BASE_MACHINE,
                 cache: Optional[ArtifactCache] = None,
                 workers: Optional[int] = 1,
                 retry_policy: Optional[RetryPolicy] = None,
                 ledger_path: Optional[str] = None,
                 fault_dir: Optional[str] = None) -> None:
        self.scale = scale
        self.seed = seed
        self.machine = machine
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.retry_policy = retry_policy
        self.ledger_path = ledger_path
        self.fault_dir = fault_dir
        #: Ledger written by the most recent parallel run_cells() sweep.
        self.last_ledger_path: Optional[str] = None
        self._tmp_cache_dir: Optional[tempfile.TemporaryDirectory] = None
        if cache is None and self.workers > 1:
            self._tmp_cache_dir = tempfile.TemporaryDirectory(
                prefix="repro-artifacts-")
            cache = ArtifactCache(self._tmp_cache_dir.name)
        self.cache = cache
        self._traces: Dict[str, Trace] = {}
        self._privatized: Dict[str, Trace] = {}
        self._update: Dict[str, UpdateSelection] = {}
        self._hot_pcs: Dict[str, List[int]] = {}
        self._prefetched: Dict[str, Trace] = {}
        self._metrics: Dict[SimKey, SystemMetrics] = {}

    # ------------------------------------------------------------------
    # Cache keys
    # ------------------------------------------------------------------
    def _key(self, stage: str, workload: str, **extra) -> str:
        machine = self.machine if stage in ("update", "hotspots",
                                            "prefetched") else None
        return stage_key(stage, self.scale, self.seed, workload,
                         machine=machine, extra=extra or None)

    def _profiling_machine(self, workload: str) -> MachineParams:
        """The machine derivation profiling runs use: the runner's own,
        with only the CPU count widened when *workload* needs more."""
        from repro.synthetic.profiles import get_profile
        cpus = get_profile(workload).num_cpus
        if cpus <= self.machine.num_cpus:
            return self.machine
        return dataclasses.replace(self.machine, num_cpus=cpus)

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def trace(self, workload: str) -> Trace:
        """The raw trace of *workload*."""
        if workload not in self._traces:
            trace = None
            key = self._key("trace", workload)
            if self.cache is not None:
                trace = self.cache.load_trace(key, "trace")
            if trace is None:
                trace = generate(workload, seed=self.seed, scale=self.scale)
                if self.cache is not None:
                    self.cache.store_trace(key, trace, "trace")
            self._traces[workload] = trace
        return self._traces[workload]

    def privatized_trace(self, workload: str) -> Trace:
        """The trace after privatization/relocation (section 5.1)."""
        if workload not in self._privatized:
            trace = None
            key = self._key("privatized", workload)
            if self.cache is not None:
                trace = self.cache.load_trace(key, "privatized")
            if trace is None:
                raw = self.trace(workload)
                trace = privatize_and_relocate(raw, raw.num_cpus)
                if self.cache is not None:
                    self.cache.store_trace(key, trace, "privatized")
            self._privatized[workload] = trace
        return self._privatized[workload]

    def update_selection(self, workload: str) -> UpdateSelection:
        """The update-protocol core chosen from a Base profiling run."""
        if workload not in self._update:
            selection = None
            key = self._key("update", workload)
            if self.cache is not None:
                selection = self.cache.load_update_selection(key)
            if selection is None:
                base = self.run(workload, "Base",
                                machine=self._profiling_machine(workload))
                selection = select_update_core(
                    base, self.trace(workload).symbols,
                    page_bytes=self.machine.page_bytes)
                if self.cache is not None:
                    self.cache.store_update_selection(key, selection)
            self._update[workload] = selection
        return self._update[workload]

    def hotspots(self, workload: str) -> List[int]:
        """The 12 hottest basic blocks, measured on BCoh_RelUp."""
        if workload not in self._hot_pcs:
            pcs = None
            key = self._key("hotspots", workload, count=NUM_HOTSPOTS)
            if self.cache is not None:
                pcs = self.cache.load_hotspots(key)
            if pcs is None:
                profile = self.run(workload, "BCoh_RelUp",
                                   machine=self._profiling_machine(workload))
                pcs = find_hotspots(profile, NUM_HOTSPOTS)
                if self.cache is not None:
                    self.cache.store_hotspots(key, pcs)
            self._hot_pcs[workload] = pcs
        return self._hot_pcs[workload]

    def prefetched_trace(self, workload: str) -> Trace:
        """The privatized trace with hot-spot prefetches inserted."""
        if workload not in self._prefetched:
            config = standard_configs()["BCPref"]
            trace = None
            key = self._key("prefetched", workload, count=NUM_HOTSPOTS,
                            lead=config.hotspot_lead_records)
            if self.cache is not None:
                trace = self.cache.load_trace(key, "prefetched")
            if trace is None:
                prefetcher = HotspotPrefetcher(
                    self.hotspots(workload),
                    lead=config.hotspot_lead_records,
                    line_bytes=self.machine.l1d.line_bytes)
                trace = prefetcher.apply(self.privatized_trace(workload))
                if self.cache is not None:
                    self.cache.store_trace(key, trace, "prefetched")
            self._prefetched[workload] = trace
        return self._prefetched[workload]

    def derive_all(self, workload: str) -> None:
        """Materialize every derived artifact of *workload*.

        Runs the full derivation chain (Base profile -> update selection
        -> BCoh_RelUp profile -> hot spots -> prefetched trace); with a
        disk cache attached this persists all five artifact stages.  The
        parallel engine's "derive" jobs call this in a worker.
        """
        self.prefetched_trace(workload)
        self.update_selection(workload)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self, workload: str, config_name: str,
            machine: Optional[MachineParams] = None) -> SystemMetrics:
        """Simulate *workload* under the named standard configuration."""
        machine = machine if machine is not None else self.machine
        key = SimKey.of(workload, config_name, machine)
        if key in self._metrics:
            return self._metrics[key]
        config = resolve_config(config_name, machine)
        metrics = self._run_config(workload, config)
        self._metrics[key] = metrics
        return metrics

    def _run_config(self, workload: str,
                    config: SystemConfig) -> SystemMetrics:
        if config.hotspot_prefetch:
            trace = self.prefetched_trace(workload)
        elif config.privatize:
            trace = self.privatized_trace(workload)
        else:
            trace = self.trace(workload)
        update_pages: Iterable[int] = ()
        if config.selective_update:
            update_pages = self.update_selection(workload).pages
        hotspot_pcs: Iterable[int] = ()
        if config.hotspot_prefetch:
            hotspot_pcs = self.hotspots(workload)
        return simulate(trace, config, update_pages=update_pages,
                        hotspot_pcs=hotspot_pcs)

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell],
                  verbose: bool = False) -> Dict[SimKey, SystemMetrics]:
        """Run many (workload, config, machine) cells, in parallel when
        the runner was built with ``workers > 1``.

        Results are merged into the in-memory metrics cache, so later
        serial :meth:`run` calls (e.g. from table/figure builders) are
        cache hits.  The returned map covers exactly the requested
        cells; its contents are independent of worker count and job
        completion order.
        """
        cells = [(w, c, m if m is not None else self.machine)
                 for (w, c, m) in cells]
        wanted = {SimKey.of(w, c, m) for (w, c, m) in cells}
        todo = [(w, c, m) for (w, c, m) in cells
                if SimKey.of(w, c, m) not in self._metrics]
        if todo and self.workers > 1:
            from repro.experiments.parallel import ParallelEngine
            engine = ParallelEngine(scale=self.scale, seed=self.seed,
                                    machine=self.machine, cache=self.cache,
                                    workers=self.workers,
                                    retry_policy=self.retry_policy,
                                    ledger_path=self.ledger_path,
                                    fault_dir=self.fault_dir)
            self._metrics.update(engine.execute(todo, verbose=verbose))
            self.last_ledger_path = engine.ledger_path
        else:
            for (w, c, m) in todo:
                self.run(w, c, machine=m)
        return {key: self._metrics[key] for key in wanted}

    def run_matrix(self, config_names: Iterable[str],
                   workloads: Optional[Iterable[str]] = None,
                   verbose: bool = False,
                   ) -> Dict[Tuple[str, str], SystemMetrics]:
        """Run every (workload, config) pair; returns the result map."""
        workloads = list(workloads) if workloads else WORKLOAD_ORDER
        config_names = list(config_names)
        cells: List[Cell] = [(w, c, None) for w in workloads
                             for c in config_names]
        self.run_cells(cells, verbose=verbose)
        return {(w, c): self._metrics[SimKey.of(w, c, self.machine)]
                for w in workloads for c in config_names}
