"""Experiment runner: workload x configuration matrix with caching.

Reproducing a figure needs several coordinated steps — generate the
workload trace, profile it on the Base machine, derive the optimization
inputs (the privatized trace, the update-protocol page set, the hot-spot
basic blocks, the prefetch-annotated trace), and simulate the requested
configuration.  :class:`ExperimentRunner` performs and caches each step so
a full table/figure sweep generates each trace and derived artifact once.

The derivation pipeline mirrors the paper's methodology:

* privatization/relocation and hot-spot prefetching are kernel source
  changes -> trace transformations;
* the update-protocol core is chosen by analyzing coherence misses of a
  profiling run (section 5.2) and handed to the coherence controller;
* hot spots are the 12 basic blocks with the most misses remaining after
  the block and coherence optimizations (section 6), i.e. they are
  measured on the BCoh_RelUp system, not on Base.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.params import BASE_MACHINE, MachineParams
from repro.optim.hotspots import HotspotPrefetcher, find_hotspots
from repro.optim.privatize import privatize_and_relocate
from repro.optim.update_select import UpdateSelection, select_update_core
from repro.sim.config import SystemConfig, standard_configs
from repro.sim.metrics import SystemMetrics
from repro.sim.system import simulate
from repro.synthetic.workloads import WORKLOAD_ORDER, generate
from repro.trace.stream import Trace

#: Number of hot spots the paper selects (section 6).
NUM_HOTSPOTS = 12


def _machine_key(machine: MachineParams) -> Tuple[int, int, int, int]:
    return (machine.l1d.size_bytes, machine.l1d.line_bytes,
            machine.l2.size_bytes, machine.l2.line_bytes)


class ExperimentRunner:
    """Caches traces, derived artifacts, and simulation results."""

    def __init__(self, scale: float = 0.5, seed: int = 1996,
                 machine: MachineParams = BASE_MACHINE) -> None:
        self.scale = scale
        self.seed = seed
        self.machine = machine
        self._traces: Dict[str, Trace] = {}
        self._privatized: Dict[str, Trace] = {}
        self._update: Dict[str, UpdateSelection] = {}
        self._hot_pcs: Dict[str, List[int]] = {}
        self._prefetched: Dict[str, Trace] = {}
        self._metrics: Dict[Tuple, SystemMetrics] = {}

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def trace(self, workload: str) -> Trace:
        """The raw trace of *workload*."""
        if workload not in self._traces:
            self._traces[workload] = generate(workload, seed=self.seed,
                                              scale=self.scale)
        return self._traces[workload]

    def privatized_trace(self, workload: str) -> Trace:
        """The trace after privatization/relocation (section 5.1)."""
        if workload not in self._privatized:
            trace = self.trace(workload)
            self._privatized[workload] = privatize_and_relocate(
                trace, trace.num_cpus)
        return self._privatized[workload]

    def update_selection(self, workload: str) -> UpdateSelection:
        """The update-protocol core chosen from a Base profiling run."""
        if workload not in self._update:
            base = self.run(workload, "Base")
            self._update[workload] = select_update_core(
                base, self.trace(workload).symbols,
                page_bytes=self.machine.page_bytes)
        return self._update[workload]

    def hotspots(self, workload: str) -> List[int]:
        """The 12 hottest basic blocks, measured on BCoh_RelUp."""
        if workload not in self._hot_pcs:
            profile = self.run(workload, "BCoh_RelUp")
            self._hot_pcs[workload] = find_hotspots(profile, NUM_HOTSPOTS)
        return self._hot_pcs[workload]

    def prefetched_trace(self, workload: str) -> Trace:
        """The privatized trace with hot-spot prefetches inserted."""
        if workload not in self._prefetched:
            config = standard_configs()["BCPref"]
            prefetcher = HotspotPrefetcher(
                self.hotspots(workload), lead=config.hotspot_lead_records,
                line_bytes=self.machine.l1d.line_bytes)
            self._prefetched[workload] = prefetcher.apply(
                self.privatized_trace(workload))
        return self._prefetched[workload]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self, workload: str, config_name: str,
            machine: Optional[MachineParams] = None) -> SystemMetrics:
        """Simulate *workload* under the named standard configuration."""
        machine = machine if machine is not None else self.machine
        key = (workload, config_name, _machine_key(machine))
        if key in self._metrics:
            return self._metrics[key]
        config = standard_configs(machine)[config_name]
        metrics = self._run_config(workload, config)
        self._metrics[key] = metrics
        return metrics

    def _run_config(self, workload: str,
                    config: SystemConfig) -> SystemMetrics:
        if config.hotspot_prefetch:
            trace = self.prefetched_trace(workload)
        elif config.privatize:
            trace = self.privatized_trace(workload)
        else:
            trace = self.trace(workload)
        update_pages: Iterable[int] = ()
        if config.selective_update:
            update_pages = self.update_selection(workload).pages
        hotspot_pcs: Iterable[int] = ()
        if config.hotspot_prefetch:
            hotspot_pcs = self.hotspots(workload)
        return simulate(trace, config, update_pages=update_pages,
                        hotspot_pcs=hotspot_pcs)

    def run_matrix(self, config_names: Iterable[str],
                   workloads: Optional[Iterable[str]] = None,
                   ) -> Dict[Tuple[str, str], SystemMetrics]:
        """Run every (workload, config) pair; returns the result map."""
        workloads = list(workloads) if workloads else WORKLOAD_ORDER
        out = {}
        for workload in workloads:
            for name in config_names:
                out[(workload, name)] = self.run(workload, name)
        return out
