"""repro — reproduction of Xia & Torrellas, "Improving the Data Cache
Performance of Multiprocessor Operating Systems" (HPCA 1996).

Public API tour:

* :mod:`repro.synthetic` — generate the four system-intensive workload
  traces (``generate("TRFD_4")`` ...).
* :mod:`repro.sim` — simulate a trace on a configured machine
  (``simulate(trace, standard_configs()["Blk_Dma"])``).
* :mod:`repro.optim` — the paper's software optimizations as trace
  transformations and analyses.
* :mod:`repro.analysis` — builders for every table and figure.
* :mod:`repro.experiments` — the cached experiment runner and the
  regenerate-everything driver (``python -m repro.experiments.all``).
"""

from repro.common import BASE_MACHINE, MachineParams, Mode, Scheme
from repro.sim import (SystemConfig, all_configs, hybrid_configs, simulate,
                       standard_configs)
from repro.synthetic import WORKLOAD_ORDER, generate

__version__ = "1.0.0"

__all__ = [
    "BASE_MACHINE",
    "MachineParams",
    "Mode",
    "Scheme",
    "SystemConfig",
    "WORKLOAD_ORDER",
    "__version__",
    "all_configs",
    "generate",
    "hybrid_configs",
    "simulate",
    "standard_configs",
]
