"""Execution-timeline recording, for debugging and demonstration.

A :class:`TimelineRecorder` wraps a :class:`MultiprocessorSystem` and
captures a bounded window of per-CPU scheduling decisions — which record
each processor executed, at what simulated time, and how long it took.
:func:`render_timeline` draws the window as a per-CPU lane chart so the
interleaving (bus serialization, lock spins, barrier waits, DMA holds) can
be inspected directly.

This is a development tool: recording every step of a full workload would
be enormous, so the recorder keeps only the first ``limit`` events.

Instrumentation contract: attaching wraps each ``proc.step`` on the
instance and **restores it** when :meth:`TimelineRecorder.run` completes
(or on an explicit :meth:`TimelineRecorder.detach`), so a system can be
recorded, re-run, and re-recorded without stacking wrappers.  Attaching
a second recorder to an already-instrumented system raises
:class:`~repro.common.errors.SimulationError` instead of silently
double-counting every step.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.types import Op
from repro.sim.processor import ProcStatus
from repro.sim.system import MultiprocessorSystem


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One processor step."""

    cpu: int
    start: int
    end: int
    op: str
    addr: int
    status: str


class TimelineRecorder:
    """Records the first *limit* scheduling steps of a system run."""

    def __init__(self, system: MultiprocessorSystem, limit: int = 1000) -> None:
        self.system = system
        self.limit = limit
        self.events: List[TimelineEvent] = []
        #: cpu_id -> (had instance attr, previous step, our wrapper);
        #: emptied by detach().
        self._originals: Dict[int, Tuple[bool, object, object]] = {}
        self._instrument()

    def _instrument(self) -> None:
        if self._originals:
            raise SimulationError("TimelineRecorder is already attached")
        for proc in self.system.processors:
            if getattr(proc.step, "_timeline_wrapper", False):
                raise SimulationError(
                    f"cpu {proc.cpu_id} is already instrumented by "
                    f"another TimelineRecorder; detach it first")
        for proc in self.system.processors:
            original_step = proc.step
            had_instance_attr = "step" in proc.__dict__

            def step(proc=proc, original_step=original_step):
                start = proc.time
                pos = proc.pos
                rec = proc.stream[pos] if pos < len(proc.stream) else None
                result = original_step()
                if rec is not None and len(self.events) < self.limit:
                    self.events.append(TimelineEvent(
                        cpu=proc.cpu_id, start=start, end=proc.time,
                        op=Op(rec.op).name, addr=rec.addr,
                        status=result.status.value))
                return result

            step._timeline_wrapper = True
            self._originals[proc.cpu_id] = (had_instance_attr,
                                            original_step, step)
            proc.step = step

    def detach(self) -> None:
        """Restore every wrapped ``proc.step``; idempotent.

        A ``step`` that was re-monkeypatched *on top of* our wrapper
        (e.g. by a test) is left alone — restoring underneath it would
        silently discard that wrapper.
        """
        for proc in self.system.processors:
            entry = self._originals.pop(proc.cpu_id, None)
            if entry is None:
                continue
            had_instance_attr, original_step, wrapper = entry
            if proc.__dict__.get("step") is not wrapper:
                continue
            if had_instance_attr:
                proc.step = original_step
            else:
                del proc.__dict__["step"]
        self._originals.clear()

    def run(self):
        """Run the wrapped system; detaches the wrappers on the way out."""
        try:
            return self.system.run()
        finally:
            self.detach()

    def events_for(self, cpu: int) -> List[TimelineEvent]:
        return [e for e in self.events if e.cpu == cpu]

    def window(self) -> Optional[range]:
        """Simulated-time span covered by the recording."""
        if not self.events:
            return None
        return range(min(e.start for e in self.events),
                     max(e.end for e in self.events) + 1)


_LANE_GLYPH = {
    "READ": "r", "WRITE": "w", "PREFETCH": "p", "LOCK_ACQ": "L",
    "LOCK_REL": "l", "BARRIER": "B", "BLOCK_START": "[", "BLOCK_END": "]",
}


def render_timeline(recorder: TimelineRecorder, width: int = 72,
                    cycles: Optional[int] = None) -> str:
    """Draw the recorded window as one lane per CPU.

    Each column is a bucket of simulated cycles; the glyph shows the kind
    of record the CPU was executing there (capitals mark synchronization;
    ``[``/``]`` bracket block operations; ``.`` is unattributed time —
    stalls and waits).
    """
    # Function-level import: the analysis package init is heavy and this
    # sim-layer module must stay importable without it.
    from repro.analysis.timeline_view import bucket_span

    window = recorder.window()
    if window is None:
        return "(no events recorded)"
    span = cycles if cycles is not None else (window.stop - window.start)
    span = max(1, span)
    start = window.start
    lanes = []
    num_cpus = len(recorder.system.processors)
    for cpu in range(num_cpus):
        lane = ["."] * width
        for event in recorder.events_for(cpu):
            if event.start >= start + span:
                continue
            lo, hi = bucket_span(event.start, event.end, start, span, width)
            glyph = _LANE_GLYPH.get(event.op, "?")
            for col in range(lo, hi):
                lane[col] = glyph
        lanes.append(f"cpu{cpu} |{''.join(lane)}|")
    header = (f"timeline: cycles {start:,}..{start + span:,} "
              f"({len(recorder.events)} events)")
    legend = ("legend: r/w data, p prefetch, L/l lock acq/rel, B barrier, "
              "[ ] block op, . stall/idle")
    return "\n".join([header, legend] + lanes)
