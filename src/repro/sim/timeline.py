"""Execution-timeline recording, for debugging and demonstration.

A :class:`TimelineRecorder` wraps a :class:`MultiprocessorSystem` and
captures a bounded window of per-CPU scheduling decisions — which record
each processor executed, at what simulated time, and how long it took.
:func:`render_timeline` draws the window as a per-CPU lane chart so the
interleaving (bus serialization, lock spins, barrier waits, DMA holds) can
be inspected directly.

This is a development tool: recording every step of a full workload would
be enormous, so the recorder keeps only the first ``limit`` events.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.common.types import Op
from repro.sim.processor import ProcStatus
from repro.sim.system import MultiprocessorSystem


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One processor step."""

    cpu: int
    start: int
    end: int
    op: str
    addr: int
    status: str


class TimelineRecorder:
    """Records the first *limit* scheduling steps of a system run."""

    def __init__(self, system: MultiprocessorSystem, limit: int = 1000) -> None:
        self.system = system
        self.limit = limit
        self.events: List[TimelineEvent] = []
        self._instrument()

    def _instrument(self) -> None:
        for proc in self.system.processors:
            original_step = proc.step

            def step(proc=proc, original_step=original_step):
                start = proc.time
                pos = proc.pos
                rec = proc.stream[pos] if pos < len(proc.stream) else None
                result = original_step()
                if rec is not None and len(self.events) < self.limit:
                    self.events.append(TimelineEvent(
                        cpu=proc.cpu_id, start=start, end=proc.time,
                        op=Op(rec.op).name, addr=rec.addr,
                        status=result.status.value))
                return result

            proc.step = step

    def run(self):
        """Run the wrapped system; returns its metrics."""
        return self.system.run()

    def events_for(self, cpu: int) -> List[TimelineEvent]:
        return [e for e in self.events if e.cpu == cpu]

    def window(self) -> Optional[range]:
        """Simulated-time span covered by the recording."""
        if not self.events:
            return None
        return range(min(e.start for e in self.events),
                     max(e.end for e in self.events) + 1)


_LANE_GLYPH = {
    "READ": "r", "WRITE": "w", "PREFETCH": "p", "LOCK_ACQ": "L",
    "LOCK_REL": "l", "BARRIER": "B", "BLOCK_START": "[", "BLOCK_END": "]",
}


def render_timeline(recorder: TimelineRecorder, width: int = 72,
                    cycles: Optional[int] = None) -> str:
    """Draw the recorded window as one lane per CPU.

    Each column is a bucket of simulated cycles; the glyph shows the kind
    of record the CPU was executing there (capitals mark synchronization;
    ``[``/``]`` bracket block operations; ``.`` is unattributed time —
    stalls and waits).
    """
    window = recorder.window()
    if window is None:
        return "(no events recorded)"
    span = cycles if cycles is not None else (window.stop - window.start)
    span = max(1, span)
    start = window.start
    lanes = []
    num_cpus = len(recorder.system.processors)
    for cpu in range(num_cpus):
        lane = ["."] * width
        for event in recorder.events_for(cpu):
            if event.start >= start + span:
                continue
            lo = (event.start - start) * width // span
            hi = max(lo + 1, (min(event.end, start + span) - start)
                     * width // span)
            glyph = _LANE_GLYPH.get(event.op, "?")
            for col in range(lo, min(hi, width)):
                lane[col] = glyph
        lanes.append(f"cpu{cpu} |{''.join(lane)}|")
    header = (f"timeline: cycles {start:,}..{start + span:,} "
              f"({len(recorder.events)} events)")
    legend = ("legend: r/w data, p prefetch, L/l lock acq/rel, B barrier, "
              "[ ] block op, . stall/idle")
    return "\n".join([header, legend] + lanes)
