"""The multiprocessor system: wiring and the time-ordered scheduling loop.

A :class:`MultiprocessorSystem` builds the shared bus, the coherence
controller, one :class:`~repro.memsys.hierarchy.CpuMemorySystem` and
:class:`~repro.sim.processor.Processor` per CPU, and runs all trace streams
to completion.  Scheduling always advances the runnable processor with the
smallest local clock, which keeps bus reservations in approximately global
time order and preserves the mutual exclusion of the traced critical
sections.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.errors import DeadlockError, SimulationError
from repro.common.types import Mode, Op
from repro.memsys.bus import Bus
from repro.memsys.coherence import CoherenceController
from repro.memsys.hierarchy import CpuMemorySystem
from repro.sim.config import SystemConfig
from repro.sim.metrics import SystemMetrics
from repro.sim.processor import ProcStatus, Processor, SPIN_QUANTUM
from repro.sim.sync import BarrierManager, LockTable
from repro.trace.stream import Trace

#: Consecutive failed lock retries after which we declare deadlock.
MAX_SPIN_RETRIES = 1_000_000


class MultiprocessorSystem:
    """One simulated machine running one trace under one configuration."""

    def __init__(self, trace: Trace, config: SystemConfig,
                 update_pages: Optional[Iterable[int]] = None,
                 hotspot_pcs: Optional[Iterable[int]] = None) -> None:
        if trace.num_cpus > config.machine.num_cpus:
            raise SimulationError(
                f"trace has {trace.num_cpus} CPUs, machine only "
                f"{config.machine.num_cpus}")
        self.trace = trace
        self.config = config
        machine = config.machine
        self.bus = Bus(machine.bus)
        self.controller = CoherenceController(machine, self.bus)
        self.metrics = SystemMetrics(trace.num_cpus, machine.page_bytes)
        if hotspot_pcs:
            self.metrics.hotspot_pcs = set(hotspot_pcs)
        if config.pure_update:
            self.controller.update_everywhere = True
        elif config.selective_update and update_pages:
            self.controller.set_update_pages(update_pages)
        self.locks = LockTable()
        self.barriers = BarrierManager(machine.barrier_release_cycles)
        self.memories: List[CpuMemorySystem] = []
        self.processors: List[Processor] = []
        for cpu in range(trace.num_cpus):
            mem = CpuMemorySystem(machine, self.bus, self.controller,
                                  self.metrics.trackers[cpu])
            self.memories.append(mem)
            self.processors.append(
                Processor(cpu, trace.streams[cpu], trace.blockops, mem,
                          self.metrics, config, self.locks, self.barriers))
        self._spin_retries = [0] * trace.num_cpus

    def run(self) -> SystemMetrics:
        """Run every stream to completion; returns the filled metrics."""
        procs = self.processors
        while True:
            runnable = [p for p in procs if p.status == ProcStatus.RUNNING]
            if not runnable:
                if all(p.status == ProcStatus.DONE for p in procs):
                    break
                waiting = [p.cpu_id for p in procs
                           if p.status == ProcStatus.WAITING_BARRIER]
                raise DeadlockError(
                    f"no runnable processor; cpus {waiting} wait at barriers")
            proc = min(runnable, key=lambda p: p.time)
            result = proc.step()
            if result.status == ProcStatus.BLOCKED_LOCK:
                self._spin(proc, result.lock_addr)
            else:
                self._spin_retries[proc.cpu_id] = 0
            if result.barrier_release is not None:
                release, waiters = result.barrier_release
                for cpu in waiters:
                    procs[cpu].wake_from_barrier(release)
        self.metrics.finalize([p.time for p in procs])
        self.metrics.capture_system_stats(self.bus, self.controller,
                                          self.locks, self.barriers)
        return self.metrics

    def _spin(self, proc: Processor, lock_addr: int) -> None:
        """Advance a lock-spinning processor's clock past the holder's."""
        holder = self.locks.holder(lock_addr)
        if holder is None:
            return  # Released in the meantime; retry immediately.
        self._spin_retries[proc.cpu_id] += 1
        if self._spin_retries[proc.cpu_id] > MAX_SPIN_RETRIES:
            raise DeadlockError(
                f"cpu {proc.cpu_id} spun too long on lock {lock_addr:#x} "
                f"held by cpu {holder}")
        self.locks.note_contention()
        holder_time = self.processors[holder].time
        target = max(proc.time + SPIN_QUANTUM, holder_time + 1)
        rec = proc.stream[proc.pos]
        self.metrics.add_time(Mode(rec.mode), sync=target - proc.time)
        proc.time = target

    def check_invariants(self) -> None:
        """Coherence/inclusion invariants (property tests call this)."""
        self.controller.check_invariants()


def simulate(trace: Trace, config: SystemConfig,
             update_pages: Optional[Iterable[int]] = None,
             hotspot_pcs: Optional[Iterable[int]] = None) -> SystemMetrics:
    """Convenience wrapper: build a system, run it, return the metrics."""
    system = MultiprocessorSystem(trace, config, update_pages, hotspot_pcs)
    return system.run()
