"""The multiprocessor system: wiring and the time-ordered scheduling loop.

A :class:`MultiprocessorSystem` builds the shared bus, the coherence
controller, one :class:`~repro.memsys.hierarchy.CpuMemorySystem` and
:class:`~repro.sim.processor.Processor` per CPU, and runs all trace streams
to completion.  Scheduling always advances the runnable processor with the
smallest local clock, which keeps bus reservations in approximately global
time order and preserves the mutual exclusion of the traced critical
sections.

:meth:`MultiprocessorSystem.run` keeps the runnable set in a binary heap of
``(time, cpu_id)`` entries, so each scheduling decision costs ``O(log P)``
instead of rebuilding and scanning a list of all processors per record.
The heap invariant is strict: **every RUNNING processor has exactly one
entry, pushed immediately after its clock last changed** — a processor is
out of the heap precisely while it is being stepped, waiting at a barrier,
or done, so there are no stale entries and no lazy deletion.  Ties break on
``cpu_id``, which reproduces the scan's first-minimum choice exactly.

:meth:`run_scan` preserves the original scan-based loop as an executable
reference; the equivalence tests run both over randomized traces and
require bit-identical metrics snapshots.
"""

from __future__ import annotations

import heapq
import os
from typing import Iterable, List, Optional

from repro.check import REPRO_CHECK_ENV
from repro.common.errors import DeadlockError, SimulationError
from repro.common.types import MODE_BY_VALUE, Mode
from repro.memsys.bus import Bus
from repro.memsys.coherence import CoherenceController
from repro.memsys.hierarchy import CpuMemorySystem
from repro.sim.config import SystemConfig
from repro.sim.metrics import SystemMetrics
from repro.sim.processor import ProcStatus, Processor, SPIN_QUANTUM
from repro.sim.sync import BarrierManager, LockTable
from repro.trace.stream import Trace

#: Consecutive failed lock retries after which we declare deadlock.
MAX_SPIN_RETRIES = 1_000_000

#: Environment variable forcing the scalar scheduler (debugging aid).
REPRO_NO_BATCH_ENV = "REPRO_NO_BATCH"

#: Records a :meth:`Processor.batch_scan` classifies per attempt.
DEFAULT_BATCH_CHUNK = 4096

#: Heap key bound meaning "no other runnable processor": any key sorts
#: below it, so an unopposed run is limited only by its first breaking
#: record (clock values are far below 2**62 in any feasible trace).
_NO_BOUND = (1 << 62, -1)


class MultiprocessorSystem:
    """One simulated machine running one trace under one configuration."""

    def __init__(self, trace: Trace, config: SystemConfig,
                 update_pages: Optional[Iterable[int]] = None,
                 hotspot_pcs: Optional[Iterable[int]] = None,
                 check: Optional[bool] = None,
                 batch: Optional[bool] = None,
                 batch_chunk: int = DEFAULT_BATCH_CHUNK) -> None:
        if trace.num_cpus > config.machine.num_cpus:
            raise SimulationError(
                f"trace has {trace.num_cpus} CPUs, machine only "
                f"{config.machine.num_cpus}")
        self.trace = trace
        self.config = config
        machine = config.machine
        self.bus = Bus(machine.bus)
        self.controller = CoherenceController(machine, self.bus)
        self.metrics = SystemMetrics(trace.num_cpus, machine.page_bytes)
        if hotspot_pcs:
            self.metrics.hotspot_pcs = set(hotspot_pcs)
        if config.adaptive is not None:
            # Adaptive schemes own the whole update/invalidate decision:
            # the pages (if any) feed the policy, never the controller's
            # page-set rule, so every broadcast goes through the policy.
            from repro.memsys.adaptive import build_policy
            self.controller.adaptive = build_policy(config, update_pages)
        elif config.pure_update:
            self.controller.update_everywhere = True
        elif config.selective_update and update_pages:
            self.controller.set_update_pages(update_pages)
        self.locks = LockTable()
        self.barriers = BarrierManager(machine.barrier_release_cycles)
        self.memories: List[CpuMemorySystem] = []
        self.processors: List[Processor] = []
        streams = trace.sealed_streams()
        for cpu in range(trace.num_cpus):
            mem = CpuMemorySystem(machine, self.bus, self.controller,
                                  self.metrics.trackers[cpu])
            self.memories.append(mem)
            self.processors.append(
                Processor(cpu, streams[cpu], trace.blockops, mem,
                          self.metrics, config, self.locks, self.barriers))
        #: cpu_id -> consecutive failed lock retries; a cpu only has an
        #: entry while it is actually spinning, so the common case (nobody
        #: contended recently) is an empty dict, cleared by a truth test.
        self._spin_retries: dict = {}
        #: Event tracer (:mod:`repro.obs`), None unless armed via
        #: :func:`repro.obs.tracer.attach_tracer`.  Like the checker, it
        #: wraps miss-path methods per instance, so the disabled case
        #: costs nothing on the hot path.
        self.tracer = None
        #: Conformance checker (repro.check), None unless requested via
        #: the ``check`` argument or the REPRO_CHECK environment variable.
        #: Attaching wraps the per-CPU access paths, so the disabled case
        #: costs nothing on the hot path.
        self.checker = None
        if check is None:
            check = os.environ.get(REPRO_CHECK_ENV, "") not in ("", "0")
        if check:
            from repro.check.invariants import attach_checker
            self.checker = attach_checker(self)
        #: Batched stepping request: None consults REPRO_NO_BATCH at run
        #: time, False forces scalar.  True *requests* batching but never
        #: overrides the safety gates in :meth:`_batch_allowed` — a run
        #: with the checker or tracer armed is always scalar.
        self._batch_requested = batch
        if batch_chunk < 1:
            raise SimulationError("batch_chunk must be >= 1")
        self._batch_chunk = batch_chunk
        #: Records retired through the batched path this run (0 whenever
        #: the auto-disable gates forced scalar execution).
        self.batched_records = 0

    def _batch_allowed(self) -> bool:
        """Decide whether this run may use the batched scheduler.

        Conservative by construction: anything that observes per-record
        behaviour — the conformance checker, the observability tracer, an
        instance-patched ``step`` (timeline recorder, tests) — forces the
        scalar path, as does ``REPRO_NO_BATCH=1`` or ``batch=False``.
        """
        if self._batch_requested is False:
            return False
        if self._batch_requested is None and os.environ.get(
                REPRO_NO_BATCH_ENV, "") not in ("", "0"):
            return False
        if self.checker is not None or self.tracer is not None:
            return False
        # The batched tiers index tags_np/states_np with direct-mapped
        # geometry; any set-associative cache forces the scalar loop.
        machine = self.config.machine
        if (machine.l1i.assoc != 1 or machine.l1d.assoc != 1
                or machine.l2.assoc != 1):
            return False
        # Instance-level step wrappers (repro.sim.timeline, tests) see
        # every record; batching would skip past them.  A substituted
        # pending-fill view (``_AlwaysPending`` in repro.check and the
        # fast-path tests) reroutes reads the same way.
        if any("step" in p.__dict__
               or p._pending_ready is not p.mem.pending.ready
               for p in self.processors):
            return False
        # Class-level protocol patches (repro.check.mutants) change what
        # a write drain does; the batched write path inlines the pristine
        # drain, so any patch forces the scalar loop.
        from repro.memsys import hierarchy
        if CpuMemorySystem._drain_word is not hierarchy._PRISTINE_DRAIN:
            return False
        return True

    def run(self) -> SystemMetrics:
        """Run every stream to completion; returns the filled metrics.

        Dispatches to the batched scheduler (:meth:`_run_batched`) unless
        an observer is attached or batching is disabled; the scalar heap
        loop below is the reference behaviour both must reproduce
        bit-identically.

        Heap scheduler — see the module docstring for the invariant.  The
        processor's ``step`` is looked up per call on purpose: the timeline
        recorder and several tests monkeypatch it on the instance.
        """
        if self._batch_allowed():
            return self._run_batched()
        procs = self.processors
        running = ProcStatus.RUNNING
        blocked = ProcStatus.BLOCKED_LOCK
        push = heapq.heappush
        pop = heapq.heappop
        spin_retries = self._spin_retries
        heap = [(p.time, p.cpu_id) for p in procs if p.status is running]
        heapq.heapify(heap)
        while heap:
            _, cpu = pop(heap)
            proc = procs[cpu]
            result = proc.step()
            status = result.status
            if status is blocked:
                self._spin(proc, result.lock_addr, result.mode)
                push(heap, (proc.time, cpu))
                continue
            if spin_retries:
                spin_retries.pop(cpu, None)
            if status is running:
                push(heap, (proc.time, cpu))
            if result.barrier_release is not None:
                release, waiters = result.barrier_release
                for wcpu in waiters:
                    wproc = procs[wcpu]
                    wproc.wake_from_barrier(release)
                    push(heap, (wproc.time, wcpu))
        if not all(p.status is ProcStatus.DONE for p in procs):
            waiting = [p.cpu_id for p in procs
                       if p.status is ProcStatus.WAITING_BARRIER]
            raise DeadlockError(
                f"no runnable processor; cpus {waiting} wait at barriers")
        return self._finalize()

    def _run_batched(self) -> SystemMetrics:
        """Heap scheduler with batched run execution between pops.

        Identical to the scalar loop of :meth:`run` except for one move:
        when the popped (globally earliest) processor's head record is in
        the privately-determined class, :meth:`Processor.batch_run`
        executes its whole run of such records in one call — bounded by
        the next key in the heap — instead of one ``step`` per pop.

        Equivalence argument: the scalar loop pops the smallest
        ``(time, cpu_id)`` key; while the popped processor's key stays
        below every other key it would simply be re-popped, one record
        per iteration.  ``batch_run`` executes exactly those records —
        it stops as soon as the processor's clock reaches the smallest
        other key — and replicates the scalar ``step``'s per-record
        effects bit for bit.  The global execution order is therefore
        *identical* to the scalar loop's, not merely equivalent under
        reordering.  Records outside the private class (bus fetches,
        synchronization, block brackets, prefetches, write-buffer
        stalls) always go through the untouched scalar ``step``.
        """
        procs = self.processors
        running = ProcStatus.RUNNING
        blocked = ProcStatus.BLOCKED_LOCK
        push = heapq.heappush
        pop = heapq.heappop
        spin_retries = self._spin_retries
        columns = self.trace.column_streams()
        for p in procs:
            p.batch_prepare(columns[p.cpu_id])
        chunk = self._batch_chunk
        batched = 0
        no_bound = _NO_BOUND
        heap = [(p.time, p.cpu_id) for p in procs if p.status is running]
        heapq.heapify(heap)
        while heap:
            _, cpu = pop(heap)
            proc = procs[cpu]
            bound_time, bound_cpu = heap[0] if heap else no_bound
            k = proc.batch_run(bound_time, bound_cpu, chunk)
            if k:
                batched += k
                if proc.status is running:
                    push(heap, (proc.time, cpu))
                continue
            result = proc.step()
            status = result.status
            if status is blocked:
                self._spin(proc, result.lock_addr, result.mode)
                push(heap, (proc.time, cpu))
                continue
            if spin_retries:
                spin_retries.pop(cpu, None)
            if status is running:
                push(heap, (proc.time, cpu))
            if result.barrier_release is not None:
                release, waiters = result.barrier_release
                for wcpu in waiters:
                    wproc = procs[wcpu]
                    wproc.wake_from_barrier(release)
                    push(heap, (wproc.time, wcpu))
        self.batched_records += batched
        for p in procs:
            p.batch_flush()
        if not all(p.status is ProcStatus.DONE for p in procs):
            waiting = [p.cpu_id for p in procs
                       if p.status is ProcStatus.WAITING_BARRIER]
            raise DeadlockError(
                f"no runnable processor; cpus {waiting} wait at barriers")
        return self._finalize()

    def run_scan(self) -> SystemMetrics:
        """Reference scheduler: rebuild-and-scan the runnable list per step.

        This is the original O(P)-per-record loop.  It exists so the
        equivalence tests can check that the heap scheduler produces
        bit-identical metrics; experiments should call :meth:`run`.
        """
        procs = self.processors
        while True:
            runnable = [p for p in procs if p.status == ProcStatus.RUNNING]
            if not runnable:
                if all(p.status == ProcStatus.DONE for p in procs):
                    break
                waiting = [p.cpu_id for p in procs
                           if p.status == ProcStatus.WAITING_BARRIER]
                raise DeadlockError(
                    f"no runnable processor; cpus {waiting} wait at barriers")
            proc = min(runnable, key=lambda p: p.time)
            result = proc.step()
            if result.status == ProcStatus.BLOCKED_LOCK:
                self._spin(proc, result.lock_addr, result.mode)
            elif self._spin_retries:
                self._spin_retries.pop(proc.cpu_id, None)
            if result.barrier_release is not None:
                release, waiters = result.barrier_release
                for cpu in waiters:
                    procs[cpu].wake_from_barrier(release)
        return self._finalize()

    def _finalize(self) -> SystemMetrics:
        self.metrics.finalize([p.time for p in self.processors])
        self.metrics.capture_system_stats(self.bus, self.controller,
                                          self.locks, self.barriers)
        return self.metrics

    def _spin(self, proc: Processor, lock_addr: int,
              mode: Optional[Mode] = None) -> None:
        """Advance a lock-spinning processor's clock past the holder's.

        *mode* is the blocking record's mode, carried on the
        :class:`StepResult` so retries do not re-read the stream; ``None``
        (direct callers) falls back to looking it up.
        """
        holder = self.locks.holder(lock_addr)
        if holder is None:
            return  # Released in the meantime; retry immediately.
        retries = self._spin_retries.get(proc.cpu_id, 0) + 1
        self._spin_retries[proc.cpu_id] = retries
        if retries > MAX_SPIN_RETRIES:
            raise DeadlockError(
                f"cpu {proc.cpu_id} spun too long on lock {lock_addr:#x} "
                f"held by cpu {holder}")
        self.locks.note_contention()
        holder_time = self.processors[holder].time
        target = max(proc.time + SPIN_QUANTUM, holder_time + 1)
        if mode is None:
            mode = MODE_BY_VALUE[proc.stream[proc.pos].mode]
        self.metrics.add_time(mode, sync=target - proc.time)
        proc.time = target

    def check_invariants(self) -> None:
        """Coherence/inclusion invariants (property tests call this)."""
        self.controller.check_invariants()


def simulate(trace: Trace, config: SystemConfig,
             update_pages: Optional[Iterable[int]] = None,
             hotspot_pcs: Optional[Iterable[int]] = None,
             check: Optional[bool] = None,
             tracer=None,
             batch: Optional[bool] = None,
             batch_chunk: int = DEFAULT_BATCH_CHUNK) -> SystemMetrics:
    """Convenience wrapper: build a system, run it, return the metrics.

    *tracer* is an optional :class:`repro.obs.tracer.Tracer` to arm the
    system with before running (the caller keeps the reference and reads
    its events/profile afterwards).  *batch* selects the batched
    scheduler (default: on, unless ``REPRO_NO_BATCH`` is set); attaching
    a checker or tracer always forces the scalar path regardless.
    """
    system = MultiprocessorSystem(trace, config, update_pages, hotspot_pcs,
                                  check=check, batch=batch,
                                  batch_chunk=batch_chunk)
    if tracer is not None:
        from repro.obs.tracer import attach_tracer
        attach_tracer(system, tracer)
    return system.run()
