"""The in-order trace-driven processor model.

Each processor consumes its CPU's trace stream record by record.  For every
record it charges instruction execution and instruction-fetch stall, then
performs the data access along the path selected by the system
configuration — cached, prefetched, bypassed, or DMA for block operations —
and reports times and misses to the metrics layer.

Synchronization records interact with the shared lock table and barrier
manager; a processor that cannot make progress returns a blocked status and
the system scheduler advances simulated time for it.

Hot-path layout
---------------

:meth:`Processor.step` is the single hottest function in the repository —
it runs once per trace record across every experiment cell.  It therefore:

* resolves a *clean L1D hit* (line resident, no pending prefetch fill, no
  scheme-specific block-op handling) inline against the bound L1 tag
  array, without entering the :class:`CpuMemorySystem` call chain — the
  overwhelming majority of references in the paper's workloads are such
  hits (Table 2 reports low miss rates on every machine);
* routes writes through :meth:`CpuMemorySystem.write_cycles`, which skips
  the :class:`AccessResult` wrapper the write accounting never reads;
* converts record fields to enum members through precomputed lookup
  tables (``MODE_BY_VALUE``) instead of enum constructors, and
  accumulates time components directly into the plain int fields of the
  per-mode :class:`~repro.sim.metrics.TimeBreakdown`.

Every shortcut must keep :meth:`SystemMetrics.snapshot` bit-identical to
the straightforward path; ``tests/test_fastpath_equivalence.py`` and the
golden-value tests enforce this.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.common.types import (MODE_BY_VALUE, DataClass, MissKind, Mode, Op,
                                Scheme)
from repro.memsys.dma import run_dma
from repro.memsys.hierarchy import CpuMemorySystem
from repro.memsys.states import LineState
from repro.sim.config import SystemConfig
from repro.sim.metrics import SystemMetrics
from repro.sim.sync import BarrierManager, LockTable
from repro.trace.blockop import BlockOpDescriptor, BlockOpRegistry
from repro.trace.record import TraceRecord

#: Cycles a spinning processor waits between lock retries.
SPIN_QUANTUM = 16

_MODE_OF = MODE_BY_VALUE

# Opcode values as plain ints: IntEnum members compare to ints at C speed,
# without the enum __eq__ dispatch.
_READ = int(Op.READ)
_WRITE = int(Op.WRITE)
_PREFETCH = int(Op.PREFETCH)

#: Extra L1I lines an instruction fetch may span and still be batchable;
#: larger basic blocks fall back to the scalar ifetch walk.
_BATCH_MAX_SPAN = 3

#: Records the interpreter tier of :meth:`Processor.batch_run` executes
#: before attempting a vectorized scan: long enough that a scan's fixed
#: numpy cost is only paid on runs with a real chance of amortizing it.
_VEC_AFTER = 64

_OS_MODE = int(Mode.OS)
_KIND_BLOCK = MissKind.BLOCK_OP
_KIND_COH = MissKind.COHERENCE
_KIND_OTHER = MissKind.OTHER
_DCLASS_OF = {int(d): d for d in DataClass}
_ST_E = LineState.EXCLUSIVE
_ST_M = LineState.MODIFIED
_LOCK_ACQ = int(Op.LOCK_ACQ)
_LOCK_REL = int(Op.LOCK_REL)
_BARRIER = int(Op.BARRIER)
_BLOCK_START = int(Op.BLOCK_START)
_BLOCK_END = int(Op.BLOCK_END)


class ProcStatus(enum.Enum):
    RUNNING = "running"
    BLOCKED_LOCK = "blocked_lock"
    WAITING_BARRIER = "waiting_barrier"
    DONE = "done"


class StepResult:
    """Outcome of one :meth:`Processor.step` call."""

    __slots__ = ("status", "lock_addr", "barrier_release", "mode")

    def __init__(self, status: ProcStatus, lock_addr: int = 0,
                 barrier_release: Optional[Tuple[int, List[int]]] = None,
                 mode: Optional[Mode] = None) -> None:
        self.status = status
        self.lock_addr = lock_addr
        self.barrier_release = barrier_release
        #: Mode of the blocking record (set for BLOCKED_LOCK results so the
        #: scheduler can attribute spin time without re-reading the stream).
        self.mode = mode


#: Shared results for the two allocation-heavy outcomes.  ``step`` returns
#: these for plain running/done steps; callers only read the fields.
_RESULT_RUNNING = StepResult(ProcStatus.RUNNING)
_RESULT_DONE = StepResult(ProcStatus.DONE)


class Processor:
    """One simulated CPU."""

    def __init__(self, cpu_id: int, stream: Sequence[TraceRecord],
                 blockops: BlockOpRegistry, mem: CpuMemorySystem,
                 metrics: SystemMetrics, config: SystemConfig,
                 locks: LockTable, barriers: BarrierManager) -> None:
        self.cpu_id = cpu_id
        #: Immutable snapshot of the stream: tuple indexing skips the
        #: list's bounds/ob_item indirection in the per-record loop.
        self.stream: Tuple[TraceRecord, ...] = tuple(stream)
        self.blockops = blockops
        self.mem = mem
        self.metrics = metrics
        self.tracker = metrics.trackers[cpu_id]
        self.config = config
        self.locks = locks
        self.barriers = barriers
        self.pos = 0
        self.time = 0
        self.status = ProcStatus.RUNNING if stream else ProcStatus.DONE
        self._blk_desc: Optional[BlockOpDescriptor] = None
        self._blk_last_src_line = -1
        self._barrier_rec: Optional[TraceRecord] = None
        # --- hot-path bindings (all mutated in place by their owners) ---
        self._n = len(self.stream)
        self._l1_tags = mem.l1d.tags
        self._l1_line_bytes = mem.l1d.line_bytes
        self._l1_sets = mem.l1d.num_lines
        self._l1i_tags = mem.l1i.tags
        self._l1i_line_bytes = mem.l1i.line_bytes
        self._l1i_sets = mem.l1i.num_lines
        # Set-associative L1s cannot use the direct-indexed inline probes
        # in step() (the flat set-major tag array would alias, and a hit
        # must promote the line's LRU stamp).  Bind a one-entry sentinel
        # array holding -2 — no line address is negative, so the probe
        # always misses and every access routes through mem.read/ifetch,
        # which do the per-way lookup and the touch.  This also keeps
        # checker-armed and unarmed runs on the same touch sequence.
        if mem.l1d.assoc != 1:
            self._l1_tags = [-2]
            self._l1_sets = 1
        if mem.l1i.assoc != 1:
            self._l1i_tags = [-2]
            self._l1i_sets = 1
        self._l1_hit = mem.machine.l1_hit_cycles
        self._pending_ready = mem.pending.ready
        self._time = metrics.time
        self._reads = metrics.reads
        self._writes = metrics.writes
        # Scheme flags deciding when a block-op record may use the plain
        # cached fast path.  PREF/BYPREF reads need the lookahead-prefetch
        # side effects; BYPASS writes need the destination line register.
        scheme = config.scheme
        self._blk_read_plain = scheme not in (Scheme.PREF, Scheme.BYPREF)
        self._blk_write_plain = scheme != Scheme.BYPASS

    # ------------------------------------------------------------------
    # Scheduling interface
    # ------------------------------------------------------------------
    def wake_from_barrier(self, release_time: int) -> None:
        """Resume after a barrier episode completes."""
        if self.status != ProcStatus.WAITING_BARRIER:
            raise SimulationError(f"cpu {self.cpu_id} woken while not waiting")
        rec = self._barrier_rec
        assert rec is not None
        mode = _MODE_OF[rec.mode]
        wait = max(0, release_time - self.time)
        self.metrics.add_time(mode, sync=wait)
        self.time = max(self.time, release_time)
        # Re-read the barrier word the releaser just wrote (the spin-exit
        # read): the invalidation protocol makes this a coherence miss.
        res = self.mem.read(rec.addr, self.time)
        self.metrics.record_read(self.cpu_id, rec, res, in_blockop=False)
        self.metrics.add_time(mode, exec_cycles=1, dread=res.stall,
                              pref=res.pref_stall)
        self.time = res.done
        self._barrier_rec = None
        self.status = ProcStatus.RUNNING

    # ------------------------------------------------------------------
    # Main step
    # ------------------------------------------------------------------
    def step(self) -> StepResult:
        """Process the next record; returns the resulting status."""
        if self.status is not ProcStatus.RUNNING:
            raise SimulationError(f"step on {self.status} cpu {self.cpu_id}")
        pos = self.pos
        if pos >= self._n:
            self.status = ProcStatus.DONE
            return _RESULT_DONE
        rec = self.stream[pos]
        op = rec.op

        # A held lock blocks *before* the record is consumed; the system
        # scheduler advances our clock (spinning) and retries.
        if op == _LOCK_ACQ:
            holder = self.locks.holder(rec.addr)
            if holder is not None and holder != self.cpu_id:
                return StepResult(ProcStatus.BLOCKED_LOCK, lock_addr=rec.addr,
                                  mode=_MODE_OF[rec.mode])

        self.pos = pos + 1
        mode = _MODE_OF[rec.mode]
        icount = rec.icount
        t = self.time

        # Instruction fetch and execution for this basic block.  The
        # whole-fetch-in-one-resident-L1I-line case (short basic blocks)
        # is resolved inline; anything else goes through the hierarchy.
        if icount:
            pc = rec.pc
            i_bytes = self._l1i_line_bytes
            iline = pc - pc % i_bytes
            if (pc + 4 * icount <= iline + i_bytes
                    and self._l1i_tags[(iline // i_bytes) % self._l1i_sets]
                    == iline):
                istall = 0
            else:
                istall = self.mem.ifetch(pc, icount, t)
        else:
            istall = 0
        exec_cycles = icount
        t += icount + istall

        blk = self._blk_desc
        if op == _READ:
            addr = rec.addr
            line_bytes = self._l1_line_bytes
            line = addr - addr % line_bytes
            if ((blk is None or not rec.blockop or self._blk_read_plain)
                    and self._l1_tags[(line // line_bytes) % self._l1_sets]
                    == line
                    and line not in self._pending_ready):
                # Clean L1D hit: one read for this mode, zero stall.
                self._reads[mode] += 1
                exec_cycles += 1
                t += self._l1_hit
            else:
                t, extra_exec = self._do_read(rec, t)
                exec_cycles += extra_exec
        elif op == _WRITE:
            exec_cycles += 1
            if blk is None or not rec.blockop or self._blk_write_plain:
                done, stall = self.mem.write_cycles(rec.addr, t)
                self._writes[mode] += 1
                if rec.blockop:
                    self.metrics.blk_write_stall += stall
                if stall:
                    self._time[mode].dwrite += stall
                t = done
            else:
                t = self._do_write(rec, t)
        elif op == _PREFETCH:
            self.mem.prefetch_line(rec.addr, t)
            self.metrics.record_prefetch_issued()
        elif op == _LOCK_ACQ:
            t = self._do_lock_acquire(rec, t)
            exec_cycles += 2
        elif op == _LOCK_REL:
            t = self._do_lock_release(rec, t)
            exec_cycles += 1
        elif op == _BLOCK_START:
            t = self._do_block_start(rec, t)
        elif op == _BLOCK_END:
            t = self._do_block_end(rec, t)
        elif op == _BARRIER:
            return self._do_barrier(rec, t, exec_cycles, istall)
        else:  # pragma: no cover - enum is exhaustive
            raise SimulationError(f"unhandled op {op}")

        breakdown = self._time[mode]
        breakdown.exec_cycles += exec_cycles
        if istall:
            breakdown.imiss += istall
        # ``blk`` is the pre-step state: a BLOCK_START enters (and a
        # BLOCK_END leaves) block context during this very record, which
        # the opcode checks cover — matching the post-step condition the
        # accounting was defined with.
        if blk is not None or op == _BLOCK_START or op == _BLOCK_END:
            self.metrics.blk_instr_exec += exec_cycles + istall
        self.time = t
        if self.pos >= self._n:
            self.status = ProcStatus.DONE
            return _RESULT_DONE
        return _RESULT_RUNNING

    # ------------------------------------------------------------------
    # Batched stepping
    # ------------------------------------------------------------------
    #
    # The batched mode executes *runs* of records whose outcome is fully
    # determined by this CPU's private state — L1D read hits, reads that
    # miss the L1D but hit a valid L2 line, and writes whose L2 line is
    # already owned (EXCLUSIVE/MODIFIED), so the write-buffer drain never
    # leaves this CPU — without going through the per-record ``step``
    # call chain.  Two tiers share the work:
    #
    # * :meth:`batch_run`, a fused interpreter loop over columnar data
    #   (Python lists indexed by position), replicates ``step``'s exact
    #   effects for those records and stops at the first record it cannot
    #   prove private (bus fetch, sync op, block bracket, prefetch,
    #   pending-fill or full-write-buffer interaction);
    # * :meth:`batch_scan` / :meth:`batch_retire`, the vectorized tier,
    #   classifies long clean stretches with numpy tag compares and
    #   retires them in one accounting update per stretch.  ``batch_run``
    #   delegates to it once a run has proven long enough to amortize a
    #   scan's fixed cost.
    #
    # Both tiers are bounded by the next key in the scheduler's heap, so
    # the global record execution order is *identical* to the scalar heap
    # loop's pop order — the equivalence argument never needs to reason
    # about commuting records; see ``MultiprocessorSystem._run_batched``.

    def batch_prepare(self, cols) -> None:
        """Bind the per-record classification tables derived from *cols*.

        Called once per run by the batched scheduler.  Everything here is
        geometry- or trace-derived and immutable during the run, so the
        tables are cached on the column block itself, keyed by the cache
        geometry and scheme flags — repeated simulations of one trace
        (benchmark repeats, scalar/batched comparisons) reuse them.  The
        only dynamic inputs to the batched tiers are the cache-tag
        mirrors and the write buffer.
        """
        if getattr(self, "_bt_ready", False):
            return
        mem = self.mem
        l2 = mem.l2
        key = (self._l1_line_bytes, self._l1_sets, self._l1i_line_bytes,
               self._l1i_sets, l2.line_bytes, l2.num_lines, self._l1_hit,
               self._blk_read_plain, self._blk_write_plain)
        cache = cols._prep_cache
        if cache is None:
            cache = cols._prep_cache = {}
        prep = cache.get(key)
        if prep is None:
            prep = cache[key] = self._build_prep(cols)
        (self._bt_kr_out, self._bt_kw_out, self._bt_kr_in, self._bt_kw_in,
         self._bt_ok_out, self._bt_ok_in, self._bt_span, self._bt_probe,
         self._bt_didx, self._bt_dline, self._bt_l2idx, self._bt_l2line,
         self._bt_iidx, self._bt_iline, self._bt_dt, self._bt_dtcum,
         self._bt_ic1, self._bt_modes,
         self._fr_cls_out, self._fr_cls_in, self._fr_mode, self._fr_ic,
         self._fr_didx, self._fr_dline, self._fr_l2idx, self._fr_l2line,
         self._fr_iidx, self._fr_iline, self._fr_span,
         self._fr_blk, self._fr_pc, self._fr_dcl, self._fr_a16) = prep
        self._l1_tags_np = mem.l1d.tags_np
        self._l1i_tags_np = mem.l1i.tags_np
        self._l2_tags_np = l2.tags_np
        self._l2_states_np = l2.states_np
        self._wb_depth = mem.wb1.depth
        self._wb_drain = mem.machine.write_buffers.l1_drain_cycles
        tracker = self.tracker
        # Deferred metric accumulators for the interpreter tier.  Every
        # target is a write-only commutative integer sum during the run,
        # so :meth:`batch_run` accumulates here across calls and
        # :meth:`batch_flush` folds the totals in once at end of run —
        # the per-call flush would otherwise dominate short runs.
        self._fr_reads = [0, 0, 0]
        self._fr_writes = [0, 0, 0]
        self._fr_rmiss = [0, 0, 0]
        self._fr_exec = [0, 0, 0]
        self._fr_dread = [0, 0, 0]
        #: [blk_read_stall, blk_instr_exec, l1 fills, l1 evictions,
        #:  wb1 enqueues]
        self._fr_misc = [0, 0, 0, 0, 0]
        # Everything batch_run touches, bound once: one tuple unpack per
        # call instead of ~40 attribute loads (runs are often only a few
        # records long before the heap bound cuts them, so per-call
        # overhead is the tier's main cost).
        self._fr_ctx = (
            self._fr_mode, self._fr_ic, self._fr_didx, self._fr_dline,
            self._fr_l2idx, self._fr_l2line, self._fr_iidx, self._fr_iline,
            self._fr_span, self._fr_blk,
            self._l1_tags, self._l1_tags_np, self._l1i_tags, l2.tags,
            l2.states, l2.states_np, self._pending_ready,
            tracker.coh_pending, tracker.displaced, tracker.bypassed,
            mem.wb1, mem.wb1._entries, self._wb_depth, self._wb_drain,
            self._l1i_sets, self._l1i_line_bytes, self._l1_hit,
            mem.machine.l2_hit_cycles,
            self.config.scheme in (Scheme.BYPASS, Scheme.BYPREF),
            self._fr_reads, self._fr_writes, self._fr_rmiss, self._fr_exec,
            self._fr_dread, self._fr_misc)
        self._bt_ready = True

    def batch_flush(self) -> None:
        """Fold the interpreter tier's deferred sums into the metrics.

        Called by the batched scheduler once its loop ends (all targets
        are write-only until then, so deferral cannot be observed).
        Idempotent: the accumulators are zeroed as they are drained.
        """
        if not getattr(self, "_bt_ready", False):
            return
        metrics = self.metrics
        reads = self._reads
        writes = self._writes
        read_misses = metrics.read_misses
        time_of = self._time
        for v in (0, 1, 2):
            mode = _MODE_OF[v]
            c = self._fr_reads[v]
            if c:
                reads[mode] += c
                self._fr_reads[v] = 0
            c = self._fr_writes[v]
            if c:
                writes[mode] += c
                self._fr_writes[v] = 0
            c = self._fr_rmiss[v]
            if c:
                read_misses[mode] += c
                self._fr_rmiss[v] = 0
            br = time_of[mode]
            c = self._fr_exec[v]
            if c:
                br.exec_cycles += c
                self._fr_exec[v] = 0
            c = self._fr_dread[v]
            if c:
                br.dread += c
                self._fr_dread[v] = 0
        misc = self._fr_misc
        if misc[0]:
            metrics.blk_read_stall += misc[0]
        if misc[1]:
            metrics.blk_instr_exec += misc[1]
        l1d = self.mem.l1d
        if misc[2]:
            l1d.fills += misc[2]
        if misc[3]:
            l1d.evictions += misc[3]
        if misc[4]:
            self.mem.wb1.enqueues += misc[4]
        misc[0] = misc[1] = misc[2] = misc[3] = misc[4] = 0

    def _build_prep(self, cols):
        """Compute the static classification tables for :meth:`batch_prepare`."""
        ops = np.ascontiguousarray(cols.ops)
        addrs = np.ascontiguousarray(cols.addrs)
        pcs = np.ascontiguousarray(cols.pcs)
        ic = np.ascontiguousarray(cols.icounts)
        blockops = np.ascontiguousarray(cols.blockops)
        is_r = ops == _READ
        is_w = ops == _WRITE
        db = self._l1_line_bytes
        dline = addrs - addrs % db
        l2 = self.mem.l2
        l2b = l2.line_bytes
        l2line = addrs - addrs % l2b
        ib = self._l1i_line_bytes
        iline = pcs - pcs % ib
        probe = ic > 0
        # Lines the instruction fetch spans beyond the first.  A fetch is
        # vectorizable while *every* spanned line is L1I-resident (then
        # the scalar ifetch walk returns zero stall without mutating
        # anything); fetches spanning more than _BATCH_MAX_SPAN extra
        # lines break a vector run to bound the scan's per-line probes
        # (the interpreter tier walks any span).
        span = np.where(probe, (pcs + 4 * ic - 1 - iline) // ib, 0)
        ok_fetch = span <= _BATCH_MAX_SPAN
        # Kind masks, resolved per block-op context (constant over a run,
        # since BLOCK_START/END always break it).  Outside a block
        # operation only untagged records take the plain path; inside,
        # untagged records still do, and tagged word records do exactly
        # when the scheme has no special read/write handling for them
        # (the scalar step's _blk_read_plain/_blk_write_plain test).
        untagged = blockops == 0
        kr_out = is_r & untagged & ok_fetch
        kw_out = is_w & untagged & ok_fetch
        kr_in = is_r & ok_fetch if self._blk_read_plain else kr_out
        kw_in = is_w & ok_fetch if self._blk_write_plain else kw_out
        ok_out = kr_out | kw_out
        ok_in = kr_in | kw_in
        didx = (dline // db) % self._l1_sets
        l2idx = (l2line // l2b) % l2.num_lines
        iidx = (iline // ib) % self._l1i_sets
        # Per-record clock advance when retired on the vector tier:
        # reads cost icount + l1_hit, writes icount + 1 (the wb insert).
        dt = ic + np.where(is_r, self._l1_hit, 1)
        dtcum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(dt)))
        ic1 = ic + 1
        modes = np.ascontiguousarray(cols.modes)
        # Interpreter-tier record classes: 0 = leave to the scalar step,
        # 1 = read, 2 = write.  Outside block context every R/W record is
        # plain (the scalar step ignores the block-op tag when no block
        # operation is active); inside, tagged records are plain exactly
        # per the scheme flags.  Stored as Python lists — the interpreter
        # indexes them at C speed without numpy scalar boxing.
        cls_out = np.where(is_r, 1, 0) + np.where(is_w, 2, 0)
        cls_in = (np.where(is_r & (untagged | self._blk_read_plain), 1, 0)
                  + np.where(is_w & (untagged | self._blk_write_plain), 2, 0))
        return (kr_out, kw_out, kr_in, kw_in, ok_out, ok_in,
                np.where(ok_in | ok_out, span, 0), probe,
                didx, dline, l2idx, l2line, iidx, iline, dt, dtcum, ic1,
                modes,
                cls_out.tolist(), cls_in.tolist(), modes.tolist(),
                ic.tolist(), didx.tolist(), dline.tolist(), l2idx.tolist(),
                l2line.tolist(), iidx.tolist(), iline.tolist(),
                span.tolist(), blockops, pcs,
                np.ascontiguousarray(cols.dclasses), addrs - addrs % 16)

    def batch_scan(self, cap: int):
        """Classify the eligible run at the stream head; phase 1.

        Returns ``(k, aux)``: the length of the clean prefix (possibly
        0) of the next ``cap`` records, plus the per-record completion
        clocks and write-buffer schedule needed to retire any prefix of
        it.  Never mutates state.
        """
        pos = self.pos
        # Block-op context is constant over a run (BLOCK_START/END always
        # break it), so one check here selects the right kind masks for
        # the whole scan — and tells batch_retire whether the retired
        # records accrue blk_instr_exec, like the scalar step's tail.
        in_blk = self._blk_desc is not None
        if not (self._bt_ok_in if in_blk else self._bt_ok_out)[pos]:
            return 0, None
        hi = pos + cap
        n = self._n
        if hi > n:
            hi = n
        sl = slice(pos, hi)
        kr = (self._bt_kr_in if in_blk else self._bt_kr_out)[sl]
        kw = (self._bt_kw_in if in_blk else self._bt_kw_out)[sl]
        l2i = self._bt_l2idx[sl]
        # Writes must hit an owned (E/M) L2 line so the drain is local;
        # EXCLUSIVE=2, MODIFIED=3 in the int8 state mirror.
        wok = kw & (self._l2_tags_np[l2i] == self._bt_l2line[sl]) \
                 & (self._l2_states_np[l2i] >= 2)
        if self._pending_ready:
            # A pending prefetch fill could cover any line; the scalar
            # read path consults it, so reads fall back while one exists.
            elig = wok
        else:
            elig = kr | wok
        elig &= self._l1_tags_np[self._bt_didx[sl]] == self._bt_dline[sl]
        probe = self._bt_probe[sl]
        itags = self._l1i_tags_np
        iidx = self._bt_iidx[sl]
        iline = self._bt_iline[sl]
        elig &= (itags[iidx] == iline) | ~probe
        # Fetches spanning extra L1I lines stay eligible only while every
        # spanned line is resident (the scalar ifetch walk is then a
        # zero-stall no-op).  ``_bt_span`` is zeroed for records that are
        # kind-ineligible anyway, bounding this loop at _BATCH_MAX_SPAN.
        span = self._bt_span[sl]
        lmax = int(span.max())
        if lmax:
            isets = self._l1i_sets
            ib = self._l1i_line_bytes
            for lvl in range(1, lmax + 1):
                need = span >= lvl
                elig &= ~need | (itags[(iidx + lvl) % isets]
                                 == iline + lvl * ib)
        bad = np.flatnonzero(~elig)
        k = int(bad[0]) if bad.size else hi - pos
        if k == 0:
            return 0, None
        dtc = self._bt_dtcum
        clock = dtc[pos + 1:pos + 1 + k] - dtc[pos] + self.time
        w_rel = np.flatnonzero(kw[:k])
        wq = ends = None
        if w_rel.size:
            # Vectorized WB1 schedule: end_i = max(enqueue_i, end_{i-1})
            # + drain, solved as (i+1)*drain + running-max.  A write that
            # would find the buffer full must go through the scalar path
            # (it stalls), so the run is truncated right before it.
            wb = self.mem.wb1
            drain = self._wb_drain
            lse = wb.last_service_end
            ar = np.arange(w_rel.size)
            wq = clock[w_rel] - 1
            runmax = np.maximum.accumulate(wq - drain * ar)
            ends = drain * (ar + 1) + np.maximum(runmax, lse)
            entries = wb._entries
            if entries:
                init = np.fromiter(entries, dtype=np.int64,
                                   count=len(entries))
                live0 = len(entries) - np.searchsorted(init, wq,
                                                       side="right")
            else:
                live0 = 0
            occ = live0 + (ar - np.searchsorted(ends, wq, side="right"))
            overfull = np.flatnonzero(occ > self._wb_depth - 1)
            if overfull.size:
                k = int(w_rel[overfull[0]])
                if k == 0:
                    return 0, None
                jw_max = int(overfull[0])
                w_rel = w_rel[:jw_max]
                wq = wq[:jw_max]
                ends = ends[:jw_max]
                clock = clock[:k]
        start = clock - self._bt_dt[pos:pos + k]
        return k, (clock, start, w_rel, wq, ends)

    def batch_retire(self, j: int, aux) -> int:
        """Retire the first *j* records of a scanned run; phase 3.

        Applies exactly the state changes the scalar path would have:
        per-mode read/write counts and exec cycles, the WB1 drain
        schedule (including E->M ownership commits on drained L2 lines),
        and the clock/stream position.  Returns *j*.
        """
        clock, _start, w_rel, wq, ends = aux
        pos = self.pos
        in_blk = self._blk_desc is not None
        kr = self._bt_kr_in if in_blk else self._bt_kr_out
        if j <= 32:
            # T*-truncated tails are usually a handful of records; a
            # Python accumulation beats three bincounts at that size.
            cnt = [0, 0, 0]
            ecs = [0, 0, 0]
            rcnt = [0, 0, 0]
            for v, e, r in zip(self._bt_modes[pos:pos + j].tolist(),
                               self._bt_ic1[pos:pos + j].tolist(),
                               kr[pos:pos + j].tolist()):
                cnt[v] += 1
                ecs[v] += e
                if r:
                    rcnt[v] += 1
            total_ecs = ecs[0] + ecs[1] + ecs[2]
        else:
            m = self._bt_modes[pos:pos + j]
            cnt = np.bincount(m, minlength=3)
            ecs = np.bincount(m, weights=self._bt_ic1[pos:pos + j],
                              minlength=3)
            rcnt = np.bincount(m[kr[pos:pos + j]], minlength=3)
            total_ecs = int(ecs.sum())
        if in_blk:
            # The scalar step adds exec_cycles to blk_instr_exec for
            # every record executed inside a block operation.
            self.metrics.blk_instr_exec += total_ecs
        reads = self._reads
        writes = self._writes
        time_of = self._time
        for v in (0, 1, 2):
            nmode = int(cnt[v])
            if not nmode:
                continue
            mode = _MODE_OF[v]
            nr = int(rcnt[v])
            nw = nmode - nr
            if nr:
                reads[mode] += nr
            if nw:
                writes[mode] += nw
            time_of[mode].exec_cycles += int(ecs[v])
        if w_rel is not None and w_rel.size:
            jw = int(np.searchsorted(w_rel, j, side="left"))
            if jw:
                wb = self.mem.wb1
                t_last = int(wq[jw - 1])
                entries = wb._entries
                while entries and entries[0] <= t_last:
                    entries.popleft()
                keep = ends[np.searchsorted(ends[:jw], t_last,
                                            side="right"):jw]
                entries.extend(keep.tolist())
                wb.last_service_end = int(ends[jw - 1])
                wb.enqueues += jw
                # Every drained write targeted an owned L2 line; commit
                # the EXCLUSIVE -> MODIFIED transitions the scalar drain
                # performs (MODIFIED lines are unchanged).
                l2 = self.mem.l2
                states = l2.states
                states_np = l2.states_np
                modified = LineState.MODIFIED
                for idx in np.unique(
                        self._bt_l2idx[pos + w_rel[:jw]]).tolist():
                    if states[idx] is not modified:
                        states[idx] = modified
                        states_np[idx] = 3
        self.pos = pos + j
        self.time = int(clock[j - 1])
        if self.pos >= self._n:
            self.status = ProcStatus.DONE
        return j

    def batch_run(self, bound_time: int, bound_cpu: int, chunk: int) -> int:
        """Execute the private run at the stream head; returns its length.

        The interpreter tier of the batched mode: replicate the scalar
        ``step``'s exact effects for consecutive records whose outcome
        depends only on this CPU's private state, reading the columnar
        tables instead of record objects and deferring metric-counter
        updates to :meth:`batch_flush`.  Handles L1D read hits, reads missing
        the L1D but hitting a valid L2 line, and writes to an owned
        (EXCLUSIVE/MODIFIED) L2 line with write-buffer room — including
        their write-allocate L1 fills and miss-taxonomy bookkeeping.

        A record is executed only while its pop key ``(time, cpu_id)``
        precedes ``(bound_time, bound_cpu)`` — the scheduler passes the
        next key in its heap, so the records executed here are exactly
        the consecutive pops the scalar loop would have given this CPU,
        in the same global order.  Returns 0 (and mutates nothing) when
        the head record needs the scalar path.

        After ``_VEC_AFTER`` consecutive records the loop hands the rest
        of the run to the vectorized scan/retire tier, then resumes.
        """
        pos = self.pos
        n = self._n
        if pos >= n:
            return 0
        in_blk = self._blk_desc is not None
        cls_l = self._fr_cls_in if in_blk else self._fr_cls_out
        if not cls_l[pos]:
            return 0
        (mode_l, ic_l, didx_l, dline_l, l2idx_l, l2line_l, iidx_l, iline_l,
         span_l, blk_a,
         dtags, dtags_np, itags, l2tags, l2states, l2states_np, pending,
         coh_pending, displaced, bypassed,
         wb, wb_q, wb_depth, drain, isets, ib, l1_hit, l2_hit, bypass_scheme,
         reads_c, writes_c, rmiss_c, exec_c, dread_c,
         misc) = self._fr_ctx
        t = self.time
        cpu_lt = self.cpu_id < bound_cpu
        # Pop-key bound as a single clock ceiling: with the smaller
        # cpu_id we win ties, so records may run while t <= bound_time;
        # otherwise only strictly before.
        limit = bound_time if cpu_lt else bound_time - 1
        miss_stall = l2_hit - l1_hit
        st_e = _ST_E
        st_m = _ST_M
        metrics = self.metrics
        # Tagged reads that miss the L1D take the bypass path (line
        # registers, no fill) under these schemes; the interpreter must
        # leave them to the scalar step.
        bypass_blk = in_blk and bypass_scheme
        lse = wb.last_service_end
        wb_pop = wb_q.popleft
        wb_append = wb_q.append
        count = 0
        last_vec = 0
        while pos < n:
            if t > limit:
                break
            cls = cls_l[pos]
            if not cls:
                break
            ic = ic_l[pos]
            if ic:
                ii = iidx_l[pos]
                il = iline_l[pos]
                if itags[ii] != il:
                    break
                span = span_l[pos]
                if span:
                    lvl = 1
                    while lvl <= span:
                        if itags[(ii + lvl) % isets] != il + lvl * ib:
                            break
                        lvl += 1
                    if lvl <= span:
                        break
            v = mode_l[pos]
            if cls == 1:
                di = didx_l[pos]
                dl = dline_l[pos]
                if dtags[di] == dl:
                    if dl in pending:
                        break  # in-flight prefetch fill: scalar accounting
                    reads_c[v] += 1
                    t += ic + l1_hit
                else:
                    # L1D miss.  Private exactly when the L2 holds the
                    # line in any valid state (the L2 read hit leaves
                    # MESI state untouched); a bus fetch breaks the run.
                    bo = blk_a[pos]
                    if bo and bypass_blk:
                        break
                    l2i = l2idx_l[pos]
                    if l2tags[l2i] != l2line_l[pos]:
                        break
                    # consume_miss_flags + _l1_fill, fused: membership
                    # first (the flags), then the unconditional discards
                    # both calls perform.
                    coh = dl in coh_pending
                    disp = dl in displaced
                    byp = dl in bypassed
                    coh_pending.discard(dl)
                    displaced.discard(dl)
                    bypassed.discard(dl)
                    old = dtags[di]
                    dtags[di] = dl
                    dtags_np[di] = dl
                    misc[2] += 1
                    if old != -1:
                        misc[3] += 1
                        if pending:
                            pending.pop(old, None)
                        if in_blk:
                            displaced.add(old)
                    reads_c[v] += 1
                    rmiss_c[v] += 1
                    dread_c[v] += miss_stall
                    if bo:
                        misc[0] += miss_stall
                    if disp:
                        if in_blk:
                            metrics.displacement_inside += 1
                        else:
                            metrics.displacement_outside += 1
                        metrics.blk_displ_stall += miss_stall
                    if byp:
                        if in_blk:
                            metrics.reuse_inside += 1
                        else:
                            metrics.reuse_outside += 1
                    if v == _OS_MODE:
                        dc = _DCLASS_OF[self._fr_dcl[pos]]
                        if bo:
                            metrics.os_miss_kind[_KIND_BLOCK] += 1
                        elif coh:
                            metrics.os_miss_kind[_KIND_COH] += 1
                            metrics.os_coh_dclass[dc] += 1
                            metrics.os_coh_addr[int(self._fr_a16[pos])] += 1
                        else:
                            metrics.os_miss_kind[_KIND_OTHER] += 1
                        pc = int(self._fr_pc[pos])
                        metrics.os_miss_pc[pc] += 1
                        metrics.os_miss_dclass[dc] += 1
                        if pc in metrics.hotspot_pcs:
                            metrics.os_hotspot_misses += 1
                    t += ic + l2_hit
            else:
                # Write.  Private exactly when the L2 line is owned (the
                # WB1 drain then stays on-chip) and the buffer has room
                # (a full buffer stalls, which the scalar path accounts).
                l2i = l2idx_l[pos]
                st = l2states[l2i]
                if l2tags[l2i] != l2line_l[pos] or (st is not st_m
                                                    and st is not st_e):
                    break
                tw = t + ic
                while wb_q and wb_q[0] <= tw:
                    wb_pop()
                if len(wb_q) >= wb_depth:
                    break
                di = didx_l[pos]
                dl = dline_l[pos]
                if dtags[di] != dl:
                    # Write-allocate fill; overlapped, so no time cost.
                    old = dtags[di]
                    dtags[di] = dl
                    dtags_np[di] = dl
                    misc[2] += 1
                    if old != -1:
                        misc[3] += 1
                        if pending:
                            pending.pop(old, None)
                        if in_blk:
                            displaced.add(old)
                    coh_pending.discard(dl)
                    displaced.discard(dl)
                    bypassed.discard(dl)
                start = tw if tw > lse else lse
                lse = start + drain
                wb_append(lse)
                misc[4] += 1
                if st is st_e:
                    l2states[l2i] = st_m
                    l2states_np[l2i] = 3
                writes_c[v] += 1
                t = tw + 1
            exec_c[v] += ic + 1
            if in_blk:
                misc[1] += ic + 1
            pos += 1
            count += 1
            if count - last_vec >= _VEC_AFTER and pos < n:
                # Long clean run: hand the continuation to the vectorized
                # tier.  Flush position, clock and write-buffer cursor so
                # the scan sees true state (the deferred metric sums need
                # no flush — the vector tier adds to the same write-only
                # targets); the retire bound mirrors the loop's.
                self.pos = pos
                self.time = t
                wb.last_service_end = lse
                while True:
                    k, aux = self.batch_scan(chunk)
                    if not k:
                        break
                    side = "right" if cpu_lt else "left"
                    j = int(np.searchsorted(aux[1], bound_time, side=side))
                    if j > k:
                        j = k
                    if not j:
                        break
                    self.batch_retire(j, aux)
                    count += j
                    if j < k or k < chunk:
                        break
                pos = self.pos
                t = self.time
                lse = wb.last_service_end
                last_vec = count
        self.pos = pos
        self.time = t
        wb.last_service_end = lse
        if pos >= n:
            self.status = ProcStatus.DONE
        return count

    # ------------------------------------------------------------------
    # Data accesses
    # ------------------------------------------------------------------
    def _scheme(self) -> Scheme:
        return self.config.scheme

    def _do_read(self, rec: TraceRecord, t: int) -> Tuple[int, int]:
        """Perform a data read; returns (completion, extra exec cycles)."""
        mem = self.mem
        extra_exec = 1
        in_blockop = self._blk_desc is not None
        scheme = self._scheme()
        if rec.blockop and in_blockop and scheme in (Scheme.PREF, Scheme.BYPREF):
            extra_exec += self._lookahead_prefetch(rec, t)
        if rec.blockop and in_blockop and scheme in (Scheme.BYPASS, Scheme.BYPREF):
            res = mem.read_bypass(rec.addr, t)
        else:
            res = mem.read(rec.addr, t)
        self.metrics.record_read(self.cpu_id, rec, res, in_blockop)
        self.metrics.add_time(_MODE_OF[rec.mode], dread=res.stall,
                              pref=res.pref_stall)
        return res.done, extra_exec

    def _do_write(self, rec: TraceRecord, t: int) -> int:
        mem = self.mem
        in_blockop = self._blk_desc is not None
        if rec.blockop and in_blockop and self._scheme() == Scheme.BYPASS:
            res = mem.write_bypass(rec.addr, t)
        else:
            res = mem.write(rec.addr, t)
        self.metrics.record_write(self.cpu_id, rec, res, in_blockop)
        self.metrics.add_time(_MODE_OF[rec.mode], dwrite=res.stall)
        return res.done

    def _lookahead_prefetch(self, rec: TraceRecord, t: int) -> int:
        """Software-pipelined source prefetch for Blk_Pref / Blk_ByPref.

        On each new source line, prefetch the line ``lead`` lines ahead.
        Returns the instruction overhead (one prefetch instruction).
        """
        desc = self._blk_desc
        assert desc is not None
        if not desc.is_copy or not desc.contains_src(rec.addr):
            return 0
        line_bytes = self.mem.machine.l1d.line_bytes
        line = rec.addr - (rec.addr % line_bytes)
        if line == self._blk_last_src_line:
            return 0
        self._blk_last_src_line = line
        target = line + self._pref_lead() * line_bytes
        if not desc.contains_src(target):
            return 0
        self._issue_block_prefetch(target, t)
        return 1

    def _pref_lead(self) -> int:
        """Software-pipelining depth for the active block-op scheme."""
        if self._scheme() == Scheme.BYPREF:
            return self.config.bypref_lead_lines
        return self.config.pref_lead_lines

    def _issue_block_prefetch(self, addr: int, t: int) -> None:
        if self._scheme() == Scheme.BYPREF:
            self.mem.prefetch_into_buffer(addr, t)
        else:
            self.mem.prefetch_line(addr, t)
        self.metrics.record_prefetch_issued()

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def _do_block_start(self, rec: TraceRecord, t: int) -> int:
        desc = self.blockops.get(rec.blockop)
        self._measure_block_start(desc)
        scheme = self._scheme()
        if scheme == Scheme.DMA:
            return self._do_block_dma(rec, desc, t)
        self._blk_desc = desc
        self._blk_last_src_line = -1
        self.mem.in_blockop = True
        self.mem.bypass_l2_wide = scheme == Scheme.BYPREF
        self.tracker.in_blockop = True
        if scheme in (Scheme.PREF, Scheme.BYPREF) and desc.is_copy:
            # Prolog: prefetch the first `lead` source lines back-to-back.
            line_bytes = self.mem.machine.l1d.line_bytes
            for i in range(self._pref_lead()):
                addr = desc.src + i * line_bytes
                if not desc.contains_src(addr):
                    break
                self._issue_block_prefetch(addr, t)
                t += 1
                self.metrics.add_time(_MODE_OF[rec.mode], exec_cycles=1)
        return t

    def _do_block_dma(self, rec: TraceRecord, desc: BlockOpDescriptor,
                      t: int) -> int:
        """Run the operation on the DMA engine and skip its word records."""
        result = run_dma(self.mem, desc, t)
        stall = result.done - t
        self.metrics.record_dma(stall)
        # The paper assigns the whole DMA stall to D Read Miss.
        self.metrics.add_time(_MODE_OF[rec.mode], dread=stall)
        self.metrics.record_block_exec(stall)
        # Skip the word-level records; the engine replaced them.
        while self.pos < self._n:
            skipped = self.stream[self.pos]
            self.pos += 1
            if skipped.op == _BLOCK_END:
                break
        else:
            raise SimulationError(
                f"cpu {self.cpu_id}: block op {desc.op_id} missing BLOCK_END")
        return result.done

    def _do_block_end(self, rec: TraceRecord, t: int) -> int:
        stall = self.mem.end_block_op(t)
        if stall:
            self.metrics.add_time(_MODE_OF[rec.mode], dwrite=stall)
        self._blk_desc = None
        self._blk_last_src_line = -1
        self.mem.in_blockop = False
        self.tracker.in_blockop = False
        return t + stall

    def _measure_block_start(self, desc: BlockOpDescriptor) -> None:
        """Table 3 instrumentation: line residency right before the op."""
        mem = self.mem
        l1_bytes = mem.machine.l1d.line_bytes
        l2_bytes = mem.machine.l2.line_bytes
        src_cached = src_total = 0
        if desc.is_copy:
            addr = desc.src - (desc.src % l1_bytes)
            while addr < desc.src + desc.size:
                src_total += 1
                if mem.l1d.present(addr):
                    src_cached += 1
                addr += l1_bytes
        dst_owned = dst_shared = dst_total = 0
        addr = desc.dst - (desc.dst % l2_bytes)
        from repro.memsys.states import LineState
        while addr < desc.dst + desc.size:
            dst_total += 1
            state = mem.l2.state_of(addr)
            if state in (LineState.EXCLUSIVE, LineState.MODIFIED):
                dst_owned += 1
            elif state == LineState.SHARED:
                dst_shared += 1
            addr += l2_bytes
        self.metrics.record_block_start(self.cpu_id, desc, src_cached,
                                        src_total, dst_owned, dst_shared,
                                        dst_total)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def _do_lock_acquire(self, rec: TraceRecord, t: int) -> int:
        mode = _MODE_OF[rec.mode]
        ok, grant = self.locks.try_acquire(rec.addr, self.cpu_id, t)
        if not ok:  # pragma: no cover - step() checked before consuming
            raise SimulationError("lock acquired while held")
        if grant > t:
            self.metrics.add_time(mode, sync=grant - t)
            t = grant
        # The RMW on the lock word: read (possibly a coherence miss on a
        # lock previously held elsewhere) then write (invalidates sharers).
        res = self.mem.read(rec.addr, t)
        self.metrics.record_read(self.cpu_id, rec, res,
                                 self._blk_desc is not None)
        self.metrics.add_time(mode, dread=res.stall, pref=res.pref_stall)
        wres = self.mem.write(rec.addr, res.done)
        self.metrics.record_write(self.cpu_id, rec, wres, False)
        self.metrics.add_time(mode, dwrite=wres.stall)
        return wres.done

    def _do_lock_release(self, rec: TraceRecord, t: int) -> int:
        mode = _MODE_OF[rec.mode]
        # Release consistency: all buffered writes drain first.
        drained = self.mem.drain_writes(t)
        if drained > t:
            self.metrics.add_time(mode, dwrite=drained - t)
            t = drained
        res = self.mem.write(rec.addr, t)
        self.metrics.record_write(self.cpu_id, rec, res, False)
        self.metrics.add_time(mode, dwrite=res.stall)
        self.locks.release(rec.addr, self.cpu_id, res.done)
        return res.done

    def _do_barrier(self, rec: TraceRecord, t: int, exec_cycles: int,
                    istall: int) -> StepResult:
        mode = _MODE_OF[rec.mode]
        drained = self.mem.drain_writes(t)
        if drained > t:
            self.metrics.add_time(mode, dwrite=drained - t)
            t = drained
        # Arrival: read-modify-write of the barrier word.
        res = self.mem.read(rec.addr, t)
        self.metrics.record_read(self.cpu_id, rec, res, False)
        self.metrics.add_time(mode, dread=res.stall, pref=res.pref_stall)
        wres = self.mem.write(rec.addr, res.done)
        self.metrics.record_write(self.cpu_id, rec, wres, False)
        self.metrics.add_time(mode, dwrite=wres.stall,
                              exec_cycles=exec_cycles + 2, imiss=istall)
        t = wres.done
        self.time = t
        outcome = self.barriers.arrive(rec.addr, rec.arg, self.cpu_id, t)
        if outcome is None:
            self._barrier_rec = rec
            self.status = ProcStatus.WAITING_BARRIER
            return StepResult(ProcStatus.WAITING_BARRIER)
        release, waiters = outcome
        self.metrics.add_time(mode, sync=max(0, release - t))
        self.time = max(t, release)
        if self.pos >= self._n:
            self.status = ProcStatus.DONE
            return StepResult(ProcStatus.DONE, barrier_release=outcome)
        return StepResult(ProcStatus.RUNNING, barrier_release=outcome)
