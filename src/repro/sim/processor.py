"""The in-order trace-driven processor model.

Each processor consumes its CPU's trace stream record by record.  For every
record it charges instruction execution and instruction-fetch stall, then
performs the data access along the path selected by the system
configuration — cached, prefetched, bypassed, or DMA for block operations —
and reports times and misses to the metrics layer.

Synchronization records interact with the shared lock table and barrier
manager; a processor that cannot make progress returns a blocked status and
the system scheduler advances simulated time for it.

Hot-path layout
---------------

:meth:`Processor.step` is the single hottest function in the repository —
it runs once per trace record across every experiment cell.  It therefore:

* resolves a *clean L1D hit* (line resident, no pending prefetch fill, no
  scheme-specific block-op handling) inline against the bound L1 tag
  array, without entering the :class:`CpuMemorySystem` call chain — the
  overwhelming majority of references in the paper's workloads are such
  hits (Table 2 reports low miss rates on every machine);
* routes writes through :meth:`CpuMemorySystem.write_cycles`, which skips
  the :class:`AccessResult` wrapper the write accounting never reads;
* converts record fields to enum members through precomputed lookup
  tables (``MODE_BY_VALUE``) instead of enum constructors, and
  accumulates time components directly into the plain int fields of the
  per-mode :class:`~repro.sim.metrics.TimeBreakdown`.

Every shortcut must keep :meth:`SystemMetrics.snapshot` bit-identical to
the straightforward path; ``tests/test_fastpath_equivalence.py`` and the
golden-value tests enforce this.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.types import MODE_BY_VALUE, Mode, Op, Scheme
from repro.memsys.dma import run_dma
from repro.memsys.hierarchy import CpuMemorySystem
from repro.sim.config import SystemConfig
from repro.sim.metrics import SystemMetrics
from repro.sim.sync import BarrierManager, LockTable
from repro.trace.blockop import BlockOpDescriptor, BlockOpRegistry
from repro.trace.record import TraceRecord

#: Cycles a spinning processor waits between lock retries.
SPIN_QUANTUM = 16

_MODE_OF = MODE_BY_VALUE

# Opcode values as plain ints: IntEnum members compare to ints at C speed,
# without the enum __eq__ dispatch.
_READ = int(Op.READ)
_WRITE = int(Op.WRITE)
_PREFETCH = int(Op.PREFETCH)
_LOCK_ACQ = int(Op.LOCK_ACQ)
_LOCK_REL = int(Op.LOCK_REL)
_BARRIER = int(Op.BARRIER)
_BLOCK_START = int(Op.BLOCK_START)
_BLOCK_END = int(Op.BLOCK_END)


class ProcStatus(enum.Enum):
    RUNNING = "running"
    BLOCKED_LOCK = "blocked_lock"
    WAITING_BARRIER = "waiting_barrier"
    DONE = "done"


class StepResult:
    """Outcome of one :meth:`Processor.step` call."""

    __slots__ = ("status", "lock_addr", "barrier_release", "mode")

    def __init__(self, status: ProcStatus, lock_addr: int = 0,
                 barrier_release: Optional[Tuple[int, List[int]]] = None,
                 mode: Optional[Mode] = None) -> None:
        self.status = status
        self.lock_addr = lock_addr
        self.barrier_release = barrier_release
        #: Mode of the blocking record (set for BLOCKED_LOCK results so the
        #: scheduler can attribute spin time without re-reading the stream).
        self.mode = mode


#: Shared results for the two allocation-heavy outcomes.  ``step`` returns
#: these for plain running/done steps; callers only read the fields.
_RESULT_RUNNING = StepResult(ProcStatus.RUNNING)
_RESULT_DONE = StepResult(ProcStatus.DONE)


class Processor:
    """One simulated CPU."""

    def __init__(self, cpu_id: int, stream: Sequence[TraceRecord],
                 blockops: BlockOpRegistry, mem: CpuMemorySystem,
                 metrics: SystemMetrics, config: SystemConfig,
                 locks: LockTable, barriers: BarrierManager) -> None:
        self.cpu_id = cpu_id
        #: Immutable snapshot of the stream: tuple indexing skips the
        #: list's bounds/ob_item indirection in the per-record loop.
        self.stream: Tuple[TraceRecord, ...] = tuple(stream)
        self.blockops = blockops
        self.mem = mem
        self.metrics = metrics
        self.tracker = metrics.trackers[cpu_id]
        self.config = config
        self.locks = locks
        self.barriers = barriers
        self.pos = 0
        self.time = 0
        self.status = ProcStatus.RUNNING if stream else ProcStatus.DONE
        self._blk_desc: Optional[BlockOpDescriptor] = None
        self._blk_last_src_line = -1
        self._barrier_rec: Optional[TraceRecord] = None
        # --- hot-path bindings (all mutated in place by their owners) ---
        self._n = len(self.stream)
        self._l1_tags = mem.l1d.tags
        self._l1_line_bytes = mem.l1d.line_bytes
        self._l1_sets = mem.l1d.num_lines
        self._l1i_tags = mem.l1i.tags
        self._l1i_line_bytes = mem.l1i.line_bytes
        self._l1i_sets = mem.l1i.num_lines
        self._l1_hit = mem.machine.l1_hit_cycles
        self._pending_ready = mem.pending.ready
        self._time = metrics.time
        self._reads = metrics.reads
        self._writes = metrics.writes
        # Scheme flags deciding when a block-op record may use the plain
        # cached fast path.  PREF/BYPREF reads need the lookahead-prefetch
        # side effects; BYPASS writes need the destination line register.
        scheme = config.scheme
        self._blk_read_plain = scheme not in (Scheme.PREF, Scheme.BYPREF)
        self._blk_write_plain = scheme != Scheme.BYPASS

    # ------------------------------------------------------------------
    # Scheduling interface
    # ------------------------------------------------------------------
    def wake_from_barrier(self, release_time: int) -> None:
        """Resume after a barrier episode completes."""
        if self.status != ProcStatus.WAITING_BARRIER:
            raise SimulationError(f"cpu {self.cpu_id} woken while not waiting")
        rec = self._barrier_rec
        assert rec is not None
        mode = _MODE_OF[rec.mode]
        wait = max(0, release_time - self.time)
        self.metrics.add_time(mode, sync=wait)
        self.time = max(self.time, release_time)
        # Re-read the barrier word the releaser just wrote (the spin-exit
        # read): the invalidation protocol makes this a coherence miss.
        res = self.mem.read(rec.addr, self.time)
        self.metrics.record_read(self.cpu_id, rec, res, in_blockop=False)
        self.metrics.add_time(mode, exec_cycles=1, dread=res.stall,
                              pref=res.pref_stall)
        self.time = res.done
        self._barrier_rec = None
        self.status = ProcStatus.RUNNING

    # ------------------------------------------------------------------
    # Main step
    # ------------------------------------------------------------------
    def step(self) -> StepResult:
        """Process the next record; returns the resulting status."""
        if self.status is not ProcStatus.RUNNING:
            raise SimulationError(f"step on {self.status} cpu {self.cpu_id}")
        pos = self.pos
        if pos >= self._n:
            self.status = ProcStatus.DONE
            return _RESULT_DONE
        rec = self.stream[pos]
        op = rec.op

        # A held lock blocks *before* the record is consumed; the system
        # scheduler advances our clock (spinning) and retries.
        if op == _LOCK_ACQ:
            holder = self.locks.holder(rec.addr)
            if holder is not None and holder != self.cpu_id:
                return StepResult(ProcStatus.BLOCKED_LOCK, lock_addr=rec.addr,
                                  mode=_MODE_OF[rec.mode])

        self.pos = pos + 1
        mode = _MODE_OF[rec.mode]
        icount = rec.icount
        t = self.time

        # Instruction fetch and execution for this basic block.  The
        # whole-fetch-in-one-resident-L1I-line case (short basic blocks)
        # is resolved inline; anything else goes through the hierarchy.
        if icount:
            pc = rec.pc
            i_bytes = self._l1i_line_bytes
            iline = pc - pc % i_bytes
            if (pc + 4 * icount <= iline + i_bytes
                    and self._l1i_tags[(iline // i_bytes) % self._l1i_sets]
                    == iline):
                istall = 0
            else:
                istall = self.mem.ifetch(pc, icount, t)
        else:
            istall = 0
        exec_cycles = icount
        t += icount + istall

        blk = self._blk_desc
        if op == _READ:
            addr = rec.addr
            line_bytes = self._l1_line_bytes
            line = addr - addr % line_bytes
            if ((blk is None or not rec.blockop or self._blk_read_plain)
                    and self._l1_tags[(line // line_bytes) % self._l1_sets]
                    == line
                    and line not in self._pending_ready):
                # Clean L1D hit: one read for this mode, zero stall.
                self._reads[mode] += 1
                exec_cycles += 1
                t += self._l1_hit
            else:
                t, extra_exec = self._do_read(rec, t)
                exec_cycles += extra_exec
        elif op == _WRITE:
            exec_cycles += 1
            if blk is None or not rec.blockop or self._blk_write_plain:
                done, stall = self.mem.write_cycles(rec.addr, t)
                self._writes[mode] += 1
                if rec.blockop:
                    self.metrics.blk_write_stall += stall
                if stall:
                    self._time[mode].dwrite += stall
                t = done
            else:
                t = self._do_write(rec, t)
        elif op == _PREFETCH:
            self.mem.prefetch_line(rec.addr, t)
            self.metrics.record_prefetch_issued()
        elif op == _LOCK_ACQ:
            t = self._do_lock_acquire(rec, t)
            exec_cycles += 2
        elif op == _LOCK_REL:
            t = self._do_lock_release(rec, t)
            exec_cycles += 1
        elif op == _BLOCK_START:
            t = self._do_block_start(rec, t)
        elif op == _BLOCK_END:
            t = self._do_block_end(rec, t)
        elif op == _BARRIER:
            return self._do_barrier(rec, t, exec_cycles, istall)
        else:  # pragma: no cover - enum is exhaustive
            raise SimulationError(f"unhandled op {op}")

        breakdown = self._time[mode]
        breakdown.exec_cycles += exec_cycles
        if istall:
            breakdown.imiss += istall
        # ``blk`` is the pre-step state: a BLOCK_START enters (and a
        # BLOCK_END leaves) block context during this very record, which
        # the opcode checks cover — matching the post-step condition the
        # accounting was defined with.
        if blk is not None or op == _BLOCK_START or op == _BLOCK_END:
            self.metrics.blk_instr_exec += exec_cycles + istall
        self.time = t
        if self.pos >= self._n:
            self.status = ProcStatus.DONE
            return _RESULT_DONE
        return _RESULT_RUNNING

    # ------------------------------------------------------------------
    # Data accesses
    # ------------------------------------------------------------------
    def _scheme(self) -> Scheme:
        return self.config.scheme

    def _do_read(self, rec: TraceRecord, t: int) -> Tuple[int, int]:
        """Perform a data read; returns (completion, extra exec cycles)."""
        mem = self.mem
        extra_exec = 1
        in_blockop = self._blk_desc is not None
        scheme = self._scheme()
        if rec.blockop and in_blockop and scheme in (Scheme.PREF, Scheme.BYPREF):
            extra_exec += self._lookahead_prefetch(rec, t)
        if rec.blockop and in_blockop and scheme in (Scheme.BYPASS, Scheme.BYPREF):
            res = mem.read_bypass(rec.addr, t)
        else:
            res = mem.read(rec.addr, t)
        self.metrics.record_read(self.cpu_id, rec, res, in_blockop)
        self.metrics.add_time(_MODE_OF[rec.mode], dread=res.stall,
                              pref=res.pref_stall)
        return res.done, extra_exec

    def _do_write(self, rec: TraceRecord, t: int) -> int:
        mem = self.mem
        in_blockop = self._blk_desc is not None
        if rec.blockop and in_blockop and self._scheme() == Scheme.BYPASS:
            res = mem.write_bypass(rec.addr, t)
        else:
            res = mem.write(rec.addr, t)
        self.metrics.record_write(self.cpu_id, rec, res, in_blockop)
        self.metrics.add_time(_MODE_OF[rec.mode], dwrite=res.stall)
        return res.done

    def _lookahead_prefetch(self, rec: TraceRecord, t: int) -> int:
        """Software-pipelined source prefetch for Blk_Pref / Blk_ByPref.

        On each new source line, prefetch the line ``lead`` lines ahead.
        Returns the instruction overhead (one prefetch instruction).
        """
        desc = self._blk_desc
        assert desc is not None
        if not desc.is_copy or not desc.contains_src(rec.addr):
            return 0
        line_bytes = self.mem.machine.l1d.line_bytes
        line = rec.addr - (rec.addr % line_bytes)
        if line == self._blk_last_src_line:
            return 0
        self._blk_last_src_line = line
        target = line + self._pref_lead() * line_bytes
        if not desc.contains_src(target):
            return 0
        self._issue_block_prefetch(target, t)
        return 1

    def _pref_lead(self) -> int:
        """Software-pipelining depth for the active block-op scheme."""
        if self._scheme() == Scheme.BYPREF:
            return self.config.bypref_lead_lines
        return self.config.pref_lead_lines

    def _issue_block_prefetch(self, addr: int, t: int) -> None:
        if self._scheme() == Scheme.BYPREF:
            self.mem.prefetch_into_buffer(addr, t)
        else:
            self.mem.prefetch_line(addr, t)
        self.metrics.record_prefetch_issued()

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def _do_block_start(self, rec: TraceRecord, t: int) -> int:
        desc = self.blockops.get(rec.blockop)
        self._measure_block_start(desc)
        scheme = self._scheme()
        if scheme == Scheme.DMA:
            return self._do_block_dma(rec, desc, t)
        self._blk_desc = desc
        self._blk_last_src_line = -1
        self.mem.in_blockop = True
        self.mem.bypass_l2_wide = scheme == Scheme.BYPREF
        self.tracker.in_blockop = True
        if scheme in (Scheme.PREF, Scheme.BYPREF) and desc.is_copy:
            # Prolog: prefetch the first `lead` source lines back-to-back.
            line_bytes = self.mem.machine.l1d.line_bytes
            for i in range(self._pref_lead()):
                addr = desc.src + i * line_bytes
                if not desc.contains_src(addr):
                    break
                self._issue_block_prefetch(addr, t)
                t += 1
                self.metrics.add_time(_MODE_OF[rec.mode], exec_cycles=1)
        return t

    def _do_block_dma(self, rec: TraceRecord, desc: BlockOpDescriptor,
                      t: int) -> int:
        """Run the operation on the DMA engine and skip its word records."""
        result = run_dma(self.mem, desc, t)
        stall = result.done - t
        self.metrics.record_dma(stall)
        # The paper assigns the whole DMA stall to D Read Miss.
        self.metrics.add_time(_MODE_OF[rec.mode], dread=stall)
        self.metrics.record_block_exec(stall)
        # Skip the word-level records; the engine replaced them.
        while self.pos < self._n:
            skipped = self.stream[self.pos]
            self.pos += 1
            if skipped.op == _BLOCK_END:
                break
        else:
            raise SimulationError(
                f"cpu {self.cpu_id}: block op {desc.op_id} missing BLOCK_END")
        return result.done

    def _do_block_end(self, rec: TraceRecord, t: int) -> int:
        stall = self.mem.end_block_op(t)
        if stall:
            self.metrics.add_time(_MODE_OF[rec.mode], dwrite=stall)
        self._blk_desc = None
        self._blk_last_src_line = -1
        self.mem.in_blockop = False
        self.tracker.in_blockop = False
        return t + stall

    def _measure_block_start(self, desc: BlockOpDescriptor) -> None:
        """Table 3 instrumentation: line residency right before the op."""
        mem = self.mem
        l1_bytes = mem.machine.l1d.line_bytes
        l2_bytes = mem.machine.l2.line_bytes
        src_cached = src_total = 0
        if desc.is_copy:
            addr = desc.src - (desc.src % l1_bytes)
            while addr < desc.src + desc.size:
                src_total += 1
                if mem.l1d.present(addr):
                    src_cached += 1
                addr += l1_bytes
        dst_owned = dst_shared = dst_total = 0
        addr = desc.dst - (desc.dst % l2_bytes)
        from repro.memsys.states import LineState
        while addr < desc.dst + desc.size:
            dst_total += 1
            state = mem.l2.state_of(addr)
            if state in (LineState.EXCLUSIVE, LineState.MODIFIED):
                dst_owned += 1
            elif state == LineState.SHARED:
                dst_shared += 1
            addr += l2_bytes
        self.metrics.record_block_start(self.cpu_id, desc, src_cached,
                                        src_total, dst_owned, dst_shared,
                                        dst_total)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def _do_lock_acquire(self, rec: TraceRecord, t: int) -> int:
        mode = _MODE_OF[rec.mode]
        ok, grant = self.locks.try_acquire(rec.addr, self.cpu_id, t)
        if not ok:  # pragma: no cover - step() checked before consuming
            raise SimulationError("lock acquired while held")
        if grant > t:
            self.metrics.add_time(mode, sync=grant - t)
            t = grant
        # The RMW on the lock word: read (possibly a coherence miss on a
        # lock previously held elsewhere) then write (invalidates sharers).
        res = self.mem.read(rec.addr, t)
        self.metrics.record_read(self.cpu_id, rec, res,
                                 self._blk_desc is not None)
        self.metrics.add_time(mode, dread=res.stall, pref=res.pref_stall)
        wres = self.mem.write(rec.addr, res.done)
        self.metrics.record_write(self.cpu_id, rec, wres, False)
        self.metrics.add_time(mode, dwrite=wres.stall)
        return wres.done

    def _do_lock_release(self, rec: TraceRecord, t: int) -> int:
        mode = _MODE_OF[rec.mode]
        # Release consistency: all buffered writes drain first.
        drained = self.mem.drain_writes(t)
        if drained > t:
            self.metrics.add_time(mode, dwrite=drained - t)
            t = drained
        res = self.mem.write(rec.addr, t)
        self.metrics.record_write(self.cpu_id, rec, res, False)
        self.metrics.add_time(mode, dwrite=res.stall)
        self.locks.release(rec.addr, self.cpu_id, res.done)
        return res.done

    def _do_barrier(self, rec: TraceRecord, t: int, exec_cycles: int,
                    istall: int) -> StepResult:
        mode = _MODE_OF[rec.mode]
        drained = self.mem.drain_writes(t)
        if drained > t:
            self.metrics.add_time(mode, dwrite=drained - t)
            t = drained
        # Arrival: read-modify-write of the barrier word.
        res = self.mem.read(rec.addr, t)
        self.metrics.record_read(self.cpu_id, rec, res, False)
        self.metrics.add_time(mode, dread=res.stall, pref=res.pref_stall)
        wres = self.mem.write(rec.addr, res.done)
        self.metrics.record_write(self.cpu_id, rec, wres, False)
        self.metrics.add_time(mode, dwrite=wres.stall,
                              exec_cycles=exec_cycles + 2, imiss=istall)
        t = wres.done
        self.time = t
        outcome = self.barriers.arrive(rec.addr, rec.arg, self.cpu_id, t)
        if outcome is None:
            self._barrier_rec = rec
            self.status = ProcStatus.WAITING_BARRIER
            return StepResult(ProcStatus.WAITING_BARRIER)
        release, waiters = outcome
        self.metrics.add_time(mode, sync=max(0, release - t))
        self.time = max(t, release)
        if self.pos >= self._n:
            self.status = ProcStatus.DONE
            return StepResult(ProcStatus.DONE, barrier_release=outcome)
        return StepResult(ProcStatus.RUNNING, barrier_release=outcome)
