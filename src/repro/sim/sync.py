"""Synchronization bookkeeping: locks and barriers.

The traces carry the synchronization events of the original workload; per
section 2.2 the simulator must "make sure that their mutual exclusion
functionality is maintained".  :class:`LockTable` serializes critical
sections (a processor reaching LOCK_ACQ on a held lock spins until the
holder releases), and :class:`BarrierManager` blocks arrivals until each
episode is complete, releasing all participants at the same instant — the
gang-scheduling barrier behaviour responsible for most coherence misses in
the parallel workloads (Table 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError


class LockTable:
    """Global spin-lock state."""

    def __init__(self) -> None:
        #: lock address -> holding CPU.
        self._holder: Dict[int, int] = {}
        #: lock address -> time of the most recent release.
        self._released_at: Dict[int, int] = {}
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def holder(self, addr: int) -> Optional[int]:
        """CPU currently holding the lock at *addr*, or None."""
        return self._holder.get(addr)

    def try_acquire(self, addr: int, cpu: int, t: int) -> Tuple[bool, int]:
        """Attempt to take the lock at time *t*.

        Returns ``(True, grant_time)`` on success — ``grant_time`` reflects
        the hand-off delay after a recent release — or ``(False, 0)`` when
        another CPU holds the lock.
        """
        current = self._holder.get(addr)
        if current is not None and current != cpu:
            return False, 0
        if current == cpu:
            raise SimulationError(f"cpu {cpu} re-acquired lock {addr:#x}")
        grant = max(t, self._released_at.get(addr, 0))
        self._holder[addr] = cpu
        self.acquisitions += 1
        return True, grant

    def release(self, addr: int, cpu: int, t: int) -> None:
        """Release the lock; raises when *cpu* does not hold it."""
        if self._holder.get(addr) != cpu:
            raise SimulationError(
                f"cpu {cpu} released lock {addr:#x} it does not hold")
        del self._holder[addr]
        self._released_at[addr] = t

    def note_contention(self) -> None:
        self.contended_acquisitions += 1

    def held_locks(self) -> List[int]:
        """Addresses of all currently held locks."""
        return sorted(self._holder)


class BarrierEpisode:
    """Arrivals collected for one barrier episode."""

    __slots__ = ("participants", "arrivals")

    def __init__(self, participants: int) -> None:
        self.participants = participants
        #: (cpu, arrival_time) pairs.
        self.arrivals: List[Tuple[int, int]] = []


class BarrierManager:
    """Counts barrier arrivals and computes release times."""

    def __init__(self, release_cycles: int) -> None:
        self.release_cycles = release_cycles
        self._episodes: Dict[int, BarrierEpisode] = {}
        self.episodes_completed = 0

    def arrive(self, addr: int, participants: int, cpu: int,
               t: int) -> Optional[Tuple[int, List[int]]]:
        """Record an arrival.

        Returns None while the episode is incomplete.  When the last
        participant arrives, returns ``(release_time, waiting_cpus)`` where
        ``waiting_cpus`` excludes the final arriver.
        """
        episode = self._episodes.get(addr)
        if episode is None:
            episode = self._episodes[addr] = BarrierEpisode(participants)
        if episode.participants != participants:
            raise SimulationError(
                f"barrier {addr:#x}: inconsistent participant counts")
        if any(c == cpu for c, _t in episode.arrivals):
            raise SimulationError(
                f"cpu {cpu} arrived twice at barrier {addr:#x}")
        episode.arrivals.append((cpu, t))
        if len(episode.arrivals) < participants:
            return None
        release = max(at for _c, at in episode.arrivals) + self.release_cycles
        waiters = [c for c, _t in episode.arrivals if c != cpu]
        del self._episodes[addr]
        self.episodes_completed += 1
        return release, waiters

    def waiting_cpus(self) -> List[int]:
        """All CPUs currently blocked in incomplete episodes."""
        cpus: List[int] = []
        for episode in self._episodes.values():
            cpus.extend(c for c, _t in episode.arrivals)
        return cpus
