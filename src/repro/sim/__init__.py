"""Execution model: configurations, processors, metrics, the system loop."""

from repro.sim.config import (SystemConfig, all_configs, hybrid_configs,
                              standard_configs)
from repro.sim.metrics import BlockOpStats, MissTracker, SystemMetrics, TimeBreakdown
from repro.sim.processor import ProcStatus, Processor, StepResult
from repro.sim.sync import BarrierManager, LockTable
from repro.sim.system import MultiprocessorSystem, simulate

__all__ = [
    "BarrierManager",
    "BlockOpStats",
    "LockTable",
    "MissTracker",
    "MultiprocessorSystem",
    "ProcStatus",
    "Processor",
    "StepResult",
    "SystemConfig",
    "SystemMetrics",
    "TimeBreakdown",
    "all_configs",
    "hybrid_configs",
    "simulate",
    "standard_configs",
]
