"""Measurement layer: time decomposition and the paper's miss taxonomy.

Two classes cooperate:

* :class:`MissTracker` (one per CPU) implements the memory-system sink
  protocol.  It remembers which L1D lines were invalidated by remote
  writes, displaced by block-operation fills, or moved uncached by a
  bypassing scheme, so each later miss can be labelled *coherence*,
  *block displacement* or *reuse* exactly as sections 3-4 define them.

* :class:`SystemMetrics` aggregates everything the tables and figures
  report: execution-time components per mode (Exec / I Miss / D Read Miss /
  D Write / Pref / sync), read and miss counts per mode, the OS miss
  breakdown of Table 2, the coherence-source breakdown of Table 5, the
  per-basic-block miss counts that drive the hot-spot selection of
  section 6, and the block-operation instrumentation of Table 3 and
  Figure 1.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set

from repro.common.types import MODE_BY_VALUE, DataClass, MissKind, Mode
from repro.memsys.hierarchy import AccessResult
from repro.memsys.sink import MemorySink, MissFlags
from repro.trace.blockop import BlockOpDescriptor
from repro.trace.record import TraceRecord


class TimeBreakdown:
    """Cycle components of execution time, as in Figure 3."""

    __slots__ = ("exec_cycles", "imiss", "dread", "dwrite", "pref", "sync")

    def __init__(self) -> None:
        self.exec_cycles = 0
        self.imiss = 0
        self.dread = 0
        self.dwrite = 0
        self.pref = 0
        #: Lock-spin and barrier-wait cycles (shown inside Exec by the
        #: paper; kept separate here and merged at reporting time).
        self.sync = 0

    @property
    def total(self) -> int:
        return (self.exec_cycles + self.imiss + self.dread + self.dwrite
                + self.pref + self.sync)

    def add(self, exec_cycles: int = 0, imiss: int = 0, dread: int = 0,
            dwrite: int = 0, pref: int = 0, sync: int = 0) -> None:
        self.exec_cycles += exec_cycles
        self.imiss += imiss
        self.dread += dread
        self.dwrite += dwrite
        self.pref += pref
        self.sync += sync

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown()
        for field in self.__slots__:
            setattr(out, field, getattr(self, field) + getattr(other, field))
        return out

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in self.__slots__}


class MissTracker(MemorySink):
    """Per-CPU cause bookkeeping for the miss taxonomy."""

    def __init__(self) -> None:
        #: L1D lines invalidated by remote writes while resident.
        self.coh_pending: Set[int] = set()
        #: L1D lines evicted by a block-operation fill.
        self.displaced: Set[int] = set()
        #: Lines moved uncached by a bypassing scheme.
        self.bypassed: Set[int] = set()
        #: Mirrors the processor's "inside a block operation" state.
        self.in_blockop = False

    def coherence_invalidate(self, l1_line: int) -> None:
        self.coh_pending.add(l1_line)
        self.displaced.discard(l1_line)

    def l1_fill(self, l1_line: int, evicted_line: int,
                during_blockop: bool) -> None:
        self.coh_pending.discard(l1_line)
        self.displaced.discard(l1_line)
        self.bypassed.discard(l1_line)
        if during_blockop and evicted_line != -1:
            self.displaced.add(evicted_line)

    def bypass_mark(self, l1_line: int) -> None:
        self.bypassed.add(l1_line)

    def consume_miss_flags(self, l1_line: int) -> MissFlags:
        coherence = l1_line in self.coh_pending
        displaced = l1_line in self.displaced
        bypassed = l1_line in self.bypassed
        if coherence:
            self.coh_pending.discard(l1_line)
        if displaced:
            self.displaced.discard(l1_line)
        if bypassed:
            self.bypassed.discard(l1_line)
        return MissFlags(coherence, displaced, bypassed)


class BlockOpStats:
    """Aggregate block-operation instrumentation (Table 3, Table 4)."""

    __slots__ = ("ops", "copies", "src_lines", "src_lines_cached",
                 "dst_lines", "dst_owned", "dst_shared", "size_page",
                 "size_1k_to_page", "size_lt_1k", "bytes_moved")

    def __init__(self) -> None:
        self.ops = 0
        self.copies = 0
        self.src_lines = 0
        self.src_lines_cached = 0
        self.dst_lines = 0
        self.dst_owned = 0
        self.dst_shared = 0
        self.size_page = 0
        self.size_1k_to_page = 0
        self.size_lt_1k = 0
        self.bytes_moved = 0

    def record(self, desc: BlockOpDescriptor, page_bytes: int,
               src_cached: int, src_total: int, dst_owned: int,
               dst_shared: int, dst_total: int) -> None:
        self.ops += 1
        if desc.is_copy:
            self.copies += 1
        self.src_lines += src_total
        self.src_lines_cached += src_cached
        self.dst_lines += dst_total
        self.dst_owned += dst_owned
        self.dst_shared += dst_shared
        self.bytes_moved += desc.size
        if desc.size >= page_bytes:
            self.size_page += 1
        elif desc.size >= 1024:
            self.size_1k_to_page += 1
        else:
            self.size_lt_1k += 1

    def pct_src_cached(self) -> float:
        return 100.0 * self.src_lines_cached / self.src_lines if self.src_lines else 0.0

    def pct_dst_owned(self) -> float:
        return 100.0 * self.dst_owned / self.dst_lines if self.dst_lines else 0.0

    def pct_dst_shared(self) -> float:
        return 100.0 * self.dst_shared / self.dst_lines if self.dst_lines else 0.0

    def size_distribution(self) -> Dict[str, float]:
        """Percent of operations per size class, as in Table 3 rows 4-6."""
        if not self.ops:
            return {"page": 0.0, "1k_to_page": 0.0, "lt_1k": 0.0}
        return {
            "page": 100.0 * self.size_page / self.ops,
            "1k_to_page": 100.0 * self.size_1k_to_page / self.ops,
            "lt_1k": 100.0 * self.size_lt_1k / self.ops,
        }


class SystemMetrics:
    """All measurements from one simulation run."""

    def __init__(self, num_cpus: int, page_bytes: int = 4096) -> None:
        self.num_cpus = num_cpus
        self.page_bytes = page_bytes
        self.trackers: List[MissTracker] = [MissTracker() for _ in range(num_cpus)]
        self.time: Dict[Mode, TimeBreakdown] = {m: TimeBreakdown() for m in Mode}
        # Reference and miss counts.
        self.reads: Counter = Counter()          # Mode -> count
        self.writes: Counter = Counter()         # Mode -> count
        self.read_misses: Counter = Counter()    # Mode -> count
        self.os_miss_kind: Counter = Counter()   # MissKind -> count (OS reads)
        self.os_coh_dclass: Counter = Counter()  # DataClass -> count
        self.os_miss_pc: Counter = Counter()     # basic block -> OS miss count
        self.os_miss_dclass: Counter = Counter()  # DataClass -> OS miss count
        self.os_coh_addr: Counter = Counter()    # line addr -> coherence misses
        # Displacement / reuse accounting (all modes; section 4.1.3).
        self.displacement_inside = 0
        self.displacement_outside = 0
        self.reuse_inside = 0
        self.reuse_outside = 0
        # Block-operation overheads (Figure 1) and characteristics (Table 3).
        self.blk_read_stall = 0
        self.blk_write_stall = 0
        self.blk_displ_stall = 0
        self.blk_instr_exec = 0
        self.blockops = BlockOpStats()
        self.dma_ops = 0
        self.dma_stall = 0
        self.prefetches_issued = 0
        #: OS read misses whose basic block is in the hot-spot set (set by
        #: the runner when hot-spot prefetching is enabled).
        self.hotspot_pcs: Set[int] = set()
        self.os_hotspot_misses = 0
        # Bus / coherence statistics, captured at the end of the run
        # (sections 5.2 and 6 argue from traffic comparisons).
        self.bus_busy_cycles = 0
        self.bus_wait_cycles = 0
        self.bus_traffic: Dict[str, int] = {}
        self.bus_transactions: Dict[str, int] = {}
        self.updates_sent = 0
        self.invalidations_sent = 0
        self.cache_to_cache = 0
        self.writebacks = 0
        self.lock_acquisitions = 0
        self.lock_contended = 0
        self.barrier_episodes = 0
        # Finalization.
        self.cpu_end_times: List[int] = [0] * num_cpus
        self.makespan = 0

    # ------------------------------------------------------------------
    # Recording (called by the processor)
    # ------------------------------------------------------------------
    def add_time(self, mode: Mode, exec_cycles: int = 0, imiss: int = 0,
                 dread: int = 0, dwrite: int = 0, pref: int = 0,
                 sync: int = 0) -> None:
        self.time[mode].add(exec_cycles, imiss, dread, dwrite, pref, sync)

    def record_read_hit(self, mode: Mode) -> None:
        """Fused :meth:`record_read` + :meth:`add_time` for a clean L1 hit.

        A hit contributes exactly one read to its mode and zero cycles to
        every stall component, so the whole accounting collapses to one
        counter bump.  The processor's inlined fast path performs this
        increment directly on the bound ``reads`` counter; this method is
        the documented equivalent for other callers (and tests).
        """
        self.reads[mode] += 1

    def record_read(self, cpu: int, rec: TraceRecord, res: AccessResult,
                    in_blockop: bool) -> None:
        mode = MODE_BY_VALUE[rec.mode]
        self.reads[mode] += 1
        if rec.blockop:
            self.blk_read_stall += res.stall + res.pref_stall
        if not res.miss:
            return
        self.read_misses[mode] += 1
        flags = res.flags
        if flags.displaced:
            if in_blockop:
                self.displacement_inside += 1
            else:
                self.displacement_outside += 1
            self.blk_displ_stall += res.stall
        if flags.bypassed:
            if in_blockop:
                self.reuse_inside += 1
            else:
                self.reuse_outside += 1
        if mode != Mode.OS:
            return
        if rec.blockop:
            kind = MissKind.BLOCK_OP
        elif flags.coherence:
            kind = MissKind.COHERENCE
        else:
            kind = MissKind.OTHER
        self.os_miss_kind[kind] += 1
        if kind == MissKind.COHERENCE:
            group = DataClass(rec.dclass)
            self.os_coh_dclass[group] += 1
            self.os_coh_addr[rec.addr - rec.addr % 16] += 1
        self.os_miss_pc[rec.pc] += 1
        self.os_miss_dclass[DataClass(rec.dclass)] += 1
        if rec.pc in self.hotspot_pcs:
            self.os_hotspot_misses += 1

    def record_write(self, cpu: int, rec: TraceRecord, res: AccessResult,
                     in_blockop: bool) -> None:
        mode = MODE_BY_VALUE[rec.mode]
        self.writes[mode] += 1
        if rec.blockop:
            self.blk_write_stall += res.stall

    def record_block_exec(self, cycles: int) -> None:
        """Instruction-execution cycles spent inside block operations."""
        self.blk_instr_exec += cycles

    def record_block_start(self, cpu: int, desc: BlockOpDescriptor,
                           src_cached: int, src_total: int, dst_owned: int,
                           dst_shared: int, dst_total: int) -> None:
        self.blockops.record(desc, self.page_bytes, src_cached, src_total,
                             dst_owned, dst_shared, dst_total)

    def record_dma(self, stall: int) -> None:
        self.dma_ops += 1
        self.dma_stall += stall

    def record_prefetch_issued(self) -> None:
        self.prefetches_issued += 1

    def finalize(self, end_times: List[int]) -> None:
        self.cpu_end_times = list(end_times)
        self.makespan = max(end_times) if end_times else 0

    def capture_system_stats(self, bus, controller, locks, barriers) -> None:
        """Copy bus/coherence/synchronization statistics from the system."""
        self.bus_busy_cycles = bus.busy_cycles
        self.bus_wait_cycles = bus.wait_cycles
        self.bus_traffic = bus.traffic_summary()
        self.bus_transactions = {kind.value: count for kind, count
                                 in bus.transactions.items()}
        self.updates_sent = controller.updates_sent
        self.invalidations_sent = controller.invalidations_sent
        self.cache_to_cache = controller.cache_to_cache
        self.writebacks = controller.writebacks
        self.lock_acquisitions = locks.acquisitions
        self.lock_contended = locks.contended_acquisitions
        self.barrier_episodes = barriers.episodes_completed

    def update_traffic_cycles(self) -> int:
        """Bus cycles spent on Firefly update transactions."""
        return self.bus_traffic.get("update", 0)

    def bus_utilization(self) -> float:
        """Bus busy cycles over the run's makespan."""
        if not self.makespan:
            return 0.0
        return min(1.0, self.bus_busy_cycles / self.makespan)

    # ------------------------------------------------------------------
    # Derived quantities (used by the table/figure builders)
    # ------------------------------------------------------------------
    @property
    def total_cpu_cycles(self) -> int:
        """Sum of attributed cycles over all CPUs and modes."""
        return sum(tb.total for tb in self.time.values())

    def mode_fraction(self, mode: Mode) -> float:
        """Fraction of machine time spent in *mode* (Table 1 rows 1-3)."""
        total = self.total_cpu_cycles
        return self.time[mode].total / total if total else 0.0

    def os_data_stall_fraction(self) -> float:
        """OS data-stall share of total time (Table 1 row 4)."""
        os = self.time[Mode.OS]
        total = self.total_cpu_cycles
        return (os.dread + os.dwrite + os.pref) / total if total else 0.0

    def data_miss_rate(self) -> float:
        """Read miss rate of the primary data caches (Table 1 row 5)."""
        reads = self.reads[Mode.USER] + self.reads[Mode.OS]
        misses = self.read_misses[Mode.USER] + self.read_misses[Mode.OS]
        return misses / reads if reads else 0.0

    def os_read_share(self) -> float:
        """OS share of data reads (Table 1 row 6)."""
        reads = self.reads[Mode.USER] + self.reads[Mode.OS]
        return self.reads[Mode.OS] / reads if reads else 0.0

    def os_miss_share(self) -> float:
        """OS share of data misses (Table 1 row 7)."""
        misses = self.read_misses[Mode.USER] + self.read_misses[Mode.OS]
        return self.read_misses[Mode.OS] / misses if misses else 0.0

    def os_read_misses(self) -> int:
        """OS read misses in the primary caches (Figures 2, 4, 5)."""
        return self.read_misses[Mode.OS]

    def total_data_misses(self) -> int:
        """OS + user read misses (denominator of Table 3 rows 7-10)."""
        return self.read_misses[Mode.USER] + self.read_misses[Mode.OS]

    def os_time(self) -> TimeBreakdown:
        """The OS execution-time breakdown (Figure 3 bars)."""
        return self.time[Mode.OS]

    def miss_kind_fractions(self) -> Dict[MissKind, float]:
        """Table 2: OS miss breakdown by source."""
        total = sum(self.os_miss_kind.values())
        if not total:
            return {k: 0.0 for k in MissKind}
        return {k: self.os_miss_kind.get(k, 0) / total for k in MissKind}

    def coherence_breakdown(self) -> Dict[str, float]:
        """Table 5: coherence-miss breakdown by variable group."""
        total = sum(self.os_coh_dclass.values())
        groups = {
            "Barriers": (DataClass.BARRIER_VAR,),
            "Infreq. Com.": (DataClass.INFREQ_COMM,),
            "Freq. Shared": (DataClass.FREQ_SHARED,),
            "Locks": (DataClass.LOCK_VAR,),
        }
        out: Dict[str, float] = {}
        covered = 0
        for label, classes in groups.items():
            count = sum(self.os_coh_dclass.get(c, 0) for c in classes)
            covered += count
            out[label] = count / total if total else 0.0
        out["Other"] = (total - covered) / total if total else 0.0
        return out

    def hottest_pcs(self, count: int) -> List[int]:
        """The *count* basic blocks with the most OS misses (section 6)."""
        return [pc for pc, _n in self.os_miss_pc.most_common(count)]

    @classmethod
    def from_snapshot(cls, snap: Dict[str, object]) -> "SystemMetrics":
        """Rebuild a metrics object from a :meth:`snapshot` dump.

        Exact inverse: ``SystemMetrics.from_snapshot(m.snapshot())``
        snapshots back to the same dictionary, bit for bit.  The
        artifact cache persists simulation results as snapshots
        (:meth:`repro.experiments.artifacts.ArtifactCache.store_metrics`),
        so a warm sweep can serve a cell without re-simulating and still
        satisfy the engine's bit-identical-results contract.  Raises
        ``KeyError``/``TypeError``/``ValueError`` on malformed input —
        the cache layer quarantines the entry on any of those.
        """
        metrics = cls(int(snap["num_cpus"]), int(snap["page_bytes"]))
        # snapshot() renders Counter keys through str(); invert that per
        # enum (robust to the IntEnum __str__ change in Python 3.11).
        by_str = {enum_cls: {str(member): member for member in enum_cls}
                  for enum_cls in (Mode, MissKind, DataClass)}

        def counter(name: str, key_of) -> Counter:
            out: Counter = Counter()
            for key, value in snap[name].items():  # type: ignore[union-attr]
                out[key_of(key)] = int(value)
            return out

        for mode in Mode:
            breakdown = metrics.time[mode]
            for field in TimeBreakdown.__slots__:
                setattr(breakdown, field, int(snap["time"][mode.name][field]))
        metrics.reads = counter("reads", by_str[Mode].__getitem__)
        metrics.writes = counter("writes", by_str[Mode].__getitem__)
        metrics.read_misses = counter("read_misses", by_str[Mode].__getitem__)
        metrics.os_miss_kind = counter("os_miss_kind",
                                       by_str[MissKind].__getitem__)
        metrics.os_coh_dclass = counter("os_coh_dclass",
                                        by_str[DataClass].__getitem__)
        metrics.os_miss_pc = counter("os_miss_pc", int)
        metrics.os_miss_dclass = counter("os_miss_dclass",
                                         by_str[DataClass].__getitem__)
        metrics.os_coh_addr = counter("os_coh_addr", int)
        for field in ("displacement_inside", "displacement_outside",
                      "reuse_inside", "reuse_outside", "blk_read_stall",
                      "blk_write_stall", "blk_displ_stall", "blk_instr_exec",
                      "dma_ops", "dma_stall", "prefetches_issued",
                      "os_hotspot_misses", "bus_busy_cycles",
                      "bus_wait_cycles", "updates_sent",
                      "invalidations_sent", "cache_to_cache", "writebacks",
                      "lock_acquisitions", "lock_contended",
                      "barrier_episodes", "makespan"):
            setattr(metrics, field, int(snap[field]))
        for field in BlockOpStats.__slots__:
            setattr(metrics.blockops, field, int(snap["blockops"][field]))
        metrics.hotspot_pcs = {int(pc) for pc in snap["hotspot_pcs"]}
        metrics.bus_traffic = {str(k): int(v)
                               for k, v in snap["bus_traffic"].items()}
        metrics.bus_transactions = {
            str(k): int(v) for k, v in snap["bus_transactions"].items()}
        metrics.cpu_end_times = [int(t) for t in snap["cpu_end_times"]]
        return metrics

    def snapshot(self) -> Dict[str, object]:
        """Canonical, order-independent dump of every measured quantity.

        Counters and sets are rendered as sorted structures so two
        :class:`SystemMetrics` are equal *iff* their snapshots are — the
        determinism tests use this to assert that serial and parallel
        sweeps (and cold- vs warm-cache runs) produce bit-identical
        results, independent of process boundaries and pickling.
        """
        def counter(c: Counter) -> Dict[str, int]:
            return {str(k): int(v) for k, v in sorted(
                c.items(), key=lambda item: str(item[0]))}

        return {
            "num_cpus": self.num_cpus,
            "page_bytes": self.page_bytes,
            "time": {m.name: self.time[m].as_dict() for m in Mode},
            "reads": counter(self.reads),
            "writes": counter(self.writes),
            "read_misses": counter(self.read_misses),
            "os_miss_kind": counter(self.os_miss_kind),
            "os_coh_dclass": counter(self.os_coh_dclass),
            "os_miss_pc": counter(self.os_miss_pc),
            "os_miss_dclass": counter(self.os_miss_dclass),
            "os_coh_addr": counter(self.os_coh_addr),
            "displacement_inside": self.displacement_inside,
            "displacement_outside": self.displacement_outside,
            "reuse_inside": self.reuse_inside,
            "reuse_outside": self.reuse_outside,
            "blk_read_stall": self.blk_read_stall,
            "blk_write_stall": self.blk_write_stall,
            "blk_displ_stall": self.blk_displ_stall,
            "blk_instr_exec": self.blk_instr_exec,
            "blockops": {f: getattr(self.blockops, f)
                         for f in BlockOpStats.__slots__},
            "dma_ops": self.dma_ops,
            "dma_stall": self.dma_stall,
            "prefetches_issued": self.prefetches_issued,
            "hotspot_pcs": sorted(self.hotspot_pcs),
            "os_hotspot_misses": self.os_hotspot_misses,
            "bus_busy_cycles": self.bus_busy_cycles,
            "bus_wait_cycles": self.bus_wait_cycles,
            "bus_traffic": {k: self.bus_traffic[k]
                            for k in sorted(self.bus_traffic)},
            "bus_transactions": {k: self.bus_transactions[k]
                                 for k in sorted(self.bus_transactions)},
            "updates_sent": self.updates_sent,
            "invalidations_sent": self.invalidations_sent,
            "cache_to_cache": self.cache_to_cache,
            "writebacks": self.writebacks,
            "lock_acquisitions": self.lock_acquisitions,
            "lock_contended": self.lock_contended,
            "barrier_episodes": self.barrier_episodes,
            "cpu_end_times": list(self.cpu_end_times),
            "makespan": self.makespan,
        }
