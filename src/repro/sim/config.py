"""System configurations: the eight machines of Figure 3.

A :class:`SystemConfig` selects the machine geometry, the block-operation
scheme, and which software optimizations are applied.  The optimizations
map to the paper's bar names:

=============  =========================================================
Name           Meaning
=============  =========================================================
Base           plain machine of section 2.4
Blk_Pref       software prefetch of block-op source data
Blk_Bypass     block ops bypass both caches via line registers
Blk_ByPref     bypass + 8-line prefetch buffer, destination writes cached
Blk_Dma        DMA-like block ops on the bus, processor stalled
BCoh_Reloc     Blk_Dma + data privatization and relocation
BCoh_RelUp     BCoh_Reloc + Firefly update on the 384-byte variable core
BCPref         BCoh_RelUp + prefetching at the 12 hottest miss spots
=============  =========================================================

``privatize`` and ``hotspot_prefetch`` are *trace transformations* applied
by the experiment runner before simulation (they model kernel source
changes); ``selective_update`` configures the coherence controller's
Firefly pages; ``scheme`` changes how the processor executes block-op
records.

Beyond the paper's eight, :func:`hybrid_configs` registers the three
adaptive update/invalidate schemes built on :mod:`repro.memsys.adaptive`:

=============  =========================================================
Hyb_UpdN       BCoh_Reloc + competitive update-N-then-invalidate (N=4)
Hyb_Deg        BCoh_Reloc + sharing-degree update->invalidate switching
Hyb_Static     BCoh_Reloc + unbounded updates on the selected pages
               (BCoh_RelUp as the N=infinity special case, bit-exactly)
=============  =========================================================

:func:`all_configs` merges both maps; the CLI, the experiment runner,
the sweep service and the conformance fuzzer all resolve scheme names
through it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.common.params import BASE_MACHINE, MachineParams
from repro.common.types import AdaptivePolicy, Scheme


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """One simulated system."""

    name: str
    machine: MachineParams = BASE_MACHINE
    scheme: Scheme = Scheme.BASE
    #: Apply the privatization/relocation trace transform (section 5.1).
    privatize: bool = False
    #: Run Firefly update on the selected variable core (section 5.2).
    selective_update: bool = False
    #: Run Firefly update on *every* OS/user variable — the pure-update
    #: comparison point of section 5.2 ("the resulting number of
    #: operating system data misses is only 1-3% higher than in a pure
    #: update protocol, while it saves 31-52% of the update traffic").
    pure_update: bool = False
    #: Insert prefetches at the hottest miss spots (section 6).
    hotspot_prefetch: bool = False
    #: Per-line adaptive update/invalidate policy
    #: (:mod:`repro.memsys.adaptive`); ``None`` means no adaptive layer.
    #: When set, it replaces the page-set Firefly rule — for
    #: :attr:`AdaptivePolicy.STATIC` the ``selective_update`` pages feed
    #: the policy instead of the controller.
    adaptive: Optional[AdaptivePolicy] = None
    #: Update budget per remote copy for :attr:`AdaptivePolicy.UPDATE_N`
    #: (0 degenerates to the pure invalidation protocol).
    adaptive_n: int = 4
    #: Maximum sharing degree still updated by
    #: :attr:`AdaptivePolicy.DEGREE` before the line switches to
    #: invalidate mode for its sharing epoch.
    degree_threshold: int = 2
    #: Software-pipelining depth, in L1 lines, for Blk_Pref.
    pref_lead_lines: int = 8
    #: Pipelining depth for Blk_ByPref; must stay below the 8-line
    #: prefetch buffer's capacity or the lookahead insert evicts the very
    #: line about to be read.
    bypref_lead_lines: int = 6
    #: Records of lead given to each inserted hot-spot prefetch.
    hotspot_lead_records: int = 24

    def with_machine(self, machine: MachineParams) -> "SystemConfig":
        """Same configuration on different hardware (Figures 6 and 7)."""
        return dataclasses.replace(self, machine=machine)

    def renamed(self, name: str) -> "SystemConfig":
        """Copy with a different display name."""
        return dataclasses.replace(self, name=name)


def standard_configs(machine: MachineParams = BASE_MACHINE) -> Dict[str, SystemConfig]:
    """The eight systems of Figure 3, in the paper's order."""
    return {
        "Base": SystemConfig("Base", machine),
        "Blk_Pref": SystemConfig("Blk_Pref", machine, Scheme.PREF),
        "Blk_Bypass": SystemConfig("Blk_Bypass", machine, Scheme.BYPASS),
        "Blk_ByPref": SystemConfig("Blk_ByPref", machine, Scheme.BYPREF),
        "Blk_Dma": SystemConfig("Blk_Dma", machine, Scheme.DMA),
        "BCoh_Reloc": SystemConfig("BCoh_Reloc", machine, Scheme.DMA,
                                   privatize=True),
        "BCoh_RelUp": SystemConfig("BCoh_RelUp", machine, Scheme.DMA,
                                   privatize=True, selective_update=True),
        "BCPref": SystemConfig("BCPref", machine, Scheme.DMA, privatize=True,
                               selective_update=True, hotspot_prefetch=True),
    }


def hybrid_configs(machine: MachineParams = BASE_MACHINE) -> Dict[str, SystemConfig]:
    """The three adaptive hybrid schemes, stacked on ``BCoh_Reloc``.

    All three keep the DMA block-op scheme and the privatization
    transform, so their only delta against ``BCoh_Reloc``/``BCoh_RelUp``
    is the write-coherence policy — the comparison the hybrid table
    isolates.  ``Hyb_Static`` sets ``selective_update`` so the
    experiment runner derives the same update-page core as for
    ``BCoh_RelUp``; the pages feed the static policy.
    """
    return {
        "Hyb_UpdN": SystemConfig("Hyb_UpdN", machine, Scheme.DMA,
                                 privatize=True,
                                 adaptive=AdaptivePolicy.UPDATE_N,
                                 adaptive_n=4),
        "Hyb_Deg": SystemConfig("Hyb_Deg", machine, Scheme.DMA,
                                privatize=True,
                                adaptive=AdaptivePolicy.DEGREE,
                                degree_threshold=2),
        "Hyb_Static": SystemConfig("Hyb_Static", machine, Scheme.DMA,
                                   privatize=True, selective_update=True,
                                   adaptive=AdaptivePolicy.STATIC),
    }


def all_configs(machine: MachineParams = BASE_MACHINE) -> Dict[str, SystemConfig]:
    """Every registered scheme: the paper's eight plus the hybrids."""
    configs = standard_configs(machine)
    configs.update(hybrid_configs(machine))
    return configs


def resolve_config(name: str,
                   machine: MachineParams = BASE_MACHINE) -> SystemConfig:
    """Resolve *name* — a registered scheme or a knob-parameterized one.

    Beyond the eleven :func:`all_configs` names, two parameterized forms
    sweep the adaptive knobs per machine point without growing the
    registry (whose exact contents tests pin):

    * ``Hyb_UpdN@N<k>`` — competitive update with an update budget of
      ``k`` per remote copy (``Hyb_UpdN@N4`` == ``Hyb_UpdN``).
    * ``Hyb_Deg@T<k>`` — sharing-degree switching with threshold ``k``
      (``Hyb_Deg@T2`` == ``Hyb_Deg``).

    The default-knob spellings resolve to the *canonical* names so they
    share simulation-cache identity with the registered configs.
    Raises :class:`KeyError` with the available names otherwise.
    """
    configs = all_configs(machine)
    if name in configs:
        return configs[name]
    base, sep, knob = name.partition("@")
    if sep and base in ("Hyb_UpdN", "Hyb_Deg"):
        prefix = "N" if base == "Hyb_UpdN" else "T"
        if knob.startswith(prefix) and knob[len(prefix):].isdigit():
            value = int(knob[len(prefix):])
            config = configs[base]
            if base == "Hyb_UpdN":
                if value == config.adaptive_n:
                    return config
                return dataclasses.replace(config, name=name,
                                           adaptive_n=value)
            if value < 1:
                raise KeyError(f"{name!r}: degree threshold must be >= 1")
            if value == config.degree_threshold:
                return config
            return dataclasses.replace(config, name=name,
                                       degree_threshold=value)
    raise KeyError(
        f"unknown config {name!r}; choose from {list(configs)} or a "
        f"parameterized 'Hyb_UpdN@N<k>' / 'Hyb_Deg@T<k>'")
