"""Trace representation: records, block operations, symbols, streams, IO."""

from repro.trace.annotations import Symbol, SymbolMap
from repro.trace.blockop import BlockOpDescriptor, BlockOpRegistry
from repro.trace.record import (
    TraceRecord,
    barrier,
    block_end,
    block_start,
    lock_acquire,
    lock_release,
    prefetch,
    read,
    write,
)
from repro.trace import npzio, textio
from repro.trace.stream import BLOCK_WORD_BYTES, Trace, TraceBuilder

__all__ = [
    "BLOCK_WORD_BYTES",
    "BlockOpDescriptor",
    "BlockOpRegistry",
    "Symbol",
    "SymbolMap",
    "Trace",
    "TraceBuilder",
    "TraceRecord",
    "barrier",
    "npzio",
    "textio",
    "block_end",
    "block_start",
    "lock_acquire",
    "lock_release",
    "prefetch",
    "read",
    "write",
]
