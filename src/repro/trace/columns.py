"""Columnar (structure-of-arrays) view of one CPU's trace stream.

:mod:`repro.trace.npzio` already stores each stream as one ``(N, 9)``
int64 matrix; this module gives that layout a first-class in-memory type,
:class:`StreamColumns`, so the simulator's batched stepping mode and the
histogram/analysis passes can run vectorized numpy compares over whole
streams instead of touching one :class:`~repro.trace.record.TraceRecord`
object per reference.

The column order is the serialization order of the npz format and the
``__slots__`` order of :class:`TraceRecord`::

    op, addr, mode, dclass, pc, icount, blockop, size, arg

A :class:`StreamColumns` built by :meth:`StreamColumns.from_matrix` is a
set of zero-copy views into the loaded matrix; nothing is duplicated and
no record objects exist until somebody asks for them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.common.types import DataClass, Mode, Op
from repro.trace.record import TraceRecord

#: Field names, in serialization order (matches ``TraceRecord.__slots__``).
FIELDS = ("op", "addr", "mode", "dclass", "pc", "icount", "blockop",
          "size", "arg")

#: Columns per record in the matrix form (also ``npzio._COLUMNS``).
NUM_COLUMNS = len(FIELDS)

_OP_BY_VALUE = {int(op): op for op in Op}
_MODE_BY_VALUE = {int(m): m for m in Mode}
_DCLASS_BY_VALUE = {int(d): d for d in DataClass}


class StreamColumns:
    """Parallel int64 arrays holding one CPU's records column-wise."""

    __slots__ = ("ops", "addrs", "modes", "dclasses", "pcs", "icounts",
                 "blockops", "sizes", "args", "n", "_prep_cache")

    def __init__(self, ops: np.ndarray, addrs: np.ndarray, modes: np.ndarray,
                 dclasses: np.ndarray, pcs: np.ndarray, icounts: np.ndarray,
                 blockops: np.ndarray, sizes: np.ndarray,
                 args: np.ndarray) -> None:
        self.ops = ops
        self.addrs = addrs
        self.modes = modes
        self.dclasses = dclasses
        self.pcs = pcs
        self.icounts = icounts
        self.blockops = blockops
        self.sizes = sizes
        self.args = args
        self.n = len(ops)
        #: Simulator-side classification tables derived from these
        #: columns, keyed by cache geometry and scheme flags; owned by
        #: :meth:`repro.sim.processor.Processor.batch_prepare`.
        self._prep_cache = None

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "StreamColumns":
        """Zero-copy column views of an ``(N, 9)`` int64 matrix."""
        if matrix.ndim != 2 or matrix.shape[1] != NUM_COLUMNS:
            raise ValueError(
                f"stream matrix must be (N, {NUM_COLUMNS}), "
                f"got {matrix.shape}")
        return cls(*(matrix[:, i] for i in range(NUM_COLUMNS)))

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "StreamColumns":
        """Pack a record sequence into fresh column arrays."""
        return cls.from_matrix(to_matrix(records))

    # ------------------------------------------------------------------
    # Conversion back to the row-wise world
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """A fresh ``(N, 9)`` int64 matrix of this stream."""
        out = np.empty((self.n, NUM_COLUMNS), dtype=np.int64)
        for i, field in enumerate(FIELDS):
            out[:, i] = getattr(self, _ATTR_OF_FIELD[field])
        return out

    def to_records(self) -> List[TraceRecord]:
        """Materialize the per-record objects (enum-typed fields)."""
        op_of = _OP_BY_VALUE
        mode_of = _MODE_BY_VALUE
        dclass_of = _DCLASS_BY_VALUE
        return [
            TraceRecord(op_of[op], addr, mode_of[mode], dclass_of[dclass],
                        pc, icount, blockop, size, arg)
            for op, addr, mode, dclass, pc, icount, blockop, size, arg
            in zip(self.ops.tolist(), self.addrs.tolist(),
                   self.modes.tolist(), self.dclasses.tolist(),
                   self.pcs.tolist(), self.icounts.tolist(),
                   self.blockops.tolist(), self.sizes.tolist(),
                   self.args.tolist())
        ]

    def iter_rows(self) -> Iterable[tuple]:
        """Iterate plain-int rows in field order (no record objects)."""
        return zip(self.ops.tolist(), self.addrs.tolist(),
                   self.modes.tolist(), self.dclasses.tolist(),
                   self.pcs.tolist(), self.icounts.tolist(),
                   self.blockops.tolist(), self.sizes.tolist(),
                   self.args.tolist())


#: StreamColumns attribute holding each serialized field.
_ATTR_OF_FIELD = {
    "op": "ops", "addr": "addrs", "mode": "modes", "dclass": "dclasses",
    "pc": "pcs", "icount": "icounts", "blockop": "blockops", "size": "sizes",
    "arg": "args",
}


def to_matrix(records: Sequence[TraceRecord]) -> np.ndarray:
    """Pack record objects into an ``(N, 9)`` int64 matrix."""
    out = np.empty((len(records), NUM_COLUMNS), dtype=np.int64)
    for i, r in enumerate(records):
        out[i] = (int(r.op), r.addr, int(r.mode), int(r.dclass), r.pc,
                  r.icount, r.blockop, r.size, r.arg)
    return out
