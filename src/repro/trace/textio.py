"""Portable text serialization of traces.

The on-disk format is line-oriented so traces can be inspected, diffed and
version-controlled.  It is intentionally simple: a header, one line per
block-op descriptor and per symbol, then one line per record prefixed by the
CPU id.  Field order matches :class:`repro.trace.record.TraceRecord`.
"""

from __future__ import annotations

import io
from typing import TextIO, Union

from repro.common.errors import TraceError
from repro.common.types import BlockOpKind, DataClass, Mode, Op
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

_MAGIC = "reprotrace v1"


def dump(trace: Trace, fp: TextIO) -> None:
    """Serialize *trace* to the text stream *fp*."""
    fp.write(f"{_MAGIC}\n")
    fp.write(f"cpus {trace.num_cpus}\n")
    for key in sorted(trace.metadata):
        fp.write(f"meta {key} {trace.metadata[key]}\n")
    for sym in trace.symbols:
        fp.write(f"sym {sym.name} {sym.base} {sym.size} {int(sym.dclass)}\n")
    for op in trace.blockops:
        fp.write(f"blockop {op.op_id} {int(op.kind)} {op.src} {op.dst} "
                 f"{op.size} {op.pc}\n")
    for cpu, stream in enumerate(trace.streams):
        for r in stream:
            fp.write(f"r {cpu} {int(r.op)} {r.addr} {int(r.mode)} "
                     f"{int(r.dclass)} {r.pc} {r.icount} {r.blockop} "
                     f"{r.size} {r.arg}\n")


def dumps(trace: Trace) -> str:
    """Serialize *trace* to a string."""
    buf = io.StringIO()
    dump(trace, buf)
    return buf.getvalue()


def load(fp: TextIO) -> Trace:
    """Parse a trace previously written by :func:`dump`."""
    header = fp.readline().rstrip("\n")
    if header != _MAGIC:
        raise TraceError(f"bad trace header {header!r}")
    cpus_line = fp.readline().split()
    if len(cpus_line) != 2 or cpus_line[0] != "cpus":
        raise TraceError("missing cpu count")
    trace = Trace(int(cpus_line[1]))
    for line in fp:
        fields = line.split()
        if not fields:
            continue
        kind = fields[0]
        if kind == "meta":
            trace.metadata[fields[1]] = _parse_meta(" ".join(fields[2:]))
        elif kind == "sym":
            trace.symbols.add(fields[1], int(fields[2]), int(fields[3]),
                              DataClass(int(fields[4])))
        elif kind == "blockop":
            _load_blockop(trace, fields)
        elif kind == "r":
            _load_record(trace, fields)
        else:
            raise TraceError(f"unknown line kind {kind!r}")
    return trace


def loads(text: str) -> Trace:
    """Parse a trace from a string."""
    return load(io.StringIO(text))


def _parse_meta(value: str) -> Union[int, float, str]:
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def _load_blockop(trace: Trace, fields: list) -> None:
    op_id, kind, src, dst, size, pc = (int(f) for f in fields[1:7])
    if BlockOpKind(kind) == BlockOpKind.COPY:
        desc = trace.blockops.new_copy(src, dst, size, pc)
    else:
        desc = trace.blockops.new_zero(dst, size, pc)
    if desc.op_id != op_id:
        raise TraceError(
            f"block op ids must be serialized in order ({op_id} != {desc.op_id})")


def _load_record(trace: Trace, fields: list) -> None:
    (cpu, op, addr, mode, dclass, pc, icount, blockop, size, arg) = (
        int(f) for f in fields[1:11])
    if not 0 <= cpu < trace.num_cpus:
        raise TraceError(f"record for unknown cpu {cpu}")
    trace.streams[cpu].append(
        TraceRecord(Op(op), addr, Mode(mode), DataClass(dclass), pc, icount,
                    blockop, size, arg))
