"""Portable text serialization of traces.

The on-disk format is line-oriented so traces can be inspected, diffed and
version-controlled.  It is intentionally simple: a header, one line per
block-op descriptor and per symbol, then one line per record prefixed by the
CPU id.  Field order matches :class:`repro.trace.record.TraceRecord`.

Metadata values are JSON-encoded on the ``meta`` lines, so string values
that merely *look* numeric (``"007"``, ``"1e3"``) and values containing
spaces round-trip exactly; files written before the JSON encoding (bare
values) still load via a best-effort int/float/str fallback.

Malformed input never leaks a bare :class:`ValueError`: every parse
failure is reported as a :class:`~repro.common.errors.TraceError`
carrying the 1-based line number and line kind.
"""

from __future__ import annotations

import io
import json
from typing import TextIO

from repro.common.errors import TraceError
from repro.common.types import BlockOpKind, DataClass, Mode, Op
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

_MAGIC = "reprotrace v1"


def dump(trace: Trace, fp: TextIO) -> None:
    """Serialize *trace* to the text stream *fp*."""
    fp.write(f"{_MAGIC}\n")
    fp.write(f"cpus {trace.num_cpus}\n")
    for key in sorted(trace.metadata):
        fp.write(f"meta {key} {json.dumps(trace.metadata[key])}\n")
    for sym in trace.symbols:
        fp.write(f"sym {sym.name} {sym.base} {sym.size} {int(sym.dclass)}\n")
    for op in trace.blockops:
        fp.write(f"blockop {op.op_id} {int(op.kind)} {op.src} {op.dst} "
                 f"{op.size} {op.pc}\n")
    # Write from the column views: identical output for a materialized
    # trace, and a columnar (npz-loaded) trace serializes without ever
    # constructing TraceRecord objects.
    for cpu, cols in enumerate(trace.column_streams()):
        for op, addr, mode, dclass, pc, icount, blockop, size, arg \
                in cols.iter_rows():
            fp.write(f"r {cpu} {op} {addr} {mode} "
                     f"{dclass} {pc} {icount} {blockop} "
                     f"{size} {arg}\n")


def dumps(trace: Trace) -> str:
    """Serialize *trace* to a string."""
    buf = io.StringIO()
    dump(trace, buf)
    return buf.getvalue()


def load(fp: TextIO) -> Trace:
    """Parse a trace previously written by :func:`dump`.

    Raises :class:`TraceError` — never a bare :class:`ValueError` — on
    malformed input, citing the 1-based line number and line kind.
    """
    header = fp.readline().rstrip("\n")
    if header != _MAGIC:
        raise TraceError(f"line 1: bad trace header {header!r}")
    cpus_raw = fp.readline()
    cpus_line = cpus_raw.split()
    if len(cpus_line) != 2 or cpus_line[0] != "cpus":
        raise TraceError(f"line 2: missing cpu count "
                         f"(got {cpus_raw.rstrip()!r})")
    try:
        trace = Trace(int(cpus_line[1]))
    except ValueError as err:
        raise TraceError(f"line 2: bad cpu count: {err}") from err
    for lineno, line in enumerate(fp, start=3):
        fields = line.split()
        if not fields:
            continue
        kind = fields[0]
        try:
            if kind == "meta":
                _load_meta(trace, line)
            elif kind == "sym":
                trace.symbols.add(fields[1], int(fields[2]), int(fields[3]),
                                  DataClass(int(fields[4])))
            elif kind == "blockop":
                _load_blockop(trace, fields)
            elif kind == "r":
                _load_record(trace, fields)
            else:
                raise TraceError(f"unknown line kind {kind!r}")
        except TraceError as err:
            raise TraceError(f"line {lineno}: {err}") from None
        except (ValueError, IndexError) as err:
            # "not enough values to unpack", "invalid literal for
            # int()", out-of-range enum values, ...
            raise TraceError(
                f"line {lineno}: malformed {kind!r} line: {err}") from err
    return trace


def loads(text: str) -> Trace:
    """Parse a trace from a string."""
    return load(io.StringIO(text))


def _load_meta(trace: Trace, line: str) -> None:
    parts = line.rstrip("\n").split(" ", 2)
    if len(parts) != 3:
        raise TraceError("meta line needs a key and a value")
    _, key, value = parts
    trace.metadata[key] = _parse_meta(value)


def _parse_meta(value: str) -> object:
    try:
        return json.loads(value)
    except ValueError:
        pass
    # Legacy files (pre-JSON encoding) wrote bare values; best effort.
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def _load_blockop(trace: Trace, fields: list) -> None:
    op_id, kind, src, dst, size, pc = (int(f) for f in fields[1:7])
    if BlockOpKind(kind) == BlockOpKind.COPY:
        desc = trace.blockops.new_copy(src, dst, size, pc)
    else:
        desc = trace.blockops.new_zero(dst, size, pc)
    if desc.op_id != op_id:
        raise TraceError(
            f"block op ids must be serialized in order ({op_id} != {desc.op_id})")


def _load_record(trace: Trace, fields: list) -> None:
    values = [int(f) for f in fields[1:11]]
    if len(values) != 10:
        raise TraceError(
            f"record needs 10 fields, got {len(values)}")
    (cpu, op, addr, mode, dclass, pc, icount, blockop, size, arg) = values
    if not 0 <= cpu < trace.num_cpus:
        raise TraceError(f"record for unknown cpu {cpu}")
    trace.streams[cpu].append(
        TraceRecord(Op(op), addr, Mode(mode), DataClass(dclass), pc, icount,
                    blockop, size, arg))
