"""Block-operation descriptors.

A block operation (section 4) is a kernel copy or zero of a contiguous byte
range: page zeroing on first touch, fork-time page copies, buffer-cache
copies for read/write system calls, and network packet moves.  The trace
carries the word-level loads and stores of each operation (so the Base
machine simulates them exactly), bracketed by BLOCK_START/BLOCK_END markers
whose id points into a :class:`BlockOpRegistry` of descriptors.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.errors import TraceError
from repro.common.types import BlockOpKind


class BlockOpDescriptor:
    """Static description of one block operation."""

    __slots__ = ("op_id", "kind", "src", "dst", "size", "pc")

    def __init__(self, op_id: int, kind: BlockOpKind, src: int, dst: int,
                 size: int, pc: int = 0) -> None:
        if size <= 0:
            raise TraceError(f"block op {op_id}: non-positive size {size}")
        if kind == BlockOpKind.COPY and src == dst:
            raise TraceError(f"block op {op_id}: copy onto itself")
        self.op_id = op_id
        self.kind = kind
        #: Source base address (0 for ZERO operations).
        self.src = src
        self.dst = dst
        self.size = size
        self.pc = pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BlockOpDescriptor(id={self.op_id}, "
                f"kind={BlockOpKind(self.kind).name}, src={self.src:#x}, "
                f"dst={self.dst:#x}, size={self.size})")

    @property
    def is_copy(self) -> bool:
        return self.kind == BlockOpKind.COPY

    def src_range(self) -> range:
        """Byte range of the source block (empty for ZERO)."""
        if not self.is_copy:
            return range(0)
        return range(self.src, self.src + self.size)

    def dst_range(self) -> range:
        """Byte range of the destination block."""
        return range(self.dst, self.dst + self.size)

    def contains_src(self, addr: int) -> bool:
        """True when *addr* lies in the source block."""
        return self.is_copy and self.src <= addr < self.src + self.size

    def contains_dst(self, addr: int) -> bool:
        """True when *addr* lies in the destination block."""
        return self.dst <= addr < self.dst + self.size


class BlockOpRegistry:
    """Allocates ids and stores descriptors for one trace."""

    def __init__(self) -> None:
        self._ops: Dict[int, BlockOpDescriptor] = {}
        self._next_id = 1

    def new_copy(self, src: int, dst: int, size: int, pc: int = 0) -> BlockOpDescriptor:
        """Register a copy of *size* bytes from *src* to *dst*."""
        return self._register(BlockOpKind.COPY, src, dst, size, pc)

    def new_zero(self, dst: int, size: int, pc: int = 0) -> BlockOpDescriptor:
        """Register a zero-fill of *size* bytes at *dst*."""
        return self._register(BlockOpKind.ZERO, 0, dst, size, pc)

    def _register(self, kind: BlockOpKind, src: int, dst: int, size: int,
                  pc: int) -> BlockOpDescriptor:
        desc = BlockOpDescriptor(self._next_id, kind, src, dst, size, pc)
        self._ops[desc.op_id] = desc
        self._next_id += 1
        return desc

    def get(self, op_id: int) -> BlockOpDescriptor:
        """Look a descriptor up; raises :class:`TraceError` if unknown."""
        try:
            return self._ops[op_id]
        except KeyError:
            raise TraceError(f"unknown block op id {op_id}") from None

    def find(self, op_id: int) -> Optional[BlockOpDescriptor]:
        """Look a descriptor up, returning None if unknown."""
        return self._ops.get(op_id)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[BlockOpDescriptor]:
        return iter(self._ops.values())

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops
