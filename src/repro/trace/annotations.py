"""Symbol map: names and data classes for address ranges.

The paper's methodology maps every data access back to "the data structure
that was being accessed" (section 2.2).  The synthetic kernel registers all
of its statically laid-out structures here; the analysis and optimization
layers (coherence-miss breakdown, privatization, update-core selection)
query the map by address.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import TraceError
from repro.common.types import DataClass


class Symbol:
    """A named, classed address range ``[base, base + size)``."""

    __slots__ = ("name", "base", "size", "dclass")

    def __init__(self, name: str, base: int, size: int, dclass: DataClass) -> None:
        if size <= 0:
            raise TraceError(f"symbol {name!r}: non-positive size")
        self.name = name
        self.base = base
        self.size = size
        self.dclass = dclass

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Symbol({self.name!r}, base={self.base:#x}, size={self.size}, "
                f"dclass={DataClass(self.dclass).name})")


class SymbolMap:
    """Sorted, non-overlapping collection of :class:`Symbol` ranges."""

    def __init__(self) -> None:
        self._bases: List[int] = []
        self._symbols: List[Symbol] = []
        self._by_name: dict = {}

    def add(self, name: str, base: int, size: int, dclass: DataClass) -> Symbol:
        """Register a symbol; overlapping ranges are rejected."""
        sym = Symbol(name, base, size, dclass)
        idx = bisect.bisect_left(self._bases, base)
        if idx < len(self._symbols) and self._symbols[idx].base < sym.end:
            raise TraceError(f"symbol {name!r} overlaps {self._symbols[idx].name!r}")
        if idx > 0 and self._symbols[idx - 1].end > base:
            raise TraceError(f"symbol {name!r} overlaps {self._symbols[idx - 1].name!r}")
        if name in self._by_name:
            raise TraceError(f"duplicate symbol name {name!r}")
        self._bases.insert(idx, base)
        self._symbols.insert(idx, sym)
        self._by_name[name] = sym
        return sym

    def lookup(self, addr: int) -> Optional[Symbol]:
        """Return the symbol containing *addr*, or None."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0 and self._symbols[idx].contains(addr):
            return self._symbols[idx]
        return None

    def classify(self, addr: int) -> DataClass:
        """Data class of *addr* (NONE when unmapped)."""
        sym = self.lookup(addr)
        return sym.dclass if sym is not None else DataClass.NONE

    def by_name(self, name: str) -> Symbol:
        """Return the symbol registered as *name*."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TraceError(f"unknown symbol {name!r}") from None

    def names(self) -> List[str]:
        """All symbol names, in address order."""
        return [s.name for s in self._symbols]

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def of_class(self, dclass: DataClass) -> List[Symbol]:
        """All symbols of one data class, in address order."""
        return [s for s in self._symbols if s.dclass == dclass]

    def ranges(self) -> List[Tuple[int, int]]:
        """All ``(base, end)`` pairs, in address order."""
        return [(s.base, s.end) for s in self._symbols]
