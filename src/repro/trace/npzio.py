"""Compact binary trace serialization (NumPy ``.npz``).

The text format (:mod:`repro.trace.textio`) is diffable but large and
slow; for parameter sweeps that reuse traces across processes, this
module stores each CPU's stream as one integer matrix in a compressed
``.npz`` archive — typically ~20x smaller and an order of magnitude
faster to load.

Layout of the archive:

* ``meta`` — JSON-encoded trace metadata plus the format version;
* ``cpu<i>`` — ``(N_i, 9)`` int64 matrix, one row per record with columns
  ``op, addr, mode, dclass, pc, icount, blockop, size, arg``;
* ``blockops`` — ``(M, 6)`` int64 matrix of
  ``op_id, kind, src, dst, size, pc``;
* ``sym_names`` — array of symbol names; ``sym_table`` — ``(S, 3)``
  int64 matrix of ``base, size, dclass``.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

from repro.common.errors import TraceError
from repro.common.types import BlockOpKind, DataClass
from repro.trace.columns import StreamColumns
from repro.trace.stream import Trace

_VERSION = 1
_COLUMNS = 9


def save(trace: Trace, path: str) -> None:
    """Write *trace* to a compressed ``.npz`` archive at *path*.

    Streams are serialized from the trace's column views, so a trace that
    was itself loaded columnar (:func:`load`) round-trips without ever
    materializing record objects.
    """
    arrays = {
        "meta": np.array(json.dumps({
            "version": _VERSION,
            "num_cpus": trace.num_cpus,
            "metadata": trace.metadata,
        })),
        "blockops": np.array(
            [(op.op_id, int(op.kind), op.src, op.dst, op.size, op.pc)
             for op in trace.blockops], dtype=np.int64).reshape(-1, 6),
        "sym_names": np.array(trace.symbols.names()),
        "sym_table": np.array(
            [(s.base, s.size, int(s.dclass)) for s in trace.symbols],
            dtype=np.int64).reshape(-1, 3),
    }
    for cpu, cols in enumerate(trace.column_streams()):
        arrays[f"cpu{cpu}"] = cols.to_matrix()
    np.savez_compressed(path, **arrays)


def load(path: str) -> Trace:
    """Read a trace previously written by :func:`save`.

    The streams are loaded columnar: each ``cpu<i>`` matrix becomes a
    zero-copy :class:`~repro.trace.columns.StreamColumns` view and the
    trace is assembled through :meth:`Trace.from_columns`.  Per-record
    ``TraceRecord`` objects are only built if a consumer later touches
    ``trace.streams`` — the batched simulator, the histogram pass, and a
    save round-trip never do.
    """
    with np.load(path, allow_pickle=False) as archive:
        try:
            meta = json.loads(str(archive["meta"]))
        except KeyError:
            raise TraceError(f"{path}: not a repro npz trace") from None
        if meta.get("version") != _VERSION:
            raise TraceError(f"{path}: unsupported version "
                             f"{meta.get('version')!r}")
        num_cpus = int(meta["num_cpus"])
        columns = []
        for cpu in range(num_cpus):
            matrix = archive[f"cpu{cpu}"]
            if matrix.ndim != 2 or matrix.shape[1] != _COLUMNS:
                raise TraceError(
                    f"{path}: cpu{cpu} stream has shape {matrix.shape}")
            columns.append(StreamColumns.from_matrix(matrix))
        trace = Trace.from_columns(num_cpus, columns,
                                   metadata=meta["metadata"])
        names = archive["sym_names"]
        table = archive["sym_table"]
        for name, (base, size, dclass) in zip(names, table):
            trace.symbols.add(str(name), int(base), int(size),
                              DataClass(int(dclass)))
        for op_id, kind, src, dst, size, pc in archive["blockops"]:
            if BlockOpKind(int(kind)) == BlockOpKind.COPY:
                desc = trace.blockops.new_copy(int(src), int(dst), int(size),
                                               int(pc))
            else:
                desc = trace.blockops.new_zero(int(dst), int(size), int(pc))
            if desc.op_id != int(op_id):
                raise TraceError(f"{path}: block op ids out of order")
    return trace
