"""Trace records.

A trace is, per CPU, an ordered list of :class:`TraceRecord`.  Each record
describes one data reference or one event marker (lock, barrier, block-op
boundary, prefetch).  Mirroring the paper's instrumentation (section 2.2),
every record also carries the address of the basic block that issued it
(``pc``) and the number of instructions the basic block executed before the
reference (``icount``); the simulator uses those to model instruction
fetches and execution time, and the hot-spot analysis of section 6 uses
``pc`` to attribute misses to code.
"""

from __future__ import annotations

from repro.common.types import DataClass, Mode, Op

#: Default size, in bytes, of a plain data reference (one 32-bit word).
DEFAULT_ACCESS_BYTES = 4


class TraceRecord:
    """One trace entry.

    Attributes:
        op: The record type (:class:`repro.common.types.Op`).
        addr: Byte address referenced (or lock/barrier address).
        mode: USER or OS execution mode.
        dclass: Data-structure class of ``addr``.
        pc: Address of the issuing basic block (instruction address).
        icount: Instructions executed in the issuing basic block before
            this reference; the simulator charges them as Exec time and
            fetches them through the instruction cache.
        blockop: Id of the enclosing block operation, or 0.
        size: Bytes accessed (4 for word references).
        arg: Operation-specific argument — barrier participant count for
            BARRIER records, prefetch lead distance hint for PREFETCH.
    """

    __slots__ = ("op", "addr", "mode", "dclass", "pc", "icount", "blockop",
                 "size", "arg")

    def __init__(self, op: Op, addr: int, mode: Mode = Mode.OS,
                 dclass: DataClass = DataClass.NONE, pc: int = 0,
                 icount: int = 1, blockop: int = 0,
                 size: int = DEFAULT_ACCESS_BYTES, arg: int = 0) -> None:
        self.op = op
        self.addr = addr
        self.mode = mode
        self.dclass = dclass
        self.pc = pc
        self.icount = icount
        self.blockop = blockop
        self.size = size
        self.arg = arg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord({Op(self.op).name}, addr={self.addr:#x}, "
                f"mode={Mode(self.mode).name}, dclass={DataClass(self.dclass).name}, "
                f"pc={self.pc:#x}, icount={self.icount}, blockop={self.blockop}, "
                f"size={self.size}, arg={self.arg})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        # Tuple comparison, built on demand: records are mutated after
        # construction (the privatization pass rewrites addr/dclass on
        # copies), so a precomputed key would go stale.
        return ((self.op, self.addr, self.mode, self.dclass, self.pc,
                 self.icount, self.blockop, self.size, self.arg)
                == (other.op, other.addr, other.mode, other.dclass, other.pc,
                    other.icount, other.blockop, other.size, other.arg))

    def copy(self) -> "TraceRecord":
        """Return a field-for-field copy."""
        return TraceRecord(self.op, self.addr, self.mode, self.dclass,
                           self.pc, self.icount, self.blockop, self.size,
                           self.arg)


def read(addr: int, *, mode: Mode = Mode.OS,
         dclass: DataClass = DataClass.NONE, pc: int = 0, icount: int = 1,
         blockop: int = 0, size: int = DEFAULT_ACCESS_BYTES) -> TraceRecord:
    """Build a data-read record."""
    return TraceRecord(Op.READ, addr, mode, dclass, pc, icount, blockop, size)


def write(addr: int, *, mode: Mode = Mode.OS,
          dclass: DataClass = DataClass.NONE, pc: int = 0, icount: int = 1,
          blockop: int = 0, size: int = DEFAULT_ACCESS_BYTES) -> TraceRecord:
    """Build a data-write record."""
    return TraceRecord(Op.WRITE, addr, mode, dclass, pc, icount, blockop, size)


def prefetch(addr: int, *, mode: Mode = Mode.OS,
             dclass: DataClass = DataClass.NONE, pc: int = 0,
             lead: int = 0) -> TraceRecord:
    """Build a software-prefetch record.

    ``lead`` is the number of trace records between the prefetch and the
    demand access it covers; the simulator uses it only for statistics.
    """
    return TraceRecord(Op.PREFETCH, addr, mode, dclass, pc, icount=1, arg=lead)


def lock_acquire(addr: int, *, mode: Mode = Mode.OS, pc: int = 0,
                 icount: int = 4) -> TraceRecord:
    """Build a lock-acquire record (spin read-modify-write)."""
    return TraceRecord(Op.LOCK_ACQ, addr, mode, DataClass.LOCK_VAR, pc, icount)


def lock_release(addr: int, *, mode: Mode = Mode.OS, pc: int = 0,
                 icount: int = 2) -> TraceRecord:
    """Build a lock-release record (write to the lock word)."""
    return TraceRecord(Op.LOCK_REL, addr, mode, DataClass.LOCK_VAR, pc, icount)


def barrier(addr: int, participants: int, *, mode: Mode = Mode.OS,
            pc: int = 0, icount: int = 6) -> TraceRecord:
    """Build a barrier-arrival record for an episode of *participants* CPUs."""
    return TraceRecord(Op.BARRIER, addr, mode, DataClass.BARRIER_VAR, pc,
                       icount, arg=participants)


def block_start(blockop_id: int, *, mode: Mode = Mode.OS,
                pc: int = 0) -> TraceRecord:
    """Build a block-operation start marker."""
    return TraceRecord(Op.BLOCK_START, 0, mode, DataClass.NONE, pc, icount=2,
                       blockop=blockop_id)


def block_end(blockop_id: int, *, mode: Mode = Mode.OS,
              pc: int = 0) -> TraceRecord:
    """Build a block-operation end marker."""
    return TraceRecord(Op.BLOCK_END, 0, mode, DataClass.NONE, pc, icount=2,
                       blockop=blockop_id)
