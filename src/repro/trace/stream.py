"""Trace container, builder, and validation.

A :class:`Trace` bundles one per-CPU record stream with the block-operation
registry and symbol map the streams refer to.  :class:`TraceBuilder` is the
write-side API used by the synthetic workload generator: it appends records
per CPU and knows how to emit the word-level load/store expansion of a block
operation exactly the way kernel ``bcopy``/``bzero`` loops touch memory.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import TraceError
from repro.common.types import (BlockOpKind, DataClass, MODE_BY_VALUE, Mode,
                                OP_BY_VALUE, Op)
from repro.trace.annotations import SymbolMap
from repro.trace.blockop import BlockOpDescriptor, BlockOpRegistry
from repro.trace import record as rec
from repro.trace.record import TraceRecord

#: Stride of the word loop inside a block operation (one 32-bit word).
BLOCK_WORD_BYTES = 4


class Trace:
    """A complete multiprocessor trace.

    Records live in one of two storage forms:

    * **row-wise** — ``streams`` is a list of per-CPU
      :class:`TraceRecord` lists (the builder's write-side form);
    * **columnar** — per-CPU :class:`~repro.trace.columns.StreamColumns`
      arrays installed by :meth:`from_columns` (the form
      :mod:`repro.trace.npzio` loads); record objects are materialized
      lazily, the first time somebody touches :attr:`streams`.

    Column views of either form are available through
    :meth:`column_streams`; the batched simulator core and the histogram
    pass consume those instead of record objects.
    """

    def __init__(self, num_cpus: int, blockops: Optional[BlockOpRegistry] = None,
                 symbols: Optional[SymbolMap] = None,
                 metadata: Optional[Dict[str, object]] = None) -> None:
        if num_cpus < 1:
            raise TraceError("trace needs at least one CPU stream")
        self.num_cpus = num_cpus
        self._streams: Optional[List[List[TraceRecord]]] = [
            [] for _ in range(num_cpus)]
        #: Columnar storage (npz load path); exclusive with a populated
        #: ``_streams`` until materialization.
        self._columns: Optional[list] = None
        self.blockops = blockops if blockops is not None else BlockOpRegistry()
        self.symbols = symbols if symbols is not None else SymbolMap()
        self.metadata: Dict[str, object] = dict(metadata or {})
        # Lazy caches, validated against the per-stream lengths at the time
        # they were built (streams are append-only through the builder, but
        # nothing stops a caller from extending them later).
        self._histogram: Optional[Counter] = None
        self._histogram_shape: Optional[Tuple[int, ...]] = None
        self._sealed: Optional[Tuple[Tuple[TraceRecord, ...], ...]] = None
        self._sealed_shape: Optional[Tuple[int, ...]] = None
        self._columns_cache: Optional[list] = None
        self._columns_shape: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_columns(cls, num_cpus: int, columns,
                     blockops: Optional[BlockOpRegistry] = None,
                     symbols: Optional[SymbolMap] = None,
                     metadata: Optional[Dict[str, object]] = None) -> "Trace":
        """Build a trace directly from per-CPU :class:`StreamColumns`.

        No :class:`TraceRecord` objects are constructed; they appear only
        if a consumer touches :attr:`streams` (or a method that needs
        them, like :meth:`validate`).  Columnar consumers — the npz
        writer, the histogram, the batched simulator — never do.
        """
        columns = list(columns)
        if len(columns) != num_cpus:
            raise TraceError(
                f"expected {num_cpus} column streams, got {len(columns)}")
        trace = cls(num_cpus, blockops=blockops, symbols=symbols,
                    metadata=metadata)
        trace._streams = None
        trace._columns = columns
        trace._columns_cache = columns
        trace._columns_shape = tuple(len(c) for c in columns)
        return trace

    @property
    def streams(self) -> List[List[TraceRecord]]:
        """Per-CPU record lists, materializing columnar storage on demand."""
        if self._streams is None:
            assert self._columns is not None
            self._streams = [cols.to_records() for cols in self._columns]
        return self._streams

    def is_materialized(self) -> bool:
        """True when per-record objects exist (False for lazy npz loads)."""
        return self._streams is not None

    def __len__(self) -> int:
        """Total record count across all CPUs."""
        return sum(self._shape())

    def _shape(self) -> Tuple[int, ...]:
        if self._streams is None:
            assert self._columns is not None
            return tuple(len(c) for c in self._columns)
        return tuple(len(s) for s in self._streams)

    def column_streams(self) -> list:
        """Per-CPU :class:`StreamColumns`, cached until the trace grows.

        For a columnar (npz-loaded) trace these are the loaded arrays,
        zero-copy.  For a built trace they are packed from the record
        lists once and shared by every consumer (the N systems of a
        scheme sweep, the histogram) until the shape changes.
        """
        shape = self._shape()
        if self._columns_cache is None or self._columns_shape != shape:
            from repro.trace.columns import StreamColumns
            self._columns_cache = [StreamColumns.from_records(s)
                                   for s in self.streams]
            self._columns_shape = shape
        return self._columns_cache

    def records(self) -> Iterable[TraceRecord]:
        """Iterate over all records, CPU by CPU."""
        for stream in self.streams:
            yield from stream

    def sealed_streams(self) -> Tuple[Tuple[TraceRecord, ...], ...]:
        """Per-CPU streams as tuples, cached until the trace grows.

        The simulator indexes the stream once per record; tuples make that
        indexing cheaper than lists, and caching means the N systems of a
        scheme sweep share one sealed copy instead of re-tupling per run.
        """
        shape = self._shape()
        if self._sealed is None or self._sealed_shape != shape:
            self._sealed = tuple(tuple(s) for s in self.streams)
            self._sealed_shape = shape
        return self._sealed

    def _op_mode_histogram(self) -> Counter:
        """Counter of ``(Op, Mode)`` pairs over all records, cached.

        One pass serves both :meth:`count_ops` and
        :meth:`data_reference_count`, which previously each re-walked the
        whole trace (and the former paid an enum constructor per record).
        """
        shape = self._shape()
        if self._histogram is None or self._histogram_shape != shape:
            if self._streams is None:
                # Columnar storage: one bincount per CPU, no record objects.
                import numpy as np
                keyed = np.zeros(len(OP_BY_VALUE) * 4, dtype=np.int64)
                for cols in self._columns:
                    if len(cols):
                        keyed += np.bincount(cols.ops * 4 + cols.modes,
                                             minlength=len(keyed))
                self._histogram = Counter({
                    (OP_BY_VALUE[key >> 2], MODE_BY_VALUE[key & 3]): int(n)
                    for key, n in enumerate(keyed.tolist()) if n})
            else:
                counts: Counter = Counter()
                for stream in self._streams:
                    counts.update((r.op, r.mode) for r in stream)
                # Normalize the int keys to enum members once, at the end.
                self._histogram = Counter({
                    (OP_BY_VALUE[op], MODE_BY_VALUE[mode]): n
                    for (op, mode), n in counts.items()})
            self._histogram_shape = shape
        return self._histogram

    def count_ops(self) -> Counter:
        """Histogram of record types across all CPUs."""
        counts: Counter = Counter()
        for (op, _mode), n in self._op_mode_histogram().items():
            counts[op] += n
        return counts

    def data_reference_count(self, mode: Optional[Mode] = None) -> int:
        """Number of READ/WRITE records, optionally restricted to *mode*."""
        return sum(n for (op, m), n in self._op_mode_histogram().items()
                   if op in (Op.READ, Op.WRITE) and (mode is None or m == mode))

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TraceError`.

        * every LOCK_ACQ is followed (on the same CPU) by a LOCK_REL of the
          same lock before the next acquire of that lock there;
        * barrier arrivals are balanced: each barrier episode sees exactly
          ``participants`` arrivals across all CPUs;
        * BLOCK_START/BLOCK_END markers nest properly per CPU and refer to
          registered descriptors;
        * block-op word records lie inside their descriptor's ranges.
        """
        self._validate_locks()
        self._validate_barriers()
        self._validate_blockops()

    def _validate_locks(self) -> None:
        for cpu, stream in enumerate(self.streams):
            held: set = set()
            for r in stream:
                if r.op == Op.LOCK_ACQ:
                    if r.addr in held:
                        raise TraceError(
                            f"cpu {cpu}: lock {r.addr:#x} acquired twice")
                    held.add(r.addr)
                elif r.op == Op.LOCK_REL:
                    if r.addr not in held:
                        raise TraceError(
                            f"cpu {cpu}: lock {r.addr:#x} released but not held")
                    held.discard(r.addr)
            if held:
                raise TraceError(
                    f"cpu {cpu}: locks never released: "
                    f"{sorted(hex(a) for a in held)}")

    def _validate_barriers(self) -> None:
        arrivals: Counter = Counter()
        expected: Dict[int, int] = {}
        for stream in self.streams:
            for r in stream:
                if r.op != Op.BARRIER:
                    continue
                arrivals[r.addr] += 1
                if r.arg < 1 or r.arg > self.num_cpus:
                    raise TraceError(
                        f"barrier {r.addr:#x}: bad participant count {r.arg}")
                prev = expected.setdefault(r.addr, r.arg)
                if prev != r.arg:
                    raise TraceError(
                        f"barrier {r.addr:#x}: inconsistent participant counts")
        for addr, count in arrivals.items():
            if count % expected[addr]:
                raise TraceError(
                    f"barrier {addr:#x}: {count} arrivals is not a multiple "
                    f"of {expected[addr]} participants")

    def _validate_blockops(self) -> None:
        for cpu, stream in enumerate(self.streams):
            active = 0
            for r in stream:
                if r.op == Op.BLOCK_START:
                    if active:
                        raise TraceError(f"cpu {cpu}: nested block operation")
                    self.blockops.get(r.blockop)
                    active = r.blockop
                elif r.op == Op.BLOCK_END:
                    if r.blockop != active:
                        raise TraceError(
                            f"cpu {cpu}: BLOCK_END {r.blockop} without start")
                    active = 0
                elif r.blockop and r.op in (Op.READ, Op.WRITE):
                    desc = self.blockops.get(r.blockop)
                    if r.blockop != active:
                        raise TraceError(
                            f"cpu {cpu}: block-op record outside markers")
                    inside = (desc.contains_src(r.addr)
                              or desc.contains_dst(r.addr))
                    if not inside:
                        raise TraceError(
                            f"cpu {cpu}: block-op access {r.addr:#x} outside "
                            f"op {r.blockop} ranges")
            if active:
                raise TraceError(f"cpu {cpu}: unterminated block operation")


class TraceBuilder:
    """Write-side API for constructing a :class:`Trace` one CPU at a time."""

    def __init__(self, num_cpus: int, symbols: Optional[SymbolMap] = None,
                 metadata: Optional[Dict[str, object]] = None) -> None:
        self.trace = Trace(num_cpus, symbols=symbols, metadata=metadata)

    @property
    def blockops(self) -> BlockOpRegistry:
        return self.trace.blockops

    @property
    def symbols(self) -> SymbolMap:
        return self.trace.symbols

    def emit(self, cpu: int, record_: TraceRecord) -> None:
        """Append one record to *cpu*'s stream."""
        self.trace.streams[cpu].append(record_)

    def emit_many(self, cpu: int, records: Iterable[TraceRecord]) -> None:
        """Append several records to *cpu*'s stream."""
        self.trace.streams[cpu].extend(records)

    def emit_block_copy(self, cpu: int, src: int, dst: int, size: int, *,
                        mode: Mode = Mode.OS, pc: int = 0,
                        src_dclass: DataClass = DataClass.BUFFER,
                        dst_dclass: DataClass = DataClass.PAGE_FRAME,
                        ) -> BlockOpDescriptor:
        """Emit the full word loop of a ``bcopy(src, dst, size)``.

        The loop reads one source word then writes one destination word,
        with two non-memory instructions of loop overhead per word, which
        is how the Concentrix copy loop behaves on the traced machine.
        """
        desc = self.blockops.new_copy(src, dst, size, pc)
        stream = self.trace.streams[cpu]
        stream.append(rec.block_start(desc.op_id, mode=mode, pc=pc))
        for off in range(0, size, BLOCK_WORD_BYTES):
            nbytes = min(BLOCK_WORD_BYTES, size - off)
            stream.append(TraceRecord(Op.READ, src + off, mode, src_dclass,
                                      pc, 2, desc.op_id, nbytes))
            stream.append(TraceRecord(Op.WRITE, dst + off, mode, dst_dclass,
                                      pc, 1, desc.op_id, nbytes))
        stream.append(rec.block_end(desc.op_id, mode=mode, pc=pc))
        return desc

    def emit_block_zero(self, cpu: int, dst: int, size: int, *,
                        mode: Mode = Mode.OS, pc: int = 0,
                        dst_dclass: DataClass = DataClass.PAGE_FRAME,
                        ) -> BlockOpDescriptor:
        """Emit the word loop of a ``bzero(dst, size)`` (writes only)."""
        desc = self.blockops.new_zero(dst, size, pc)
        stream = self.trace.streams[cpu]
        stream.append(rec.block_start(desc.op_id, mode=mode, pc=pc))
        for off in range(0, size, BLOCK_WORD_BYTES):
            nbytes = min(BLOCK_WORD_BYTES, size - off)
            stream.append(TraceRecord(Op.WRITE, dst + off, mode, dst_dclass,
                                      pc, 2, desc.op_id, nbytes))
        stream.append(rec.block_end(desc.op_id, mode=mode, pc=pc))
        return desc

    def build(self, validate: bool = True) -> Trace:
        """Finish and (optionally) validate the trace."""
        if validate:
            self.trace.validate()
        return self.trace
