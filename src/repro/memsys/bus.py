"""Split-transaction bus model.

The bus is the single shared resource of the machine: 8 bytes wide, 40 MHz,
5 processor cycles per bus cycle.  We model it as a reservation timeline —
a transaction asks for the bus at time ``t`` and is granted
``max(t, next_free)``; the bus is then busy for the transaction's occupancy.
Because the system scheduler always advances the processor with the
smallest local time, grants are issued in (approximately) global time order
and the timeline reproduces first-order queueing contention without a
cycle-by-cycle tick loop.

Transaction kinds are tracked so the traffic comparisons of sections 5.2
and 6 (update-traffic overhead, prefetch-traffic neutrality) can be
reproduced.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict

from repro.common.params import BusParams


class BusOp(enum.Enum):
    """Kinds of bus transactions, for traffic accounting."""

    READ_MEM = "read_mem"
    READ_CACHE = "read_cache"
    OWNERSHIP = "ownership"
    INVALIDATE = "invalidate"
    UPDATE = "update"
    WRITEBACK = "writeback"
    PREFETCH = "prefetch"
    DMA = "dma"
    SYNC = "sync"


class Bus:
    """Reservation-timeline bus with per-kind traffic statistics."""

    def __init__(self, params: BusParams) -> None:
        self.params = params
        #: First cycle at which the bus is free.
        self.next_free: int = 0
        #: Total cycles the bus has been held.
        self.busy_cycles: int = 0
        #: Total cycles transactions waited for the bus.
        self.wait_cycles: int = 0
        #: Transaction counts by kind.
        self.transactions: Counter = Counter()
        #: Held cycles by kind.
        self.cycles_by_kind: Counter = Counter()

    def acquire(self, t: int, duration: int, kind: BusOp,
                record_txn: bool = True) -> int:
        """Reserve the bus for *duration* cycles starting no earlier than *t*.

        Returns the grant time.  The caller's transaction completes at
        ``grant + duration``.  Split transactions reserve the bus twice
        (request phase, data phase); the second reservation passes
        ``record_txn=False`` so the transaction is counted once while its
        occupancy is still charged.
        """
        grant = t if t >= self.next_free else self.next_free
        self.next_free = grant + duration
        self.busy_cycles += duration
        self.wait_cycles += grant - t
        if record_txn:
            self.transactions[kind] += 1
        self.cycles_by_kind[kind] += duration
        return grant

    def utilization(self, total_cycles: int) -> float:
        """Fraction of *total_cycles* the bus was held."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def traffic_summary(self) -> Dict[str, int]:
        """Held cycles per transaction kind, keyed by kind name."""
        return {kind.value: cycles for kind, cycles in self.cycles_by_kind.items()}
