"""Event-sink protocol between the memory system and the metrics layer.

The memory system reports the events the paper's miss taxonomy needs —
coherence invalidations, fills and displacements during block operations,
lines fetched in bypass mode — to a per-CPU sink.  :class:`MemorySink` is
the no-op base; :class:`repro.sim.metrics.MissTracker` implements the real
bookkeeping.  Keeping the protocol here lets :mod:`repro.memsys` stay
independent of the simulator layer.
"""

from __future__ import annotations

from typing import NamedTuple


class MissFlags(NamedTuple):
    """Cause flags attached to one L1D read miss.

    ``coherence`` — the line had been invalidated by a remote write while
    resident.  ``displaced`` — the line had been evicted by a block-op
    fill (a *block displacement miss*).  ``bypassed`` — the line had been
    moved by a bypassing scheme without being cached (a *reuse* miss).
    """

    coherence: bool = False
    displaced: bool = False
    bypassed: bool = False


#: Flags value meaning "no special cause".
NO_FLAGS = MissFlags()


class MemorySink:
    """No-op sink; subclass and override what you need."""

    def coherence_invalidate(self, l1_line: int) -> None:
        """A remote write invalidated *l1_line* while it sat in this L1D."""

    def l1_fill(self, l1_line: int, evicted_line: int, during_blockop: bool) -> None:
        """*l1_line* was installed in the L1D, evicting *evicted_line* (-1
        when the set was empty).  ``during_blockop`` is True when the fill
        was triggered by a block-operation access, which makes the eviction
        a potential *block displacement miss* later (section 4.1.3)."""

    def bypass_mark(self, l1_line: int) -> None:
        """*l1_line* was moved by a bypassing scheme without being cached;
        a later demand miss on it is a *reuse* miss (section 4.1.3)."""

    def consume_miss_flags(self, l1_line: int) -> MissFlags:
        """Called by the hierarchy at the moment of an L1D read miss,
        *before* the refill clears the bookkeeping.  Returns (and clears)
        the cause flags for *l1_line*."""
        return NO_FLAGS
