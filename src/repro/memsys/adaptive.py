"""Per-line adaptive update/invalidate policies (the hybrid schemes).

The paper's ``BCoh_RelUp`` hard-codes the Firefly update protocol for one
384-byte page set; the hybrid literature (Dovgopol & Rosonke's
update-once / competitive schemes) generalizes that to *per-line*
decisions.  This module implements three such policies as a thin layer on
:class:`~repro.memsys.coherence.CoherenceController`:

``UpdateNPolicy`` (``Hyb_UpdN``)
    Competitive update-N-then-invalidate.  Every remote copy of a line
    carries a budget of N broadcast updates; each update it receives
    decrements the budget, and a bus-visible local re-reference (a fill
    of the line, or the holder's own write to it) resets the budget to N.
    A copy whose budget is exhausted is dropped by the next update
    transaction (a snoop-side partial invalidation riding on the same bus
    cycle) instead of receiving the broadcast; once no copy has budget
    left, the write takes the plain invalidation path.  N = 0 therefore
    degenerates to the pure invalidation protocol.

``DegreePolicy`` (``Hyb_Deg``)
    Sharing-degree switching.  A write to a line with 1..threshold remote
    sharers broadcasts an update; a write that sees more sharers than the
    threshold switches the line to invalidate mode for the rest of its
    *sharing epoch* — until the line has left every cache (or a write
    finds no remote copies at all), at which point the next epoch starts
    fresh in update mode.

``StaticHybridPolicy`` (``Hyb_Static``)
    The per-page hybrid: unbounded updates on the configured pages,
    invalidation everywhere else.  This subsumes ``BCoh_RelUp`` as the
    N=infinity-on-sync-pages special case and is metric-identical to it
    (``tests/test_adaptive_properties.py`` proves that bit for bit).

Design constraints (why the hooks look the way they do):

* Policies are consulted **only on bus-level write paths**
  (:meth:`~repro.memsys.coherence.CoherenceController.upgrade` and
  :meth:`~repro.memsys.coherence.CoherenceController.fetch_owned`), so a
  system without a policy pays one attribute test per bus write, and the
  batched scheduler — which never enters the controller — is
  automatically bit-identical to the scalar one under every policy.
* "Local re-reference" is deliberately defined as *bus-visible* activity
  (fills, the holder's own bus writes): cache hits are invisible to a
  snooping bus agent, and wrapping the hit path would break the zero-cost
  contract above.
* :meth:`AdaptivePolicy.decide` is one-shot: it computes the decision
  *and* applies the policy's own bookkeeping (budget decrements, mode
  switches), so the controller executes exactly what was decided and the
  conformance shadow (:mod:`repro.check.invariants`) can replay the same
  transition deterministically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.common.errors import SimulationError
from repro.common.types import AdaptivePolicy as PolicyKind

class AdaptiveDecision(NamedTuple):
    """What one bus-level write should do, as decided by a policy.

    ``update`` selects the route: ``True`` runs
    :meth:`~repro.memsys.coherence.CoherenceController.adaptive_update`
    (broadcast to ``to_update``, snoop-drop ``to_invalidate``);
    ``False`` falls through to the plain invalidation path, where
    ``to_update`` is always empty and ``to_invalidate`` lists the remote
    holders the invalidation will drop.
    """

    update: bool
    to_update: Tuple[int, ...]
    to_invalidate: Tuple[int, ...]


class BaseAdaptivePolicy:
    """Common bookkeeping: per-line residency and event hooks.

    Subclasses implement :meth:`decide`.  The controller feeds residency
    through :meth:`on_fill` / :meth:`on_invalidate`, called at exactly
    the points where the checker's ``l2_install`` / ``invalidate`` hooks
    fire, so the conformance shadow sees the same event stream.
    """

    kind: PolicyKind

    def __init__(self, page_bytes: int) -> None:
        self.page_bytes = page_bytes
        #: line -> cpus currently holding a copy (writer included).
        self._resident: Dict[int, Set[int]] = {}
        # Statistics (reporting only; never consulted by decide()).
        self.update_writes = 0
        self.invalidate_writes = 0
        self.budget_drops = 0

    # -- events from the controller ------------------------------------
    def on_fill(self, cpu: int, line: int) -> None:
        """*cpu* installed *line* (a bus-visible local re-reference)."""
        self._resident.setdefault(line, set()).add(cpu)

    def on_invalidate(self, cpu: int, line: int) -> None:
        """*cpu*'s copy of *line* was invalidated or evicted."""
        holders = self._resident.get(line)
        if holders is None:
            return
        holders.discard(cpu)
        if not holders:
            del self._resident[line]
            self._line_gone(line)

    def _line_gone(self, line: int) -> None:
        """The line left every cache (end of its sharing epoch)."""

    # -- the decision ---------------------------------------------------
    def decide(self, cpu: int, addr: int, line: int,
               holders: List[int]) -> AdaptiveDecision:
        raise NotImplementedError

    # -- introspection (tests, checker) ---------------------------------
    def describe(self) -> Dict[str, object]:
        """Parameters the conformance shadow rebuilds itself from."""
        return {"kind": self.kind, "page_bytes": self.page_bytes}

    def counters(self) -> Iterable[Tuple[Tuple[int, int], int]]:
        """Live ``((cpu, line), budget)`` pairs; empty unless budgeted."""
        return ()

    def state_snapshot(self) -> Tuple:
        """Hashable snapshot of all decision state (determinism tests)."""
        return (tuple(sorted((l, tuple(sorted(h)))
                             for l, h in self._resident.items())),)


class UpdateNPolicy(BaseAdaptivePolicy):
    """Competitive update-N-then-invalidate counters."""

    kind = PolicyKind.UPDATE_N

    def __init__(self, page_bytes: int, n: int) -> None:
        super().__init__(page_bytes)
        if n < 0:
            raise SimulationError(f"adaptive_n must be >= 0, got {n}")
        self.n = n
        #: (cpu, line) -> remaining updates.  A missing key means a
        #: fresh budget of N; entries are dropped (reset) on any
        #: bus-visible local re-reference and on invalidation/eviction.
        self._budget: Dict[Tuple[int, int], int] = {}

    def on_fill(self, cpu: int, line: int) -> None:
        super().on_fill(cpu, line)
        self._budget.pop((cpu, line), None)

    def on_invalidate(self, cpu: int, line: int) -> None:
        super().on_invalidate(cpu, line)
        self._budget.pop((cpu, line), None)

    def decide(self, cpu: int, addr: int, line: int,
               holders: List[int]) -> AdaptiveDecision:
        # The write is a local re-reference by the writer itself.
        self._budget.pop((cpu, line), None)
        budget = self._budget
        n = self.n
        to_update = []
        to_invalidate = []
        for i in holders:
            if budget.get((i, line), n) > 0:
                to_update.append(i)
            else:
                to_invalidate.append(i)
        if not to_update:
            self.invalidate_writes += 1
            return AdaptiveDecision(False, (), tuple(holders))
        for i in to_update:
            budget[(i, line)] = budget.get((i, line), n) - 1
        self.update_writes += 1
        self.budget_drops += len(to_invalidate)
        return AdaptiveDecision(True, tuple(to_update),
                                tuple(to_invalidate))

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d["n"] = self.n
        return d

    def counters(self) -> Iterable[Tuple[Tuple[int, int], int]]:
        return self._budget.items()

    def state_snapshot(self) -> Tuple:
        return super().state_snapshot() + (
            tuple(sorted(self._budget.items())),)


class DegreePolicy(BaseAdaptivePolicy):
    """Sharing-degree-triggered update -> invalidate switching."""

    kind = PolicyKind.DEGREE

    def __init__(self, page_bytes: int, threshold: int) -> None:
        super().__init__(page_bytes)
        if threshold < 1:
            raise SimulationError(
                f"degree_threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        #: Lines switched to invalidate mode for their current epoch.
        self._invalidate_mode: Set[int] = set()

    def _line_gone(self, line: int) -> None:
        self._invalidate_mode.discard(line)

    def decide(self, cpu: int, addr: int, line: int,
               holders: List[int]) -> AdaptiveDecision:
        degree = len(holders)
        if degree == 0:
            # No remote copies: plain ownership is exact and cheaper,
            # and the epoch's mode resets for the next sharing phase.
            self._invalidate_mode.discard(line)
            self.invalidate_writes += 1
            return AdaptiveDecision(False, (), ())
        if line in self._invalidate_mode or degree > self.threshold:
            self._invalidate_mode.add(line)
            self.invalidate_writes += 1
            return AdaptiveDecision(False, (), tuple(holders))
        self.update_writes += 1
        return AdaptiveDecision(True, tuple(holders), ())

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d["threshold"] = self.threshold
        return d

    def state_snapshot(self) -> Tuple:
        return super().state_snapshot() + (
            tuple(sorted(self._invalidate_mode)),)


class StaticHybridPolicy(BaseAdaptivePolicy):
    """Unbounded updates on the configured pages, invalidate elsewhere.

    With the sync pages configured this is exactly ``BCoh_RelUp``: the
    update route is taken for every write to a hybrid page — including
    writes that find no remote copy (the Firefly write-through), which
    is what makes the metric equivalence bit-exact.
    """

    kind = PolicyKind.STATIC

    def __init__(self, page_bytes: int,
                 pages: Optional[Iterable[int]] = None) -> None:
        super().__init__(page_bytes)
        self.pages: Set[int] = {p - (p % page_bytes) for p in pages or ()}

    def decide(self, cpu: int, addr: int, line: int,
               holders: List[int]) -> AdaptiveDecision:
        page = addr - (addr % self.page_bytes)
        if page in self.pages:
            self.update_writes += 1
            return AdaptiveDecision(True, tuple(holders), ())
        self.invalidate_writes += 1
        return AdaptiveDecision(False, (), tuple(holders))

    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d["pages"] = frozenset(self.pages)
        return d

    def state_snapshot(self) -> Tuple:
        return super().state_snapshot() + (tuple(sorted(self.pages)),)


def build_policy(config, update_pages: Optional[Iterable[int]] = None
                 ) -> BaseAdaptivePolicy:
    """Instantiate the policy a :class:`SystemConfig` selects.

    *update_pages* feeds :class:`StaticHybridPolicy` (the runner derives
    them exactly as for ``BCoh_RelUp``); the other policies are
    page-agnostic and ignore them.
    """
    kind = config.adaptive
    page_bytes = config.machine.page_bytes
    if kind == PolicyKind.UPDATE_N:
        return UpdateNPolicy(page_bytes, config.adaptive_n)
    if kind == PolicyKind.DEGREE:
        return DegreePolicy(page_bytes, config.degree_threshold)
    if kind == PolicyKind.STATIC:
        return StaticHybridPolicy(page_bytes, update_pages)
    raise SimulationError(f"unknown adaptive policy {kind!r}")
