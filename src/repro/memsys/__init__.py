"""The simulated memory system: caches, bus, coherence, buffers, DMA."""

from repro.memsys.bus import Bus, BusOp
from repro.memsys.cache import CoherentCache, DirectMappedCache
from repro.memsys.coherence import CoherenceController
from repro.memsys.dma import DmaResult, run_dma
from repro.memsys.hierarchy import AccessResult, CpuMemorySystem
from repro.memsys.prefetch import PendingFills, PrefetchLineBuffer
from repro.memsys.sink import MemorySink
from repro.memsys.states import LineState, is_owned
from repro.memsys.writebuffer import TimedWriteBuffer

__all__ = [
    "AccessResult",
    "Bus",
    "BusOp",
    "CoherenceController",
    "CoherentCache",
    "CpuMemorySystem",
    "DirectMappedCache",
    "DmaResult",
    "LineState",
    "MemorySink",
    "PendingFills",
    "PrefetchLineBuffer",
    "TimedWriteBuffer",
    "is_owned",
    "run_dma",
]
