"""Snooping coherence controller: Illinois (MESI) plus per-page Firefly.

All coherence runs at L2-line granularity (the L2s snoop the bus).  The
controller owns the global view: every CPU's L2 (and, for inclusion, its
L1s) is registered here, and every bus-level operation — demand fetches,
ownership acquisition, invalidations, Firefly updates, bypass transfers —
goes through one of the methods below, which reserve the bus and mutate
line states consistently.

The Illinois protocol supplies lines cache-to-cache: a read miss that finds
the line in another cache gets it from that cache (faster than memory);
a dirty supplier writes the line back and drops to SHARED.

The Firefly *update* protocol is applied only to the pages registered via
:meth:`CoherenceController.set_update_pages` — the 384-byte core of barrier
words, hot locks and producer-consumer variables selected in section 5.2.
Writes to those pages broadcast the new data instead of invalidating, so
the other processors' copies stay valid and their coherence misses
disappear, at the cost of update traffic on the bus.

The *adaptive* hybrid schemes (:mod:`repro.memsys.adaptive`) generalize
that page-set rule to per-line update/invalidate decisions.  When a
policy is attached (:attr:`CoherenceController.adaptive`), every
bus-level write consults it instead of :meth:`is_update_addr`: the update
route runs :meth:`CoherenceController.adaptive_update`, which broadcasts
to the in-budget holders and drops the rest in the same bus transaction;
the invalidate route is the unmodified MESI path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.common.errors import SimulationError
from repro.common.params import MachineParams
from repro.memsys.bus import Bus, BusOp
from repro.memsys.cache import CoherentCache, DirectMappedCache
from repro.memsys.sink import MemorySink
from repro.memsys.states import LineState


class _CpuPort:
    """Per-CPU caches and sink as seen by the controller."""

    __slots__ = ("l1i", "l1d", "l2", "sink")

    def __init__(self, l1i: DirectMappedCache, l1d: DirectMappedCache,
                 l2: CoherentCache, sink: MemorySink) -> None:
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.sink = sink


class CoherenceController:
    """Global snooping state machine over all L2 caches."""

    def __init__(self, machine: MachineParams, bus: Bus) -> None:
        self.machine = machine
        self.bus = bus
        self.ports: List[_CpuPort] = []
        #: Conformance checker (:mod:`repro.check`), or None.  The hook
        #: calls below are all on miss/bus paths, so the disabled cost is
        #: one attribute test per bus-level operation.
        self.checker = None
        #: Event tracer (:mod:`repro.obs`), or None.  Set by
        #: :func:`repro.obs.tracer.attach_tracer`; consulted by explicit
        #: hooks on paths no instance wrapper can see (the DMA engine).
        self.tracer = None
        #: Adaptive update/invalidate policy
        #: (:mod:`repro.memsys.adaptive`), or None.  Consulted only on
        #: the bus-level write paths, so the disabled cost is one
        #: attribute test per bus write.
        self.adaptive = None
        #: Page-aligned base addresses running the Firefly update protocol.
        self.update_pages: Set[int] = set()
        #: Run Firefly update on *every* address (the pure-update
        #: comparison point of section 5.2).
        self.update_everywhere = False
        # Statistics.
        self.invalidations_sent = 0
        self.updates_sent = 0
        self.cache_to_cache = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def attach(self, l1i: DirectMappedCache, l1d: DirectMappedCache,
               l2: CoherentCache, sink: MemorySink) -> int:
        """Register one CPU's caches; returns its id."""
        self.ports.append(_CpuPort(l1i, l1d, l2, sink))
        return len(self.ports) - 1

    def set_update_pages(self, pages: Iterable[int]) -> None:
        """Run Firefly update on the given page-aligned addresses."""
        page = self.machine.page_bytes
        self.update_pages = {p - (p % page) for p in pages}

    def is_update_addr(self, addr: int) -> bool:
        """True when *addr* lies in a Firefly-update page."""
        if self.update_everywhere:
            return True
        if not self.update_pages:
            return False
        return addr - (addr % self.machine.page_bytes) in self.update_pages

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _l2_line(self, addr: int) -> int:
        return addr - (addr % self.machine.l2.line_bytes)

    def _holders(self, line: int, except_cpu: int) -> List[int]:
        """CPUs (other than *except_cpu*) whose L2 holds *line*."""
        return [i for i, p in enumerate(self.ports)
                if i != except_cpu and p.l2.state_of(line) != LineState.INVALID]

    def _dirty_holder(self, line: int, except_cpu: int) -> Optional[int]:
        for i, p in enumerate(self.ports):
            if i != except_cpu and p.l2.state_of(line) == LineState.MODIFIED:
                return i
        return None

    def _drop_from_l1(self, cpu: int, l2_line: int, coherence: bool) -> None:
        """Enforce inclusion: drop the L1 sublines of *l2_line*."""
        port = self.ports[cpu]
        size = self.machine.l2.line_bytes
        dropped = port.l1d.invalidate_range(l2_line, size)
        if coherence:
            for sub in dropped:
                port.sink.coherence_invalidate(sub)
        port.l1i.invalidate_range(l2_line, size)

    def _invalidate_remotes(self, cpu: int, line: int) -> int:
        """Invalidate every other cache's copy of *line*; returns count."""
        count = 0
        checker = self.checker
        adaptive = self.adaptive
        for i in self._holders(line, cpu):
            self.ports[i].l2.set_state(line, LineState.INVALID)
            self._drop_from_l1(i, line, coherence=True)
            if checker is not None:
                checker.invalidate(i, line)
            if adaptive is not None:
                adaptive.on_invalidate(i, line)
            count += 1
        self.invalidations_sent += count
        return count

    def _fill_l2(self, cpu: int, line: int, state: LineState, t: int) -> None:
        """Install *line* in *cpu*'s L2, handling eviction side effects.

        A dirty victim is written back on the bus (occupancy charged after
        the demand transfer, as a write-back buffer would); any victim's L1
        sublines are dropped for inclusion (a conflict, not a coherence,
        invalidation).
        """
        port = self.ports[cpu]
        evicted, evicted_state = port.l2.fill_state(line, state)
        if evicted != -1:
            self._drop_from_l1(cpu, evicted, coherence=False)
            if evicted_state == LineState.MODIFIED:
                transfer = self.bus.params.line_transfer_cycles(
                    self.machine.l2.line_bytes)
                self.bus.acquire(t, transfer, BusOp.WRITEBACK)
                self.writebacks += 1
        if self.checker is not None:
            self.checker.l2_install(cpu, line, evicted,
                                    evicted_state == LineState.MODIFIED)
        if self.adaptive is not None:
            if evicted != -1:
                self.adaptive.on_invalidate(cpu, evicted)
            self.adaptive.on_fill(cpu, line)

    # ------------------------------------------------------------------
    # Demand read path
    # ------------------------------------------------------------------
    def fetch_shared(self, cpu: int, addr: int, t: int,
                     kind: BusOp = BusOp.READ_MEM) -> int:
        """L2 read miss: fetch the line for reading.  Returns ready time.

        Illinois: a cache holding the line supplies it (dirty holders write
        back and drop to SHARED); otherwise memory supplies it and the
        requester loads it EXCLUSIVE.
        """
        line = self._l2_line(addr)
        port = self.ports[cpu]
        if port.l2.state_of(line) != LineState.INVALID:
            raise SimulationError(f"fetch_shared of resident line {line:#x}")
        holders = self._holders(line, cpu)
        if holders:
            if self.checker is not None:
                # Before the state transition: the checker reads the
                # supplier's (possibly dirty) pre-transfer state.
                self.checker.fill_from_cache(cpu, line, holders)
            ready = self._split_transfer(t, BusOp.READ_CACHE,
                                         self.bus.params.cache_supply_cycles)
            for i in holders:
                self.ports[i].l2.set_state(line, LineState.SHARED)
            self.cache_to_cache += 1
            state = LineState.SHARED
        else:
            if self.checker is not None:
                self.checker.fill_from_memory(cpu, line)
            ready = self._split_transfer(t, kind,
                                         self.bus.params.memory_access_cycles)
            state = LineState.EXCLUSIVE
        self._fill_l2(cpu, line, state, ready)
        return ready

    def _split_transfer(self, t: int, kind: BusOp, wait_cycles: int) -> int:
        """Split-transaction line read: request phase, off-bus wait, data.

        The bus is held for the request, released while memory (or the
        supplying cache) works, then held again for the line transfer —
        5 + 26 + 20 = 51 uncontended cycles for a memory read, matching
        section 2.4, with only 25 cycles of bus occupancy.
        """
        bus = self.bus.params
        transfer = bus.line_transfer_cycles(self.machine.l2.line_bytes)
        grant = self.bus.acquire(t, bus.request_cycles, kind)
        data_at = grant + bus.request_cycles + wait_cycles
        grant2 = self.bus.acquire(data_at, transfer, kind, record_txn=False)
        return grant2 + transfer

    def read_nofill(self, cpu: int, addr: int, t: int,
                    kind: BusOp = BusOp.READ_MEM) -> int:
        """Read a line over the bus without caching it (bypass schemes)."""
        line = self._l2_line(addr)
        dirty = self._dirty_holder(line, cpu)
        if dirty is not None:
            if self.checker is not None:
                self.checker.writeback(dirty, line)
            ready = self._split_transfer(t, BusOp.READ_CACHE,
                                         self.bus.params.cache_supply_cycles)
            # Illinois: the supplier writes back and keeps a SHARED copy.
            self.ports[dirty].l2.set_state(line, LineState.SHARED)
            self.cache_to_cache += 1
            return ready
        return self._split_transfer(t, kind, self.bus.params.memory_access_cycles)

    # ------------------------------------------------------------------
    # Write paths
    # ------------------------------------------------------------------
    def upgrade(self, cpu: int, addr: int, t: int) -> int:
        """S -> M upgrade: invalidate other copies.  Returns completion.

        For Firefly-update addresses this becomes a broadcast update
        instead and the line stays SHARED.  An attached adaptive policy
        replaces that page-set rule: its decision routes the write to
        :meth:`adaptive_update` or to the invalidation below.
        """
        line = self._l2_line(addr)
        port = self.ports[cpu]
        state = port.l2.state_of(line)
        if state == LineState.INVALID:
            raise SimulationError(f"upgrade of non-resident line {line:#x}")
        if self.adaptive is not None:
            decision = self.adaptive.decide(cpu, addr, line,
                                            self._holders(line, cpu))
            if self.checker is not None:
                self.checker.adaptive_decision(cpu, addr, line, decision)
            if decision.update:
                return self.adaptive_update(cpu, addr, t, decision)
        elif self.is_update_addr(addr):
            return self.broadcast_update(cpu, addr, t)
        grant = self.bus.acquire(t, self.bus.params.invalidate_cycles,
                                 BusOp.INVALIDATE)
        self._invalidate_remotes(cpu, line)
        port.l2.set_state(line, LineState.MODIFIED)
        return grant + self.bus.params.invalidate_cycles

    def fetch_owned(self, cpu: int, addr: int, t: int) -> int:
        """Write miss at L2: read-for-ownership.  Returns ready time.

        Firefly-update addresses instead fetch SHARED and broadcast the
        write, leaving remote copies valid.  An attached adaptive policy
        replaces that page-set rule with its per-line decision.
        """
        line = self._l2_line(addr)
        if self.adaptive is not None:
            decision = self.adaptive.decide(cpu, addr, line,
                                            self._holders(line, cpu))
            if self.checker is not None:
                self.checker.adaptive_decision(cpu, addr, line, decision)
            if decision.update:
                ready = self.fetch_shared(cpu, addr, t)
                return self.adaptive_update(cpu, addr, ready, decision)
        elif self.is_update_addr(addr):
            ready = self.fetch_shared(cpu, addr, t)
            return self.broadcast_update(cpu, addr, ready)
        dirty = self._dirty_holder(line, cpu)
        if self.checker is not None:
            self.checker.fill_for_ownership(cpu, line, dirty)
        if dirty is not None:
            ready = self._split_transfer(t, BusOp.OWNERSHIP,
                                         self.bus.params.cache_supply_cycles)
            self.cache_to_cache += 1
        else:
            ready = self._split_transfer(t, BusOp.OWNERSHIP,
                                         self.bus.params.memory_access_cycles)
        self._invalidate_remotes(cpu, line)
        self._fill_l2(cpu, line, LineState.MODIFIED, ready)
        return ready

    def broadcast_update(self, cpu: int, addr: int, t: int) -> int:
        """Firefly write to a shared line: broadcast one word of data.

        Remote copies stay valid; memory is written through; the writer's
        copy stays SHARED while sharers exist, else becomes MODIFIED.
        """
        line = self._l2_line(addr)
        port = self.ports[cpu]
        if port.l2.state_of(line) == LineState.INVALID:
            raise SimulationError(f"update of non-resident line {line:#x}")
        grant = self.bus.acquire(t, self.bus.params.update_cycles, BusOp.UPDATE)
        holders = self._holders(line, cpu)
        if self.checker is not None:
            self.checker.update_word(cpu, addr, holders)
        self.updates_sent += 1
        if holders:
            port.l2.set_state(line, LineState.SHARED)
        else:
            port.l2.set_state(line, LineState.MODIFIED)
        return grant + self.bus.params.update_cycles

    def adaptive_update(self, cpu: int, addr: int, t: int,
                        decision) -> int:
        """Adaptive write to a shared line: update some holders, drop
        the rest.

        Mirrors :meth:`broadcast_update`'s bus timing exactly — one
        UPDATE transaction of ``update_cycles`` — because the
        over-budget subset is dropped by the holders' own snoop logic
        riding on that same transaction (a partial invalidation costs no
        extra bus time).  With an empty ``to_invalidate`` this is
        bit-identical to :meth:`broadcast_update`, which is what makes
        ``Hyb_Static`` equal ``BCoh_RelUp`` exactly.
        """
        line = self._l2_line(addr)
        port = self.ports[cpu]
        if port.l2.state_of(line) == LineState.INVALID:
            raise SimulationError(f"update of non-resident line {line:#x}")
        grant = self.bus.acquire(t, self.bus.params.update_cycles, BusOp.UPDATE)
        checker = self.checker
        adaptive = self.adaptive
        for i in decision.to_invalidate:
            self.ports[i].l2.set_state(line, LineState.INVALID)
            self._drop_from_l1(i, line, coherence=True)
            if checker is not None:
                checker.invalidate(i, line)
            adaptive.on_invalidate(i, line)
        self.invalidations_sent += len(decision.to_invalidate)
        if checker is not None:
            checker.update_word(cpu, addr, list(decision.to_update))
        self.updates_sent += 1
        if decision.to_update:
            port.l2.set_state(line, LineState.SHARED)
        else:
            port.l2.set_state(line, LineState.MODIFIED)
        return grant + self.bus.params.update_cycles

    def write_line_to_memory(self, cpu: int, line_addr: int, t: int,
                             kind: BusOp = BusOp.WRITEBACK,
                             invalidate_remotes: bool = True) -> int:
        """Push a full line to memory (bypassing stores, DMA destination).

        Other caches' copies are invalidated (invalidation protocol) unless
        the caller updates them itself (DMA does).
        """
        line = self._l2_line(line_addr)
        transfer = self.bus.params.line_transfer_cycles(
            self.machine.l2.line_bytes)
        grant = self.bus.acquire(t, transfer, kind)
        if invalidate_remotes:
            self._invalidate_remotes(cpu, line)
            # The writer's own stale copy (if any) is dropped too.
            port = self.ports[cpu]
            if port.l2.state_of(line) != LineState.INVALID:
                port.l2.set_state(line, LineState.INVALID)
                self._drop_from_l1(cpu, line, coherence=False)
                if self.checker is not None:
                    self.checker.invalidate(cpu, line)
                if self.adaptive is not None:
                    self.adaptive.on_invalidate(cpu, line)
        return grant + transfer

    # ------------------------------------------------------------------
    # DMA snooping support (section 4.2, Blk_Dma)
    # ------------------------------------------------------------------
    def dma_snoop_src(self, cpu: int, line_addr: int) -> bool:
        """Snoop a DMA source line; returns True when a cache supplied it.

        A MODIFIED holder supplies the data and (Illinois) drops to SHARED
        after writing back; clean copies are untouched.
        """
        line = self._l2_line(line_addr)
        for i, port in enumerate(self.ports):
            if port.l2.state_of(line) == LineState.MODIFIED:
                if self.checker is not None:
                    self.checker.writeback(i, line)
                port.l2.set_state(line, LineState.SHARED)
                self.cache_to_cache += 1
                return True
        return False

    def dma_update_dst(self, cpu: int, line_addr: int) -> int:
        """Snoop a DMA destination line: update cached copies in place.

        Per the paper, caches holding destination data are *updated*, not
        invalidated, and the update propagates to the L1.  All copies drop
        to SHARED (memory now matches).  Returns the number of caches that
        held the line (each slows the transfer slightly).
        """
        line = self._l2_line(line_addr)
        holders = 0
        checker = self.checker
        for i, port in enumerate(self.ports):
            if port.l2.state_of(line) != LineState.INVALID:
                if (checker is not None
                        and port.l2.state_of(line) == LineState.MODIFIED):
                    # A dirty holder flushes the line before the in-place
                    # update, so dirty words outside the transferred range
                    # survive the drop to SHARED.
                    checker.writeback(i, line)
                port.l2.set_state(line, LineState.SHARED)
                holders += 1
        return holders

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` on any coherence violation."""
        lines: Set[int] = set()
        for port in self.ports:
            lines.update(port.l2.resident_lines())
        for line in lines:
            states = [p.l2.state_of(line) for p in self.ports]
            owned = sum(1 for s in states
                        if s in (LineState.EXCLUSIVE, LineState.MODIFIED))
            present = sum(1 for s in states if s != LineState.INVALID)
            if owned > 1:
                raise SimulationError(f"line {line:#x}: multiple owners")
            if owned == 1 and present > 1:
                raise SimulationError(
                    f"line {line:#x}: owned and shared simultaneously")
        # Inclusion: every L1 line must be covered by a resident L2 line.
        for cpu, port in enumerate(self.ports):
            for l1 in (port.l1d, port.l1i):
                for sub in l1.resident_lines():
                    if port.l2.state_of(sub) == LineState.INVALID:
                        raise SimulationError(
                            f"cpu {cpu}: L1 line {sub:#x} not in L2")
