"""The Blk_Dma engine (section 4.2).

A smart controller on the L2 cache performs a block operation in a DMA-like
fashion: it holds the bus for the whole transfer, pipelining data from
source to destination memory at 8 bytes per 2 bus cycles after a 19-cycle
startup, while the originating processor stalls.  Caches are bypassed;
snooping keeps them coherent — caches holding destination lines are updated
in place (the update propagates to the L1), and a cache holding a source
line dirty supplies the data, slowing the transfer slightly.
"""

from __future__ import annotations

from repro.common.units import align_down, ceil_div
from repro.memsys.bus import BusOp
from repro.memsys.hierarchy import CpuMemorySystem
from repro.trace.blockop import BlockOpDescriptor


class DmaResult:
    """Timing of one DMA block operation."""

    __slots__ = ("grant", "done", "occupancy", "snoop_penalty")

    def __init__(self, grant: int, done: int, occupancy: int,
                 snoop_penalty: int) -> None:
        self.grant = grant
        self.done = done
        self.occupancy = occupancy
        self.snoop_penalty = snoop_penalty


def run_dma(mem: CpuMemorySystem, desc: BlockOpDescriptor, t: int) -> DmaResult:
    """Perform block operation *desc* with the DMA engine at time *t*.

    Returns the :class:`DmaResult`; the originating processor must stall
    until ``done`` (the paper charges this stall to D Read Miss).
    """
    machine = mem.machine
    dma = machine.dma
    bus = mem.bus
    controller = mem.controller
    l2_line = machine.l2.line_bytes
    l1_line = machine.l1d.line_bytes

    beats = ceil_div(desc.size, dma.bytes_per_beat)
    occupancy = dma.startup_cycles + beats * (
        dma.bus_cycles_per_beat * bus.params.cpu_cycles_per_bus_cycle)

    # Snoop work: dirty source suppliers and destination updates slow the
    # pipelined transfer by a few cycles each.
    penalty = 0
    if desc.is_copy:
        first = align_down(desc.src, l2_line)
        for line in range(first, desc.src + desc.size, l2_line):
            if controller.dma_snoop_src(mem.cpu_id, line):
                penalty += bus.params.cpu_cycles_per_bus_cycle
    first = align_down(desc.dst, l2_line)
    for line in range(first, desc.dst + desc.size, l2_line):
        holders = controller.dma_update_dst(mem.cpu_id, line)
        penalty += 2 * holders

    occupancy += penalty
    grant = bus.acquire(t, occupancy, BusOp.DMA)
    done = grant + occupancy

    if controller.checker is not None:
        controller.checker.dma_commit(mem.cpu_id, desc)
    result = DmaResult(grant, done, occupancy, penalty)
    if controller.tracer is not None:
        controller.tracer.dma(mem.cpu_id, desc, result)

    # The transferred data is not brought into the originating CPU's
    # caches; mark uncached lines so reuse analysis can see them.
    ranges = [desc.dst_range()]
    if desc.is_copy:
        ranges.append(desc.src_range())
    for rng in ranges:
        first = align_down(rng.start, l1_line)
        for line in range(first, rng.stop, l1_line):
            if not mem.l1d.present(line):
                mem.sink.bypass_mark(line)
    return result
