"""Per-CPU memory hierarchy: L1I, L1D, write buffers, L2, and access paths.

One :class:`CpuMemorySystem` owns everything private to a processor and
implements every access path the paper's systems need:

* cached reads/writes (the Base machine),
* instruction fetches through the L1I and unified L2,
* software prefetches into the caches (Blk_Pref, hot-spot prefetching),
* prefetches into the 8-line buffer and bypassing reads/writes through
  line registers (Blk_Bypass / Blk_ByPref),
* write-buffer drains with ownership acquisition, upgrades, and Firefly
  updates.

Timing contract: every method takes the processor's current time ``t`` and
returns an :class:`AccessResult` whose ``done`` is when the processor may
proceed.  Stall components are split the way Figure 3 reports them
(``stall`` -> D Read Miss or D Write; ``pref_stall`` -> Pref).
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import MachineParams
from repro.memsys.bus import Bus, BusOp
from repro.memsys.cache import make_cache, make_coherent_cache
from repro.memsys.coherence import CoherenceController
from repro.memsys.prefetch import PendingFills, PrefetchLineBuffer
from repro.memsys.sink import MemorySink, MissFlags, NO_FLAGS
from repro.memsys.states import LineState
from repro.memsys.writebuffer import TimedWriteBuffer

#: Levels an access can be satisfied from, for statistics.
LEVEL_L1 = "l1"
LEVEL_PREF = "pref"
LEVEL_BUFFER = "buffer"
LEVEL_REGISTER = "register"
LEVEL_L2 = "l2"
LEVEL_MEM = "mem"
LEVEL_WB = "wb"


class AccessResult:
    """Outcome of one memory access."""

    __slots__ = ("done", "stall", "pref_stall", "miss", "level", "flags")

    def __init__(self, done: int, stall: int = 0, pref_stall: int = 0,
                 miss: bool = False, level: str = LEVEL_L1,
                 flags: MissFlags = NO_FLAGS) -> None:
        self.done = done
        self.stall = stall
        self.pref_stall = pref_stall
        self.miss = miss
        self.level = level
        self.flags = flags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AccessResult(done={self.done}, stall={self.stall}, "
                f"pref_stall={self.pref_stall}, miss={self.miss}, "
                f"level={self.level!r})")


class CpuMemorySystem:
    """All memory-system state private to one processor."""

    def __init__(self, machine: MachineParams, bus: Bus,
                 controller: CoherenceController,
                 sink: Optional[MemorySink] = None) -> None:
        self.machine = machine
        self.bus = bus
        self.controller = controller
        self.sink = sink if sink is not None else MemorySink()
        self.l1i = make_cache(machine.l1i)
        self.l1d = make_cache(machine.l1d)
        self.l2 = make_coherent_cache(machine.l2)
        wb = machine.write_buffers
        self.wb1 = TimedWriteBuffer(wb.l1_depth, "wb1")
        self.wb2 = TimedWriteBuffer(wb.l2_depth, "wb2")
        self.pending = PendingFills()
        self.pref_buffer = PrefetchLineBuffer()
        #: Source/destination line registers of the bypass schemes.
        self.bypass_src_line = -1
        self.bypass_dst_line = -1
        #: Effective source-register granularity: plain Blk_Bypass issues
        #: blocking first-level-line loads; Blk_ByPref streams through its
        #: buffer at second-level-line granularity.
        self.bypass_l2_wide = False
        #: Set by the processor while a block operation is in progress; the
        #: sink uses it to distinguish *inside* displacement misses.
        self.in_blockop = False
        #: LRU-promotion hooks, ``None`` on direct-mapped caches where
        #: ``touch`` is a no-op: an attribute test per hit is cheaper
        #: than a no-op method call on the miss-handling paths.
        self._touch_l1i = self.l1i.touch if machine.l1i.assoc != 1 else None
        self._touch_l1d = self.l1d.touch if machine.l1d.assoc != 1 else None
        self._touch_l2 = self.l2.touch if machine.l2.assoc != 1 else None
        self.cpu_id = controller.attach(self.l1i, self.l1d, self.l2, self.sink)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _l1_fill(self, addr: int) -> None:
        """Install *addr*'s line in the L1D, reporting fill/eviction."""
        line = self.l1d.line_addr(addr)
        evicted = self.l1d.fill(addr)
        if evicted != -1:
            self.pending.drop(evicted)
        self.sink.l1_fill(line, evicted, self.in_blockop)

    def _fetch_for_read(self, addr: int, t: int,
                        kind: BusOp = BusOp.READ_MEM) -> "tuple[int, str]":
        """Bring *addr* to readable state at L2; return (ready, level)."""
        if self.l2.state_of(addr) != LineState.INVALID:
            if self._touch_l2 is not None:
                self._touch_l2(addr)
            return t + self.machine.l2_hit_cycles, LEVEL_L2
        ready = self.controller.fetch_shared(self.cpu_id, addr, t, kind)
        return ready, LEVEL_MEM

    # ------------------------------------------------------------------
    # Cached access paths (Base machine)
    # ------------------------------------------------------------------
    def read(self, addr: int, t: int) -> AccessResult:
        """Demand data read at time *t*."""
        line = self.l1d.line_addr(addr)
        if self.l1d.present(addr):
            if self._touch_l1d is not None:
                self._touch_l1d(addr)
            remaining = self.pending.consume(line, t)
            if remaining:
                # Prefetch in flight: partially hidden; the paper still
                # counts it as a miss ("not issued early enough").
                return AccessResult(t + remaining + 1, pref_stall=remaining,
                                    miss=True, level=LEVEL_PREF)
            return AccessResult(t + self.machine.l1_hit_cycles)
        flags = self.sink.consume_miss_flags(line)
        ready, level = self._fetch_for_read(addr, t)
        self._l1_fill(addr)
        latency = ready - t
        return AccessResult(ready, stall=latency - self.machine.l1_hit_cycles,
                            miss=True, level=level, flags=flags)

    def write(self, addr: int, t: int) -> AccessResult:
        """Data write at time *t* (write-through, write-allocate L1)."""
        hit = self.l1d.present(addr)
        if not hit:
            # Write-allocate: the fill overlaps the buffered write, so the
            # processor does not wait for it; ownership is acquired on the
            # drain path below.
            self._l1_fill(addr)
        elif self._touch_l1d is not None:
            self._touch_l1d(addr)
        insert_t, stall = self.wb1.enqueue(t, lambda s: self._drain_word(addr, s))
        return AccessResult(insert_t + 1, stall=stall, miss=not hit,
                            level=LEVEL_WB)

    def write_cycles(self, addr: int, t: int) -> "tuple[int, int]":
        """:meth:`write` without the :class:`AccessResult` wrapper.

        The processor's hot path only consumes ``(done, stall)`` from a
        write — hit/miss classification does not feed the paper's write
        accounting — so this variant skips the result-object allocation.
        Must stay behaviourally identical to :meth:`write`.
        """
        l1d = self.l1d
        if l1d.assoc != 1:
            # Set-associative machines skip the direct-indexed probes and
            # the fused owned-L2 drain below; replacement bookkeeping goes
            # through the cache's own API.
            if l1d.present(addr):
                l1d.touch(addr)
            else:
                self._l1_fill(addr)
            insert_t, stall = self.wb1.enqueue(
                t, lambda s: self._drain_word(addr, s))
            return insert_t + 1, stall
        line_bytes = l1d.line_bytes
        line = addr - addr % line_bytes
        if l1d.tags[(line // line_bytes) % l1d.num_lines] != line:
            self._l1_fill(addr)
        # Owned line in the L2: fuse the WB1 enqueue with the local-drain
        # arm of :meth:`_drain_word`, skipping the service-closure
        # allocation.  Safe because enqueue() runs its service callback
        # synchronously, so nothing can change the line's state between
        # this probe and the drain.  A patched _drain_word (repro.check
        # mutants, tests) must see every drain, so the fusion only
        # applies to the pristine implementation.
        if type(self)._drain_word is not _PRISTINE_DRAIN:
            insert_t, stall = self.wb1.enqueue(
                t, lambda s: self._drain_word(addr, s))
            return insert_t + 1, stall
        l2 = self.l2
        l2_bytes = l2.line_bytes
        l2line = addr - addr % l2_bytes
        idx = (l2line // l2_bytes) % l2.num_lines
        if l2.assoc == 1 and l2.tags[idx] == l2line:
            state = l2.states[idx]
            if state is LineState.MODIFIED or state is LineState.EXCLUSIVE:
                wb1 = self.wb1
                entries = wb1._entries
                while entries and entries[0] <= t:
                    entries.popleft()
                stall = 0
                if len(entries) >= wb1.depth:
                    free_at = entries[0]
                    stall = free_at - t
                    t = free_at
                    while entries and entries[0] <= t:
                        entries.popleft()
                    wb1.overflows += 1
                    wb1.stall_cycles += stall
                lse = wb1.last_service_end
                start = t if t > lse else lse
                end = start + self.machine.write_buffers.l1_drain_cycles
                l2.states[idx] = LineState.MODIFIED
                l2.states_np[idx] = 3
                wb1.last_service_end = end
                entries.append(end)
                wb1.enqueues += 1
                return t + 1, stall
        insert_t, stall = self.wb1.enqueue(t, lambda s: self._drain_word(addr, s))
        return insert_t + 1, stall

    def _drain_word(self, addr: int, start: int) -> int:
        """Retire one word from WB1 into the L2 / bus.  Returns completion."""
        # Owned line in the L2 (the common case): one fused tag/state
        # probe instead of a state_of + set_state pair.  Set-associative
        # L2s take the API path so the LRU stamp moves with the drain.
        l2 = self.l2
        if l2.assoc == 1:
            line = addr - addr % l2.line_bytes
            idx = (line // l2.line_bytes) % l2.num_lines
            if l2.tags[idx] == line:
                state = l2.states[idx]
                if state is LineState.MODIFIED or state is LineState.EXCLUSIVE:
                    l2.states[idx] = LineState.MODIFIED
                    l2.states_np[idx] = 3
                    return start + self.machine.write_buffers.l1_drain_cycles
        else:
            state = l2.state_of(addr)
            if state is LineState.MODIFIED or state is LineState.EXCLUSIVE:
                l2.set_state(addr, LineState.MODIFIED)
                l2.touch(addr)
                return start + self.machine.write_buffers.l1_drain_cycles
        state = self.l2.state_of(addr)
        controller = self.controller
        if state == LineState.SHARED:
            if controller.is_update_addr(addr):
                service = lambda s: controller.broadcast_update(self.cpu_id, addr, s)
            else:
                service = lambda s: controller.upgrade(self.cpu_id, addr, s)
        else:
            service = lambda s: controller.fetch_owned(self.cpu_id, addr, s)
        # The WB1 slot frees once the word is handed to WB2.
        insert_t, _ = self.wb2.enqueue(start, service)
        return insert_t + 1

    def ifetch(self, pc: int, icount: int, t: int) -> int:
        """Fetch *icount* 4-byte instructions starting at *pc*.

        Returns the instruction-miss stall in cycles (execution time itself
        is charged by the processor).
        """
        l1i = self.l1i
        line_bytes = l1i.line_bytes
        line = pc - pc % line_bytes
        end = pc + 4 * icount
        # Fast path: the whole fetch sits in one resident line — by far
        # the common case for short basic blocks.  Direct-mapped only:
        # the one-probe trick needs the tag array indexed by set, and a
        # set-associative L1I must promote the line it hits.
        if (l1i.assoc == 1 and end <= line + line_bytes
                and l1i.tags[(line // line_bytes) % l1i.num_lines] == line):
            return 0
        stall = 0
        while line < end:
            if not l1i.present(line):
                if self.l2.state_of(line) != LineState.INVALID:
                    if self._touch_l2 is not None:
                        self._touch_l2(line)
                    stall += self.machine.l2_hit_cycles - 1
                else:
                    ready = self.controller.fetch_shared(
                        self.cpu_id, line, t + stall, BusOp.READ_MEM)
                    stall += ready - (t + stall)
                l1i.fill(line)
            elif self._touch_l1i is not None:
                self._touch_l1i(line)
            line += line_bytes
        return stall

    # ------------------------------------------------------------------
    # Prefetching (Blk_Pref, hot-spot prefetch, Blk_ByPref buffer)
    # ------------------------------------------------------------------
    def prefetch_line(self, addr: int, t: int) -> None:
        """Software prefetch of *addr*'s line into L1 and L2 (non-binding)."""
        line = self.l1d.line_addr(addr)
        if self.l1d.present(addr):
            return
        ready, _level = self._fetch_for_read(addr, t, BusOp.PREFETCH)
        self._l1_fill(addr)
        self.pending.add(line, ready)

    def prefetch_into_buffer(self, addr: int, t: int) -> None:
        """Prefetch *addr*'s line into the Blk_ByPref line buffer.

        Transfers happen at second-level-line granularity (the scheme has
        registers as wide as an L2 line beside the L2), so one bus read
        fills every L1-sized buffer slot the L2 line covers.
        """
        line = self.l1d.line_addr(addr)
        if self.l1d.present(addr) or self.pref_buffer.contains(line):
            return
        if self.l2.state_of(addr) != LineState.INVALID:
            if self._touch_l2 is not None:
                self._touch_l2(addr)
            ready = t + self.machine.l2_hit_cycles
        else:
            ready = self.controller.read_nofill(self.cpu_id, addr, t,
                                                BusOp.PREFETCH)
        l2_line = addr - addr % self.machine.l2.line_bytes
        for sub in range(l2_line, l2_line + self.machine.l2.line_bytes,
                         self.machine.l1d.line_bytes):
            if not self.l1d.present(sub):
                self.pref_buffer.insert(sub, ready)
                self.sink.bypass_mark(sub)

    # ------------------------------------------------------------------
    # Bypassing paths (Blk_Bypass / Blk_ByPref)
    # ------------------------------------------------------------------
    def read_bypass(self, addr: int, t: int) -> AccessResult:
        """Block-operation source read that bypasses the caches."""
        line = self.l1d.line_addr(addr)
        if self.l1d.present(addr):
            return self.read(addr, t)
        buffered = self.pref_buffer.lookup(line)
        if buffered is not None:
            self.pref_buffer.hits += 1
            if buffered <= t:
                return AccessResult(t + 1, level=LEVEL_BUFFER)
            # In-flight buffer fill: a block miss that was partially hidden
            # ("prefetch not issued early enough"), not a reuse — leave the
            # bypass mark in place for later demand misses.
            return AccessResult(buffered + 1, pref_stall=buffered - t,
                                miss=True, level=LEVEL_BUFFER)
        gran = (self.machine.l2.line_bytes if self.bypass_l2_wide
                else self.machine.l1d.line_bytes)
        reg_line = addr - addr % gran
        if reg_line == self.bypass_src_line:
            return AccessResult(t + 1, level=LEVEL_REGISTER)
        # New source line: fetch into the line register, never the caches.
        flags = self.sink.consume_miss_flags(line)
        if self.l2.state_of(addr) != LineState.INVALID:
            if self._touch_l2 is not None:
                self._touch_l2(addr)
            ready = t + self.machine.l2_hit_cycles
            level = LEVEL_L2
        else:
            ready = self.controller.read_nofill(self.cpu_id, addr, t)
            level = LEVEL_MEM
        self.bypass_src_line = reg_line
        for sub in range(reg_line, reg_line + gran,
                         self.machine.l1d.line_bytes):
            if not self.l1d.present(sub):
                self.sink.bypass_mark(sub)
        return AccessResult(ready, stall=ready - t - 1, miss=True, level=level,
                            flags=flags)

    def write_bypass(self, addr: int, t: int) -> AccessResult:
        """Block-operation destination write that bypasses the caches.

        Per the paper, when the line is already in the originating
        processor's caches a normal cache access is performed; otherwise
        words accumulate in a line register that is flushed to memory.
        """
        if self.l1d.present(addr) or self.l2.state_of(addr) != LineState.INVALID:
            return self.write(addr, t)
        line = self.l1d.line_addr(addr)
        stall = 0
        if line != self.bypass_dst_line:
            stall = self._flush_bypass_dst(t)
            self.bypass_dst_line = line
        return AccessResult(t + stall + 1, stall=stall, level=LEVEL_REGISTER)

    def _flush_bypass_dst(self, t: int) -> int:
        """Flush the destination line register to memory via WB2."""
        if self.bypass_dst_line == -1:
            return 0
        line = self.bypass_dst_line
        self.bypass_dst_line = -1
        transfer = self.bus.params.line_transfer_cycles(
            self.machine.l1d.line_bytes)
        controller = self.controller
        cpu = self.cpu_id

        def service(start: int) -> int:
            grant = self.bus.acquire(start, transfer, BusOp.WRITEBACK)
            controller._invalidate_remotes(cpu, controller._l2_line(line))
            if controller.checker is not None:
                controller.checker.bypass_flush(cpu, line)
            return grant + transfer

        _insert, stall = self.wb2.enqueue(t, service)
        self.sink.bypass_mark(line)
        return stall

    def end_block_op(self, t: int) -> int:
        """Tear down per-operation bypass state; returns extra stall."""
        stall = self._flush_bypass_dst(t)
        self.bypass_src_line = -1
        self.pref_buffer.clear()
        return stall

    # ------------------------------------------------------------------
    # Synchronization support
    # ------------------------------------------------------------------
    def drain_writes(self, t: int) -> int:
        """Release consistency: time when all buffered writes are visible."""
        return max(self.wb1.drain_time(t), self.wb2.drain_time(t))


#: The unpatched drain implementation; :meth:`CpuMemorySystem.write_cycles`
#: compares against it before taking its fused owned-line fast path.
_PRISTINE_DRAIN = CpuMemorySystem._drain_word
