"""Cache-line coherence states.

The Base machine runs the Illinois protocol — a MESI protocol with
cache-to-cache supply of clean and dirty lines.  The selective-update
optimization of section 5.2 runs the Firefly protocol on a small set of
pages; Firefly lines never become MODIFIED-exclusive while shared — a write
to a shared line broadcasts the new data instead of invalidating, so the
states below suffice for both protocols.
"""

from __future__ import annotations

import enum


class LineState(enum.IntEnum):
    """MESI state of one L2 line."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


#: States in which the owning cache may write without a bus transaction.
OWNED_STATES = (LineState.EXCLUSIVE, LineState.MODIFIED)


def is_owned(state: LineState) -> bool:
    """True when a cache holding the line in *state* may write silently."""
    return state in OWNED_STATES
