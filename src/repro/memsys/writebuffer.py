"""Timed FIFO write buffers.

The machine has two write buffers per processor (section 2.4):

* a 4-deep, word-wide buffer between the write-through L1D and the L2;
* an 8-deep, 32-byte-wide buffer between the L2 and the bus, holding the
  writes that need a bus transaction (ownership fetches, invalidations,
  write-backs, bypassed block-op lines).

Reads bypass the buffers (release consistency); the processor only stalls
when it tries to insert into a *full* buffer — that stall is the
``D Write`` component of Figures 1 and 3.  Each entry carries a completion
time; an entry's service may start only after the previous entry finished
(FIFO drain), which is what makes a burst of bus-bound writes back up into
the processor.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple


class TimedWriteBuffer:
    """FIFO buffer whose entries are (completion-time) timestamps."""

    def __init__(self, depth: int, name: str = "wb") -> None:
        if depth < 1:
            raise ValueError("buffer depth must be >= 1")
        self.depth = depth
        self.name = name
        #: Completion times of in-flight entries, oldest first.
        self._entries: Deque[int] = deque()
        #: When the most recent entry's service ends (FIFO serialization).
        self.last_service_end: int = 0
        #: Total cycles the processor stalled inserting into a full buffer.
        self.stall_cycles: int = 0
        #: Entries ever enqueued.
        self.enqueues: int = 0
        #: Enqueues that found the buffer full.
        self.overflows: int = 0

    def _expire(self, t: int) -> None:
        entries = self._entries
        while entries and entries[0] <= t:
            entries.popleft()

    def occupancy(self, t: int) -> int:
        """Entries still in flight at time *t*."""
        self._expire(t)
        return len(self._entries)

    def enqueue(self, t: int, service: Callable[[int], int]) -> Tuple[int, int]:
        """Insert an entry at time *t*.

        ``service(start)`` must return the entry's completion time given
        that its drain begins at ``start``; drains are serialized FIFO.
        Returns ``(insert_time, stall)`` where ``stall`` is how long the
        caller waited for a free slot (0 when the buffer had room).
        """
        self._expire(t)
        stall = 0
        if len(self._entries) >= self.depth:
            free_at = self._entries[0]
            stall = free_at - t
            t = free_at
            self._expire(t)
            self.overflows += 1
            self.stall_cycles += stall
        start = t if t > self.last_service_end else self.last_service_end
        end = service(start)
        if end < start:
            raise ValueError(f"{self.name}: service ended before it started")
        self.last_service_end = end
        self._entries.append(end)
        self.enqueues += 1
        return t, stall

    def drain_time(self, t: int) -> int:
        """Earliest time at or after *t* when the buffer is empty.

        Used by release-consistency synchronization points (lock release,
        barrier arrival), which must wait for all buffered writes.
        """
        self._expire(t)
        if not self._entries:
            return t
        return self._entries[-1]
