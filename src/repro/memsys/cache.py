"""Direct-mapped cache arrays.

All three caches of the simulated machine are direct-mapped, so a cache is
just a tag (and, for the L2, a MESI state) per set.  Timing lives in the
hierarchy/coherence layers; this module only answers presence questions and
performs fills, evictions and invalidations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.params import CacheParams
from repro.memsys.states import LineState


class DirectMappedCache:
    """Tag-only direct-mapped cache (used for L1I and L1D).

    ``line_bytes``, ``num_lines`` and ``tags`` are public on purpose: the
    simulator's L1-hit fast path binds them once and probes the tag array
    directly, skipping the :meth:`present` call per reference.  ``tags``
    is mutated in place only, so a bound reference never goes stale.

    ``tags_np`` mirrors ``tags`` as an int64 array for the batched
    stepping mode's vectorized compares.  The Python list stays the
    authoritative copy (scalar indexing of a list is faster than of an
    ndarray, and the per-record hot path must not regress); the mirror is
    updated in the same mutation methods, which only run on the miss and
    invalidation paths.
    """

    __slots__ = ("params", "line_bytes", "num_lines", "tags", "tags_np",
                 "fills", "evictions")

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self.line_bytes = params.line_bytes
        self.num_lines = params.num_lines
        #: Line-aligned address held by each set, or -1 when empty.
        self.tags: List[int] = [-1] * self.num_lines
        #: Vectorized mirror of :attr:`tags` (batched stepping mode).
        self.tags_np = np.full(self.num_lines, -1, dtype=np.int64)
        self.fills = 0
        self.evictions = 0

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing *addr*."""
        return addr - (addr % self.line_bytes)

    def set_index(self, addr: int) -> int:
        """Set index of *addr*."""
        return (addr // self.line_bytes) % self.num_lines

    def present(self, addr: int) -> bool:
        """True when the line containing *addr* is cached."""
        line = addr - addr % self.line_bytes
        return self.tags[(line // self.line_bytes) % self.num_lines] == line

    def fill(self, addr: int) -> int:
        """Install the line containing *addr*.

        Returns the line address evicted to make room, or -1 when the set
        was empty or already held the line.
        """
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        old = self.tags[idx]
        if old == line:
            return -1
        self.tags[idx] = line
        self.tags_np[idx] = line
        self.fills += 1
        if old != -1:
            self.evictions += 1
            return old
        return -1

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing *addr*; returns True if it was present."""
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] == line:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            return True
        return False

    def invalidate_range(self, base: int, size: int) -> List[int]:
        """Drop every cached line overlapping ``[base, base+size)``.

        Returns the line addresses actually dropped.
        """
        dropped = []
        first = self.line_addr(base)
        for line in range(first, base + size, self.line_bytes):
            if self.invalidate(line):
                dropped.append(line)
        return dropped

    def resident_lines(self) -> List[int]:
        """All line addresses currently cached, in set order."""
        return [t for t in self.tags if t != -1]


class CoherentCache(DirectMappedCache):
    """Direct-mapped cache with a MESI state per set (the L2).

    ``states_np`` mirrors ``states`` (same contract as ``tags_np``): the
    enum list is authoritative, the int8 array exists for the batched
    stepping mode's vectorized owned-line checks.
    """

    __slots__ = ("states", "states_np")

    def __init__(self, params: CacheParams) -> None:
        super().__init__(params)
        self.states: List[LineState] = [LineState.INVALID] * self.num_lines
        self.states_np = np.zeros(self.num_lines, dtype=np.int8)

    def state_of(self, addr: int) -> LineState:
        """MESI state of the line containing *addr* (INVALID if absent)."""
        line = addr - addr % self.line_bytes
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] == line:
            return self.states[idx]
        return LineState.INVALID

    def set_state(self, addr: int, state: LineState) -> None:
        """Set the MESI state of a resident line."""
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] != line:
            raise KeyError(f"line {line:#x} not resident")
        self.states[idx] = state
        self.states_np[idx] = state
        if state == LineState.INVALID:
            self.tags[idx] = -1
            self.tags_np[idx] = -1

    def fill_state(self, addr: int, state: LineState) -> Tuple[int, Optional[LineState]]:
        """Install the line containing *addr* in *state*.

        Returns ``(evicted_line_addr, evicted_state)`` —
        ``(-1, None)`` when nothing was displaced.
        """
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        old_tag = self.tags[idx]
        old_state = self.states[idx]
        self.tags[idx] = line
        self.tags_np[idx] = line
        self.states[idx] = state
        self.states_np[idx] = state
        if old_tag == line or old_tag == -1:
            if old_tag == -1:
                self.fills += 1
            return -1, None
        self.fills += 1
        self.evictions += 1
        return old_tag, old_state

    def invalidate(self, addr: int) -> bool:
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] == line:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            self.states[idx] = LineState.INVALID
            self.states_np[idx] = 0
            return True
        return False
