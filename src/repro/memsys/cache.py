"""Cache arrays: direct-mapped (the paper's testbed) and LRU set-associative.

The paper's machine is direct-mapped everywhere, so the original model is
just a tag (and, for the L2, a MESI state) per set.  The set-associative
variants generalize that to ``assoc`` ways per set with true-LRU
replacement, sharing the public surface (``tags``/``tags_np`` mirrors,
``present``/``fill``/``invalidate``/``resident_lines``) so the hierarchy,
coherence controller and conformance checker work unchanged.  Timing lives
in the hierarchy/coherence layers; this module only answers presence
questions and performs fills, evictions and invalidations.

Use :func:`make_cache`/:func:`make_coherent_cache` to pick the class from
``CacheParams.assoc``; 1-way parameters yield the direct-mapped classes so
the paper configuration keeps its exact fast-path behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.params import CacheParams
from repro.memsys.states import LineState


class DirectMappedCache:
    """Tag-only direct-mapped cache (used for L1I and L1D).

    ``line_bytes``, ``num_lines`` and ``tags`` are public on purpose: the
    simulator's L1-hit fast path binds them once and probes the tag array
    directly, skipping the :meth:`present` call per reference.  ``tags``
    is mutated in place only, so a bound reference never goes stale.

    ``tags_np`` mirrors ``tags`` as an int64 array for the batched
    stepping mode's vectorized compares.  The Python list stays the
    authoritative copy (scalar indexing of a list is faster than of an
    ndarray, and the per-record hot path must not regress); the mirror is
    updated in the same mutation methods, which only run on the miss and
    invalidation paths.
    """

    __slots__ = ("params", "line_bytes", "num_lines", "num_sets", "assoc",
                 "tags", "tags_np", "fills", "evictions")

    def __init__(self, params: CacheParams) -> None:
        if params.assoc != 1:
            raise ValueError(
                f"DirectMappedCache needs 1-way params, got {params.assoc}-way"
                " (use make_cache/make_coherent_cache)")
        self.params = params
        self.line_bytes = params.line_bytes
        self.num_lines = params.num_lines
        self.num_sets = params.num_lines
        self.assoc = 1
        #: Line-aligned address held by each set, or -1 when empty.
        self.tags: List[int] = [-1] * self.num_lines
        #: Vectorized mirror of :attr:`tags` (batched stepping mode).
        self.tags_np = np.full(self.num_lines, -1, dtype=np.int64)
        self.fills = 0
        self.evictions = 0

    def touch(self, addr: int) -> None:
        """Record a use of the line containing *addr* for replacement.

        Direct-mapped replacement has no recency state, so this is a
        no-op; the set-associative subclass promotes the line to MRU.
        """

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing *addr*."""
        return addr - (addr % self.line_bytes)

    def set_index(self, addr: int) -> int:
        """Set index of *addr*."""
        return (addr // self.line_bytes) % self.num_lines

    def present(self, addr: int) -> bool:
        """True when the line containing *addr* is cached."""
        line = addr - addr % self.line_bytes
        return self.tags[(line // self.line_bytes) % self.num_lines] == line

    def fill(self, addr: int) -> int:
        """Install the line containing *addr*.

        Returns the line address evicted to make room, or -1 when the set
        was empty or already held the line.
        """
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        old = self.tags[idx]
        if old == line:
            return -1
        self.tags[idx] = line
        self.tags_np[idx] = line
        self.fills += 1
        if old != -1:
            self.evictions += 1
            return old
        return -1

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing *addr*; returns True if it was present."""
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] == line:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            return True
        return False

    def invalidate_range(self, base: int, size: int) -> List[int]:
        """Drop every cached line overlapping ``[base, base+size)``.

        Returns the line addresses actually dropped.
        """
        dropped = []
        first = self.line_addr(base)
        for line in range(first, base + size, self.line_bytes):
            if self.invalidate(line):
                dropped.append(line)
        return dropped

    def resident_lines(self) -> List[int]:
        """All line addresses currently cached, in set order."""
        return [t for t in self.tags if t != -1]


class CoherentCache(DirectMappedCache):
    """Direct-mapped cache with a MESI state per set (the L2).

    ``states_np`` mirrors ``states`` (same contract as ``tags_np``): the
    enum list is authoritative, the int8 array exists for the batched
    stepping mode's vectorized owned-line checks.
    """

    __slots__ = ("states", "states_np")

    def __init__(self, params: CacheParams) -> None:
        super().__init__(params)
        self.states: List[LineState] = [LineState.INVALID] * self.num_lines
        self.states_np = np.zeros(self.num_lines, dtype=np.int8)

    def state_of(self, addr: int) -> LineState:
        """MESI state of the line containing *addr* (INVALID if absent)."""
        line = addr - addr % self.line_bytes
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] == line:
            return self.states[idx]
        return LineState.INVALID

    def set_state(self, addr: int, state: LineState) -> None:
        """Set the MESI state of a resident line."""
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] != line:
            raise KeyError(f"line {line:#x} not resident")
        self.states[idx] = state
        self.states_np[idx] = state
        if state == LineState.INVALID:
            self.tags[idx] = -1
            self.tags_np[idx] = -1

    def fill_state(self, addr: int, state: LineState) -> Tuple[int, Optional[LineState]]:
        """Install the line containing *addr* in *state*.

        Returns ``(evicted_line_addr, evicted_state)`` —
        ``(-1, None)`` when nothing was displaced.
        """
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        old_tag = self.tags[idx]
        old_state = self.states[idx]
        self.tags[idx] = line
        self.tags_np[idx] = line
        self.states[idx] = state
        self.states_np[idx] = state
        if old_tag == line or old_tag == -1:
            if old_tag == -1:
                self.fills += 1
            return -1, None
        self.fills += 1
        self.evictions += 1
        return old_tag, old_state

    def invalidate(self, addr: int) -> bool:
        line = self.line_addr(addr)
        idx = (line // self.line_bytes) % self.num_lines
        if self.tags[idx] == line:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            self.states[idx] = LineState.INVALID
            self.states_np[idx] = 0
            return True
        return False


class SetAssociativeCache(DirectMappedCache):
    """Tag-only N-way set-associative cache with true-LRU replacement.

    The tag array is flat and set-major: way ``w`` of set ``s`` lives at
    index ``s * assoc + w``, so ``tags``/``tags_np`` keep the same
    "mutated in place, bound references never go stale" contract as the
    direct-mapped class and :meth:`resident_lines` needs no override.
    Recency is a per-frame stamp from a monotonic use counter; the LRU
    victim is the minimum-stamp way of the set.  :meth:`present` stays a
    pure query (the conformance checker probes it freely); recency moves
    only through :meth:`touch` and the fill methods.
    """

    __slots__ = ("_stamps", "_tick")

    def __init__(self, params: CacheParams) -> None:
        if params.assoc < 2:
            raise ValueError("SetAssociativeCache needs assoc >= 2 "
                             "(use make_cache for 1-way params)")
        # Skip the direct-mapped guard but reuse its attribute setup.
        self.params = params
        self.line_bytes = params.line_bytes
        self.num_lines = params.num_lines
        self.num_sets = params.num_sets
        self.assoc = params.assoc
        self.tags = [-1] * self.num_lines
        self.tags_np = np.full(self.num_lines, -1, dtype=np.int64)
        self.fills = 0
        self.evictions = 0
        #: Use stamp per line frame; larger == more recently used.
        self._stamps = [0] * self.num_lines
        self._tick = 0

    def set_index(self, addr: int) -> int:
        """Set index of *addr*."""
        return (addr // self.line_bytes) % self.num_sets

    def _find(self, line: int) -> int:
        """Flat frame index holding *line*, or -1."""
        base = ((line // self.line_bytes) % self.num_sets) * self.assoc
        tags = self.tags
        for idx in range(base, base + self.assoc):
            if tags[idx] == line:
                return idx
        return -1

    def _victim(self, base: int) -> int:
        """Frame to replace in the set starting at *base*: first empty
        way, else the LRU (minimum-stamp) way."""
        tags = self.tags
        stamps = self._stamps
        victim = base
        victim_stamp = stamps[base]
        for idx in range(base, base + self.assoc):
            if tags[idx] == -1:
                return idx
            if stamps[idx] < victim_stamp:
                victim = idx
                victim_stamp = stamps[idx]
        return victim

    def present(self, addr: int) -> bool:
        return self._find(addr - addr % self.line_bytes) != -1

    def touch(self, addr: int) -> None:
        idx = self._find(addr - addr % self.line_bytes)
        if idx != -1:
            self._tick += 1
            self._stamps[idx] = self._tick

    def fill(self, addr: int) -> int:
        line = self.line_addr(addr)
        idx = self._find(line)
        self._tick += 1
        if idx != -1:
            self._stamps[idx] = self._tick
            return -1
        base = ((line // self.line_bytes) % self.num_sets) * self.assoc
        idx = self._victim(base)
        old = self.tags[idx]
        self.tags[idx] = line
        self.tags_np[idx] = line
        self._stamps[idx] = self._tick
        self.fills += 1
        if old != -1:
            self.evictions += 1
            return old
        return -1

    def invalidate(self, addr: int) -> bool:
        idx = self._find(self.line_addr(addr))
        if idx != -1:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            self._stamps[idx] = 0
            return True
        return False


class CoherentSetAssociativeCache(SetAssociativeCache):
    """Set-associative cache with a MESI state per frame (L2 variant).

    Same ``states``/``states_np`` mirror contract as
    :class:`CoherentCache`; the coherence controller only uses the
    address-based API (``state_of``/``set_state``/``fill_state``/
    ``resident_lines``), which this class provides per-way.
    """

    __slots__ = ("states", "states_np")

    def __init__(self, params: CacheParams) -> None:
        super().__init__(params)
        self.states: List[LineState] = [LineState.INVALID] * self.num_lines
        self.states_np = np.zeros(self.num_lines, dtype=np.int8)

    def state_of(self, addr: int) -> LineState:
        """MESI state of the line containing *addr* (INVALID if absent)."""
        idx = self._find(addr - addr % self.line_bytes)
        if idx != -1:
            return self.states[idx]
        return LineState.INVALID

    def set_state(self, addr: int, state: LineState) -> None:
        """Set the MESI state of a resident line."""
        line = self.line_addr(addr)
        idx = self._find(line)
        if idx == -1:
            raise KeyError(f"line {line:#x} not resident")
        self.states[idx] = state
        self.states_np[idx] = state
        if state == LineState.INVALID:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            self._stamps[idx] = 0

    def fill_state(self, addr: int, state: LineState) -> Tuple[int, Optional[LineState]]:
        """Install the line containing *addr* in *state*.

        Returns ``(evicted_line_addr, evicted_state)`` —
        ``(-1, None)`` when nothing was displaced.
        """
        line = self.line_addr(addr)
        idx = self._find(line)
        self._tick += 1
        if idx != -1:
            self.states[idx] = state
            self.states_np[idx] = state
            self._stamps[idx] = self._tick
            return -1, None
        base = ((line // self.line_bytes) % self.num_sets) * self.assoc
        idx = self._victim(base)
        old_tag = self.tags[idx]
        old_state = self.states[idx]
        self.tags[idx] = line
        self.tags_np[idx] = line
        self.states[idx] = state
        self.states_np[idx] = state
        self._stamps[idx] = self._tick
        self.fills += 1
        if old_tag == -1:
            return -1, None
        self.evictions += 1
        return old_tag, old_state

    def invalidate(self, addr: int) -> bool:
        idx = self._find(self.line_addr(addr))
        if idx != -1:
            self.tags[idx] = -1
            self.tags_np[idx] = -1
            self.states[idx] = LineState.INVALID
            self.states_np[idx] = 0
            self._stamps[idx] = 0
            return True
        return False


def make_cache(params: CacheParams) -> DirectMappedCache:
    """Tag-only cache of the organization *params* asks for."""
    if params.assoc == 1:
        return DirectMappedCache(params)
    return SetAssociativeCache(params)


def make_coherent_cache(
        params: CacheParams) -> "CoherentCache | CoherentSetAssociativeCache":
    """MESI-state-tracking cache of the organization *params* asks for.

    Note the return types share no coherent base class — callers rely on
    the duck-typed address API (``state_of``/``set_state``/``fill_state``),
    which both classes implement.
    """
    if params.assoc == 1:
        return CoherentCache(params)
    return CoherentSetAssociativeCache(params)
