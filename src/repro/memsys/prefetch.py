"""Prefetch support: pending-fill tracking and the Blk_ByPref line buffer.

Two mechanisms from the paper live here:

* :class:`PendingFills` — software prefetches (Blk_Pref, and the hot-spot
  prefetches of section 6) install the line in the caches immediately but
  record when the data actually arrives.  A demand access that lands before
  the arrival time pays the *remaining* latency, which the metrics layer
  reports as partially-hidden ``Pref`` stall (Figure 3).

* :class:`PrefetchLineBuffer` — Blk_ByPref prefetches the source block into
  a small 8-line buffer beside the L1 ("The processor can access the
  prefetch buffer as fast as the primary cache") instead of polluting the
  caches.  The buffer replaces FIFO.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional


class PendingFills:
    """Arrival times of lines prefetched into the caches.

    ``ready`` is public: the simulator's L1-hit fast path binds the dict
    once and uses a membership probe to decide whether a resident line
    still has a fill in flight (in which case it takes the slow path,
    which calls :meth:`consume`).  The dict is mutated in place only.
    """

    def __init__(self) -> None:
        #: line address -> cycle the prefetched data arrives.
        self.ready: Dict[int, int] = {}
        self.issued = 0

    def add(self, line: int, ready: int) -> None:
        """Record that *line* was requested and arrives at *ready*."""
        self.ready[line] = ready
        self.issued += 1

    def consume(self, line: int, t: int) -> int:
        """Remaining latency of *line* at time *t* (0 when absent/arrived).

        The entry is removed once the data has arrived or been waited for.
        """
        ready = self.ready.pop(line, None)
        if ready is None or ready <= t:
            return 0
        return ready - t

    def peek(self, line: int) -> Optional[int]:
        """Arrival time of *line* if a fill is pending, else None."""
        return self.ready.get(line)

    def drop(self, line: int) -> None:
        """Forget a pending fill (line was invalidated or evicted)."""
        self.ready.pop(line, None)

    def __len__(self) -> int:
        return len(self.ready)


class PrefetchLineBuffer:
    """FIFO buffer of prefetched lines, accessed as fast as the L1."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("prefetch buffer needs capacity >= 1")
        self.capacity = capacity
        self._lines: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def insert(self, line: int, ready: int) -> None:
        """Add *line* (arriving at *ready*), evicting the oldest if full."""
        if line in self._lines:
            self._lines.pop(line)
        elif len(self._lines) >= self.capacity:
            self._lines.popitem(last=False)
        self._lines[line] = ready

    def lookup(self, line: int) -> Optional[int]:
        """Arrival time of *line* if buffered, else None."""
        return self._lines.get(line)

    def contains(self, line: int) -> bool:
        return line in self._lines

    def clear(self) -> None:
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)
