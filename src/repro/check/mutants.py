"""Deliberate protocol bugs, for pinning the harness's detection power.

Each mutant is a context manager that patches one protocol method with a
copy that omits exactly one coherence action — the classic bug classes of
snooping-protocol implementations.  The conformance checker (or its final
oracle diff) must catch every one of them; ``tests/test_conformance_mutants.py``
and ``python -m repro.check --mutants`` enforce that.

The patched bodies replicate the originals — including the checker hooks,
so the shadow model keeps following the (now buggy) data movement — minus
the single omitted action.  Keep them in sync when the originals change.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, Tuple

from repro.common.errors import SimulationError
from repro.memsys.bus import BusOp
from repro.memsys.coherence import CoherenceController
from repro.memsys.hierarchy import CpuMemorySystem
from repro.memsys.states import LineState


@contextlib.contextmanager
def skip_invalidation() -> Iterator[None]:
    """An S->M upgrade forgets to invalidate the other sharers.

    Expected catch: ``owned-and-shared`` (SWMR) at the very write, or a
    ``stale-read`` when a forgotten sharer reads its outdated copy.
    """
    orig = CoherenceController.upgrade

    def upgrade(self, cpu, addr, t):
        line = self._l2_line(addr)
        port = self.ports[cpu]
        state = port.l2.state_of(line)
        if state == LineState.INVALID:
            raise SimulationError(f"upgrade of non-resident line {line:#x}")
        if self.adaptive is not None:
            decision = self.adaptive.decide(cpu, addr, line,
                                            self._holders(line, cpu))
            if self.checker is not None:
                self.checker.adaptive_decision(cpu, addr, line, decision)
            if decision.update:
                return self.adaptive_update(cpu, addr, t, decision)
        elif self.is_update_addr(addr):
            return self.broadcast_update(cpu, addr, t)
        grant = self.bus.acquire(t, self.bus.params.invalidate_cycles,
                                 BusOp.INVALIDATE)
        # BUG: self._invalidate_remotes(cpu, line) is never called.
        port.l2.set_state(line, LineState.MODIFIED)
        return grant + self.bus.params.invalidate_cycles

    CoherenceController.upgrade = upgrade
    try:
        yield
    finally:
        CoherenceController.upgrade = orig


@contextlib.contextmanager
def stale_cache_supply() -> Iterator[None]:
    """A read miss is served from memory although a holder is dirty.

    The dirty holder neither supplies the line nor writes it back; the
    requester fills with the stale memory image.  Expected catch:
    ``stale-read`` on the requester's very read (or
    ``clean-copy-diverged`` in the final diff).
    """
    orig = CoherenceController.fetch_shared

    def fetch_shared(self, cpu, addr, t, kind=BusOp.READ_MEM):
        line = self._l2_line(addr)
        port = self.ports[cpu]
        if port.l2.state_of(line) != LineState.INVALID:
            raise SimulationError(f"fetch_shared of resident line {line:#x}")
        holders = self._holders(line, cpu)
        if holders:
            # BUG: data comes from memory, ignoring the (possibly dirty)
            # cached copies; states still transition as if supplied.
            if self.checker is not None:
                self.checker.fill_from_memory(cpu, line)
            ready = self._split_transfer(t, BusOp.READ_CACHE,
                                         self.bus.params.cache_supply_cycles)
            for i in holders:
                self.ports[i].l2.set_state(line, LineState.SHARED)
            self.cache_to_cache += 1
            state = LineState.SHARED
        else:
            if self.checker is not None:
                self.checker.fill_from_memory(cpu, line)
            ready = self._split_transfer(t, kind,
                                         self.bus.params.memory_access_cycles)
            state = LineState.EXCLUSIVE
        self._fill_l2(cpu, line, state, ready)
        return ready

    CoherenceController.fetch_shared = fetch_shared
    try:
        yield
    finally:
        CoherenceController.fetch_shared = orig


@contextlib.contextmanager
def lost_dirty_bit() -> Iterator[None]:
    """A write hitting an owned L2 line never sets the dirty bit.

    The line stays EXCLUSIVE, so its eviction (or final state) silently
    drops the write.  Expected catch: ``clean-copy-diverged`` or
    ``lost-write`` in the final diff.
    """
    orig = CpuMemorySystem._drain_word

    def _drain_word(self, addr, start):
        l2 = self.l2
        line = addr - addr % l2.line_bytes
        idx = (line // l2.line_bytes) % l2.num_lines
        if l2.tags[idx] == line:
            state = l2.states[idx]
            if state is LineState.MODIFIED or state is LineState.EXCLUSIVE:
                # BUG: the E->M transition is dropped.
                return start + self.machine.write_buffers.l1_drain_cycles
        state = self.l2.state_of(addr)
        controller = self.controller
        if state == LineState.SHARED:
            if controller.is_update_addr(addr):
                service = lambda s: controller.broadcast_update(
                    self.cpu_id, addr, s)
            else:
                service = lambda s: controller.upgrade(self.cpu_id, addr, s)
        else:
            service = lambda s: controller.fetch_owned(self.cpu_id, addr, s)
        insert_t, _ = self.wb2.enqueue(start, service)
        return insert_t + 1

    CpuMemorySystem._drain_word = _drain_word
    try:
        yield
    finally:
        CpuMemorySystem._drain_word = orig


@contextlib.contextmanager
def dma_stale_source() -> Iterator[None]:
    """The DMA engine never snoops dirty source lines.

    A MODIFIED holder keeps its data to itself, so the engine pipelines
    the stale memory image to the destination.  Expected catch:
    ``dma-stale-source`` at the transfer.  Needs a ``Blk_Dma``-family
    configuration to trigger.
    """
    orig = CoherenceController.dma_snoop_src

    def dma_snoop_src(self, cpu, line_addr):
        # BUG: no holder scan, no write-back, no supply.
        return False

    CoherenceController.dma_snoop_src = dma_snoop_src
    try:
        yield
    finally:
        CoherenceController.dma_snoop_src = orig


@contextlib.contextmanager
def adaptive_counter_stuck() -> Iterator[None]:
    """The update-N policy never decrements its budgets.

    Every remote copy looks perpetually fresh, so broadcasts keep going
    to copies whose budget the clean logic says is exhausted.  Expected
    catch: ``update-past-budget`` on the (N+1)-th consecutive update to
    the same copy.
    """
    from repro.memsys.adaptive import AdaptiveDecision, UpdateNPolicy
    orig = UpdateNPolicy.decide

    def decide(self, cpu, addr, line, holders):
        self._budget.pop((cpu, line), None)
        budget = self._budget
        n = self.n
        to_update = []
        to_invalidate = []
        for i in holders:
            if budget.get((i, line), n) > 0:
                to_update.append(i)
            else:
                to_invalidate.append(i)
        if not to_update:
            self.invalidate_writes += 1
            return AdaptiveDecision(False, (), tuple(holders))
        # BUG: the per-copy budgets are never decremented.
        self.update_writes += 1
        self.budget_drops += len(to_invalidate)
        return AdaptiveDecision(True, tuple(to_update),
                                tuple(to_invalidate))

    UpdateNPolicy.decide = decide
    try:
        yield
    finally:
        UpdateNPolicy.decide = orig


@contextlib.contextmanager
def adaptive_threshold_off_by_one() -> Iterator[None]:
    """The degree policy switches one sharer too late.

    A write seeing exactly ``threshold + 1`` remote copies still
    broadcasts an update instead of switching the line to invalidate
    mode.  Expected catch: ``adaptive-decision-mismatch`` at that write.
    """
    from repro.memsys.adaptive import AdaptiveDecision, DegreePolicy
    orig = DegreePolicy.decide

    def decide(self, cpu, addr, line, holders):
        degree = len(holders)
        if degree == 0:
            self._invalidate_mode.discard(line)
            self.invalidate_writes += 1
            return AdaptiveDecision(False, (), ())
        # BUG: off-by-one — the switch fires at threshold + 2 sharers.
        if line in self._invalidate_mode or degree > self.threshold + 1:
            self._invalidate_mode.add(line)
            self.invalidate_writes += 1
            return AdaptiveDecision(False, (), tuple(holders))
        self.update_writes += 1
        return AdaptiveDecision(True, tuple(holders), ())

    DegreePolicy.decide = decide
    try:
        yield
    finally:
        DegreePolicy.decide = orig


@contextlib.contextmanager
def stale_update_after_switch() -> Iterator[None]:
    """The update transaction never drops the over-budget copies.

    The decision is computed correctly, but the snoop-side partial
    invalidation is lost: copies past their budget stay resident *and*
    miss the broadcast data.  Expected catch: ``owned-and-shared`` at the
    write when every copy is over budget, or a ``stale-read`` /
    ``clean-copy-diverged`` when a surviving stale copy is consulted.
    """
    orig = CoherenceController.adaptive_update

    def adaptive_update(self, cpu, addr, t, decision):
        line = self._l2_line(addr)
        port = self.ports[cpu]
        if port.l2.state_of(line) == LineState.INVALID:
            raise SimulationError(f"update of non-resident line {line:#x}")
        grant = self.bus.acquire(t, self.bus.params.update_cycles,
                                 BusOp.UPDATE)
        # BUG: decision.to_invalidate is never dropped — those copies
        # stay resident with pre-write data.
        if self.checker is not None:
            self.checker.update_word(cpu, addr, list(decision.to_update))
        self.updates_sent += 1
        if decision.to_update:
            port.l2.set_state(line, LineState.SHARED)
        else:
            port.l2.set_state(line, LineState.MODIFIED)
        return grant + self.bus.params.update_cycles

    CoherenceController.adaptive_update = adaptive_update
    try:
        yield
    finally:
        CoherenceController.adaptive_update = orig


#: name -> (mutant context manager, configurations that can expose it).
MUTANTS: Dict[str, Tuple[Callable[[], "contextlib.AbstractContextManager"],
                         Tuple[str, ...]]] = {
    "skip_invalidation": (skip_invalidation,
                          ("Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref")),
    "stale_cache_supply": (stale_cache_supply,
                           ("Base", "Blk_Pref", "Blk_Bypass")),
    "lost_dirty_bit": (lost_dirty_bit, ("Base", "Blk_Dma")),
    "dma_stale_source": (dma_stale_source,
                         ("Blk_Dma", "BCoh_Reloc", "BCoh_RelUp", "BCPref")),
    "adaptive_counter_stuck": (adaptive_counter_stuck, ("Hyb_UpdN",)),
    "adaptive_threshold_off_by_one": (adaptive_threshold_off_by_one,
                                      ("Hyb_Deg",)),
    "stale_update_after_switch": (stale_update_after_switch, ("Hyb_UpdN",)),
}


def mutant(name: str):
    """Context manager for the named mutant; raises KeyError if unknown."""
    return MUTANTS[name][0]()
