"""Timing-free reference memory model: shadow data over version tokens.

The simulator models *time*, not data — caches carry tags and MESI states
but no bytes.  The oracle supplies the missing data dimension: every
architectural write is assigned a symbolic *version token*, and the oracle
tracks which token each word-aligned location currently holds in main
memory, in every CPU's cached copy (L1 and L2 merged — the L1 is
write-through and included in the L2, so the L2 line is the authority),
and in the bypass schemes' store-line registers.  The runtime checker
mirrors each data movement the protocol performs (line fills,
cache-to-cache supplies, write-backs, invalidations, Firefly updates,
bypass flushes, DMA transfers) into this model.

Why the model is exact rather than approximate: every memory-state
mutation in the simulator happens *synchronously* inside the trace record
that causes it (write-buffer entries are timestamps; their service
callbacks run at enqueue time).  Record commit order therefore doubles as
a per-location sequentially-consistent order, so after any read the
reader's copy must hold the globally latest token for that word — on any
trace, racy or not.  A divergence is a protocol bug, never a scheduling
artifact.  The one deferred-visibility path is the bypass store-line
register: a bypassed write commits at the register *flush* (see
:meth:`ReferenceMemory.flush_store_reg`), which is itself synchronous
inside the record that triggers it.

Tokens:

* ``(cpu, stream_pos)`` for an ordinary write — the position of the
  writing record in its CPU's stream.  Stream positions (not per-CPU
  counters) keep tokens comparable across schemes: Blk_Dma skips the
  word records of a block operation entirely, which would desynchronize
  any counter.
* The value of the corresponding *source* word for a block-copy
  destination write, and :data:`ZERO` for a block-zero write — value
  semantics, so the Base machine's word loop and the DMA engine agree on
  the final contents.
* :data:`INIT` for never-written locations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Granularity of the shadow memory (one 32-bit word).
WORD_BYTES = 4

#: Token of a location no write ever reached.
INIT = "init"
#: Token written by a block-zero operation.
ZERO = "zero"


def word_of(addr: int) -> int:
    """Word-align *addr* down to the oracle's granularity."""
    return addr - (addr % WORD_BYTES)


class ReferenceMemory:
    """Shadow memory: token-per-word state of memory, caches, registers."""

    def __init__(self, num_cpus: int, line_bytes: int) -> None:
        self.num_cpus = num_cpus
        #: L2 line size — the granularity of every coherence action.
        self.line_bytes = line_bytes
        #: Architecturally latest token per word (per-location SC order).
        self.latest: Dict[int, object] = {}
        #: Main-memory contents.
        self.mem: Dict[int, object] = {}
        #: Per-CPU cached copy (only words of resident L2 lines).
        self.copies: List[Dict[int, object]] = [dict() for _ in range(num_cpus)]
        #: Per-CPU bypass store-line register contents (Blk_Bypass).
        self.store_regs: List[Dict[int, object]] = [dict()
                                                    for _ in range(num_cpus)]
        #: In-flight line fill per CPU: (line, {word: token}).  A fill is
        #: staged when the bus supplies the data and committed when the
        #: L2 installs the line (after eviction side effects).
        self._staged: List[Optional[Tuple[int, Dict[int, object]]]] = \
            [None] * num_cpus

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def line_words(self, line: int) -> range:
        return range(line, line + self.line_bytes, WORD_BYTES)

    # ------------------------------------------------------------------
    # Value lookups
    # ------------------------------------------------------------------
    def latest_value(self, addr: int) -> object:
        return self.latest.get(word_of(addr), INIT)

    def mem_value(self, addr: int) -> object:
        return self.mem.get(word_of(addr), INIT)

    def copy_value(self, cpu: int, addr: int) -> object:
        return self.copies[cpu].get(word_of(addr), INIT)

    # ------------------------------------------------------------------
    # Architectural writes
    # ------------------------------------------------------------------
    def commit_write(self, addr: int, token: object) -> None:
        """Make *token* the architecturally latest value of the word."""
        self.latest[word_of(addr)] = token

    def set_copy(self, cpu: int, addr: int, token: object) -> None:
        self.copies[cpu][word_of(addr)] = token

    def set_store_reg(self, cpu: int, addr: int, token: object) -> None:
        self.store_regs[cpu][word_of(addr)] = token

    # ------------------------------------------------------------------
    # Line movement
    # ------------------------------------------------------------------
    def stage_from_memory(self, cpu: int, line: int) -> None:
        """Stage a fill of *line* into *cpu* with main-memory data."""
        self._staged[cpu] = (line, {w: self.mem.get(w, INIT)
                                    for w in self.line_words(line)})

    def stage_from_cpu(self, cpu: int, supplier: int, line: int, *,
                       writeback: bool) -> None:
        """Stage a cache-to-cache supply of *line* from *supplier*.

        With ``writeback`` (Illinois read supply from a dirty holder) the
        supplier also pushes the line to memory; an ownership transfer
        (read-for-ownership from a dirty holder) moves the data without
        updating memory.
        """
        src = self.copies[supplier]
        data = {w: src.get(w, INIT) for w in self.line_words(line)}
        if writeback:
            self.mem.update(data)
        self._staged[cpu] = (line, data)

    def commit_fill(self, cpu: int, line: int) -> bool:
        """Install the staged fill of *line*; False if none was staged."""
        staged = self._staged[cpu]
        if staged is None or staged[0] != line:
            return False
        self.copies[cpu].update(staged[1])
        self._staged[cpu] = None
        return True

    def staged_line(self, cpu: int) -> Optional[int]:
        staged = self._staged[cpu]
        return None if staged is None else staged[0]

    def drop_line(self, cpu: int, line: int) -> None:
        """Invalidate *cpu*'s copy of *line* (coherence or conflict)."""
        copies = self.copies[cpu]
        for w in self.line_words(line):
            copies.pop(w, None)

    def writeback_line(self, cpu: int, line: int) -> None:
        """Flush *cpu*'s copy of *line* to memory (copy stays valid)."""
        copies = self.copies[cpu]
        for w in self.line_words(line):
            if w in copies:
                self.mem[w] = copies[w]

    # ------------------------------------------------------------------
    # Firefly update
    # ------------------------------------------------------------------
    def firefly_update(self, addr: int, holders) -> None:
        """Broadcast the latest value of *addr*'s word to *holders*.

        The update writes through to memory and patches every remote
        holder's copy in place (the writer's own copy is set by the write
        machinery itself).
        """
        w = word_of(addr)
        tok = self.latest.get(w, INIT)
        self.mem[w] = tok
        for cpu in holders:
            self.copies[cpu][w] = tok

    # ------------------------------------------------------------------
    # Bypass store register
    # ------------------------------------------------------------------
    def flush_store_reg(self, cpu: int, line: int, reg_bytes: int) -> None:
        """Commit the store register's words of *line*.

        The flush is the *architectural commit point* of a bypassed
        write: until the register hits the bus (write-back plus remote
        invalidation) the write is globally invisible, and two CPUs'
        registers racing on one line serialize in flush order, not in
        word-write order.  Only words actually written are committed (the
        hardware merges at word granularity); unwritten words of the
        register line keep their memory contents.
        """
        regs = self.store_regs[cpu]
        for w in range(line, line + reg_bytes, WORD_BYTES):
            if w in regs:
                tok = regs.pop(w)
                self.latest[w] = tok
                self.mem[w] = tok

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def architectural_memory(self, exclude=()) -> Dict[int, object]:
        """Final per-word architectural contents, for cross-scheme diffs.

        *exclude* lists addresses whose words are dropped — callers use it
        for lock and barrier words, whose multi-writer races make their
        final value legitimately timing- (and therefore scheme-)
        dependent.
        """
        excluded = {word_of(a) for a in exclude}
        return {w: tok for w, tok in self.latest.items() if w not in excluded}
