"""Conformance checking for the coherence machinery.

Three layers, all off by default:

* :mod:`repro.check.oracle` — a timing-free reference memory model
  (shadow memory over symbolic version tokens) that predicts the value
  every access must observe under per-location coherence;
* :mod:`repro.check.invariants` — a runtime checker attached to a
  :class:`~repro.sim.system.MultiprocessorSystem` that mirrors every data
  movement of the protocol into the oracle and enforces the structural
  MESI/Firefly invariants (SWMR, inclusion, single dirty owner,
  update-page legality, write-buffer FIFO order);
* :mod:`repro.check.fuzz` — a seeded adversarial trace generator with a
  shrinker, runnable as ``python -m repro.check``.

Enable per run with ``MultiprocessorSystem(..., check=True)``, with
``repro simulate --check``, or globally by setting the environment
variable named by :data:`REPRO_CHECK_ENV` (the test suite does).  This
module stays import-light on purpose: :mod:`repro.sim.system` imports it
unconditionally, and the heavy submodules load only when a checker is
actually attached.
"""

from __future__ import annotations

#: Environment variable enabling the checker (any value but "" and "0").
REPRO_CHECK_ENV = "REPRO_CHECK"

__all__ = ["REPRO_CHECK_ENV", "attach_checker"]


def attach_checker(system):
    """Attach a :class:`~repro.check.invariants.ConformanceChecker`."""
    from repro.check.invariants import attach_checker as _attach
    return _attach(system)
