"""Runtime conformance checker for the coherence protocol.

:func:`attach_checker` arms a freshly built
:class:`~repro.sim.system.MultiprocessorSystem` with a
:class:`ConformanceChecker` that follows every access through the memory
system and raises :class:`~repro.common.errors.ConformanceError` the
moment the protocol diverges from the reference model:

* **stale read** — a read observes a copy that is not the architecturally
  latest value of the word (checked against the
  :class:`~repro.check.oracle.ReferenceMemory`);
* **SWMR / single dirty owner** — more than one EXCLUSIVE/MODIFIED holder
  of a line, or an owned line with other copies outstanding;
* **inclusion** — an L1 line whose L2 line is not resident;
* **update-page legality** — a Firefly-update write must leave every
  pre-existing remote sharer resident (update, not invalidate);
* **write-buffer order** — FIFO entries must retire in non-decreasing
  completion order;
* **adaptive-policy conformance** — when a hybrid scheme's policy
  (:mod:`repro.memsys.adaptive`) is attached, every bus-level write
  decision is re-derived by an independent shadow model
  (:class:`_AdaptiveShadow`): a live update counter outside ``[0, N]``
  is ``adaptive-counter-range``, a broadcast update delivered to a copy
  whose budget is exhausted is ``update-past-budget``, and any other
  divergence between the policy's decision and the shadow's is
  ``adaptive-decision-mismatch``;
* **final diff** — after the run, every resident clean line must match
  memory, every dirty line must hold the latest values, every
  architecturally written value must still be reachable (no lost
  write-backs), and no shadow copy may outlive its line's residency.

Cost model: the checker is *never* consulted when disabled.  Hot-path
methods of :class:`~repro.memsys.hierarchy.CpuMemorySystem` are wrapped
per instance (plain attribute assignment — the class stays untouched),
and the processor's inline L1-hit fast path is forced into the full call
chain by replacing ``_pending_ready`` with an always-containing sentinel,
a forcing that ``tests/test_fastpath_equivalence.py`` proves metric-exact.
Cold bus-level paths in the controller carry explicit
``if self.checker is not None`` hooks, placed exactly where the hardware
moves data, so mutated protocol logic cannot dodge the model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ConformanceError
from repro.common.types import AdaptivePolicy
from repro.check.oracle import (INIT, ReferenceMemory, WORD_BYTES, ZERO,
                                word_of)
from repro.memsys.hierarchy import (LEVEL_BUFFER, LEVEL_L2, LEVEL_MEM,
                                    LEVEL_REGISTER, LEVEL_WB)
from repro.memsys.states import LineState
from repro.trace.blockop import BlockOpDescriptor

#: Read sources that are architecturally non-coherent by design: the
#: bypass source line register and the Blk_ByPref prefetch buffer are not
#: snooped, so (per the paper's hardware) they may legitimately serve data
#: that a concurrent writer has since replaced.
_UNCHECKED_LEVELS = (LEVEL_REGISTER, LEVEL_BUFFER)


class _AlwaysPending:
    """Sentinel for ``Processor._pending_ready`` containing every line.

    Forces the processor's inline clean-L1-hit fast path to take the full
    ``CpuMemorySystem.read`` call chain (where the checker's wrapper
    lives).  The slow path is bit-identical in metrics — enforced by
    ``test_forced_slow_path_matches``.
    """

    __slots__ = ()

    def __contains__(self, line: int) -> bool:
        return True


class _AdaptiveShadow:
    """Independent model of the attached adaptive update/invalidate policy.

    Rebuilt from the policy's
    :meth:`~repro.memsys.adaptive.BaseAdaptivePolicy.describe` parameters
    only — deliberately *not* from the policy classes themselves, so a
    mutated policy (:mod:`repro.check.mutants`) is judged against clean
    logic.  Residency and budget resets are fed by the same controller
    events the oracle sees (fills and invalidations); every bus-level
    write decision is re-derived here and compared against the policy's
    in :meth:`ConformanceChecker.adaptive_decision`.
    """

    def __init__(self, params: Dict[str, object]) -> None:
        self.kind = params["kind"]
        self.page_bytes = params["page_bytes"]
        self.n = params.get("n")
        self.threshold = params.get("threshold")
        self.pages = set(params.get("pages") or ())
        self._resident: Dict[int, Set[int]] = {}
        self._budget: Dict[Tuple[int, int], int] = {}
        self._invalidate_mode: Set[int] = set()

    # -- residency events (mirroring the policy's on_fill/on_invalidate)
    def on_fill(self, cpu: int, line: int) -> None:
        self._resident.setdefault(line, set()).add(cpu)
        self._budget.pop((cpu, line), None)

    def on_invalidate(self, cpu: int, line: int) -> None:
        self._budget.pop((cpu, line), None)
        holders = self._resident.get(line)
        if holders is None:
            return
        holders.discard(cpu)
        if not holders:
            del self._resident[line]
            self._invalidate_mode.discard(line)

    # -- the clean decision logic
    def expected(self, cpu: int, addr: int, line: int,
                 holders: List[int]) -> Tuple[bool, Tuple[int, ...],
                                              Tuple[int, ...]]:
        """The ``(update, to_update, to_invalidate)`` a clean policy would
        pick; pure — shadow state is advanced separately by :meth:`apply`.
        """
        if self.kind == AdaptivePolicy.UPDATE_N:
            n = self.n
            up = tuple(i for i in holders
                       if self._budget.get((i, line), n) > 0)
            if not up:
                return (False, (), tuple(holders))
            inv = tuple(i for i in holders
                        if self._budget.get((i, line), n) <= 0)
            return (True, up, inv)
        if self.kind == AdaptivePolicy.DEGREE:
            degree = len(holders)
            if degree == 0:
                return (False, (), ())
            if line in self._invalidate_mode or degree > self.threshold:
                return (False, (), tuple(holders))
            return (True, tuple(holders), ())
        page = addr - (addr % self.page_bytes)
        if page in self.pages:
            return (True, tuple(holders), ())
        return (False, (), tuple(holders))

    def apply(self, cpu: int, addr: int, line: int, holders: List[int],
              expected) -> None:
        """Advance shadow state past a verified decision."""
        update, to_update, _ = expected
        if self.kind == AdaptivePolicy.UPDATE_N:
            # The write is a bus-visible local re-reference by the writer.
            self._budget.pop((cpu, line), None)
            if update:
                n = self.n
                for i in to_update:
                    self._budget[(i, line)] = (
                        self._budget.get((i, line), n) - 1)
        elif self.kind == AdaptivePolicy.DEGREE:
            if not holders:
                self._invalidate_mode.discard(line)
            elif not update:
                self._invalidate_mode.add(line)


class ConformanceChecker:
    """Mirrors protocol data movement into the oracle and checks it."""

    def __init__(self, system) -> None:
        self.system = system
        self.controller = system.controller
        machine = system.config.machine
        self.l2_line_bytes = machine.l2.line_bytes
        self.l1_line_bytes = machine.l1d.line_bytes
        self.oracle = ReferenceMemory(system.trace.num_cpus,
                                      self.l2_line_bytes)
        #: Accesses the checker actually inspected (sanity/reporting).
        self.accesses_checked = 0
        #: Pre-write remote sharers of an update-page line, per CPU.
        self._update_sharers: Dict[int, Tuple[int, List[int]]] = {}
        #: Shadow model of the adaptive policy, when one is attached.
        adaptive = self.controller.adaptive
        self._shadow = (_AdaptiveShadow(adaptive.describe())
                        if adaptive is not None else None)

    # ------------------------------------------------------------------
    # Error helper
    # ------------------------------------------------------------------
    def _fail(self, kind: str, message: str, **details) -> None:
        raise ConformanceError(f"{kind}: {message}", kind=kind,
                               details=details)

    # ==================================================================
    # Hooks called by the coherence controller / DMA engine / hierarchy
    # ==================================================================
    def invalidate(self, cpu: int, line: int) -> None:
        """*cpu*'s copy of *line* was invalidated."""
        self.oracle.drop_line(cpu, line)
        if self._shadow is not None:
            self._shadow.on_invalidate(cpu, line)

    def fill_from_memory(self, cpu: int, line: int) -> None:
        """Memory supplies *line* to *cpu* (staged until the L2 install)."""
        self.oracle.stage_from_memory(cpu, line)

    def fill_from_cache(self, cpu: int, line: int, holders: List[int]) -> None:
        """A holder supplies *line* cache-to-cache for a read.

        Called before the state transition, so a MODIFIED supplier is
        still visible; per Illinois it writes the line back while
        supplying it.
        """
        ports = self.controller.ports
        dirty = None
        for i in holders:
            if ports[i].l2.state_of(line) == LineState.MODIFIED:
                dirty = i
                break
        supplier = dirty if dirty is not None else holders[0]
        self.oracle.stage_from_cpu(cpu, supplier, line,
                                   writeback=dirty is not None)

    def fill_for_ownership(self, cpu: int, line: int,
                           dirty: Optional[int]) -> None:
        """Read-for-ownership supply: dirty holder or memory, no writeback."""
        if dirty is not None:
            self.oracle.stage_from_cpu(cpu, dirty, line, writeback=False)
        else:
            self.oracle.stage_from_memory(cpu, line)

    def l2_install(self, cpu: int, line: int, evicted: int,
                   evicted_dirty: bool) -> None:
        """*line* was installed in *cpu*'s L2, evicting *evicted*."""
        if evicted != -1:
            if evicted_dirty:
                self.oracle.writeback_line(cpu, evicted)
            self.oracle.drop_line(cpu, evicted)
        if not self.oracle.commit_fill(cpu, line):
            self._fail("unstaged-fill",
                       f"cpu {cpu} installed line {line:#x} that no bus "
                       f"transfer supplied", cpu=cpu, line=line)
        if self._shadow is not None:
            if evicted != -1:
                self._shadow.on_invalidate(cpu, evicted)
            self._shadow.on_fill(cpu, line)

    def update_word(self, cpu: int, addr: int, holders: List[int]) -> None:
        """Firefly broadcast of *addr*'s word to the listed holders."""
        self.oracle.firefly_update(addr, holders)

    def adaptive_decision(self, cpu: int, addr: int, line: int,
                          decision) -> None:
        """The adaptive policy routed a bus-level write; re-derive it.

        Called from :meth:`~repro.memsys.coherence.CoherenceController.
        upgrade` / ``fetch_owned`` right after the policy decided, before
        the route executes.  The shadow recomputes the decision the clean
        logic would make from the controller's actual port states and its
        own replayed budget/epoch state.
        """
        shadow = self._shadow
        policy = self.controller.adaptive
        if shadow.kind == AdaptivePolicy.UPDATE_N:
            for (i, l), left in policy.counters():
                if not 0 <= left <= shadow.n:
                    self._fail(
                        "adaptive-counter-range",
                        f"update budget of cpu {i} line {l:#x} is {left}, "
                        f"outside [0, {shadow.n}]", cpu=i, line=l,
                        budget=left, n=shadow.n)
        ports = self.controller.ports
        holders = [i for i, p in enumerate(ports)
                   if i != cpu
                   and p.l2.state_of(line) != LineState.INVALID]
        expected = shadow.expected(cpu, addr, line, holders)
        exp_update, exp_up, exp_inv = expected
        if (shadow.kind == AdaptivePolicy.UPDATE_N and decision.update):
            past = sorted(set(decision.to_update) & set(exp_inv))
            if past:
                self._fail(
                    "update-past-budget",
                    f"write to {addr:#x} by cpu {cpu} broadcast an update "
                    f"to cpus {past} whose budgets are exhausted",
                    cpu=cpu, addr=addr, line=line, past=past)
        if (decision.update != exp_update
                or set(decision.to_update) != set(exp_up)
                or set(decision.to_invalidate) != set(exp_inv)):
            self._fail(
                "adaptive-decision-mismatch",
                f"write to {addr:#x} by cpu {cpu}: policy decided "
                f"(update={decision.update}, to_update="
                f"{sorted(decision.to_update)}, to_invalidate="
                f"{sorted(decision.to_invalidate)}) but the shadow "
                f"expects (update={exp_update}, to_update="
                f"{sorted(exp_up)}, to_invalidate={sorted(exp_inv)})",
                cpu=cpu, addr=addr, line=line)
        shadow.apply(cpu, addr, line, holders, expected)

    def writeback(self, cpu: int, line: int) -> None:
        """*cpu* flushed *line* to memory, keeping its copy."""
        self.oracle.writeback_line(cpu, line)

    def bypass_flush(self, cpu: int, line: int) -> None:
        """The bypass destination register flushed *line* to memory."""
        self.oracle.flush_store_reg(cpu, line, self.l1_line_bytes)

    def dma_commit(self, cpu: int, desc: BlockOpDescriptor) -> None:
        """The DMA engine performed block operation *desc*.

        Runs after the source and destination snoops, so memory already
        holds any dirty source data — if it does not, a snoop was lost
        and the engine would have copied stale bytes.
        """
        o = self.oracle
        if desc.is_copy:
            for off in range(0, desc.size, WORD_BYTES):
                sw = word_of(desc.src + off)
                if o.mem.get(sw, INIT) != o.latest.get(sw, INIT):
                    self._fail(
                        "dma-stale-source",
                        f"DMA copy reads {sw:#x} from memory but the "
                        f"latest value was never written back",
                        cpu=cpu, addr=sw, mem=o.mem.get(sw, INIT),
                        latest=o.latest.get(sw, INIT))
        dst_words = []
        for off in range(0, desc.size, WORD_BYTES):
            dw = word_of(desc.dst + off)
            tok = (o.latest.get(word_of(desc.src + off), INIT)
                   if desc.is_copy else ZERO)
            o.latest[dw] = tok
            o.mem[dw] = tok
            dst_words.append(dw)
        # Snooping updated every cached destination copy in place.
        ports = self.controller.ports
        for i, port in enumerate(ports):
            copies = o.copies[i]
            for dw in dst_words:
                if port.l2.state_of(dw) != LineState.INVALID:
                    copies[dw] = o.latest[dw]

    # ==================================================================
    # Access-level checks (driven by the per-instance wrappers)
    # ==================================================================
    def write_token(self, cpu: int, proc, addr: int) -> object:
        """Token for the write *proc* is currently performing."""
        pos = proc.pos - 1
        rec = proc.stream[pos]
        desc = proc._blk_desc
        if rec.blockop and desc is not None and desc.contains_dst(addr):
            if desc.is_copy:
                return self.oracle.latest_value(desc.src + (addr - desc.dst))
            return ZERO
        return (cpu, pos)

    def begin_write(self, cpu: int, proc, addr: int) -> object:
        """Commit the write architecturally, before the machinery runs.

        The commit must precede the drain: a Firefly broadcast during the
        drain reads the latest token.  The writer's own copy is patched in
        :meth:`end_write` — after the drain, whose ownership fetch fills
        the line with pre-write data.
        """
        token = self.write_token(cpu, proc, addr)
        controller = self.controller
        if controller.is_update_addr(addr):
            line = self.oracle.line_of(addr)
            ports = controller.ports
            sharers = [i for i, p in enumerate(ports)
                       if i != cpu
                       and p.l2.state_of(line) != LineState.INVALID]
            self._update_sharers[cpu] = (line, sharers)
        self.oracle.commit_write(addr, token)
        return token

    def end_write(self, cpu: int, addr: int, token: object,
                  level: str) -> None:
        self.oracle.set_copy(cpu, addr, token)
        pre = self._update_sharers.pop(cpu, None)
        if pre is not None:
            line, sharers = pre
            ports = self.controller.ports
            for i in sharers:
                if ports[i].l2.state_of(line) == LineState.INVALID:
                    self._fail(
                        "update-invalidated-sharer",
                        f"Firefly write to {addr:#x} by cpu {cpu} "
                        f"invalidated sharer cpu {i} instead of updating "
                        f"it", cpu=cpu, addr=addr, sharer=i, line=line)

    def observe_read(self, cpu: int, addr: int, level: str) -> None:
        """A cached read completed; the copy must hold the latest value."""
        if level in _UNCHECKED_LEVELS:
            return
        expected = self.oracle.latest_value(addr)
        got = self.oracle.copy_value(cpu, addr)
        if got != expected:
            self._fail("stale-read",
                       f"cpu {cpu} read {addr:#x} and observed {got!r}, "
                       f"architecturally latest is {expected!r}",
                       cpu=cpu, addr=addr, got=got, expected=expected)

    def observe_read_bypass(self, cpu: int, addr: int, level: str) -> None:
        """A bypassing read completed.

        Only the paths the bypass machinery serves itself are checked
        here; a fallback through the normal cached path was already
        checked by the nested :meth:`observe_read`.
        """
        if level == LEVEL_L2:
            self.observe_read(cpu, addr, level)
        elif level == LEVEL_MEM:
            expected = self.oracle.latest_value(addr)
            got = self.oracle.mem_value(addr)
            if got != expected:
                self._fail("stale-bypass-read",
                           f"cpu {cpu} bypass-read {addr:#x} from memory "
                           f"and observed {got!r}, latest is {expected!r}",
                           cpu=cpu, addr=addr, got=got, expected=expected)

    def after_access(self, cpu: int, addr: int) -> None:
        """Structural invariants around the line just touched."""
        self.accesses_checked += 1
        self.check_line(self.oracle.line_of(addr))
        mem = self.system.memories[cpu]
        self._check_wb(cpu, mem.wb1)
        self._check_wb(cpu, mem.wb2)

    # ==================================================================
    # Structural invariants
    # ==================================================================
    def check_line(self, line: int) -> None:
        """SWMR, single dirty owner, and inclusion for one L2 line."""
        ports = self.controller.ports
        owned = present = 0
        for port in ports:
            state = port.l2.state_of(line)
            if state != LineState.INVALID:
                present += 1
                if state in (LineState.EXCLUSIVE, LineState.MODIFIED):
                    owned += 1
        if owned > 1:
            self._fail("multiple-owners",
                       f"line {line:#x} has {owned} EXCLUSIVE/MODIFIED "
                       f"holders", line=line, owners=owned)
        if owned == 1 and present > 1:
            self._fail("owned-and-shared",
                       f"line {line:#x} is owned while {present - 1} other "
                       f"copies are outstanding", line=line, present=present)
        l1_bytes = self.l1_line_bytes
        for cpu, port in enumerate(ports):
            if port.l2.state_of(line) != LineState.INVALID:
                continue
            for sub in range(line, line + self.l2_line_bytes, l1_bytes):
                if port.l1d.present(sub) or port.l1i.present(sub):
                    self._fail("inclusion",
                               f"cpu {cpu} holds L1 line {sub:#x} whose L2 "
                               f"line {line:#x} is not resident",
                               cpu=cpu, line=line, sub=sub)

    def _check_wb(self, cpu: int, wb) -> None:
        """FIFO drain order: completion times must be non-decreasing."""
        prev = None
        for end in wb._entries:
            if prev is not None and end < prev:
                self._fail("wb-order",
                           f"cpu {cpu} {wb.name} retires out of FIFO order "
                           f"({end} after {prev})", cpu=cpu, buffer=wb.name)
            prev = end

    # ==================================================================
    # End-of-run verification
    # ==================================================================
    def verify_final(self) -> None:
        """Diff the simulated hierarchy against the reference model."""
        o = self.oracle
        ports = self.controller.ports
        for cpu in range(o.num_cpus):
            staged = o.staged_line(cpu)
            if staged is not None:
                self._fail("dangling-fill",
                           f"cpu {cpu}: bus supplied line {staged:#x} but "
                           f"no L2 install followed", cpu=cpu, line=staged)
            if o.store_regs[cpu]:
                self._fail("unflushed-store-register",
                           f"cpu {cpu}: bypass register still holds "
                           f"{sorted(o.store_regs[cpu])} after the run",
                           cpu=cpu)
        lines = set()
        for port in ports:
            lines.update(port.l2.resident_lines())
        for line in lines:
            self.check_line(line)
        for cpu, port in enumerate(ports):
            copies = o.copies[cpu]
            for line in port.l2.resident_lines():
                state = port.l2.state_of(line)
                for w in o.line_words(line):
                    held = copies.get(w, INIT)
                    if state == LineState.MODIFIED:
                        want = o.latest.get(w, INIT)
                        if held != want:
                            self._fail(
                                "dirty-copy-stale",
                                f"cpu {cpu} holds {w:#x} MODIFIED with "
                                f"{held!r}, latest is {want!r}",
                                cpu=cpu, addr=w, got=held, expected=want)
                    else:
                        want = o.mem.get(w, INIT)
                        if held != want:
                            self._fail(
                                "clean-copy-diverged",
                                f"cpu {cpu} holds {w:#x} "
                                f"{LineState(state).name} with {held!r}, "
                                f"memory has {want!r} — a write-back was "
                                f"lost or a fill went stale",
                                cpu=cpu, addr=w, got=held, expected=want)
            for w in copies:
                if port.l2.state_of(w) == LineState.INVALID:
                    self._fail("ghost-copy",
                               f"cpu {cpu} shadow-holds {w:#x} but its line "
                               f"is not resident", cpu=cpu, addr=w)
        for w, tok in o.latest.items():
            if o.mem.get(w, INIT) == tok:
                continue
            line = o.line_of(w)
            for cpu, port in enumerate(ports):
                if (port.l2.state_of(line) == LineState.MODIFIED
                        and o.copies[cpu].get(w, INIT) == tok):
                    break
            else:
                self._fail("lost-write",
                           f"latest value {tok!r} of {w:#x} is neither in "
                           f"memory nor in any dirty line — the write was "
                           f"dropped", addr=w, token=tok)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def architectural_memory(self, exclude=()) -> Dict[int, object]:
        """Final architectural contents (see the oracle's docstring)."""
        return self.oracle.architectural_memory(exclude)


# ======================================================================
# Attachment
# ======================================================================
def attach_checker(system) -> ConformanceChecker:
    """Arm *system* with a conformance checker; returns it.

    Must run before :meth:`~repro.sim.system.MultiprocessorSystem.run`.
    """
    checker = ConformanceChecker(system)
    system.controller.checker = checker
    for proc, mem in zip(system.processors, system.memories):
        proc._pending_ready = _AlwaysPending()
        _wrap_cpu(checker, mem, proc)
    _wrap_finalize(checker, system)
    return checker


def _wrap_cpu(checker: ConformanceChecker, mem, proc) -> None:
    """Wrap one CPU's access methods on the *instance* (class untouched)."""
    cpu = mem.cpu_id
    orig_read = mem.read
    orig_write = mem.write
    orig_write_cycles = mem.write_cycles
    orig_read_bypass = mem.read_bypass
    orig_write_bypass = mem.write_bypass

    def read(addr, t):
        res = orig_read(addr, t)
        checker.observe_read(cpu, addr, res.level)
        checker.after_access(cpu, addr)
        return res

    def write(addr, t):
        token = checker.begin_write(cpu, proc, addr)
        res = orig_write(addr, t)
        checker.end_write(cpu, addr, token, res.level)
        checker.after_access(cpu, addr)
        return res

    def write_cycles(addr, t):
        token = checker.begin_write(cpu, proc, addr)
        out = orig_write_cycles(addr, t)
        checker.end_write(cpu, addr, token, LEVEL_WB)
        checker.after_access(cpu, addr)
        return out

    def read_bypass(addr, t):
        res = orig_read_bypass(addr, t)
        checker.observe_read_bypass(cpu, addr, res.level)
        checker.after_access(cpu, addr)
        return res

    def write_bypass(addr, t):
        # A register-buffered write is globally invisible until the flush
        # commits it (bypass_flush), so only the token is computed here;
        # the fallback to the cached path re-enters the wrapped write,
        # which commits with the normal begin/end protocol.
        token = checker.write_token(cpu, proc, addr)
        res = orig_write_bypass(addr, t)
        if res.level == LEVEL_REGISTER:
            checker.oracle.set_store_reg(cpu, addr, token)
        checker.after_access(cpu, addr)
        return res

    mem.read = read
    mem.write = write
    mem.write_cycles = write_cycles
    mem.read_bypass = read_bypass
    mem.write_bypass = write_bypass


def _wrap_finalize(checker: ConformanceChecker, system) -> None:
    orig_finalize = system._finalize

    def _finalize():
        metrics = orig_finalize()
        checker.verify_final()
        return metrics

    system._finalize = _finalize
