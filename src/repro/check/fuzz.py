"""Seeded adversarial trace generation, differential runs, and shrinking.

The generator builds small multiprocessor traces that concentrate on the
protocol corners where coherence bugs hide: tight sharing and false
sharing inside one L2 line, Firefly update pages, block operations (with
word-, bypass- and DMA-level execution, sometimes landing on update
pages), lock critical sections and global barriers.

Traces are generated from *events* — one high-level action each — and a
failing case is shrunk at the event level: removing an event always
leaves a structurally valid trace (locks stay balanced, barriers stay
grouped across CPUs, block operations stay bracketed), so the shrinker
never wastes runs on traces the validator rejects.  The result of a
shrink is saved through :mod:`repro.trace.textio` with enough metadata
(configuration, Firefly pages, active mutant) for
``python -m repro.check --replay <file>`` to reproduce it byte-for-byte.

Address map (disjoint regions keep the failure modes separable):

=================  ====================================================
``0x010000``       instruction addresses (per-CPU 4 KiB slices)
``0x040000``       shared words — 3 L2 lines, true *and* false sharing
``0x080000``       per-CPU private words (64 KiB slices)
``0x200000``       per-CPU block-op source regions
``0x300000``       per-CPU block-op destination regions
``0x500000``       the Firefly update page: shared words in the first
                   half, per-CPU block-op destination slices in the rest
``0x600000``       lock words;  ``0x610000`` the barrier word
=================  ====================================================
"""

from __future__ import annotations

import contextlib
import random
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConformanceError
from repro.common.params import machine_for
from repro.check.mutants import MUTANTS
from repro.sim.config import all_configs
from repro.trace import record as rec
from repro.trace import textio
from repro.trace.stream import Trace, TraceBuilder

WORD = 4

PC_BASE = 0x010000
SHARED_BASE = 0x040000
PRIVATE_BASE = 0x080000
BLOCK_SRC_BASE = 0x200000
BLOCK_DST_BASE = 0x300000
#: Block-op destination region shared by ALL CPUs — only used on racy
#: rounds, where overlapping block ops race their store registers / DMA
#: transfers on the same lines (bypassed writes commit at flush time, a
#: class of bug only cross-CPU dst contention exposes).
SHARED_DST_BASE = 0x380000
UPDATE_PAGE = 0x500000
LOCK_BASE = 0x600000
BARRIER_ADDR = 0x610000

#: Shared words under test: 24 words spanning three 32-byte L2 lines, so
#: distinct CPUs contend both for the same word and for neighbours in the
#: same line (false sharing).
SHARED_WORDS = 24
UPDATE_WORDS = 8
PRIVATE_WORDS = 16
NUM_LOCKS = 2

#: Metadata keys a saved failure carries for replay.
META_CONFIG = "check_config"
META_UPDATE_PAGES = "check_update_pages"
META_MUTANT = "check_mutant"
META_SEED = "check_seed"


def fuzz_configs() -> List[str]:
    """Configuration names the fuzzer sweeps (every registered scheme)."""
    return list(all_configs())


def sync_words() -> List[int]:
    """Lock/barrier addresses — excluded from cross-scheme memory diffs.

    Their final values depend on which CPU's read-modify-write commits
    last, which is timing- (hence scheme-) dependent even on otherwise
    race-free traces.
    """
    return [LOCK_BASE + i * 64 for i in range(NUM_LOCKS)] + [BARRIER_ADDR]


class FuzzCase:
    """One generated scenario: per-CPU event lists plus its provenance."""

    __slots__ = ("num_cpus", "events", "seed", "race_free")

    def __init__(self, num_cpus: int, events: List[List[tuple]],
                 seed: int, race_free: bool) -> None:
        self.num_cpus = num_cpus
        self.events = events
        self.seed = seed
        self.race_free = race_free

    def __len__(self) -> int:
        return sum(len(evs) for evs in self.events)

    def replaced(self, events: List[List[tuple]]) -> "FuzzCase":
        return FuzzCase(self.num_cpus, events, self.seed, self.race_free)


# ======================================================================
# Generation
# ======================================================================
def generate_case(seed: int, num_cpus: int = 4, length: int = 24,
                  race_free: bool = True) -> FuzzCase:
    """Build one adversarial case from *seed*, reproducibly.

    ``race_free`` restricts every data word to a single writing CPU, which
    makes the final architectural memory scheme-independent (the property
    the differential test needs); racy cases exercise the oracle under
    genuine contention instead.
    """
    rng = random.Random(seed)
    shared = [SHARED_BASE + i * WORD for i in range(SHARED_WORDS)]
    update = [UPDATE_PAGE + i * WORD for i in range(UPDATE_WORDS)]
    writer = {w: rng.randrange(num_cpus) for w in shared + update}
    locks = [LOCK_BASE + i * 64 for i in range(NUM_LOCKS)]
    events: List[List[tuple]] = [[] for _ in range(num_cpus)]

    def pc_for(cpu: int) -> int:
        return PC_BASE + cpu * 0x1000 + rng.randrange(64) * 16

    def my_words(cpu: int, pool: List[int]) -> List[int]:
        if not race_free:
            return pool
        mine = [w for w in pool if writer[w] == cpu]
        return mine or pool[:1]  # degenerate seeds: fall back, still racy-safe for reads

    for cpu in range(num_cpus):
        private = [PRIVATE_BASE + cpu * 0x10000 + i * WORD
                   for i in range(PRIVATE_WORDS)]
        src_base = BLOCK_SRC_BASE + cpu * 0x40000
        dst_base = BLOCK_DST_BASE + cpu * 0x40000
        update_dst = UPDATE_PAGE + 2048 + cpu * 256
        for _ in range(length):
            roll = rng.random()
            pc = pc_for(cpu)
            if roll < 0.28:
                events[cpu].append(("read", rng.choice(shared), pc))
            elif roll < 0.44:
                pool = my_words(cpu, shared)
                if race_free and writer[pool[0]] != cpu:
                    events[cpu].append(("read", pool[0], pc))
                else:
                    events[cpu].append(("write", rng.choice(pool), pc))
            elif roll < 0.56:
                addr = rng.choice(private)
                kind = "write" if rng.random() < 0.5 else "read"
                events[cpu].append((kind, addr, pc))
            elif roll < 0.62:
                events[cpu].append(("read", rng.choice(update), pc))
            elif roll < 0.70:
                pool = my_words(cpu, update)
                if race_free and writer[pool[0]] != cpu:
                    events[cpu].append(("read", pool[0], pc))
                else:
                    events[cpu].append(("write", rng.choice(pool), pc))
            elif roll < 0.80:
                size = rng.choice((16, 32, 48, 64, 96, 128))
                src = src_base + rng.randrange(4) * 128
                roll2 = rng.random()
                if roll2 < 0.25:
                    dst = update_dst
                    size = min(size, 64)
                elif not race_free and roll2 < 0.55:
                    dst = SHARED_DST_BASE + rng.randrange(4) * 128
                else:
                    dst = dst_base + rng.randrange(4) * 128
                if rng.random() < 0.5:
                    # Dirty a source line first, so DMA/cache-supply
                    # snooping on the source path is actually exercised.
                    events[cpu].append(("write", src + rng.randrange(4) * WORD,
                                        pc_for(cpu)))
                events[cpu].append(("copy", src, dst, size, pc))
            elif roll < 0.86:
                size = rng.choice((16, 32, 64, 128))
                roll2 = rng.random()
                if roll2 < 0.25:
                    dst, size = update_dst, min(size, 64)
                elif not race_free and roll2 < 0.55:
                    dst = SHARED_DST_BASE + rng.randrange(4) * 128
                else:
                    dst = dst_base + rng.randrange(4) * 128
                events[cpu].append(("zero", dst, size, pc))
            elif roll < 0.93:
                lock = rng.choice(locks)
                inner = []
                pool = my_words(cpu, shared)
                for _ in range(rng.randint(1, 3)):
                    w = rng.choice(pool)
                    if race_free and writer[w] != cpu:
                        inner.append(("read", w, pc_for(cpu)))
                    else:
                        inner.append((rng.choice(("read", "write")), w,
                                      pc_for(cpu)))
                events[cpu].append(("lock", lock, pc, tuple(inner)))
            else:
                events[cpu].append(("pref", rng.choice(shared), pc))
    for _ in range(rng.randint(0, 2)):
        for cpu in range(num_cpus):
            pos = rng.randrange(len(events[cpu]) + 1)
            events[cpu].insert(pos, ("barrier", BARRIER_ADDR, pc_for(cpu)))
    return FuzzCase(num_cpus, events, seed, race_free)


def build_trace(case: FuzzCase) -> Trace:
    """Expand a case's events into a validated :class:`Trace`."""
    builder = TraceBuilder(case.num_cpus)
    for cpu, evs in enumerate(case.events):
        for ev in evs:
            _emit(builder, cpu, ev)
    trace = builder.build(validate=True)
    trace.metadata[META_SEED] = case.seed
    return trace


def _emit(builder: TraceBuilder, cpu: int, ev: tuple) -> None:
    kind = ev[0]
    if kind == "read":
        builder.emit(cpu, rec.read(ev[1], pc=ev[2], icount=2))
    elif kind == "write":
        builder.emit(cpu, rec.write(ev[1], pc=ev[2], icount=2))
    elif kind == "pref":
        builder.emit(cpu, rec.prefetch(ev[1], pc=ev[2]))
    elif kind == "copy":
        builder.emit_block_copy(cpu, ev[1], ev[2], ev[3], pc=ev[4])
    elif kind == "zero":
        builder.emit_block_zero(cpu, ev[1], ev[2], pc=ev[3])
    elif kind == "lock":
        builder.emit(cpu, rec.lock_acquire(ev[1], pc=ev[2]))
        for inner in ev[3]:
            _emit(builder, cpu, inner)
        builder.emit(cpu, rec.lock_release(ev[1], pc=ev[2]))
    elif kind == "barrier":
        builder.emit(cpu, rec.barrier(ev[1], builder.trace.num_cpus,
                                      pc=ev[2]))
    else:  # pragma: no cover - generator and emitter move in lockstep
        raise ValueError(f"unknown fuzz event {kind!r}")


# ======================================================================
# Execution
# ======================================================================
class CaseResult:
    """Outcome of one checked simulation."""

    __slots__ = ("error", "memory", "accesses")

    def __init__(self, error: Optional[ConformanceError],
                 memory: Optional[Dict[int, object]],
                 accesses: int) -> None:
        self.error = error
        self.memory = memory
        self.accesses = accesses

    @property
    def ok(self) -> bool:
        return self.error is None


def run_trace(trace: Trace, config_name: str, *,
              mutant_name: str = "") -> CaseResult:
    """Simulate *trace* under *config_name* with the checker armed."""
    from repro.sim.system import MultiprocessorSystem
    config = all_configs()[config_name]
    ctx = (MUTANTS[mutant_name][0]() if mutant_name
           else contextlib.nullcontext())
    with ctx:
        system = MultiprocessorSystem(trace, config,
                                      update_pages=[UPDATE_PAGE],
                                      check=True)
        try:
            system.run()
        except ConformanceError as err:
            return CaseResult(err, None, system.checker.accesses_checked)
        memory = system.checker.architectural_memory(exclude=sync_words())
        return CaseResult(None, memory, system.checker.accesses_checked)


def run_case(case: FuzzCase, config_name: str, *,
             mutant_name: str = "") -> CaseResult:
    return run_trace(build_trace(case), config_name,
                     mutant_name=mutant_name)


# ======================================================================
# Fuzz loop
# ======================================================================
class FuzzFailure:
    """One detected violation, with everything needed to reproduce it."""

    __slots__ = ("case", "config_name", "mutant_name", "error")

    def __init__(self, case: FuzzCase, config_name: str, mutant_name: str,
                 error: ConformanceError) -> None:
        self.case = case
        self.config_name = config_name
        self.mutant_name = mutant_name
        self.error = error


def fuzz_round(seed: int, configs: Optional[List[str]] = None,
               num_cpus: int = 4, length: int = 24) -> Optional[FuzzFailure]:
    """One round: every scheme runs the same case; race-free rounds also
    diff each scheme's final architectural memory against Base."""
    configs = configs or fuzz_configs()
    race_free = seed % 2 == 0
    case = generate_case(seed, num_cpus=num_cpus, length=length,
                         race_free=race_free)
    memories: Dict[str, Dict[int, object]] = {}
    for name in configs:
        result = run_case(case, name)
        if result.error is not None:
            return FuzzFailure(case, name, "", result.error)
        memories[name] = result.memory
    if race_free and "Base" in memories:
        base = memories["Base"]
        for name, memory in memories.items():
            if memory != base:
                diff = sorted(set(base) ^ set(memory)
                              | {w for w in set(base) & set(memory)
                                 if base[w] != memory[w]})
                err = ConformanceError(
                    f"differential: {name} final memory diverges from Base "
                    f"at {[hex(w) for w in diff[:8]]}",
                    kind="differential", details={"config": name})
                return FuzzFailure(case, name, "", err)
    return None


def run_fuzz(rounds: int, seed: int, configs: Optional[List[str]] = None,
             num_cpus: int = 4, length: int = 24,
             progress: Optional[Callable[[int], None]] = None,
             ) -> Optional[FuzzFailure]:
    """Run *rounds* fuzz rounds; returns the first failure, if any."""
    for i in range(rounds):
        failure = fuzz_round(seed + i, configs, num_cpus, length)
        if failure is not None:
            return failure
        if progress is not None:
            progress(i + 1)
    return None


# ======================================================================
# Profile-driven fuzzing: generated synthetic workloads
# ======================================================================
class ProfileFailure:
    """A conformance violation on a generated workload.

    Carries the self-describing workload name (enough to regenerate the
    trace from scratch) plus the trace that failed, for saving.
    """

    __slots__ = ("workload_name", "config_name", "error", "trace")

    def __init__(self, workload_name: str, config_name: str,
                 error: ConformanceError, trace: Trace) -> None:
        self.workload_name = workload_name
        self.config_name = config_name
        self.error = error
        self.trace = trace


def run_workload_trace(trace: Trace, config_name: str) -> CaseResult:
    """Checked simulation of a synthetic-workload trace.

    Unlike :func:`run_trace` the Firefly update pages come from the
    kernel layout (the SYNC_PAGE holding barriers, locks and the shared
    core), and the machine widens to the trace's CPU count.  No final
    architectural memory is collected: generated workloads contain
    genuine data races, so cross-scheme memory diffs do not apply — the
    oracle and invariant checker run throughout instead.
    """
    from repro.sim.system import MultiprocessorSystem
    from repro.synthetic.layout import SYNC_PAGE
    machine = machine_for(trace.num_cpus)
    config = all_configs(machine)[config_name]
    system = MultiprocessorSystem(trace, config, update_pages=[SYNC_PAGE],
                                  check=True)
    try:
        system.run()
    except ConformanceError as err:
        return CaseResult(err, None, system.checker.accesses_checked)
    return CaseResult(None, None, system.checker.accesses_checked)


def run_profile_fuzz(samples: int, seed: int = 0,
                     configs: Optional[List[str]] = None,
                     scale: float = 0.04,
                     families: Optional[List[str]] = None,
                     progress: Optional[Callable[[int, str], None]] = None,
                     ) -> Optional[ProfileFailure]:
    """Sample *samples* generated workloads; run each under every scheme.

    Workloads come from :func:`repro.synthetic.generator.sample` —
    coverage-first over (family, intensity, pattern) points — and each
    trace runs under all *configs* with the oracle + invariant checker
    armed.  Returns the first failure, if any.
    """
    from repro.synthetic import generator
    from repro.synthetic.layout import SYNC_PAGE
    configs = configs or fuzz_configs()
    workloads = generator.sample(samples, seed=seed, families=families)
    for i, workload in enumerate(workloads):
        trace = workload.generate(scale=scale)
        for config_name in configs:
            result = run_workload_trace(trace, config_name)
            if result.error is not None:
                trace.metadata[META_CONFIG] = config_name
                trace.metadata[META_UPDATE_PAGES] = [SYNC_PAGE]
                return ProfileFailure(workload.name, config_name,
                                      result.error, trace)
        if progress is not None:
            progress(i + 1, workload.name)
    return None


def save_profile_failure(failure: ProfileFailure, path: str) -> None:
    """Serialize the failing workload trace for ``--replay``."""
    with open(path, "w") as fp:
        textio.dump(failure.trace, fp)


# ======================================================================
# Shrinking
# ======================================================================
def _candidates(case: FuzzCase) -> Iterator[tuple]:
    """Removal/reduction candidates, safest-order for one greedy pass.

    Descending indices, so earlier candidates stay valid after a removal
    is accepted mid-pass.
    """
    barrier_counts = [sum(1 for ev in evs if ev[0] == "barrier")
                      for evs in case.events]
    for k in range(min(barrier_counts) - 1, -1, -1):
        yield ("bar", k)
    for cpu, evs in enumerate(case.events):
        for idx in range(len(evs) - 1, -1, -1):
            ev = evs[idx]
            if ev[0] == "barrier":
                continue
            yield ("ev", cpu, idx)
            if ev[0] == "lock":
                for j in range(len(ev[3]) - 1, -1, -1):
                    yield ("inner", cpu, idx, j)
            elif ev[0] in ("copy", "zero") and ev[-2] > 2 * WORD:
                yield ("half", cpu, idx)


def _apply(case: FuzzCase, cand: tuple) -> Optional[FuzzCase]:
    events = [list(evs) for evs in case.events]
    kind = cand[0]
    if kind == "bar":
        k = cand[1]
        for evs in events:
            seen = 0
            for idx, ev in enumerate(evs):
                if ev[0] == "barrier":
                    if seen == k:
                        del evs[idx]
                        break
                    seen += 1
            else:
                return None
    elif kind == "ev":
        _, cpu, idx = cand
        if idx >= len(events[cpu]) or events[cpu][idx][0] == "barrier":
            return None
        del events[cpu][idx]
    elif kind == "inner":
        _, cpu, idx, j = cand
        if idx >= len(events[cpu]):
            return None
        ev = events[cpu][idx]
        if ev[0] != "lock" or j >= len(ev[3]):
            return None
        inner = list(ev[3])
        del inner[j]
        events[cpu][idx] = ("lock", ev[1], ev[2], tuple(inner))
    elif kind == "half":
        _, cpu, idx = cand
        if idx >= len(events[cpu]):
            return None
        ev = events[cpu][idx]
        if ev[0] == "copy":
            size = max(WORD, (ev[3] // 2) - (ev[3] // 2) % WORD)
            if size == ev[3]:
                return None
            events[cpu][idx] = ("copy", ev[1], ev[2], size, ev[4])
        elif ev[0] == "zero":
            size = max(WORD, (ev[2] // 2) - (ev[2] // 2) % WORD)
            if size == ev[2]:
                return None
            events[cpu][idx] = ("zero", ev[1], size, ev[3])
        else:
            return None
    return case.replaced(events)


def shrink_case(case: FuzzCase,
                still_fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    """Greedy event-level ddmin: at fixpoint, removing any single event
    (or halving any block op) makes the failure disappear."""
    progress = True
    while progress:
        progress = False
        for cand in _candidates(case):
            reduced = _apply(case, cand)
            if reduced is None:
                continue
            try:
                if still_fails(reduced):
                    case = reduced
                    progress = True
            except Exception:
                continue  # reduction broke the trace some other way
    return case


def shrink_failure(failure: FuzzFailure) -> FuzzCase:
    """Shrink a recorded failure to a minimal reproducing case."""
    kind = failure.error.kind

    def still_fails(case: FuzzCase) -> bool:
        if kind == "differential":
            base = run_case(case, "Base")
            other = run_case(case, failure.config_name)
            if base.error is not None or other.error is not None:
                return False
            return base.memory != other.memory
        result = run_case(case, failure.config_name,
                          mutant_name=failure.mutant_name)
        return result.error is not None and result.error.kind == kind

    return shrink_case(failure.case, still_fails)


# ======================================================================
# Persistence / replay
# ======================================================================
def save_failure(failure: FuzzFailure, case: FuzzCase, path: str) -> None:
    """Serialize the (shrunk) case so ``--replay`` reproduces it."""
    trace = build_trace(case)
    trace.metadata[META_CONFIG] = failure.config_name
    trace.metadata[META_UPDATE_PAGES] = [UPDATE_PAGE]
    if failure.mutant_name:
        trace.metadata[META_MUTANT] = failure.mutant_name
    with open(path, "w") as fp:
        textio.dump(trace, fp)


def replay(path: str) -> CaseResult:
    """Re-run a saved failing trace exactly as it was recorded."""
    from repro.sim.system import MultiprocessorSystem
    with open(path) as fp:
        trace = textio.load(fp)
    config_name = str(trace.metadata.get(META_CONFIG, "Base"))
    mutant_name = str(trace.metadata.get(META_MUTANT, ""))
    pages = trace.metadata.get(META_UPDATE_PAGES, [UPDATE_PAGE])
    config = all_configs(machine_for(trace.num_cpus))[config_name]
    ctx = (MUTANTS[mutant_name][0]() if mutant_name
           else contextlib.nullcontext())
    with ctx:
        system = MultiprocessorSystem(trace, config,
                                      update_pages=[int(p) for p in pages],
                                      check=True)
        try:
            system.run()
        except ConformanceError as err:
            return CaseResult(err, None, system.checker.accesses_checked)
        memory = system.checker.architectural_memory(exclude=sync_words())
        return CaseResult(None, memory, system.checker.accesses_checked)
