"""Conformance fuzz driver: ``python -m repro.check``.

Modes::

    python -m repro.check --rounds 200 --seed 0
        Fuzz: every round generates one adversarial trace and runs it
        under every registered scheme with the oracle + invariant checker
        armed; even-seeded (race-free) rounds additionally diff each
        scheme's final architectural memory against Base.  A failure is
        shrunk to a minimal trace, saved, and reported with the exact
        replay command.  Exit 1 on any failure.

    python -m repro.check --mutants --seed 0
        Detection power: every registered protocol mutant must be caught
        by the checker within a bounded number of rounds under the
        configurations that can expose it.  The first catching case is
        shrunk, saved, and re-verified by replay.  Exit 1 if any mutant
        survives.

    python -m repro.check --profiles --samples 20 --seed 0 --scale 0.04
        Generated-workload conformance: sample seeded random workloads
        from the profile sweep generator (repro.synthetic.generator) and
        run each full synthetic-kernel trace under every registered scheme
        with the oracle + invariant checker armed.  Failing traces are
        saved for ``--replay``.  Exit 1 on any failure.

    python -m repro.check --replay failure.txt
        Re-run a saved failing trace exactly as recorded (configuration,
        Firefly update pages, and active mutant come from the trace
        metadata).  Exit 1 if the failure reproduces — which, for a
        saved failure, it should.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.check import fuzz
from repro.check.mutants import MUTANTS

#: Rounds allowed for a mutant to be caught before we declare it missed.
MUTANT_MAX_ROUNDS = 40


def _report_failure(failure: "fuzz.FuzzFailure", out_dir: str,
                    stem: str) -> str:
    print(f"FAIL [{failure.error.kind}] config={failure.config_name}"
          + (f" mutant={failure.mutant_name}" if failure.mutant_name else "")
          + f": {failure.error}")
    print(f"shrinking (starting at {len(failure.case)} events) ...")
    shrunk = fuzz.shrink_failure(failure)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{stem}.txt")
    fuzz.save_failure(failure, shrunk, path)
    print(f"minimal case: {len(shrunk)} events -> {path}")
    print(f"replay with:  python -m repro.check --replay {path}")
    return path


def cmd_fuzz(args: argparse.Namespace) -> int:
    configs = ([c.strip() for c in args.configs.split(",") if c.strip()]
               or None)
    progress = None
    if not args.quiet:
        def progress(done: int) -> None:
            if done % 20 == 0 or done == args.rounds:
                print(f"  {done}/{args.rounds} rounds clean")
    print(f"fuzzing {args.rounds} rounds, seed {args.seed}, "
          f"{args.cpus} cpus, configs: "
          f"{','.join(configs or fuzz.fuzz_configs())}")
    failure = fuzz.run_fuzz(args.rounds, args.seed, configs,
                            num_cpus=args.cpus, length=args.length,
                            progress=progress)
    if failure is None:
        print(f"OK: {args.rounds} rounds, no conformance violation")
        return 0
    _report_failure(failure, args.out_dir,
                    f"fuzz-{failure.error.kind}-seed{failure.case.seed}")
    return 1


def cmd_mutants(args: argparse.Namespace) -> int:
    missed: List[str] = []
    for name, (_, config_names) in MUTANTS.items():
        caught: Optional[fuzz.FuzzFailure] = None
        rounds = 0
        for i in range(MUTANT_MAX_ROUNDS):
            rounds = i + 1
            case = fuzz.generate_case(args.seed + i, num_cpus=args.cpus,
                                      length=args.length,
                                      race_free=i % 2 == 0)
            for config_name in config_names:
                result = fuzz.run_case(case, config_name, mutant_name=name)
                if result.error is not None:
                    caught = fuzz.FuzzFailure(case, config_name, name,
                                              result.error)
                    break
            if caught is not None:
                break
        if caught is None:
            print(f"MISSED: mutant {name!r} survived {rounds} rounds "
                  f"under {config_names}")
            missed.append(name)
            continue
        print(f"caught {name!r} in round {rounds} "
              f"[{caught.error.kind}] under {caught.config_name}")
        path = _report_failure(caught, args.out_dir, f"mutant-{name}")
        replayed = fuzz.replay(path)
        if replayed.error is None:
            print(f"REPLAY MISMATCH: {path} does not reproduce {name!r}")
            missed.append(name)
    if missed:
        print(f"{len(missed)}/{len(MUTANTS)} mutants undetected: {missed}")
        return 1
    print(f"OK: all {len(MUTANTS)} mutants detected and replayable")
    return 0


def cmd_profiles(args: argparse.Namespace) -> int:
    configs = ([c.strip() for c in args.configs.split(",") if c.strip()]
               or None)
    families = ([f.strip() for f in args.families.split(",") if f.strip()]
                or None)
    progress = None
    if not args.quiet:
        def progress(done: int, name: str) -> None:
            print(f"  {done}/{args.samples} clean (last: {name})")
    print(f"profile fuzz: {args.samples} generated workloads, "
          f"seed {args.seed}, scale {args.scale}, configs: "
          f"{','.join(configs or fuzz.fuzz_configs())}")
    failure = fuzz.run_profile_fuzz(args.samples, seed=args.seed,
                                    configs=configs, scale=args.scale,
                                    families=families, progress=progress)
    if failure is None:
        print(f"OK: {args.samples} generated workloads conformant "
              "under every scheme")
        return 0
    print(f"FAIL [{failure.error.kind}] workload={failure.workload_name} "
          f"config={failure.config_name}: {failure.error}")
    os.makedirs(args.out_dir, exist_ok=True)
    stem = failure.workload_name.replace(":", "_")
    path = os.path.join(args.out_dir,
                        f"profile-{stem}-{failure.config_name}.txt")
    fuzz.save_profile_failure(failure, path)
    print(f"failing trace -> {path}")
    print(f"replay with:  python -m repro.check --replay {path}")
    return 1


def cmd_replay(args: argparse.Namespace) -> int:
    result = fuzz.replay(args.replay)
    if result.error is None:
        print(f"clean: {args.replay} ran without violation "
              f"({result.accesses} accesses checked)")
        return 0
    print(f"reproduced [{result.error.kind}]: {result.error}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="coherence conformance fuzzer "
                    "(reference oracle + MESI/Firefly invariants)")
    parser.add_argument("--rounds", type=int, default=50,
                        help="fuzz rounds (default 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cpus", type=int, default=4)
    parser.add_argument("--length", type=int, default=24,
                        help="events per CPU per generated case")
    parser.add_argument("--configs", default="",
                        help="comma-separated scheme names (default: all)")
    parser.add_argument("--mutants", action="store_true",
                        help="check that every protocol mutant is caught")
    parser.add_argument("--profiles", action="store_true",
                        help="fuzz generated synthetic workloads from the "
                             "profile sweep generator instead of "
                             "adversarial micro-traces")
    parser.add_argument("--samples", type=int, default=20,
                        help="generated workloads for --profiles "
                             "(default 20)")
    parser.add_argument("--scale", type=float, default=0.04,
                        help="workload scale for --profiles (default 0.04)")
    parser.add_argument("--families", default="",
                        help="comma-separated profile families for "
                             "--profiles (default: all sweepable)")
    parser.add_argument("--replay", default="",
                        help="re-run a saved failing trace")
    parser.add_argument("--out-dir", default="check-failures",
                        help="directory for shrunk failing traces")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.replay:
        return cmd_replay(args)
    if args.mutants:
        return cmd_mutants(args)
    if args.profiles:
        return cmd_profiles(args)
    return cmd_fuzz(args)


if __name__ == "__main__":
    raise SystemExit(main())
