"""Unit helpers: sizes, clock conversion, address arithmetic.

The simulated machine (paper section 2.4) runs the processors at 200 MHz and
the bus at 40 MHz, so one bus cycle is exactly five processor cycles.  All
simulator timing is expressed in *processor* cycles; these helpers keep the
conversions in one place.
"""

from __future__ import annotations

#: Bytes in a kilobyte, as used for cache sizes throughout the paper.
KB = 1024

#: Processor clock frequency of the simulated machine (Hz).
CPU_HZ = 200_000_000

#: Bus clock frequency of the simulated machine (Hz).
BUS_HZ = 40_000_000

#: Processor cycles per bus cycle (200 MHz / 40 MHz).
CPU_CYCLES_PER_BUS_CYCLE = CPU_HZ // BUS_HZ

#: Machine word size in bytes (32-bit machine, as on the Alliant FX/8).
WORD_BYTES = 4


def bus_cycles(n: int) -> int:
    """Convert *n* bus cycles to processor cycles."""
    return n * CPU_CYCLES_PER_BUS_CYCLE


def cycles_to_seconds(cycles: float) -> float:
    """Convert processor cycles to seconds of simulated time."""
    return cycles / CPU_HZ


def is_power_of_two(n: int) -> bool:
    """Return True when *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def align_down(addr: int, granularity: int) -> int:
    """Round *addr* down to a multiple of *granularity* (a power of two)."""
    return addr & ~(granularity - 1)


def align_up(addr: int, granularity: int) -> int:
    """Round *addr* up to a multiple of *granularity* (a power of two)."""
    return (addr + granularity - 1) & ~(granularity - 1)


def ceil_div(a: int, b: int) -> int:
    """Integer division rounding up."""
    return -(-a // b)
