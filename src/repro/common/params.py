"""Machine parameter dataclasses and the Base configuration of section 2.4.

The paper's simulated machine:

* 4 processors at 200 MHz.
* Per processor: 16-KB direct-mapped L1 instruction cache (16-B lines),
  32-KB direct-mapped write-through L1 data cache (16-B lines), 256-KB
  direct-mapped write-back lockup-free unified L2 cache (32-B lines).
* A 4-deep word-wide write buffer between L1 and L2 and an 8-deep
  32-byte-wide write buffer between L2 and the bus.  Reads bypass writes.
* Illinois cache-coherence protocol under release consistency.
* 8-byte-wide 40-MHz split-transaction bus; a 32-B line transfer occupies
  the bus for 20 processor cycles.
* Uncontended word-read latencies: 1 cycle (L1), 12 (L2), 51 (memory).

Figures 6 and 7 sweep the L1D size over {16, 32, 64} KB and the L1D line
size over {16, 32, 64} B (with 64-B L2 lines for the line-size sweep);
:func:`MachineParams.with_l1d` builds those variants.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError
from repro.common.units import KB, is_power_of_two


#: Widest machine the simulator (and the workload generator) accepts.
#: The single authority for the bound: :class:`MachineParams`,
#: ``repro.synthetic.profiles`` and ``repro.synthetic.generator`` all
#: validate against this constant so the limits cannot drift apart.
MAX_CPUS = 32


def validate_num_cpus(num_cpus: int, context: str = "machine") -> None:
    """Raise :class:`ConfigError` unless ``1 <= num_cpus <= MAX_CPUS``."""
    if not 1 <= num_cpus <= MAX_CPUS:
        raise ConfigError(
            f"{context}: num_cpus {num_cpus} outside [1, {MAX_CPUS}]")


@dataclasses.dataclass(frozen=True)
class CacheParams:
    """Geometry of one cache array.

    ``assoc`` is the set associativity: 1 (the paper's direct-mapped
    testbed) or any power of two up to fully associative.  A set-
    associative cache keeps ``num_sets == num_lines // assoc`` sets of
    ``assoc`` line frames each, replaced LRU within the set.
    """

    size_bytes: int
    line_bytes: int
    assoc: int = 1

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size_bytes):
            raise ConfigError(f"cache size {self.size_bytes} not a power of two")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError(f"line size {self.line_bytes} not a power of two")
        if self.size_bytes % self.line_bytes:
            raise ConfigError("cache size must be a multiple of the line size")
        if self.size_bytes < self.line_bytes:
            raise ConfigError("cache smaller than one line")
        if not is_power_of_two(self.assoc):
            raise ConfigError(f"associativity {self.assoc} not a power of two")
        if self.assoc > self.size_bytes // self.line_bytes:
            raise ConfigError(
                f"associativity {self.assoc} exceeds the "
                f"{self.size_bytes // self.line_bytes} line frames")

    @property
    def num_lines(self) -> int:
        """Number of line frames (sets x ways)."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (== ``num_lines`` when direct-mapped)."""
        return self.num_lines // self.assoc

    def set_index(self, addr: int) -> int:
        """Set index of byte address *addr*."""
        return (addr // self.line_bytes) % self.num_sets

    def line_addr(self, addr: int) -> int:
        """Line-aligned address containing byte address *addr*."""
        return addr - (addr % self.line_bytes)


@dataclasses.dataclass(frozen=True)
class BusParams:
    """Split-transaction bus timing, in processor cycles."""

    #: Processor cycles per bus cycle (200 MHz CPU / 40 MHz bus).
    cpu_cycles_per_bus_cycle: int = 5
    #: Bus width in bytes.
    width_bytes: int = 8
    #: Cycles the bus is held for the address/request phase of a read.
    request_cycles: int = 5
    #: Cycles main memory needs between request and first data (no bus held).
    memory_access_cycles: int = 26
    #: Cycles a dirty cache needs to start supplying a line (Illinois).
    cache_supply_cycles: int = 10
    #: Cycles an invalidation-only transaction holds the bus.
    invalidate_cycles: int = 5
    #: Cycles an 8-byte Firefly update transaction holds the bus.
    update_cycles: int = 10

    def line_transfer_cycles(self, line_bytes: int) -> int:
        """Bus occupancy (CPU cycles) to move one line of *line_bytes*.

        One bus cycle moves ``width_bytes``; a 32-B line therefore takes
        4 bus cycles == 20 processor cycles, matching the paper.
        """
        beats = -(-line_bytes // self.width_bytes)
        return beats * self.cpu_cycles_per_bus_cycle


@dataclasses.dataclass(frozen=True)
class WriteBufferParams:
    """Depth/width of the two write buffers."""

    #: Entries in the word-wide buffer between L1D and L2.
    l1_depth: int = 4
    #: Cycles to retire one word from the L1 buffer into an owned L2 line.
    l1_drain_cycles: int = 3
    #: Entries in the 32-byte-wide buffer between L2 and the bus.
    l2_depth: int = 8


@dataclasses.dataclass(frozen=True)
class DmaParams:
    """Timing of the Blk_Dma engine (section 4.2).

    The operation takes 19 cycles to start (plus bus-arbitration
    contention), then transfers 8 bytes every 2 bus cycles in the best
    case.
    """

    startup_cycles: int = 19
    bytes_per_beat: int = 8
    #: Bus cycles per beat (2 bus cycles = 10 CPU cycles per 8 bytes).
    bus_cycles_per_beat: int = 2


@dataclasses.dataclass(frozen=True)
class MachineParams:
    """Complete description of the simulated multiprocessor."""

    num_cpus: int = 4
    l1i: CacheParams = CacheParams(16 * KB, 16)
    l1d: CacheParams = CacheParams(32 * KB, 16)
    l2: CacheParams = CacheParams(256 * KB, 32)
    bus: BusParams = BusParams()
    write_buffers: WriteBufferParams = WriteBufferParams()
    dma: DmaParams = DmaParams()
    #: Latency of an L1D hit (cycles).
    l1_hit_cycles: int = 1
    #: Uncontended latency of a word read satisfied by L2 (cycles).
    l2_hit_cycles: int = 12
    #: Page size used by the OS (block copies are at most one page).
    page_bytes: int = 4096
    #: Cycles to transfer lock ownership once released (spin re-read).
    lock_handoff_cycles: int = 20
    #: Cycles of scheduler overhead to release a barrier.
    barrier_release_cycles: int = 40

    def __post_init__(self) -> None:
        validate_num_cpus(self.num_cpus)
        if self.l2.line_bytes < self.l1d.line_bytes:
            raise ConfigError("L2 line must be at least as large as L1D line")
        if self.l2.size_bytes < self.l1d.size_bytes:
            raise ConfigError("L2 must be at least as large as L1D (inclusion)")

    @property
    def memory_read_cycles(self) -> int:
        """Uncontended word-read-from-memory latency (cycles).

        request + DRAM access + line transfer — 5 + 26 + 20 = 51 for the
        Base machine, matching section 2.4.
        """
        return (
            self.bus.request_cycles
            + self.bus.memory_access_cycles
            + self.bus.line_transfer_cycles(self.l2.line_bytes)
        )

    def with_l1d(self, size_bytes: int | None = None, line_bytes: int | None = None,
                 l2_line_bytes: int | None = None) -> "MachineParams":
        """Return a copy with a different L1D geometry (Figures 6 and 7).

        When *line_bytes* grows past the L2 line, the L2 line follows so
        inclusion still holds; Figure 7 uses 64-B L2 lines explicitly.
        """
        l1d = CacheParams(
            size_bytes if size_bytes is not None else self.l1d.size_bytes,
            line_bytes if line_bytes is not None else self.l1d.line_bytes,
        )
        l2_line = l2_line_bytes if l2_line_bytes is not None else self.l2.line_bytes
        l2_line = max(l2_line, l1d.line_bytes)
        l2 = CacheParams(self.l2.size_bytes, l2_line)
        return dataclasses.replace(self, l1d=l1d, l2=l2)


#: The Base machine of section 2.4.
BASE_MACHINE = MachineParams()


def machine_for(num_cpus: int, *, assoc: int = 1,
                bus_width_bytes: int | None = None) -> MachineParams:
    """The Base machine resized to exactly *num_cpus* processors.

    This is the single authority for turning a trace's or sweep's CPU
    count into a :class:`MachineParams` — the CLI, the sweep service
    and the conformance fuzzer all use it, so a 2-CPU trace simulates
    on a 2-CPU machine rather than the 4-CPU Base with phantom idle
    processors.  *assoc* applies the same set associativity to all
    three caches; *bus_width_bytes* widens (or narrows) the bus for
    larger machines.  ``machine_for(4)`` is ``BASE_MACHINE`` itself,
    preserving every existing simulation fingerprint.
    """
    validate_num_cpus(num_cpus)
    machine = BASE_MACHINE
    if assoc != 1:
        machine = dataclasses.replace(
            machine,
            l1i=dataclasses.replace(machine.l1i, assoc=assoc),
            l1d=dataclasses.replace(machine.l1d, assoc=assoc),
            l2=dataclasses.replace(machine.l2, assoc=assoc),
        )
    if (bus_width_bytes is not None
            and bus_width_bytes != machine.bus.width_bytes):
        if not is_power_of_two(bus_width_bytes):
            raise ConfigError(
                f"bus width {bus_width_bytes} not a power of two")
        machine = dataclasses.replace(
            machine,
            bus=dataclasses.replace(machine.bus,
                                    width_bytes=bus_width_bytes),
        )
    if num_cpus != machine.num_cpus:
        machine = dataclasses.replace(machine, num_cpus=num_cpus)
    return machine
