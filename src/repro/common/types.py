"""Core enumerations shared by the trace, memory-system and simulator layers.

These types mirror the vocabulary of the paper:

* :class:`Mode` — whether a reference executes in user code, the operating
  system, or idle time (Table 1 splits execution time this way).
* :class:`Op` — the kind of trace record.  Besides plain reads and writes
  the trace carries the synchronization and block-operation markers that
  section 2.2 of the paper injects ("escape" references in the original).
* :class:`DataClass` — which kernel data structure an address belongs to.
  Section 5 classifies coherence misses by these classes (barriers,
  infrequently-communicated counters, frequently-shared variables, locks).
* :class:`MissKind` — the miss taxonomy of Table 2 and section 4.1.3
  (block-operation, coherence, other; displacement and reuse subtypes).
* :class:`Scheme` — the block-operation handling schemes of section 4.2.
* :class:`BlockOpKind` — copy versus zero-fill block operations.
* :class:`AdaptivePolicy` — the per-line adaptive update/invalidate
  hybrids (``repro.memsys.adaptive``) generalizing the paper's
  ``BCoh_RelUp`` selective-update scheme.
"""

from __future__ import annotations

import enum


class Mode(enum.IntEnum):
    """Execution mode of a reference."""

    USER = 0
    OS = 1
    IDLE = 2


class Op(enum.IntEnum):
    """Type of a trace record."""

    READ = 0
    WRITE = 1
    #: Software prefetch of one cache line (Alpha-style, non-binding).
    PREFETCH = 2
    #: Acquire a spin lock at ``addr`` (read-modify-write on the lock line).
    LOCK_ACQ = 3
    #: Release a spin lock at ``addr`` (write to the lock line).
    LOCK_REL = 4
    #: Arrive at the barrier at ``addr``; blocks until all participants do.
    BARRIER = 5
    #: Marks the start of a block operation; ``arg`` is the BlockOp id.
    BLOCK_START = 6
    #: Marks the end of a block operation; ``arg`` is the BlockOp id.
    BLOCK_END = 7


class DataClass(enum.IntEnum):
    """Kernel (or user) data structure class of an address.

    The synthetic kernel assigns a class to every statically allocated
    structure; the analysis layer uses the classes to break coherence misses
    down as in Table 5 and to drive the privatization/update optimizations
    of section 5.
    """

    NONE = 0
    USER_DATA = 1
    USER_STACK = 2
    #: Barrier words used by gang scheduling (Table 5 "Barriers").
    BARRIER_VAR = 3
    #: Spin locks (Table 5 "Locks").
    LOCK_VAR = 4
    #: Event counters updated by every CPU, read rarely (e.g. vmmeter).
    INFREQ_COMM = 5
    #: Frequently-shared variables (resource-table pointers, freelist.size).
    FREQ_SHARED = 6
    #: Page-table entry arrays walked by the VM hot-spot loops.
    PAGE_TABLE = 7
    #: The run queue and per-process scheduler state.
    SCHED = 8
    #: Process table entries.
    PROC_TABLE = 9
    #: Kernel buffer cache / I/O buffers (sources of block copies).
    BUFFER = 10
    #: Physical page frames (targets of page zero/copy).
    PAGE_FRAME = 11
    #: System call dispatch table (a hot-spot prefetch target, section 6).
    SYSCALL_TABLE = 12
    #: High-resolution timer and accounting structures.
    TIMER = 13
    #: Free page list linkage walked to find a free page.
    FREELIST = 14
    #: Per-CPU private kernel data (after privatization).
    PRIVATE = 15
    #: Anything else in the kernel's static or dynamic data.
    OTHER_KERNEL = 16


class MissKind(enum.IntEnum):
    """Classification of a primary-data-cache read miss (Table 2, §4.1.3)."""

    #: Miss on a word of the source block while a block operation runs.
    BLOCK_OP = 0
    #: Line was invalidated by another processor's write.
    COHERENCE = 1
    #: Everything else — dominated by direct-mapped conflicts.
    OTHER = 2


class BlockOpKind(enum.IntEnum):
    """What a block operation does."""

    COPY = 0
    ZERO = 1


class Scheme(enum.IntEnum):
    """Block-operation handling scheme (section 4.2)."""

    #: Plain cached loads/stores (the Base machine).
    BASE = 0
    #: Software prefetch of the source block into L1/L2 (Blk_Pref).
    PREF = 1
    #: Loads and stores bypass both caches via line registers (Blk_Bypass).
    BYPASS = 2
    #: Bypass with an 8-line prefetch buffer; writes cached (Blk_ByPref).
    BYPREF = 3
    #: DMA-like transfer on the bus, processor stalled (Blk_Dma).
    DMA = 4


class AdaptivePolicy(enum.IntEnum):
    """Per-line adaptive update/invalidate policy of a hybrid scheme.

    Selected by :attr:`~repro.sim.config.SystemConfig.adaptive`;
    ``None`` there means the plain protocol (invalidate, or the page-set
    Firefly of ``selective_update``) with no adaptive layer attached.
    """

    #: Competitive update-N-then-invalidate: each remote copy receives
    #: at most N consecutive broadcast updates without a bus-visible
    #: local re-reference, then is dropped from the broadcast set.
    UPDATE_N = 0
    #: Sharing-degree switching: update while the number of remote
    #: sharers stays within a threshold, switch the line to invalidate
    #: mode (for the rest of its sharing epoch) when it exceeds it.
    DEGREE = 1
    #: Static per-page hybrid: unbounded updates on the configured pages
    #: (the paper's BCoh_RelUp as the N=infinity special case),
    #: invalidate everywhere else.
    STATIC = 2


#: Fast Mode lookup used by the simulator hot path.  ``Mode(value)`` runs
#: the whole enum ``__call__`` machinery on every trace record; this table
#: is a single dict probe.  Because :class:`Mode` is an ``IntEnum``, its
#: members hash and compare equal to their integer values, so the table
#: resolves both plain ints and already-normalized members to the member.
MODE_BY_VALUE = {int(m): m for m in Mode}

#: Same trick for record opcodes (trace loaders may hand the simulator
#: plain ints; everything downstream expects :class:`Op` members).
OP_BY_VALUE = {int(o): o for o in Op}

#: Data classes whose coherence misses Table 5 groups under each heading.
COHERENCE_GROUPS = {
    "Barriers": (DataClass.BARRIER_VAR,),
    "Infreq. Com.": (DataClass.INFREQ_COMM,),
    "Freq. Shared": (DataClass.FREQ_SHARED,),
    "Locks": (DataClass.LOCK_VAR,),
}
