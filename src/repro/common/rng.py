"""Deterministic random-number streams for the synthetic workload generator.

Every stochastic decision in the generator draws from a named substream so
that adding a new consumer never perturbs existing ones, and the same
(workload, seed) pair always yields byte-identical traces.  Substreams are
derived by hashing the parent seed with the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def derive_seed(seed: int, name: str) -> int:
    """Derive a child seed from *seed* and a stream *name*, stably."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named, seeded random stream with convenience draws."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._rng = random.Random(derive_seed(seed, name))

    def substream(self, name: str) -> "RngStream":
        """Return an independent child stream."""
        return RngStream(derive_seed(self.seed, self.name), name)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, p: float) -> bool:
        """Bernoulli draw with probability *p*."""
        return self._rng.random() < p

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choice from *items* with the given relative *weights*."""
        return self._rng.choices(items, weights=weights, k=1)[0]

    def geometric(self, mean: float) -> int:
        """Geometric draw (>= 1) with the given mean."""
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        u = self._rng.random()
        # Inverse-CDF; clamp to avoid log(0).
        import math

        return max(1, int(math.log(max(u, 1e-12)) / math.log(1.0 - p)) + 1)

    def shuffle(self, seq: list) -> None:
        """Shuffle *seq* in place."""
        self._rng.shuffle(seq)
