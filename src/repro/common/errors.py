"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Each subclass corresponds to a layer of the system: trace
construction, memory-system modelling, simulation, and configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or system configuration is inconsistent or unsupported.

    Raised, for example, when a cache size is not a multiple of its line
    size, or when a scheme requires hardware the configuration disables.
    """


class TraceError(ReproError):
    """A trace is malformed.

    Raised for unbalanced lock acquire/release pairs, block-operation word
    records that do not cover the declared byte range, or records whose
    fields are out of range.
    """


class SimulationError(ReproError):
    """The simulator reached an impossible state.

    Raised for coherence violations (two modified copies of one line),
    negative time deltas, or a deadlock among the simulated processors.
    """


class DeadlockError(SimulationError):
    """All processors are blocked and no progress is possible."""


class ConformanceError(SimulationError):
    """The conformance checker observed a protocol violation.

    Raised by :mod:`repro.check` when the runtime invariant checker or the
    reference memory oracle detects that the simulated coherence machinery
    diverged from the architectural memory model: a stale read, a lost
    write, multiple owners of one line, an inclusion violation, or a
    write-buffer drain out of order.  ``kind`` names the violated
    invariant; ``details`` carries the structured context (cpu, address,
    expected/observed tokens).
    """

    def __init__(self, message: str, kind: str = "",
                 details: "dict | None" = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.details = dict(details or {})


class AnalysisError(ReproError):
    """An analysis pass received data it cannot interpret."""


class ProfileError(ReproError):
    """A workload profile spec is malformed.

    Raised by :mod:`repro.synthetic.profiles` for unknown fields,
    out-of-range rates, inconsistent size/weight lists, or spec files
    that fail to parse.  The message names the offending field.
    """


class JobFailedError(ReproError):
    """A sweep job exhausted its retry budget (or failed unrecoverably).

    Raised by the parallel experiment engine when a job keeps failing
    after every retry the :class:`~repro.experiments.faults.RetryPolicy`
    allows.  ``job_id`` names the failed DAG node and ``attempts`` the
    number of attempts consumed.
    """

    def __init__(self, message: str, job_id: str = "",
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.attempts = attempts


class JobTimeoutError(JobFailedError):
    """A sweep job exceeded its per-job wall-clock timeout."""


class SweepCancelledError(ReproError):
    """A sweep was cancelled before it completed.

    Raised by the parallel experiment engine when the caller's cancel
    event is set mid-sweep (the sweep service sets it on a client
    ``cancel`` request).  Deliberately *not* a :class:`JobFailedError`:
    no job failed, the caller changed its mind, and the engine's
    retry/failure accounting must not treat it as a fault.
    """


class ArtifactCorruptError(ReproError):
    """A cache artifact failed hash verification.

    The offending file is quarantined (renamed to ``*.quarantined``) and
    the artifact regenerated; ``path`` points at the quarantined copy.
    """

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(message)
        self.path = path
