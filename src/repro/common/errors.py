"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Each subclass corresponds to a layer of the system: trace
construction, memory-system modelling, simulation, and configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or system configuration is inconsistent or unsupported.

    Raised, for example, when a cache size is not a multiple of its line
    size, or when a scheme requires hardware the configuration disables.
    """


class TraceError(ReproError):
    """A trace is malformed.

    Raised for unbalanced lock acquire/release pairs, block-operation word
    records that do not cover the declared byte range, or records whose
    fields are out of range.
    """


class SimulationError(ReproError):
    """The simulator reached an impossible state.

    Raised for coherence violations (two modified copies of one line),
    negative time deltas, or a deadlock among the simulated processors.
    """


class DeadlockError(SimulationError):
    """All processors are blocked and no progress is possible."""


class AnalysisError(ReproError):
    """An analysis pass received data it cannot interpret."""
