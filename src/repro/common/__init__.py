"""Shared foundations: parameters, types, units, errors, random streams."""

from repro.common.errors import (
    AnalysisError,
    ConfigError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.common.params import (
    BASE_MACHINE,
    BusParams,
    CacheParams,
    DmaParams,
    MachineParams,
    WriteBufferParams,
)
from repro.common.rng import RngStream, derive_seed
from repro.common.types import (
    BlockOpKind,
    COHERENCE_GROUPS,
    DataClass,
    MissKind,
    Mode,
    Op,
    Scheme,
)

__all__ = [
    "AnalysisError",
    "BASE_MACHINE",
    "BlockOpKind",
    "BusParams",
    "CacheParams",
    "COHERENCE_GROUPS",
    "ConfigError",
    "DataClass",
    "DeadlockError",
    "DmaParams",
    "MachineParams",
    "MissKind",
    "Mode",
    "Op",
    "ReproError",
    "RngStream",
    "Scheme",
    "SimulationError",
    "TraceError",
    "WriteBufferParams",
    "derive_seed",
]
