"""Builders for Figures 1-7 of the paper.

Bar figures are represented as :class:`BarChart` (stacked, normalized
bars per workload x system) and the cache-geometry sweeps of Figures 6-7
as :class:`LineChart` (normalized OS execution time per geometry point).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.params import BASE_MACHINE
from repro.common.types import MissKind
from repro.common.units import KB
from repro.experiments.runner import ExperimentRunner
from repro.sim.metrics import SystemMetrics
from repro.synthetic.workloads import WORKLOAD_ORDER

#: Systems shown in Figure 2 (block-operation schemes).
FIG2_SYSTEMS = ["Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref", "Blk_Dma"]
#: Systems shown in Figure 3 (all eight).
FIG3_SYSTEMS = ["Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref", "Blk_Dma",
                "BCoh_Reloc", "BCoh_RelUp", "BCPref"]
#: Systems shown in Figure 4 (coherence optimizations).
FIG4_SYSTEMS = ["Base", "Blk_Dma", "BCoh_Reloc", "BCoh_RelUp"]
#: Systems shown in Figure 5 (hot-spot prefetching).
FIG5_SYSTEMS = ["Base", "Blk_Dma", "BCoh_RelUp", "BCPref"]
#: Systems shown in Figures 6 and 7 (geometry sweeps).
SWEEP_SYSTEMS = ["Base", "Blk_Dma", "BCPref"]


class BarChart:
    """Stacked normalized bars: values[workload][system][segment]."""

    def __init__(self, name: str, title: str, workloads: Sequence[str],
                 systems: Sequence[str], segments: Sequence[str]) -> None:
        self.name = name
        self.title = title
        self.workloads = list(workloads)
        self.systems = list(systems)
        self.segments = list(segments)
        self.values: Dict[str, Dict[str, Dict[str, float]]] = {
            w: {s: {seg: 0.0 for seg in segments} for s in systems}
            for w in workloads}

    def set(self, workload: str, system: str, segment: str,
            value: float) -> None:
        self.values[workload][system][segment] = value

    def total(self, workload: str, system: str) -> float:
        return sum(self.values[workload][system].values())


class LineChart:
    """Line series: values[workload][system][x]."""

    def __init__(self, name: str, title: str, workloads: Sequence[str],
                 systems: Sequence[str], x_values: Sequence[int],
                 x_label: str) -> None:
        self.name = name
        self.title = title
        self.workloads = list(workloads)
        self.systems = list(systems)
        self.x_values = list(x_values)
        self.x_label = x_label
        self.values: Dict[str, Dict[str, Dict[int, float]]] = {
            w: {s: {} for s in systems} for w in workloads}

    def set(self, workload: str, system: str, x: int, value: float) -> None:
        self.values[workload][system][x] = value


def figure1(runner: ExperimentRunner) -> BarChart:
    """Figure 1: components of block-operation overhead (Base machine)."""
    segments = ["Read Stall", "Write Stall", "Displ. Stall", "Instr. Exec."]
    chart = BarChart("figure1",
                     "Components of block-operation overhead (normalized)",
                     WORKLOAD_ORDER, ["Base"], segments)
    for workload in WORKLOAD_ORDER:
        m = runner.run(workload, "Base")
        raw = [m.blk_read_stall, m.blk_write_stall, m.blk_displ_stall,
               m.blk_instr_exec]
        total = sum(raw) or 1
        for segment, value in zip(segments, raw):
            chart.set(workload, "Base", segment, value / total)
    return chart


def _miss_split(m: SystemMetrics, kind: MissKind) -> Dict[str, int]:
    picked = m.os_miss_kind.get(kind, 0)
    return {"picked": picked, "other": m.os_read_misses() - picked}


def figure2(runner: ExperimentRunner) -> BarChart:
    """Figure 2: normalized OS read misses under block-op schemes."""
    chart = BarChart("figure2",
                     "Normalized OS data misses under block-op support",
                     WORKLOAD_ORDER, FIG2_SYSTEMS,
                     ["Block Read Misses", "Other Read Misses"])
    for workload in WORKLOAD_ORDER:
        base = max(1, runner.run(workload, "Base").os_read_misses())
        for system in FIG2_SYSTEMS:
            m = runner.run(workload, system)
            split = _miss_split(m, MissKind.BLOCK_OP)
            chart.set(workload, system, "Block Read Misses",
                      split["picked"] / base)
            chart.set(workload, system, "Other Read Misses",
                      split["other"] / base)
    return chart


FIG3_SEGMENTS = ["Exec", "I Miss", "D Write", "D Read Miss", "Pref"]


def figure3(runner: ExperimentRunner) -> BarChart:
    """Figure 3: normalized OS execution time under all systems."""
    chart = BarChart("figure3", "Normalized OS execution time",
                     WORKLOAD_ORDER, FIG3_SYSTEMS, FIG3_SEGMENTS)
    for workload in WORKLOAD_ORDER:
        base_total = max(1, runner.run(workload, "Base").os_time().total)
        for system in FIG3_SYSTEMS:
            tb = runner.run(workload, system).os_time()
            chart.set(workload, system, "Exec",
                      (tb.exec_cycles + tb.sync) / base_total)
            chart.set(workload, system, "I Miss", tb.imiss / base_total)
            chart.set(workload, system, "D Write", tb.dwrite / base_total)
            chart.set(workload, system, "D Read Miss", tb.dread / base_total)
            chart.set(workload, system, "Pref", tb.pref / base_total)
    return chart


def figure4(runner: ExperimentRunner) -> BarChart:
    """Figure 4: normalized OS misses under coherence optimizations."""
    chart = BarChart("figure4",
                     "Normalized OS data misses under coherence support",
                     WORKLOAD_ORDER, FIG4_SYSTEMS,
                     ["Coh. Misses", "Other Misses"])
    for workload in WORKLOAD_ORDER:
        base = max(1, runner.run(workload, "Base").os_read_misses())
        for system in FIG4_SYSTEMS:
            m = runner.run(workload, system)
            split = _miss_split(m, MissKind.COHERENCE)
            chart.set(workload, system, "Coh. Misses", split["picked"] / base)
            chart.set(workload, system, "Other Misses", split["other"] / base)
    return chart


def figure5(runner: ExperimentRunner) -> BarChart:
    """Figure 5: normalized OS misses with hot-spot prefetching."""
    chart = BarChart("figure5",
                     "Normalized OS data misses with hot-spot prefetching",
                     WORKLOAD_ORDER, FIG5_SYSTEMS,
                     ["Hot Spot Misses", "Other Misses"])
    for workload in WORKLOAD_ORDER:
        base = max(1, runner.run(workload, "Base").os_read_misses())
        hot_pcs = set(runner.hotspots(workload))
        for system in FIG5_SYSTEMS:
            m = runner.run(workload, system)
            hot = sum(count for pc, count in m.os_miss_pc.items()
                      if pc in hot_pcs)
            chart.set(workload, system, "Hot Spot Misses", hot / base)
            chart.set(workload, system, "Other Misses",
                      (m.os_read_misses() - hot) / base)
    return chart


def figure6(runner: ExperimentRunner,
            sizes_kb: Sequence[int] = (16, 32, 64)) -> LineChart:
    """Figure 6: normalized OS time vs primary data cache size."""
    chart = LineChart("figure6",
                      "Normalized OS execution time vs L1D size",
                      WORKLOAD_ORDER, SWEEP_SYSTEMS, list(sizes_kb),
                      "Cache Size (KB)")
    for size_kb in sizes_kb:
        machine = BASE_MACHINE.with_l1d(size_bytes=size_kb * KB)
        for workload in WORKLOAD_ORDER:
            base = max(1, runner.run(workload, "Base",
                                     machine=machine).os_time().total)
            for system in SWEEP_SYSTEMS:
                total = runner.run(workload, system,
                                   machine=machine).os_time().total
                chart.set(workload, system, size_kb, total / base)
    return chart


def figure7(runner: ExperimentRunner,
            line_sizes: Sequence[int] = (16, 32, 64)) -> LineChart:
    """Figure 7: normalized OS time vs L1D line size (64-B L2 lines)."""
    chart = LineChart("figure7",
                      "Normalized OS execution time vs L1D line size",
                      WORKLOAD_ORDER, SWEEP_SYSTEMS, list(line_sizes),
                      "Line Size (Bytes)")
    for line in line_sizes:
        machine = BASE_MACHINE.with_l1d(line_bytes=line, l2_line_bytes=64)
        for workload in WORKLOAD_ORDER:
            base = max(1, runner.run(workload, "Base",
                                     machine=machine).os_time().total)
            for system in SWEEP_SYSTEMS:
                total = runner.run(workload, system,
                                   machine=machine).os_time().total
                chart.set(workload, system, line, total / base)
    return chart


ALL_FIGURES = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
}
