"""The paper's published numbers, as structured data.

Every cell of Tables 1-5 and the headline ranges of Figures 2-5, keyed
exactly like the builders in :mod:`repro.analysis.tables` produce them.
These values drive:

* the calibration report (``repro calibrate`` /
  :func:`repro.analysis.compare.calibration_report`), which prints
  measured-vs-paper for every cell;
* the agreement scoring of :mod:`repro.analysis.compare`.

Source: Xia & Torrellas, HPCA 1996, Tables 1-5 and Figures 2-3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Workloads in the paper's column order.
WORKLOADS = ["TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"]

#: Table 1 — characteristics of the workloads studied.
TABLE1: Dict[str, List[float]] = {
    "User Time (%)": [49.9, 38.2, 42.7, 23.8],
    "Idle Time (%)": [8.0, 8.2, 11.5, 29.2],
    "OS Time (%)": [42.1, 53.6, 45.8, 47.0],
    "Stall Time Due to OS D-Accesses (% of Total Time)":
        [14.0, 14.9, 11.3, 13.3],
    "D-Miss Rate in Primary Cache (%)": [3.5, 4.7, 3.8, 3.2],
    "OS D-Reads / Total D-Reads (%)": [40.4, 53.6, 44.5, 61.3],
    "OS D-Misses / Total D-Misses (%)": [53.4, 69.1, 66.0, 65.9],
}

#: Table 2 — breakdown of operating system data misses.
TABLE2: Dict[str, List[float]] = {
    "Block Op. (%)": [43.7, 43.9, 44.0, 27.6],
    "Coherence (%)": [14.8, 11.3, 12.9, 6.2],
    "Other (%)": [41.5, 44.8, 43.1, 66.2],
}

#: Table 3 — characteristics of the block operations.
TABLE3: Dict[str, List[float]] = {
    "Src lines already cached (%)": [62.9, 71.1, 61.4, 41.0],
    "Dst lines already in secondary cache and Dirty or Excl. (%)":
        [19.6, 20.4, 40.6, 2.6],
    "Dst lines already in secondary cache and Shared (%)":
        [0.5, 0.6, 1.0, 0.1],
    "Blocks of size = 4 Kbytes (%)": [91.5, 70.3, 30.8, 29.1],
    "Blocks of size < 4 Kbytes and >= 1 Kbyte (%)": [1.9, 5.2, 24.4, 3.6],
    "Blocks of size < 1 Kbyte (%)": [6.6, 24.5, 44.8, 67.3],
    "Inside displacement misses / total data misses (%)":
        [6.8, 5.5, 4.1, 1.3],
    "Outside displacement misses / total data misses (%)":
        [12.3, 9.3, 15.8, 10.1],
    "Inside reuses / total data misses (%)": [42.7, 24.3, 39.2, 1.4],
    "Outside reuses / total data misses (%)": [0.8, 3.0, 1.5, 1.4],
}

#: Table 4 — copies of blocks smaller than a page.
TABLE4: Dict[str, List[float]] = {
    "Small Block Copies / Block Copies (%)": [11.0, 40.7, 76.1, 83.5],
    "Read-Only Small Block Copies / Small Block Copies (%)":
        [14.0, 43.9, 25.0, 8.7],
    "Misses Eliminated by Deferred Copy / Total Data Misses (%)":
        [0.1, 0.4, 0.3, 0.1],
}

#: Table 5 — breakdown of coherence misses in the operating system.
TABLE5: Dict[str, List[float]] = {
    "Barriers (%)": [45.6, 35.0, 41.2, 4.8],
    "Infreq. Com. (%)": [22.1, 19.9, 22.5, 25.5],
    "Freq. Shared (%)": [12.6, 10.1, 14.3, 24.7],
    "Locks (%)": [7.9, 13.5, 1.9, 19.0],
    "Other (%)": [11.8, 21.5, 20.1, 26.0],
}

ALL_TABLES: Dict[str, Dict[str, List[float]]] = {
    "table1": TABLE1,
    "table2": TABLE2,
    "table3": TABLE3,
    "table4": TABLE4,
    "table5": TABLE5,
}

#: Figure 2 — normalized OS misses per system (from the printed bar
#: values), keyed system -> per-workload values.
FIGURE2: Dict[str, List[float]] = {
    "Base": [1.00, 1.00, 1.00, 1.00],
    "Blk_Pref": [0.66, 0.64, 0.63, 0.73],
    "Blk_Bypass": [1.39, 1.18, 1.16, 0.91],
    "Blk_ByPref": [0.62, 0.62, 0.65, 0.73],
    "Blk_Dma": [0.49, 0.45, 0.63, 0.39],
}

#: Figure 3 — normalized OS execution time per system.
FIGURE3: Dict[str, List[float]] = {
    "Base": [1.00, 1.00, 1.00, 1.00],
    "Blk_Pref": [0.95, 0.96, 0.96, 0.96],
    "Blk_Bypass": [1.16, 1.17, 0.98, 1.07],
    "Blk_ByPref": [0.96, 0.96, 0.97, 0.96],
    "Blk_Dma": [0.83, 0.89, 0.86, 0.89],
    "BCoh_Reloc": [0.83, 0.88, 0.85, 0.88],
    "BCoh_RelUp": [0.81, 0.86, 0.83, 0.87],
    "BCPref": [0.79, 0.82, 0.81, 0.86],
}

#: The adaptive hybrid schemes (:func:`repro.sim.config.hybrid_configs`),
#: beyond the paper's eight.  They have no published targets — the
#: calibration report skips them, and the ``hybrid`` comparison table
#: (:func:`repro.analysis.tables.hybrid_table`) measures them against the
#: paper's own schemes on the generated workload families instead.
HYBRID_SCHEMES: List[str] = ["Hyb_UpdN", "Hyb_Deg", "Hyb_Static"]

#: Figure 5 — fraction of OS misses remaining under BCPref.
FIGURE5_BCPREF: List[float] = [0.23, 0.21, 0.27, 0.28]

#: Section 6 — hot-spot share of the remaining misses (12 hot spots).
HOTSPOT_COVERAGE: List[float] = [0.29, 0.44, 0.22, 0.51]


def paper_value(table: str, row: str, workload: str) -> float:
    """Look one paper cell up, e.g. ``paper_value("table2", "Block Op. (%)",
    "Shell")``."""
    data = ALL_TABLES[table]
    return data[row][WORKLOADS.index(workload)]


def rows(table: str) -> List[str]:
    """Row labels of a paper table, in order."""
    return list(ALL_TABLES[table])


def as_pairs(table: str) -> List[Tuple[str, str, float]]:
    """Flatten a table into ``(row, workload, value)`` triples."""
    out = []
    for row, values in ALL_TABLES[table].items():
        for workload, value in zip(WORKLOADS, values):
            out.append((row, workload, value))
    return out
