"""Measurement analysis: table and figure builders, text rendering."""

from repro.analysis.figures import (
    ALL_FIGURES,
    BarChart,
    LineChart,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.analysis import targets
from repro.analysis.ascii_charts import (
    ascii_bar_chart,
    ascii_line_chart,
    ascii_render,
)
from repro.analysis.attribution import (
    attribution_report,
    hotspot_kinds,
    misses_by_block,
    misses_by_structure,
)
from repro.analysis.compare import (
    CellComparison,
    ComparisonReport,
    calibration_report,
    compare_tables,
    render_comparison,
)
from repro.analysis.model import BlockOpInputs, BlockOpModel
from repro.analysis.report import (
    render,
    render_bar_chart,
    render_line_chart,
    render_table,
)
from repro.analysis.timeline_view import (
    bucket_span,
    density_lane,
    render_miss_timeline,
)
from repro.analysis.tracestats import SharingProfile, TraceStats
from repro.analysis.tables import (
    ALL_TABLES,
    TableData,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "ALL_FIGURES",
    "ALL_TABLES",
    "BarChart",
    "LineChart",
    "SharingProfile",
    "TableData",
    "TraceStats",
    "BlockOpInputs",
    "BlockOpModel",
    "CellComparison",
    "ComparisonReport",
    "ascii_bar_chart",
    "ascii_line_chart",
    "ascii_render",
    "attribution_report",
    "bucket_span",
    "calibration_report",
    "density_lane",
    "render_miss_timeline",
    "compare_tables",
    "hotspot_kinds",
    "misses_by_block",
    "misses_by_structure",
    "render_comparison",
    "targets",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "render",
    "render_bar_chart",
    "render_line_chart",
    "render_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
