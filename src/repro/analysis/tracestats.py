"""Trace-level statistics: the measurements of sections 2-3 that come
straight from the reference stream, before any simulation.

:class:`TraceStats` computes, in one pass over a trace:

* reference counts by mode, operation and data-structure class;
* the block-operation profile (count, bytes, size histogram, copy/zero);
* synchronization activity (lock acquires per lock, barrier episodes);
* per-line *sharing* analysis: how many distinct CPUs touch each cache
  line, split read-only vs read-write — the footprint behind the
  coherence behaviour of Table 5;
* the basic-block profile used to sanity-check hot-spot attribution.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.common.types import DataClass, Mode, Op
from repro.trace.stream import Trace


class SharingProfile:
    """Per-line sharing summary of one trace."""

    __slots__ = ("lines_total", "lines_shared", "lines_write_shared",
                 "max_sharers")

    def __init__(self, lines_total: int, lines_shared: int,
                 lines_write_shared: int, max_sharers: int) -> None:
        #: Distinct cache lines referenced.
        self.lines_total = lines_total
        #: Lines touched by more than one CPU.
        self.lines_shared = lines_shared
        #: Lines written by one CPU and touched by another (true or false
        #: sharing — the coherence-miss candidates).
        self.lines_write_shared = lines_write_shared
        self.max_sharers = max_sharers

    @property
    def shared_fraction(self) -> float:
        return self.lines_shared / self.lines_total if self.lines_total else 0.0


class TraceStats:
    """One-pass statistics over a :class:`~repro.trace.stream.Trace`."""

    def __init__(self, trace: Trace, line_bytes: int = 16) -> None:
        self.trace = trace
        self.line_bytes = line_bytes
        self.refs_by_mode: Counter = Counter()
        self.refs_by_op: Counter = Counter()
        self.refs_by_class: Counter = Counter()
        self.refs_by_pc: Counter = Counter()
        self.lock_acquires: Counter = Counter()
        self.barrier_arrivals: Counter = Counter()
        self.instructions = 0
        self._readers: Dict[int, int] = {}
        self._writers: Dict[int, int] = {}
        self._collect()

    def _collect(self) -> None:
        line_mask = ~(self.line_bytes - 1)
        for cpu, stream in enumerate(self.trace.streams):
            cpu_bit = 1 << cpu
            for r in stream:
                op = r.op
                self.instructions += r.icount
                if op in (Op.READ, Op.WRITE):
                    self.refs_by_mode[Mode(r.mode)] += 1
                    self.refs_by_op[op] += 1
                    self.refs_by_class[DataClass(r.dclass)] += 1
                    self.refs_by_pc[r.pc] += 1
                    line = r.addr & line_mask
                    if op == Op.READ:
                        self._readers[line] = self._readers.get(line, 0) | cpu_bit
                    else:
                        self._writers[line] = self._writers.get(line, 0) | cpu_bit
                elif op == Op.LOCK_ACQ:
                    self.lock_acquires[r.addr] += 1
                elif op == Op.BARRIER:
                    self.barrier_arrivals[r.addr] += 1

    # ------------------------------------------------------------------
    def data_references(self) -> int:
        return sum(self.refs_by_op.values())

    def os_reference_fraction(self) -> float:
        total = self.data_references()
        return self.refs_by_mode[Mode.OS] / total if total else 0.0

    def write_fraction(self) -> float:
        total = self.data_references()
        return self.refs_by_op[Op.WRITE] / total if total else 0.0

    def sharing_profile(self) -> SharingProfile:
        """Per-line sharing analysis across CPUs."""
        lines = set(self._readers) | set(self._writers)
        shared = 0
        write_shared = 0
        max_sharers = 0
        for line in lines:
            touch = (self._readers.get(line, 0) | self._writers.get(line, 0))
            sharers = bin(touch).count("1")
            max_sharers = max(max_sharers, sharers)
            if sharers > 1:
                shared += 1
                writers = self._writers.get(line, 0)
                if writers and (touch & ~writers or bin(writers).count("1") > 1):
                    write_shared += 1
        return SharingProfile(len(lines), shared, write_shared, max_sharers)

    def block_op_profile(self) -> Dict[str, float]:
        """Count/byte/size summary of the trace's block operations."""
        ops = list(self.trace.blockops)
        if not ops:
            return {"count": 0, "copies": 0, "bytes": 0,
                    "page_fraction": 0.0, "small_fraction": 0.0}
        pages = sum(1 for op in ops if op.size >= 4096)
        small = sum(1 for op in ops if op.size < 1024)
        return {
            "count": len(ops),
            "copies": sum(1 for op in ops if op.is_copy),
            "bytes": sum(op.size for op in ops),
            "page_fraction": pages / len(ops),
            "small_fraction": small / len(ops),
        }

    def hottest_blocks(self, count: int = 10):
        """Most-referenced basic blocks (pc, references)."""
        return self.refs_by_pc.most_common(count)

    def summary(self) -> str:
        """Human-readable one-page summary."""
        sharing = self.sharing_profile()
        blocks = self.block_op_profile()
        mode = {m.name: n for m, n in self.refs_by_mode.items()}
        lines = [
            f"records:            {len(self.trace):,}",
            f"data references:    {self.data_references():,} "
            f"(writes {self.write_fraction():.0%})",
            f"instructions:       {self.instructions:,}",
            f"refs by mode:       {mode}",
            f"OS reference share: {self.os_reference_fraction():.1%}",
            f"block operations:   {blocks['count']} "
            f"({blocks['copies']} copies, {blocks['bytes']:,} bytes moved)",
            f"lock acquires:      {sum(self.lock_acquires.values())} "
            f"over {len(self.lock_acquires)} locks",
            f"barrier arrivals:   {sum(self.barrier_arrivals.values())}",
            f"lines touched:      {sharing.lines_total:,} "
            f"({sharing.shared_fraction:.1%} shared, "
            f"{sharing.lines_write_shared:,} write-shared)",
        ]
        return "\n".join(lines)
