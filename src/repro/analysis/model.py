"""Closed-form performance models for block operations.

Section 4.1 of the paper reasons about block-operation overheads from
first principles — how many source lines miss, how many destination
writes need the bus, how long a DMA transfer takes.  This module encodes
that arithmetic so the simulator can be sanity-checked against it (and
so users can answer "when does Blk_Dma win?" without running a
simulation).

The models deliberately ignore contention: they are uncontended lower
bounds, which is exactly how the paper uses such numbers.  The tests in
``tests/test_model.py`` verify that single-operation simulations land
within a modest factor of the predictions.
"""

from __future__ import annotations

import dataclasses

from repro.common.params import BASE_MACHINE, MachineParams
from repro.common.units import ceil_div


@dataclasses.dataclass(frozen=True)
class BlockOpInputs:
    """What the model needs to know about one block copy.

    The fractions correspond to Table 3 rows 1-2.
    """

    size_bytes: int
    #: Fraction of source L1 lines already cached (Table 3 row 1).
    src_cached: float = 0.0
    #: Fraction of destination L2 lines already owned (Table 3 row 2).
    dst_owned: float = 0.0
    #: Instructions executed per copied word (load+store+loop overhead).
    instrs_per_word: int = 3
    #: True for a copy; False for a zero-fill (no source reads).
    is_copy: bool = True


class BlockOpModel:
    """Uncontended cost model for one block operation."""

    def __init__(self, machine: MachineParams = BASE_MACHINE) -> None:
        self.machine = machine

    # -- component predictions (CPU cycles) ----------------------------
    def src_read_misses(self, op: BlockOpInputs) -> int:
        """Expected L1D read misses while reading the source block."""
        if not op.is_copy:
            return 0
        lines = ceil_div(op.size_bytes, self.machine.l1d.line_bytes)
        return round(lines * (1.0 - op.src_cached))

    def read_stall_cycles(self, op: BlockOpInputs) -> int:
        """Processor stall on source-read misses (uncontended).

        Missing L1 lines come in pairs from one L2 line fetch: the first
        sub-line pays the memory latency, the second hits the L2.
        """
        misses = self.src_read_misses(op)
        per_l2 = self.machine.l2.line_bytes // self.machine.l1d.line_bytes
        mem_fetches = ceil_div(misses, per_l2)
        l2_hits = misses - mem_fetches
        return (mem_fetches * (self.machine.memory_read_cycles - 1)
                + l2_hits * (self.machine.l2_hit_cycles - 1))

    def write_bus_cycles(self, op: BlockOpInputs) -> int:
        """Bus occupancy needed to gain ownership of the destination."""
        l2_lines = ceil_div(op.size_bytes, self.machine.l2.line_bytes)
        missing = round(l2_lines * (1.0 - op.dst_owned))
        # Each missing line costs a read-for-ownership request + transfer.
        bus = self.machine.bus
        per_line = bus.request_cycles + bus.line_transfer_cycles(
            self.machine.l2.line_bytes)
        return missing * per_line

    def instruction_cycles(self, op: BlockOpInputs) -> int:
        """Instruction-execution cycles of the copy/zero loop."""
        words = ceil_div(op.size_bytes, 4)
        per_word = op.instrs_per_word + (2 if op.is_copy else 1)
        return words * per_word

    def base_cycles(self, op: BlockOpInputs) -> int:
        """Uncontended Base-machine cost of the operation.

        Write stalls are bounded by the bus work but overlap execution
        through the buffers; following the paper's Figure 1 proportions
        we charge half the write bus work as exposed stall.
        """
        return (self.instruction_cycles(op)
                + self.read_stall_cycles(op)
                + self.write_bus_cycles(op) // 2)

    def dma_cycles(self, op: BlockOpInputs) -> int:
        """Blk_Dma engine time: startup plus the pipelined transfer."""
        dma = self.machine.dma
        beats = ceil_div(op.size_bytes, dma.bytes_per_beat)
        return (dma.startup_cycles
                + beats * dma.bus_cycles_per_beat
                * self.machine.bus.cpu_cycles_per_bus_cycle)

    def dma_speedup(self, op: BlockOpInputs) -> float:
        """Predicted Base/DMA time ratio for the operation itself."""
        return self.base_cycles(op) / max(1, self.dma_cycles(op))

    def dma_break_even_src_cached(self, size_bytes: int) -> float:
        """Source warmth above which Base beats the DMA engine.

        As the source block approaches fully cached (and the destination
        fully owned), the Base loop's only cost is instruction execution;
        the DMA engine still pays its transfer.  Returns the warmth at
        which the two match, clamped to [0, 1] — 1.0 means the engine
        always wins at this size.
        """
        lo, hi = 0.0, 1.0
        for _ in range(40):
            mid = (lo + hi) / 2
            op = BlockOpInputs(size_bytes, src_cached=mid, dst_owned=1.0)
            if self.base_cycles(op) > self.dma_cycles(op):
                lo = mid
            else:
                hi = mid
        op = BlockOpInputs(size_bytes, src_cached=1.0, dst_owned=1.0)
        if self.base_cycles(op) > self.dma_cycles(op):
            return 1.0
        return (lo + hi) / 2
