"""Aligned-text rendering of tables and figure data.

The experiment drivers print the same rows/series the paper reports; these
helpers keep the formatting in one place so tests, benchmarks, examples
and the ``repro.experiments.all`` driver all produce identical output.
"""

from __future__ import annotations

from typing import List

from repro.analysis.figures import BarChart, LineChart
from repro.analysis.tables import TableData


def render_table(table: TableData, decimals: int = 1) -> str:
    """Render a :class:`TableData` as aligned text."""
    label_width = max(len(label) for label in table.row_labels)
    col_width = max(8, max(len(c) for c in table.col_labels) + 2)
    lines = [table.title, ""]
    header = " " * label_width + "".join(
        f"{c:>{col_width}}" for c in table.col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(table.row_labels, table.cells):
        cells = "".join(f"{v:>{col_width}.{decimals}f}" for v in row)
        lines.append(f"{label:<{label_width}}{cells}")
    return "\n".join(lines)


def render_bar_chart(chart: BarChart, decimals: int = 2) -> str:
    """Render a :class:`BarChart` as one block per workload."""
    lines: List[str] = [chart.title, ""]
    sys_width = max(len(s) for s in chart.systems) + 2
    seg_width = max(10, max(len(s) for s in chart.segments) + 2)
    for workload in chart.workloads:
        lines.append(f"[{workload}]")
        header = " " * sys_width + "".join(
            f"{seg:>{seg_width}}" for seg in chart.segments)
        lines.append(header + f"{'Total':>{seg_width}}")
        for system in chart.systems:
            segs = chart.values[workload][system]
            cells = "".join(f"{segs[seg]:>{seg_width}.{decimals}f}"
                            for seg in chart.segments)
            total = chart.total(workload, system)
            lines.append(f"{system:<{sys_width}}{cells}"
                         f"{total:>{seg_width}.{decimals}f}")
        lines.append("")
    return "\n".join(lines)


def render_line_chart(chart: LineChart, decimals: int = 3) -> str:
    """Render a :class:`LineChart` as one block per workload."""
    lines: List[str] = [chart.title, ""]
    sys_width = max(len(s) for s in chart.systems) + 2
    for workload in chart.workloads:
        lines.append(f"[{workload}]  ({chart.x_label})")
        header = " " * sys_width + "".join(
            f"{x:>10}" for x in chart.x_values)
        lines.append(header)
        for system in chart.systems:
            cells = "".join(
                f"{chart.values[workload][system][x]:>10.{decimals}f}"
                for x in chart.x_values)
            lines.append(f"{system:<{sys_width}}{cells}")
        lines.append("")
    return "\n".join(lines)


def render(artifact) -> str:
    """Render any table/figure artifact."""
    if isinstance(artifact, TableData):
        return render_table(artifact)
    if isinstance(artifact, BarChart):
        return render_bar_chart(artifact)
    if isinstance(artifact, LineChart):
        return render_line_chart(artifact)
    raise TypeError(f"cannot render {type(artifact).__name__}")
