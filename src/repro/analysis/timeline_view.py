"""ASCII timeline views: shared bucketing plus the miss-density chart.

This module owns the time-to-column bucketing that every lane chart in
the repository uses (:func:`bucket_span`), and builds on it to render a
:class:`~repro.obs.tracer.Tracer`'s event log as a per-CPU **miss
timeline** — one density lane per CPU plus one for the bus, each column
a bucket of simulated cycles shaded by how many miss/bus events landed
in it.  Where :func:`repro.sim.timeline.render_timeline` shows *what
each CPU executed*, the miss timeline shows *where the memory system
hurt*: miss bursts, bus saturation, and the quiet stretches in between.

It deliberately lives in :mod:`repro.analysis` (not :mod:`repro.sim`):
it consumes an already-recorded event log and has no simulator
dependencies beyond the event types.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.events import CAT_BUS, CAT_MISS, LANE_BUS
from repro.obs.tracer import Tracer

#: Density shading, lightest to heaviest (index 0 renders empty buckets).
DENSITY_GLYPHS = " .:+*#@"


def bucket_span(start: int, end: int, window_start: int, span: int,
                width: int) -> Tuple[int, int]:
    """Map the cycle interval [*start*, *end*) to a column range.

    Returns ``(lo, hi)`` columns (hi exclusive, clamped to *width*); an
    interval always covers at least one column so short events stay
    visible.  This is the exact bucketing ``render_timeline`` has always
    used, factored out so every lane chart shades identically.
    """
    lo = (start - window_start) * width // span
    hi = max(lo + 1,
             (min(end, window_start + span) - window_start) * width // span)
    return lo, min(hi, width)


def density_lane(counts: List[int], peak: int) -> str:
    """Shade one lane of bucket counts against the global *peak*."""
    if peak <= 0:
        return " " * len(counts)
    scale = len(DENSITY_GLYPHS) - 1
    chars = []
    for n in counts:
        if n <= 0:
            chars.append(DENSITY_GLYPHS[0])
        else:
            chars.append(DENSITY_GLYPHS[max(1, n * scale // peak)])
    return "".join(chars)


def render_miss_timeline(tracer: Tracer, width: int = 72,
                         cycles: Optional[int] = None) -> str:
    """Per-CPU (plus bus) miss-density lanes over the traced window.

    Each column is a bucket of simulated cycles; the glyph darkens with
    the number of miss events (CPU lanes) or bus grants (bus lane) that
    started there.  *cycles* clips the window like ``render_timeline``.
    """
    picked = [ev for ev in tracer.events if ev.cat in (CAT_MISS, CAT_BUS)]
    if not picked:
        return "(no miss events recorded)"
    window_start = min(ev.ts for ev in picked)
    window_end = max(ev.ts + ev.dur for ev in picked)
    span = cycles if cycles is not None else (window_end - window_start)
    span = max(1, span)
    lanes: Dict[int, List[int]] = {cpu: [0] * width
                                   for cpu in range(tracer.num_cpus)}
    lanes[LANE_BUS] = [0] * width
    for ev in picked:
        if ev.ts >= window_start + span or ev.lane not in lanes:
            continue
        lo, hi = bucket_span(ev.ts, ev.ts + max(ev.dur, 1), window_start,
                             span, width)
        for col in range(lo, hi):
            lanes[ev.lane][col] += 1
    peak = max((max(counts) for counts in lanes.values()), default=0)
    out = [f"miss timeline: cycles {window_start:,}.."
           f"{window_start + span:,} "
           f"({len(picked)} miss/bus events"
           + (f", {tracer.dropped} dropped" if tracer.dropped else "")
           + f"; peak {peak}/bucket)"]
    for cpu in range(tracer.num_cpus):
        out.append(f"cpu{cpu} |{density_lane(lanes[cpu], peak)}|")
    out.append(f"bus  |{density_lane(lanes[LANE_BUS], peak)}|")
    out.append(f"legend: density {DENSITY_GLYPHS[1:]} (light -> heavy)")
    return "\n".join(out)
