"""Miss attribution: mapping misses back to code and data structures.

Section 2.2 of the paper stresses that the methodology can attribute
every data access "to the actual instruction in the assembly code that
performed the access" and, from there, "the data structure that was being
accessed".  This module reproduces that analysis surface on top of a
finished :class:`~repro.sim.metrics.SystemMetrics`:

* :func:`misses_by_structure` — OS misses per kernel data-structure class
  (which structures hurt);
* :func:`misses_by_block` — OS misses per basic block, with the symbolic
  kernel block names resolved (which code hurts — the input to the
  hot-spot selection of section 6);
* :func:`attribution_report` — a combined, human-readable view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.types import DataClass
from repro.sim.metrics import SystemMetrics
from repro.synthetic.layout import KERNEL_PC


def _pc_names() -> Dict[int, str]:
    return {pc: name for name, pc in KERNEL_PC.items()}


def misses_by_structure(metrics: SystemMetrics,
                        top: Optional[int] = None
                        ) -> List[Tuple[str, int, float]]:
    """OS read misses per data-structure class.

    Returns ``(class name, misses, fraction of OS misses)`` rows, biggest
    first.
    """
    total = sum(metrics.os_miss_dclass.values())
    rows = [(DataClass(dclass).name, count, count / total if total else 0.0)
            for dclass, count in metrics.os_miss_dclass.most_common(top)]
    return rows


def misses_by_block(metrics: SystemMetrics, top: Optional[int] = None,
                    ) -> List[Tuple[str, int, float]]:
    """OS read misses per basic block, with kernel block names resolved."""
    names = _pc_names()
    total = sum(metrics.os_miss_pc.values())
    rows = []
    for pc, count in metrics.os_miss_pc.most_common(top):
        label = names.get(pc, f"pc_{pc:#x}")
        rows.append((label, count, count / total if total else 0.0))
    return rows


def hotspot_kinds(metrics: SystemMetrics, count: int = 12
                  ) -> Dict[str, List[str]]:
    """Split the hottest blocks into loops and sequences (section 6)."""
    names = _pc_names()
    loops: List[str] = []
    sequences: List[str] = []
    other: List[str] = []
    for pc in metrics.hottest_pcs(count):
        name = names.get(pc, f"pc_{pc:#x}")
        if name.endswith(("loop", "walk")):
            loops.append(name)
        elif name.endswith("seq"):
            sequences.append(name)
        else:
            other.append(name)
    return {"loops": loops, "sequences": sequences, "other": other}


def attribution_report(metrics: SystemMetrics, top: int = 10) -> str:
    """Human-readable miss attribution summary."""
    lines = ["OS read misses by data structure:"]
    for name, count, frac in misses_by_structure(metrics, top):
        lines.append(f"  {name:<16s} {count:>8,d}  {frac:6.1%}")
    lines.append("")
    lines.append("OS read misses by basic block:")
    for name, count, frac in misses_by_block(metrics, top):
        lines.append(f"  {name:<20s} {count:>8,d}  {frac:6.1%}")
    kinds = hotspot_kinds(metrics)
    lines.append("")
    lines.append(f"hot-spot loops:     {', '.join(kinds['loops']) or '-'}")
    lines.append(f"hot-spot sequences: {', '.join(kinds['sequences']) or '-'}")
    if kinds["other"]:
        lines.append(f"hot-spot other:     {', '.join(kinds['other'])}")
    return "\n".join(lines)
