"""Programmatic paper-vs-measured comparison.

Builds the measured Tables 1-5 with the regular pipeline, lines every
cell up against the paper's published value
(:mod:`repro.analysis.targets`), and scores the agreement.  This is the
machinery behind ``repro calibrate`` and the summary tables of
EXPERIMENTS.md.

Agreement is scored per cell as the ratio ``measured / paper`` (cells
where the paper reports ~0 are compared by absolute difference instead),
and summarized as the fraction of cells within a factor band.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis import tables as table_builders
from repro.analysis import targets
from repro.experiments.runner import ExperimentRunner


@dataclasses.dataclass(frozen=True)
class CellComparison:
    """One (table, row, workload) cell, paper vs measured."""

    table: str
    row: str
    workload: str
    paper: float
    measured: float

    #: Paper values below this are compared absolutely, not by ratio.
    SMALL: float = 2.0

    @property
    def ratio(self) -> Optional[float]:
        if self.paper < self.SMALL:
            return None
        return self.measured / self.paper

    def within(self, factor: float, small_abs: float = 5.0) -> bool:
        """Is the measured cell within *factor* of the paper's value?

        Near-zero paper cells pass when the measured value stays within
        *small_abs* percentage points.
        """
        if self.ratio is None:
            return abs(self.measured - self.paper) <= small_abs
        return 1.0 / factor <= self.ratio <= factor


@dataclasses.dataclass
class ComparisonReport:
    """All cell comparisons of one run."""

    cells: List[CellComparison]

    def agreement(self, factor: float = 2.0) -> float:
        """Fraction of cells within *factor* of the paper."""
        if not self.cells:
            return 0.0
        return sum(c.within(factor) for c in self.cells) / len(self.cells)

    def worst(self, count: int = 5) -> List[CellComparison]:
        """Cells with the largest ratio deviation."""
        def badness(cell: CellComparison) -> float:
            if cell.ratio is None:
                return abs(cell.measured - cell.paper) / 10.0
            return max(cell.ratio, 1.0 / cell.ratio) if cell.ratio > 0 else 99.0
        return sorted(self.cells, key=badness, reverse=True)[:count]

    def for_table(self, table: str) -> List[CellComparison]:
        return [c for c in self.cells if c.table == table]


def compare_tables(runner: ExperimentRunner,
                   which: Optional[List[str]] = None) -> ComparisonReport:
    """Build the measured tables and compare every cell with the paper."""
    cells: List[CellComparison] = []
    for name in (which or list(targets.ALL_TABLES)):
        builder = table_builders.ALL_TABLES[name]
        measured = builder(runner)
        for row, workload, paper in targets.as_pairs(name):
            cells.append(CellComparison(
                table=name, row=row, workload=workload, paper=paper,
                measured=measured.cell(row, workload)))
    return ComparisonReport(cells)


def render_comparison(report: ComparisonReport, factor: float = 2.0) -> str:
    """Aligned-text rendering: every cell as ``measured/paper``."""
    lines: List[str] = []
    for name in targets.ALL_TABLES:
        cells = report.for_table(name)
        if not cells:
            continue
        lines.append(f"### {name}")
        rows: Dict[str, List[CellComparison]] = {}
        for cell in cells:
            rows.setdefault(cell.row, []).append(cell)
        row_w = max(len(r) for r in rows) + 2
        header = (" " * row_w
                  + "".join(f"{w:>16}" for w in targets.WORKLOADS))
        lines.append(header)
        for row, row_cells in rows.items():
            by_wl = {c.workload: c for c in row_cells}
            body = "".join(
                f"{by_wl[w].measured:>8.1f}/{by_wl[w].paper:<7.1f}"
                for w in targets.WORKLOADS)
            lines.append(f"{row[:row_w - 2]:<{row_w}}{body}")
        lines.append("")
    lines.append(f"agreement within {factor:.1f}x: "
                 f"{report.agreement(factor):.0%} of cells")
    worst = report.worst(5)
    lines.append("largest deviations:")
    for cell in worst:
        lines.append(f"  {cell.table} / {cell.row} / {cell.workload}: "
                     f"measured {cell.measured:.1f} vs paper {cell.paper:.1f}")
    return "\n".join(lines)


def calibration_report(scale: float = 0.5, seed: int = 1996,
                       which: Optional[List[str]] = None) -> str:
    """Convenience wrapper: run, compare, render."""
    runner = ExperimentRunner(scale=scale, seed=seed)
    return render_comparison(compare_tables(runner, which))
