"""Builders for Tables 1-5 of the paper.

Each function takes an :class:`~repro.experiments.runner.ExperimentRunner`
and returns a :class:`TableData` whose rows match the paper's table
row-for-row (columns are the four workloads, in the paper's order).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.common.types import MissKind, Mode
from repro.experiments.runner import ExperimentRunner
from repro.optim.deferred import analyze_deferred, deferred_miss_saving
from repro.synthetic.workloads import WORKLOAD_ORDER


class TableData:
    """A labelled 2-D table of numbers (rows x workloads)."""

    def __init__(self, name: str, title: str, row_labels: Sequence[str],
                 col_labels: Sequence[str]) -> None:
        self.name = name
        self.title = title
        self.row_labels = list(row_labels)
        self.col_labels = list(col_labels)
        self.cells: List[List[float]] = [
            [0.0] * len(self.col_labels) for _ in self.row_labels]

    def set(self, row: int, col: int, value: float) -> None:
        self.cells[row][col] = value

    def row(self, label: str) -> List[float]:
        return self.cells[self.row_labels.index(label)]

    def cell(self, row_label: str, col_label: str) -> float:
        return self.cells[self.row_labels.index(row_label)][
            self.col_labels.index(col_label)]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {rl: {cl: self.cells[i][j]
                     for j, cl in enumerate(self.col_labels)}
                for i, rl in enumerate(self.row_labels)}


def _fill(table: TableData, runner: ExperimentRunner,
          rows: Sequence[Callable], config: str = "Base") -> TableData:
    for col, workload in enumerate(table.col_labels):
        metrics = runner.run(workload, config)
        for row, fn in enumerate(rows):
            table.set(row, col, fn(metrics))
    return table


TABLE1_ROWS = [
    "User Time (%)",
    "Idle Time (%)",
    "OS Time (%)",
    "Stall Time Due to OS D-Accesses (% of Total Time)",
    "D-Miss Rate in Primary Cache (%)",
    "OS D-Reads / Total D-Reads (%)",
    "OS D-Misses / Total D-Misses (%)",
]


def table1(runner: ExperimentRunner) -> TableData:
    """Table 1: characteristics of the workloads studied."""
    table = TableData("table1", "Characteristics of the workloads studied",
                      TABLE1_ROWS, WORKLOAD_ORDER)
    rows = [
        lambda m: 100.0 * m.mode_fraction(Mode.USER),
        lambda m: 100.0 * m.mode_fraction(Mode.IDLE),
        lambda m: 100.0 * m.mode_fraction(Mode.OS),
        lambda m: 100.0 * m.os_data_stall_fraction(),
        lambda m: 100.0 * m.data_miss_rate(),
        lambda m: 100.0 * m.os_read_share(),
        lambda m: 100.0 * m.os_miss_share(),
    ]
    return _fill(table, runner, rows)


TABLE2_ROWS = ["Block Op. (%)", "Coherence (%)", "Other (%)"]


def table2(runner: ExperimentRunner) -> TableData:
    """Table 2: breakdown of operating system data misses."""
    table = TableData("table2", "Breakdown of OS data misses (read misses)",
                      TABLE2_ROWS, WORKLOAD_ORDER)
    rows = [
        lambda m: 100.0 * m.miss_kind_fractions()[MissKind.BLOCK_OP],
        lambda m: 100.0 * m.miss_kind_fractions()[MissKind.COHERENCE],
        lambda m: 100.0 * m.miss_kind_fractions()[MissKind.OTHER],
    ]
    return _fill(table, runner, rows)


TABLE3_ROWS = [
    "Src lines already cached (%)",
    "Dst lines already in secondary cache and Dirty or Excl. (%)",
    "Dst lines already in secondary cache and Shared (%)",
    "Blocks of size = 4 Kbytes (%)",
    "Blocks of size < 4 Kbytes and >= 1 Kbyte (%)",
    "Blocks of size < 1 Kbyte (%)",
    "Inside displacement misses / total data misses (%)",
    "Outside displacement misses / total data misses (%)",
    "Inside reuses / total data misses (%)",
    "Outside reuses / total data misses (%)",
]


def table3(runner: ExperimentRunner) -> TableData:
    """Table 3: characteristics of the block operations.

    Rows 1-8 are measured on the Base system; rows 9-10 (reuses) require
    simulating cache bypassing, exactly as in section 4.1.3.
    """
    table = TableData("table3", "Characteristics of the block operations",
                      TABLE3_ROWS, WORKLOAD_ORDER)
    for col, workload in enumerate(WORKLOAD_ORDER):
        base = runner.run(workload, "Base")
        bypass = runner.run(workload, "Blk_Bypass")
        blocks = base.blockops
        sizes = blocks.size_distribution()
        total = max(1, base.total_data_misses())
        bypass_total = max(1, bypass.total_data_misses())
        values = [
            blocks.pct_src_cached(),
            blocks.pct_dst_owned(),
            blocks.pct_dst_shared(),
            sizes["page"],
            sizes["1k_to_page"],
            sizes["lt_1k"],
            100.0 * base.displacement_inside / total,
            100.0 * base.displacement_outside / total,
            100.0 * bypass.reuse_inside / bypass_total,
            100.0 * bypass.reuse_outside / bypass_total,
        ]
        for row, value in enumerate(values):
            table.set(row, col, value)
    return table


TABLE4_ROWS = [
    "Small Block Copies / Block Copies (%)",
    "Read-Only Small Block Copies / Small Block Copies (%)",
    "Misses Eliminated by Deferred Copy / Total Data Misses (%)",
]


def table4(runner: ExperimentRunner) -> TableData:
    """Table 4: characteristics of copies of blocks smaller than a page."""
    table = TableData("table4", "Copies of blocks smaller than a page",
                      TABLE4_ROWS, WORKLOAD_ORDER)
    for col, workload in enumerate(WORKLOAD_ORDER):
        trace = runner.trace(workload)
        analysis = analyze_deferred(trace)
        saving = deferred_miss_saving(trace)
        table.set(0, col, 100.0 * analysis.small_copy_fraction)
        table.set(1, col, 100.0 * analysis.read_only_fraction)
        table.set(2, col, max(0.0, 100.0 * saving))
    return table


TABLE5_ROWS = ["Barriers (%)", "Infreq. Com. (%)", "Freq. Shared (%)",
               "Locks (%)", "Other (%)"]

_T5_KEYS = ["Barriers", "Infreq. Com.", "Freq. Shared", "Locks", "Other"]


def table5(runner: ExperimentRunner) -> TableData:
    """Table 5: breakdown of coherence misses in the operating system."""
    table = TableData("table5", "Breakdown of OS coherence misses",
                      TABLE5_ROWS, WORKLOAD_ORDER)
    for col, workload in enumerate(WORKLOAD_ORDER):
        breakdown = runner.run(workload, "Base").coherence_breakdown()
        for row, key in enumerate(_T5_KEYS):
            table.set(row, col, 100.0 * breakdown[key])
    return table


#: Schemes of the hybrid comparison, in presentation order: the paper's
#: coherence ladder followed by the adaptive hybrids.  ``Hyb_Static``'s
#: rows must equal ``BCoh_RelUp``'s exactly (the N=infinity-on-sync-pages
#: special case); ``tests/test_adaptive_properties.py`` proves it per
#: trace, this table shows it in the report.
HYBRID_COMPARE_SCHEMES = ["Blk_Dma", "BCoh_Reloc", "BCoh_RelUp",
                          "Hyb_Static", "Hyb_UpdN", "Hyb_Deg"]

HYBRID_FAMILIES = ["server", "bursty_mp", "gang_diurnal"]

HYBRID_ROWS = ([f"{s} OS Time (% of Base)" for s in HYBRID_COMPARE_SCHEMES]
               + [f"{s} OS Misses (% of Base)"
                  for s in HYBRID_COMPARE_SCHEMES])


def hybrid_table(runner: ExperimentRunner) -> TableData:
    """Hybrid-vs-paper comparison on the generated workload families.

    Not a reproduction of a paper table — the paper stops at the static
    per-page ``BCoh_RelUp`` — but the same Figure-3-style normalization
    (OS time and OS misses as a percentage of Base) extended to the
    adaptive hybrid schemes, over the profile-generator families instead
    of the four fixed paper workloads.
    """
    table = TableData("hybrid",
                      "Adaptive hybrids vs the paper's schemes "
                      "(normalized to Base)",
                      HYBRID_ROWS, HYBRID_FAMILIES)
    n = len(HYBRID_COMPARE_SCHEMES)
    for col, workload in enumerate(HYBRID_FAMILIES):
        base = runner.run(workload, "Base")
        base_time = max(1, base.os_time().total)
        base_misses = max(1, base.os_read_misses())
        for row, scheme in enumerate(HYBRID_COMPARE_SCHEMES):
            m = runner.run(workload, scheme)
            table.set(row, col, 100.0 * m.os_time().total / base_time)
            table.set(row + n, col,
                      100.0 * m.os_read_misses() / base_misses)
    return table


#: The machine axis the 1996 testbed lacked: CPU count, cache set
#: associativity and bus width vary together, the way real machines of
#: each size were provisioned.  Point 0 is the paper's exact machine.
MACHINE_POINTS = [
    ("4cpu-1way-8B", 4, 1, None),
    ("8cpu-2way-16B", 8, 2, 16),
    ("16cpu-4way-16B", 16, 4, 16),
    ("32cpu-4way-32B", 32, 4, 32),
]

#: Schemes of the machine comparison: the paper's coherence ladder plus
#: the adaptive hybrids at swept knob values (``Hyb_UpdN``/``Hyb_Deg``
#: are the canonical N=4 / T=2 points).
MACHINE_COMPARE_SCHEMES = ["Blk_Dma", "BCoh_Reloc", "BCoh_RelUp",
                           "Hyb_UpdN@N2", "Hyb_UpdN", "Hyb_UpdN@N8",
                           "Hyb_Deg@T1", "Hyb_Deg", "Hyb_Deg@T4"]

MACHINE_ROWS = ([f"{s} OS Time (% of Base)" for s in MACHINE_COMPARE_SCHEMES]
                + [f"{s} OS Misses (% of Base)"
                   for s in MACHINE_COMPARE_SCHEMES])


def machine_point(num_cpus: int, assoc: int, bus_width):
    """The :class:`MachineParams` of one ``MACHINE_POINTS`` entry."""
    from repro.common.params import machine_for
    return machine_for(num_cpus, assoc=assoc, bus_width_bytes=bus_width)


def machine_workload(num_cpus: int) -> str:
    """The server-family workload sized to one machine point.

    A self-describing ``gen:`` name, so worker processes reconstruct
    the profile without any registry side channel.
    """
    return f"gen:server:c{num_cpus}:i060:steady:0:0"


def machines_table(runner: ExperimentRunner) -> TableData:
    """Scheme comparison across machine shapes (normalized per machine).

    Every column is one machine point of :data:`MACHINE_POINTS` running
    the server workload family scaled to its own CPU count; every cell
    is normalized to the *same machine's* Base, so columns answer "does
    this scheme still pay off on this machine?" rather than comparing
    absolute times across machine sizes.
    """
    table = TableData("machines",
                      "Schemes across machine shapes "
                      "(normalized to each machine's Base)",
                      MACHINE_ROWS,
                      [label for label, _, _, _ in MACHINE_POINTS])
    n = len(MACHINE_COMPARE_SCHEMES)
    for col, (_label, cpus, assoc, bus_width) in enumerate(MACHINE_POINTS):
        machine = machine_point(cpus, assoc, bus_width)
        workload = machine_workload(cpus)
        base = runner.run(workload, "Base", machine=machine)
        base_time = max(1, base.os_time().total)
        base_misses = max(1, base.os_read_misses())
        for row, scheme in enumerate(MACHINE_COMPARE_SCHEMES):
            m = runner.run(workload, scheme, machine=machine)
            table.set(row, col, 100.0 * m.os_time().total / base_time)
            table.set(row + n, col,
                      100.0 * m.os_read_misses() / base_misses)
    return table


ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "hybrid": hybrid_table,
    "machines": machines_table,
}
