"""ASCII rendering of the paper's figures for the terminal.

The numeric renderers in :mod:`repro.analysis.report` print the series;
these draw them — stacked horizontal bars for the bar figures and small
multi-series line plots for the geometry sweeps — so a terminal session
can eyeball the same shapes the paper's charts show.
"""

from __future__ import annotations

from typing import List

from repro.analysis.figures import BarChart, LineChart

#: Fill characters for up to six stacked segments.
SEGMENT_GLYPHS = "#=+:.o"


def ascii_bar_chart(chart: BarChart, width: int = 50) -> str:
    """Stacked horizontal bars, one block per workload.

    Bars are scaled so the longest bar in each workload block spans
    *width* characters; each segment uses its own glyph, mapped in the
    legend line.
    """
    lines: List[str] = [chart.title, ""]
    legend = "  ".join(f"{glyph}={seg}" for glyph, seg
                       in zip(SEGMENT_GLYPHS, chart.segments))
    lines.append(f"legend: {legend}")
    lines.append("")
    sys_width = max(len(s) for s in chart.systems) + 2
    for workload in chart.workloads:
        lines.append(f"[{workload}]")
        peak = max(chart.total(workload, s) for s in chart.systems) or 1.0
        for system in chart.systems:
            bar = []
            for glyph, segment in zip(SEGMENT_GLYPHS, chart.segments):
                value = chart.values[workload][system][segment]
                bar.append(glyph * round(width * value / peak))
            total = chart.total(workload, system)
            lines.append(f"{system:<{sys_width}}|{''.join(bar):<{width}}| "
                         f"{total:.2f}")
        lines.append("")
    return "\n".join(lines)


def ascii_line_chart(chart: LineChart, width: int = 46,
                     height: int = 10) -> str:
    """Small multi-series plot per workload (y: normalized time)."""
    lines: List[str] = [chart.title, ""]
    markers = "BDX*"
    legend = "  ".join(f"{m}={s}" for m, s in zip(markers, chart.systems))
    lines.append(f"legend: {legend}   (x: {chart.x_label})")
    for workload in chart.workloads:
        values = [chart.values[workload][s][x]
                  for s in chart.systems for x in chart.x_values]
        lo, hi = min(values), max(values)
        if hi - lo < 1e-9:
            hi = lo + 1e-9
        span = hi - lo
        grid = [[" "] * width for _ in range(height)]
        for si, system in enumerate(chart.systems):
            for xi, x in enumerate(chart.x_values):
                col = round(xi * (width - 1) / max(1, len(chart.x_values) - 1))
                value = chart.values[workload][system][x]
                row = round((hi - value) / span * (height - 1))
                grid[row][col] = markers[si % len(markers)]
        lines.append(f"\n[{workload}]  y: {lo:.3f}..{hi:.3f}")
        for row in grid:
            lines.append("  |" + "".join(row) + "|")
        ticks = "  ".join(str(x) for x in chart.x_values)
        lines.append(f"   x: {ticks}")
    return "\n".join(lines)


def ascii_render(artifact, **kwargs) -> str:
    """Draw any figure artifact as ASCII art."""
    if isinstance(artifact, BarChart):
        return ascii_bar_chart(artifact, **kwargs)
    if isinstance(artifact, LineChart):
        return ascii_line_chart(artifact, **kwargs)
    raise TypeError(f"cannot draw {type(artifact).__name__}")
