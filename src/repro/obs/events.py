"""Typed trace events and miss classification.

One :class:`TraceEvent` is one timestamped occurrence inside the
simulated machine.  Timestamps are **simulated cycles** (the Chrome-trace
exporter writes them into the microsecond field unscaled, so one display
"us" is one cycle).  Events carry a *lane*: the issuing CPU id, or
:data:`LANE_BUS` for bus-level activity.

Miss classification mirrors the paper's taxonomy (Table 2 / section
4.1.3), in the same precedence order the metrics layer uses: a miss on a
block-operation record is a *block-op* miss; otherwise a miss on a line
invalidated by a remote write is a *coherence* miss; the remaining misses
split into *displacement* (evicted by a block-op fill), *reuse* (moved by
a bypassing scheme without caching), and plain *conflict*.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.memsys.sink import MissFlags

#: Lane id of bus-level events (CPU lanes use the cpu id >= 0).
LANE_BUS = -1

# Event categories (the Chrome-trace ``cat`` field).
CAT_MISS = "miss"
CAT_BUS = "bus"
CAT_COH = "coh"
CAT_BLOCKOP = "blockop"
CAT_DMA = "dma"

CATEGORIES = (CAT_MISS, CAT_BUS, CAT_COH, CAT_BLOCKOP, CAT_DMA)

# Chrome-trace phases used by the exporter.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_BEGIN = "B"
PH_END = "E"

# Miss kinds (string form of the paper's taxonomy).
KIND_BLOCK_OP = "block-op"
KIND_COHERENCE = "coherence"
KIND_DISPLACEMENT = "displacement"
KIND_REUSE = "reuse"
KIND_CONFLICT = "conflict"

MISS_KINDS = (KIND_BLOCK_OP, KIND_COHERENCE, KIND_DISPLACEMENT,
              KIND_REUSE, KIND_CONFLICT)


def classify_miss(blockop: bool, flags: Optional[MissFlags]) -> str:
    """Classify one read miss, matching the metrics layer's precedence."""
    if blockop:
        return KIND_BLOCK_OP
    if flags is not None:
        if flags.coherence:
            return KIND_COHERENCE
        if flags.displaced:
            return KIND_DISPLACEMENT
        if flags.bypassed:
            return KIND_REUSE
    return KIND_CONFLICT


class TraceEvent:
    """One timestamped event of the simulated machine."""

    __slots__ = ("name", "cat", "ph", "ts", "dur", "lane", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: int, dur: int,
                 lane: int, args: Dict[str, object]) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.lane = lane
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.name!r}, cat={self.cat!r}, "
                f"ph={self.ph!r}, ts={self.ts}, dur={self.dur}, "
                f"lane={self.lane})")
