"""The miss-lifecycle tracer and its attachment machinery.

:func:`attach_tracer` arms a freshly built
:class:`~repro.sim.system.MultiprocessorSystem` with a :class:`Tracer`
using the same instance-level hook pattern as
:mod:`repro.check.invariants`: the per-CPU access methods, the
controller's bus-level operations, and the bus grant path are wrapped by
plain attribute assignment on the instances, so a system without a
tracer pays nothing — not even an attribute test on the processor's
inline L1-hit fast path.  Unlike the checker, the tracer needs **no**
fast-path forcing: the inline path only resolves *clean L1 hits*, which
are never misses, so every event the tracer records already travels
through a wrapped method and the metrics stay bit-identical by
construction (``tests/test_obs.py`` proves this for all 8 schemes).

Recorded lifecycle:

* **miss issue** — a demand read/bypass read that missed, with the
  paper's classification, the issuing pc/mode/dclass, and the stall;
* **write-buffer stall** — a write whose buffer insertion stalled;
* **bus grant** — every bus reservation, with wait and occupancy;
* **fill / supply** — L2 fills (shared or for-ownership) and no-fill
  bypass supplies, with the source (another cache or memory);
* **upgrade / Firefly update / invalidation / write-back** — the
  coherence verbs, on the lane of the CPU that caused them;
* **block-op phases** — begin/end brackets per operation;
* **DMA holds** — the engine's bus occupancy and snoop penalty.

The event list is bounded by ``max_events`` (the profile accumulators
are not: a capped run still yields an exact miss profile).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.types import MODE_BY_VALUE, Mode
from repro.memsys.bus import BusOp
from repro.obs.events import (CAT_BLOCKOP, CAT_BUS, CAT_COH, CAT_DMA,
                              CAT_MISS, LANE_BUS, PH_BEGIN, PH_COMPLETE,
                              PH_END, PH_INSTANT, TraceEvent, classify_miss)

#: Default cap on the recorded event list (~100 MB of JSON at the limit).
DEFAULT_MAX_EVENTS = 1_000_000


class Tracer:
    """Collects typed events and per-site miss statistics for one run."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        #: Events discarded after the cap was hit (timeline only; the
        #: profile counters below keep counting).
        self.dropped = 0
        #: High-water mark of event timestamps (approximate "now" for
        #: hooks that have no time argument, e.g. invalidations).
        self.clock = 0
        # Filled in by attach_tracer().
        self.num_cpus = 0
        self.l1_line_bytes = 16
        self.page_bytes = 4096
        self.symbols = None
        # ---- profile accumulators (exact even when events are capped) --
        self.read_misses = 0
        #: pc -> miss-kind -> count, over all read misses.
        self.site_kinds: Dict[int, Counter] = defaultdict(Counter)
        #: pc -> OS-mode read misses (the paper's Table 6 ranks by this).
        self.site_os: Counter = Counter()
        #: pc -> miss stall cycles.
        self.site_stall: Counter = Counter()
        #: L1-line address -> read misses.
        self.line_misses: Counter = Counter()
        #: page address -> read misses.
        self.page_misses: Counter = Counter()

    # ------------------------------------------------------------------
    # Core emit
    # ------------------------------------------------------------------
    def emit(self, name: str, cat: str, ph: str, ts: int, lane: int,
             dur: int = 0, args: Optional[Dict[str, object]] = None) -> None:
        end = ts + dur
        if end > self.clock:
            self.clock = end
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(name, cat, ph, ts, dur, lane,
                                      args if args is not None else {}))

    # ------------------------------------------------------------------
    # Miss-level hooks (per-CPU wrappers)
    # ------------------------------------------------------------------
    def miss(self, cpu: int, proc, op: str, addr: int, t: int, res) -> None:
        """A demand read (or bypass read) missed; *res* is its result."""
        pos = proc.pos - 1
        rec = proc.stream[pos] if 0 <= pos < len(proc.stream) else None
        blockop = bool(rec.blockop) if rec is not None else False
        kind = classify_miss(blockop, res.flags)
        pc = rec.pc if rec is not None else 0
        mode = MODE_BY_VALUE[rec.mode] if rec is not None else Mode.OS
        stall = res.stall + res.pref_stall
        self.read_misses += 1
        self.site_kinds[pc][kind] += 1
        if mode == Mode.OS:
            self.site_os[pc] += 1
        self.site_stall[pc] += stall
        line = addr - addr % self.l1_line_bytes
        self.line_misses[line] += 1
        self.page_misses[addr - addr % self.page_bytes] += 1
        args = {"addr": addr, "pc": pc, "kind": kind, "mode": mode.name,
                "level": res.level, "stall": stall}
        if rec is not None:
            args["dclass"] = int(rec.dclass)
        self.emit(f"{op}.{kind}", CAT_MISS, PH_COMPLETE, t, cpu,
                  dur=max(0, res.done - t), args=args)

    def write_stall(self, cpu: int, addr: int, t: int, stall: int) -> None:
        """A write's buffer insertion stalled the processor."""
        self.emit("write.buffer-stall", CAT_MISS, PH_COMPLETE, t, cpu,
                  dur=stall, args={"addr": addr})

    def blockop(self, cpu: int, ph: str, ts: int, desc) -> None:
        args = {}
        if ph == PH_BEGIN and desc is not None:
            args = {"op": desc.op_id,
                    "kind": "copy" if desc.is_copy else "zero",
                    "size": desc.size, "dst": desc.dst}
            if desc.is_copy:
                args["src"] = desc.src
        self.emit("blockop", CAT_BLOCKOP, ph, ts, cpu, args=args)

    # ------------------------------------------------------------------
    # Bus / coherence hooks (controller and bus wrappers)
    # ------------------------------------------------------------------
    def bus_grant(self, kind: str, t: int, grant: int, duration: int) -> None:
        self.emit(f"bus.{kind}", CAT_BUS, PH_COMPLETE, grant, LANE_BUS,
                  dur=duration, args={"wait": grant - t})

    def fill(self, cpu: int, line: int, t: int, ready: int, source: str,
             shared: bool) -> None:
        name = "fill.shared" if shared else "fill.owned"
        self.emit(name, CAT_COH, PH_COMPLETE, t, cpu, dur=max(0, ready - t),
                  args={"line": line, "source": source})

    def supply_nofill(self, cpu: int, line: int, t: int, ready: int,
                      source: str) -> None:
        self.emit("supply.nofill", CAT_COH, PH_COMPLETE, t, cpu,
                  dur=max(0, ready - t), args={"line": line,
                                               "source": source})

    def upgrade(self, cpu: int, line: int, t: int, done: int) -> None:
        self.emit("upgrade", CAT_COH, PH_COMPLETE, t, cpu,
                  dur=max(0, done - t), args={"line": line})

    def update(self, cpu: int, addr: int, t: int, done: int,
               holders: int) -> None:
        self.emit("firefly.update", CAT_COH, PH_COMPLETE, t, cpu,
                  dur=max(0, done - t), args={"addr": addr,
                                              "holders": holders})

    def invalidate(self, cpu: int, line: int, copies: int) -> None:
        # _invalidate_remotes carries no timestamp; the enclosing bus
        # operation has already advanced the tracer clock, which is the
        # closest cycle the hardware would broadcast the invalidation at.
        self.emit("invalidate", CAT_COH, PH_INSTANT, self.clock, cpu,
                  args={"line": line, "copies": copies})

    def writeback(self, cpu: int, line: int, t: int, done: int,
                  kind: str) -> None:
        self.emit("writeback", CAT_COH, PH_COMPLETE, t, cpu,
                  dur=max(0, done - t), args={"line": line, "kind": kind})

    def dma(self, cpu: int, desc, result) -> None:
        """The DMA engine performed *desc*; *result* is its DmaResult."""
        self.emit("dma", CAT_DMA, PH_COMPLETE, result.grant, LANE_BUS,
                  dur=result.occupancy,
                  args={"cpu": cpu, "op": desc.op_id,
                        "kind": "copy" if desc.is_copy else "zero",
                        "size": desc.size,
                        "snoop_penalty": result.snoop_penalty})


# ======================================================================
# Attachment
# ======================================================================
def attach_tracer(system, tracer: Optional[Tracer] = None,
                  max_events: int = DEFAULT_MAX_EVENTS) -> Tracer:
    """Arm *system* with a tracer; returns it.

    Must run before :meth:`~repro.sim.system.MultiprocessorSystem.run`.
    Composes with the conformance checker in either attachment order
    (each wrapper chains to whatever the method was before it).
    """
    if getattr(system, "tracer", None) is not None:
        raise SimulationError("system already has a tracer attached")
    if tracer is None:
        tracer = Tracer(max_events=max_events)
    machine = system.config.machine
    tracer.num_cpus = system.trace.num_cpus
    tracer.l1_line_bytes = machine.l1d.line_bytes
    tracer.page_bytes = machine.page_bytes
    tracer.symbols = system.trace.symbols
    system.tracer = tracer
    system.controller.tracer = tracer
    _wrap_bus(tracer, system.bus)
    _wrap_controller(tracer, system.controller)
    for proc, mem in zip(system.processors, system.memories):
        _wrap_cpu(tracer, mem, proc)
    return tracer


def _wrap_cpu(tracer: Tracer, mem, proc) -> None:
    """Wrap one CPU's miss-path methods on the *instance*."""
    cpu = mem.cpu_id
    orig_read = mem.read
    orig_read_bypass = mem.read_bypass
    orig_write = mem.write
    orig_write_cycles = mem.write_cycles
    orig_write_bypass = mem.write_bypass
    orig_block_start = proc._do_block_start
    orig_block_end = proc._do_block_end

    def read(addr, t):
        res = orig_read(addr, t)
        if res.miss:
            tracer.miss(cpu, proc, "read", addr, t, res)
        return res

    def read_bypass(addr, t):
        res = orig_read_bypass(addr, t)
        if res.miss:
            tracer.miss(cpu, proc, "read-bypass", addr, t, res)
        return res

    def write(addr, t):
        res = orig_write(addr, t)
        if res.stall:
            tracer.write_stall(cpu, addr, t, res.stall)
        return res

    def write_cycles(addr, t):
        done, stall = orig_write_cycles(addr, t)
        if stall:
            tracer.write_stall(cpu, addr, t, stall)
        return done, stall

    def write_bypass(addr, t):
        res = orig_write_bypass(addr, t)
        if res.stall:
            tracer.write_stall(cpu, addr, t, res.stall)
        return res

    def _do_block_start(rec, t):
        desc = proc.blockops.get(rec.blockop)
        tracer.blockop(cpu, PH_BEGIN, t, desc)
        out = orig_block_start(rec, t)
        if proc._blk_desc is None:
            # DMA scheme: the engine ran the whole operation (and swallowed
            # the word records, so _do_block_end never fires) — close here.
            tracer.blockop(cpu, PH_END, out, desc)
        return out

    def _do_block_end(rec, t):
        out = orig_block_end(rec, t)
        tracer.blockop(cpu, PH_END, out, None)
        return out

    mem.read = read
    mem.read_bypass = read_bypass
    mem.write = write
    mem.write_cycles = write_cycles
    mem.write_bypass = write_bypass
    proc._do_block_start = _do_block_start
    proc._do_block_end = _do_block_end


def _wrap_controller(tracer: Tracer, controller) -> None:
    """Wrap the controller's bus-level verbs on the instance."""
    orig_fetch_shared = controller.fetch_shared
    orig_fetch_owned = controller.fetch_owned
    orig_upgrade = controller.upgrade
    orig_update = controller.broadcast_update
    orig_nofill = controller.read_nofill
    orig_wline = controller.write_line_to_memory
    orig_inval = controller._invalidate_remotes

    def fetch_shared(cpu, addr, t, kind=BusOp.READ_MEM):
        line = controller._l2_line(addr)
        cached = bool(controller._holders(line, cpu))
        ready = orig_fetch_shared(cpu, addr, t, kind)
        tracer.fill(cpu, line, t, ready, "cache" if cached else "mem",
                    shared=True)
        return ready

    def fetch_owned(cpu, addr, t):
        if controller.is_update_addr(addr):
            # Delegates to fetch_shared + broadcast_update, both wrapped.
            return orig_fetch_owned(cpu, addr, t)
        line = controller._l2_line(addr)
        dirty = controller._dirty_holder(line, cpu)
        ready = orig_fetch_owned(cpu, addr, t)
        tracer.fill(cpu, line, t, ready,
                    "cache" if dirty is not None else "mem", shared=False)
        return ready

    def upgrade(cpu, addr, t):
        if controller.is_update_addr(addr):
            return orig_upgrade(cpu, addr, t)  # wrapped broadcast_update
        line = controller._l2_line(addr)
        done = orig_upgrade(cpu, addr, t)
        tracer.upgrade(cpu, line, t, done)
        return done

    def broadcast_update(cpu, addr, t):
        line = controller._l2_line(addr)
        holders = len(controller._holders(line, cpu))
        done = orig_update(cpu, addr, t)
        tracer.update(cpu, addr, t, done, holders)
        return done

    def read_nofill(cpu, addr, t, kind=BusOp.READ_MEM):
        line = controller._l2_line(addr)
        cached = controller._dirty_holder(line, cpu) is not None
        ready = orig_nofill(cpu, addr, t, kind)
        tracer.supply_nofill(cpu, line, t, ready,
                             "cache" if cached else "mem")
        return ready

    def write_line_to_memory(cpu, line_addr, t, kind=BusOp.WRITEBACK,
                             invalidate_remotes=True):
        done = orig_wline(cpu, line_addr, t, kind,
                          invalidate_remotes=invalidate_remotes)
        tracer.writeback(cpu, controller._l2_line(line_addr), t, done,
                         kind.value)
        return done

    def _invalidate_remotes(cpu, line):
        count = orig_inval(cpu, line)
        if count:
            tracer.invalidate(cpu, line, count)
        return count

    controller.fetch_shared = fetch_shared
    controller.fetch_owned = fetch_owned
    controller.upgrade = upgrade
    controller.broadcast_update = broadcast_update
    controller.read_nofill = read_nofill
    controller.write_line_to_memory = write_line_to_memory
    controller._invalidate_remotes = _invalidate_remotes


def _wrap_bus(tracer: Tracer, bus) -> None:
    orig_acquire = bus.acquire

    def acquire(t, duration, kind, record_txn=True):
        grant = orig_acquire(t, duration, kind, record_txn)
        tracer.bus_grant(kind.value, t, grant, duration)
        return grant

    bus.acquire = acquire
