"""Chrome-trace / Perfetto JSON export of a tracer's event log.

The format is the JSON Object Format of the Chrome trace-event spec:
``{"traceEvents": [...], ...}``.  Perfetto and ``chrome://tracing`` both
load it.  Mapping:

* CPU lanes become threads of process 0 (``pid 0, tid <cpu>``); the bus
  is process 1.  Metadata events name every lane.
* Timestamps are simulated cycles written unscaled into the ``ts`` (and
  ``dur``) microsecond fields — one display "us" is one cycle.
* Miss and coherence durations are complete (``ph "X"``) events;
  invalidations are instants; block operations are ``B``/``E`` pairs.

:func:`validate_chrome_trace` checks an exported document (CI runs it on
every push via ``python -m repro.obs --validate``).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Union

from repro.obs.events import (CATEGORIES, PH_BEGIN, PH_COMPLETE, PH_END,
                              PH_INSTANT, LANE_BUS)
from repro.obs.tracer import Tracer

#: ``pid`` values of the two event "processes".
PID_CPUS = 0
PID_BUS = 1

_KNOWN_PHASES = (PH_COMPLETE, PH_INSTANT, PH_BEGIN, PH_END, "M")


def _lane_ids(lane: int) -> "tuple[int, int]":
    if lane == LANE_BUS:
        return PID_BUS, 0
    return PID_CPUS, lane


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render *tracer*'s events as a Chrome-trace JSON document."""
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": PID_CPUS, "ts": 0,
         "args": {"name": "cpus"}},
        {"name": "process_name", "ph": "M", "pid": PID_BUS, "ts": 0,
         "args": {"name": "bus"}},
        {"name": "thread_name", "ph": "M", "pid": PID_BUS, "tid": 0,
         "ts": 0, "args": {"name": "bus"}},
    ]
    for cpu in range(tracer.num_cpus):
        events.append({"name": "thread_name", "ph": "M", "pid": PID_CPUS,
                       "tid": cpu, "ts": 0,
                       "args": {"name": f"cpu{cpu}"}})
    for ev in tracer.events:
        pid, tid = _lane_ids(ev.lane)
        out: Dict[str, Any] = {"name": ev.name, "cat": ev.cat,
                               "ph": ev.ph, "ts": ev.ts,
                               "pid": pid, "tid": tid}
        if ev.ph == PH_COMPLETE:
            out["dur"] = ev.dur
        if ev.ph == PH_INSTANT:
            out["s"] = "t"  # thread-scoped instant
        if ev.args:
            out["args"] = ev.args
        events.append(out)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated cycles (1 ts unit = 1 cycle)",
            "read_misses": tracer.read_misses,
            "dropped_events": tracer.dropped,
        },
    }


def save_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome-trace document to *path*; returns event count."""
    doc = chrome_trace(tracer)
    with open(path, "w") as fp:
        json.dump(doc, fp)
    return len(doc["traceEvents"])


def validate_chrome_trace(source: Union[str, Dict[str, Any]]) -> int:
    """Validate a Chrome-trace document; returns its event count.

    *source* is a path or an already-parsed document.  Raises
    :class:`ValueError` describing the first schema violation: missing
    ``traceEvents``, a non-dict event, a missing/unknown ``ph``, a
    non-numeric ``ts``, a negative ``dur`` on a complete event, or —
    when the exporter recorded no dropped events — unbalanced ``B``/``E``
    pairs on any lane.
    """
    if isinstance(source, str):
        with open(source) as fp:
            doc = json.load(fp)
    else:
        doc = source
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a Chrome trace: no 'traceEvents' key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' is not a list")
    depth: Counter = Counter()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"event #{i} has unknown phase {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{i} has invalid ts {ts!r}")
        if "name" not in ev:
            raise ValueError(f"event #{i} has no name")
        if ph == PH_COMPLETE:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} has invalid dur {dur!r}")
        if ph != "M" and ev.get("cat") not in CATEGORIES:
            raise ValueError(f"event #{i} has unknown category "
                             f"{ev.get('cat')!r}")
        lane = (ev.get("pid"), ev.get("tid"))
        if ph == PH_BEGIN:
            depth[lane] += 1
        elif ph == PH_END:
            depth[lane] -= 1
    dropped = ((doc.get("otherData") or {}).get("dropped_events", 0)
               if isinstance(doc.get("otherData"), dict) else 0)
    if not dropped:
        open_lanes = {lane: n for lane, n in depth.items() if n}
        if open_lanes:
            raise ValueError(f"unbalanced B/E events on lanes {open_lanes}")
    return len(events)
