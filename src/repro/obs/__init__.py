"""Observability: structured event tracing and miss profiling.

The package turns a simulation run into inspectable artifacts:

* :class:`~repro.obs.tracer.Tracer` (attached with
  :func:`~repro.obs.tracer.attach_tracer`) records every miss lifecycle —
  issue, bus grant, fill/supply, write-back, invalidation, Firefly
  update, block-operation phases, DMA holds — as typed events with cycle
  timestamps.  Like the conformance checker it wraps instance methods on
  the miss paths only, so a system without a tracer pays nothing.
* :mod:`~repro.obs.export` renders the event log as Chrome-trace /
  Perfetto JSON (``repro simulate --trace-out t.json``).
* :mod:`~repro.obs.profile` aggregates misses per program-counter site,
  line, page, and kernel service — the paper's Table 6 hot-spot view.

``python -m repro.obs --validate t.json`` checks an exported file
against the Chrome-trace schema (CI runs this on every push).
"""

from repro.obs.events import (CATEGORIES, TraceEvent, classify_miss)
from repro.obs.export import (chrome_trace, save_chrome_trace,
                              validate_chrome_trace)
from repro.obs.profile import MissProfile
from repro.obs.tracer import Tracer, attach_tracer

__all__ = [
    "CATEGORIES",
    "MissProfile",
    "TraceEvent",
    "Tracer",
    "attach_tracer",
    "chrome_trace",
    "classify_miss",
    "save_chrome_trace",
    "validate_chrome_trace",
]
