"""Per-site, per-line, and per-service miss profiles.

:class:`MissProfile` aggregates a :class:`~repro.obs.tracer.Tracer`'s
counters into the three reports the paper's analysis needs:

* **hot sites** — the top-N program-counter sites by OS-mode read
  misses, each with its miss-kind breakdown and stall cycles; this
  mirrors Table 6, which ranks the 12 hottest miss sites of the kernel
  (five loops, seven sequences).
* **hot lines/pages** — the most-missed cache lines and pages, with the
  symbol (kernel data structure) each address falls in when the trace
  carries a symbol map.
* **services** — misses joined to the synthetic kernel's service
  annotations (page fault, process creation, file I/O, scheduling, ...)
  through :func:`repro.synthetic.services.service_of_pc`.

The profile reads only the tracer's exact accumulators, so it is immune
to the event-list cap.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.obs.events import MISS_KINDS
from repro.obs.tracer import Tracer


class SiteRow:
    """One program-counter site of the hot-site ranking."""

    __slots__ = ("pc", "name", "os_misses", "total_misses", "stall",
                 "kinds")

    def __init__(self, pc: int, name: str, os_misses: int,
                 total_misses: int, stall: int, kinds: Counter) -> None:
        self.pc = pc
        self.name = name
        self.os_misses = os_misses
        self.total_misses = total_misses
        self.stall = stall
        self.kinds = kinds


def _block_name(pc: int) -> Optional[str]:
    from repro.synthetic.layout import BLOCK_CODE_BYTES, KERNEL_PC
    for name, base in KERNEL_PC.items():
        if base <= pc < base + BLOCK_CODE_BYTES:
            return name
    return None


class MissProfile:
    """Snapshot of a tracer's miss statistics, with renderers."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self.read_misses = tracer.read_misses
        self.site_kinds = {pc: Counter(c)
                           for pc, c in tracer.site_kinds.items()}
        self.site_os = Counter(tracer.site_os)
        self.site_stall = Counter(tracer.site_stall)
        self.line_misses = Counter(tracer.line_misses)
        self.page_misses = Counter(tracer.page_misses)
        self.symbols = tracer.symbols

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def top_sites(self, n: int = 12) -> List[SiteRow]:
        """The *n* hottest sites by OS-mode read misses (Table 6 shape)."""
        rows = []
        for pc, os_misses in self.site_os.most_common(n):
            kinds = self.site_kinds.get(pc, Counter())
            rows.append(SiteRow(pc, _block_name(pc) or f"{pc:#x}",
                                os_misses, sum(kinds.values()),
                                self.site_stall.get(pc, 0), kinds))
        return rows

    def services(self) -> "List[Tuple[str, int]]":
        """OS-mode misses per kernel service, descending."""
        from repro.synthetic.services import service_of_pc
        per_service: Counter = Counter()
        for pc, count in self.site_os.items():
            per_service[service_of_pc(pc) or "unattributed"] += count
        return per_service.most_common()

    def _symbol_name(self, addr: int) -> str:
        if self.symbols is not None:
            sym = self.symbols.lookup(addr)
            if sym is not None:
                return sym.name
        return "?"

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_sites(self, n: int = 12) -> str:
        rows = self.top_sites(n)
        lines = [f"hot miss sites (top {len(rows)} by OS read misses; "
                 f"{self.read_misses:,} read misses total)",
                 f"{'site':<18} {'os':>8} {'all':>8} {'stall cy':>10}  "
                 f"kinds"]
        for row in rows:
            kinds = ", ".join(f"{k} {row.kinds[k]}" for k in MISS_KINDS
                              if row.kinds.get(k))
            lines.append(f"{row.name:<18} {row.os_misses:>8,} "
                         f"{row.total_misses:>8,} {row.stall:>10,}  "
                         f"{kinds}")
        return "\n".join(lines)

    def render_services(self) -> str:
        rows = self.services()
        total = sum(n for _s, n in rows) or 1
        lines = ["OS read misses by kernel service"]
        for service, count in rows:
            lines.append(f"{service:<18} {count:>8,}  "
                         f"{count / total:>6.1%}")
        return "\n".join(lines)

    def render_lines(self, n: int = 10) -> str:
        lines = [f"hot lines (top {n})",
                 f"{'line':>12} {'misses':>8}  symbol"]
        for addr, count in self.line_misses.most_common(n):
            lines.append(f"{addr:>#12x} {count:>8,}  "
                         f"{self._symbol_name(addr)}")
        lines.append("")
        lines.append(f"hot pages (top {n})")
        lines.append(f"{'page':>12} {'misses':>8}  symbol")
        for addr, count in self.page_misses.most_common(n):
            lines.append(f"{addr:>#12x} {count:>8,}  "
                         f"{self._symbol_name(addr)}")
        return "\n".join(lines)

    def render(self, n: int = 12) -> str:
        return "\n\n".join([self.render_sites(n), self.render_services(),
                            self.render_lines(min(n, 10))])
