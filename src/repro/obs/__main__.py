"""Validate an exported Chrome-trace file.

Usage::

    python -m repro.obs --validate trace.json

Exit status: 0 valid, 1 schema violation, 2 unreadable file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.export import validate_chrome_trace


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate a Chrome-trace JSON file exported by "
                    "'repro simulate --trace-out'")
    parser.add_argument("trace", help="path to a Chrome-trace .json file")
    parser.add_argument("--validate", action="store_true", default=True,
                        help="check the file against the Chrome-trace "
                             "schema (default)")
    args = parser.parse_args(argv)
    try:
        count = validate_chrome_trace(args.trace)
    except OSError as err:
        print(f"cannot read {args.trace}: {err}", file=sys.stderr)
        return 2
    except ValueError as err:
        print(f"invalid chrome trace: {err}", file=sys.stderr)
        return 1
    print(f"valid chrome trace: {count} events")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
