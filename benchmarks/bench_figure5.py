"""Regenerate Figure 5: normalized OS misses with hot-spot prefetching."""

from conftest import build_once

from repro.analysis.figures import figure5
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure5(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure5, runner)
    out = render(chart)
    (results_dir / "figure5.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        assert abs(chart.total(workload, "Base") - 1.0) < 1e-9
        relup_hot = chart.values[workload]["BCoh_RelUp"]["Hot Spot Misses"]
        bcpref_hot = chart.values[workload]["BCPref"]["Hot Spot Misses"]
        # BCPref hides practically all hot-spot misses.
        assert bcpref_hot < 0.5 * max(relup_hot, 1e-9)
        # Few misses remain after the full stack (paper: 21-28 %).
        assert chart.total(workload, "BCPref") < 0.6
        # And BCPref never loses to BCoh_RelUp.
        assert (chart.total(workload, "BCPref")
                <= chart.total(workload, "BCoh_RelUp") + 1e-9)
