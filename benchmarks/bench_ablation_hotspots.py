"""Ablation: how many miss hot spots to prefetch (section 6 picks 12),
and how deep the write buffers should be (section 4.1.2's "deeper write
buffers" remark)."""

from repro.experiments.ablations import (
    hotspot_count_study,
    render_study,
    write_buffer_depth_study,
)


def test_ablation_hotspot_count(benchmark, runner, results_dir):
    points = benchmark.pedantic(hotspot_count_study, args=(runner, "Shell"),
                                rounds=1, iterations=1)
    out = render_study("Hot-spot count (Shell)", points)
    (results_dir / "ablation_hotspots.txt").write_text(out + "\n")
    print("\n" + out)

    misses = [p.os_misses for p in points]
    # Covering more hot spots keeps removing misses, with diminishing
    # returns: the first 12 capture most of the benefit.
    assert misses[-1] <= misses[0]
    gain_to_12 = misses[0] - misses[2]   # top-4 -> top-12
    gain_past_12 = misses[2] - misses[-1]  # top-12 -> top-24
    assert gain_to_12 >= gain_past_12


def test_ablation_write_buffer_depth(benchmark, runner, results_dir):
    points = benchmark.pedantic(write_buffer_depth_study,
                                args=(runner, "Shell"),
                                rounds=1, iterations=1)
    out = render_study("Write-buffer depth (Shell)", points)
    (results_dir / "ablation_write_buffer.txt").write_text(out + "\n")
    print("\n" + out)

    dwrite = [p.extra["dwrite"] for p in points]
    # Deeper buffers reduce write stall overall (small non-monotonic
    # wiggles come from timing feedback through the shared bus)...
    assert dwrite[-1] < min(dwrite[:2])
    assert dwrite[-1] <= dwrite[2]
    # ...but even quadrupling the Base machine's depth moves total OS
    # time by only a few percent — which is why the paper reaches for a
    # DMA engine instead of deeper buffers (section 4.1.2).
    base_depth_time = points[2].os_time   # depth = 4 (the Base machine)
    deepest_time = points[-1].os_time     # depth = 16
    assert abs(deepest_time - base_depth_time) / base_depth_time < 0.05
