"""Ablation: invalidate vs selective vs pure update (section 5.2).

Reproduces the paper's side argument for *selective* update: applying the
Firefly protocol to the chosen variable core gets within a few percent of
a pure update protocol's miss count while saving a large share of its
update traffic ("only 1-3% higher ... while it saves 31-52% of the
update traffic").
"""

from repro.experiments.ablations import render_study, update_policy_study


def test_ablation_update_policy(benchmark, runner, results_dir):
    points = benchmark.pedantic(update_policy_study,
                                args=(runner, "TRFD_4"),
                                rounds=1, iterations=1)
    out = render_study("Update policy ablation (TRFD_4)", points)
    (results_dir / "ablation_update.txt").write_text(out + "\n")
    print("\n" + out)

    by_label = {p.label: p for p in points}
    pure = by_label["pure"]
    selective = by_label["selective"]
    invalidate = by_label["invalidate"]
    # Selective update comes close to pure update's miss count...
    assert selective.os_misses <= pure.os_misses * 1.10
    # ...while sending well under the pure protocol's update traffic.
    assert selective.extra["update_cycles"] < 0.8 * pure.extra["update_cycles"]
    # And both update flavours beat invalidation on coherence misses.
    assert pure.extra["coherence"] <= selective.extra["coherence"]
    assert selective.extra["coherence"] < invalidate.extra["coherence"]
