"""Regenerate Figure 2: normalized OS misses under block-op schemes."""

from conftest import build_once

from repro.analysis.figures import figure2
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure2(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure2, runner)
    out = render(chart)
    (results_dir / "figure2.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        base = chart.total(workload, "Base")
        assert abs(base - 1.0) < 1e-9
        # Blk_Pref eliminates a large share of the block misses.
        assert (chart.values[workload]["Blk_Pref"]["Block Read Misses"]
                < chart.values[workload]["Base"]["Block Read Misses"])
        # Blk_Dma eliminates *all* block misses (caches are bypassed) and
        # leaves roughly half the original misses (paper: 39-66 %).
        assert chart.values[workload]["Blk_Dma"]["Block Read Misses"] == 0.0
        assert chart.total(workload, "Blk_Dma") < 0.92
        # Blk_Dma beats every other block scheme.
        for system in ("Blk_Pref", "Blk_Bypass", "Blk_ByPref"):
            assert (chart.total(workload, "Blk_Dma")
                    <= chart.total(workload, system) + 1e-9)
    # Plain bypassing backfires on the fork/paging-heavy mixes: inside
    # reuses outnumber the displacement misses saved (paper: misses rise
    # for three of four workloads).
    worse = sum(1 for w in WORKLOAD_ORDER
                if chart.total(w, "Blk_Bypass") > 0.95)
    assert worse >= 2
