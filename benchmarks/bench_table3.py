"""Regenerate Table 3: characteristics of the block operations."""

from conftest import build_once

from repro.analysis.report import render
from repro.analysis.tables import table3
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_table3(benchmark, runner, results_dir):
    table = build_once(benchmark, table3, runner)
    out = render(table)
    (results_dir / "table3.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        # Size classes partition the operations.
        total = (table.cell("Blocks of size = 4 Kbytes (%)", workload)
                 + table.cell("Blocks of size < 4 Kbytes and >= 1 Kbyte (%)",
                              workload)
                 + table.cell("Blocks of size < 1 Kbyte (%)", workload))
        assert abs(total - 100.0) < 0.5
        # A sizeable part of each source block is already cached
        # (paper: 41-71 %).
        assert table.cell("Src lines already cached (%)", workload) > 15
        # Few destination lines sit Shared (paper: <= 1 %).
        assert table.cell(
            "Dst lines already in secondary cache and Shared (%)",
            workload) < 10
    # TRFD_4's blocks are mostly page-sized; Shell's mostly small
    # (paper: 91.5 % vs 67.3 %).
    trfd = WORKLOAD_ORDER.index("TRFD_4")
    shell = WORKLOAD_ORDER.index("Shell")
    pages = table.row("Blocks of size = 4 Kbytes (%)")
    small = table.row("Blocks of size < 1 Kbyte (%)")
    assert pages[trfd] > pages[shell]
    assert small[shell] > small[trfd]
    # Inside reuses are of the same order as inside displacement misses
    # (the paper's reuses far outnumber displacements; at benchmark scale
    # the warm-up phase dilutes the copy chains, so we assert the shape
    # loosely) and the parallel workloads all exhibit them.
    inside_reuse = table.row("Inside reuses / total data misses (%)")
    inside_displ = table.row(
        "Inside displacement misses / total data misses (%)")
    assert sum(inside_reuse) > 0.4 * sum(inside_displ)
    assert sum(1 for v in inside_reuse if v > 0) >= 3
