#!/usr/bin/env python
"""Simulator-core throughput benchmark: the ``BENCH_simcore.json`` writer.

Measures serial simulation throughput (trace records per second) for every
workload x scheme cell at one or more workload scales, in **both**
execution modes of the scheduler: the default batched mode
(``batch=True``) and the scalar reference (``batch=False``).  Trace
generation happens outside the timer; each mode of each cell is simulated
``--repeats`` times and the best wall time is kept.

Schema 2 cells carry the batched numbers under the schema-1 key names
(``records_per_sec``/``normalized`` describe what a default ``simulate``
call gets), plus ``scalar_records_per_sec``/``scalar_normalized``,
``batch_speedup`` (batched over scalar records/sec), and
``batch_coverage`` (fraction of records retired by the batched path).
The regression check therefore compares default-mode throughput against
default-mode throughput even across a schema bump.

Because absolute records/sec depends on the host, every run also measures
a fixed pure-Python *calibration* kernel (dict/int/attribute traffic much
like the simulator's own inner loop).  Each cell stores both the raw
``records_per_sec`` and ``normalized`` = records/sec divided by the
calibration score; the regression check compares *normalized* values so a
committed baseline from one machine remains meaningful on another (e.g.
CI runners).

Usage::

    PYTHONPATH=src python benchmarks/bench_simcore.py \
        --scales 0.25,0.5 --out BENCH_simcore.json

    # CI: measure at scale 0.25 and fail on a >20% normalized regression
    # against the committed trajectory file.
    python benchmarks/bench_simcore.py --scales 0.25 --repeats 2 \
        --out bench-ci.json --check BENCH_simcore.json --max-regression 0.2

``--baseline-from FILE`` embeds a previous result file under the
``baseline`` key of the output, which is how before/after numbers of an
optimization PR are recorded in one committed artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.sim.config import standard_configs
from repro.sim.system import MultiprocessorSystem
from repro.synthetic.workloads import WORKLOAD_ORDER, generate

#: Pure-scheme systems that simulate the raw trace directly.  The derived
#: systems (BCoh_*, BCPref) need the runner's profiling chain and measure
#: the same inner loop, so the bench sticks to these five.
DEFAULT_SCHEMES = ("Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref", "Blk_Dma")

DEFAULT_SCALES = (0.25, 0.5)

SCHEMA_VERSION = 2

#: Iterations of the calibration kernel (fixed; part of the metric).
_CALIBRATION_ITERS = 200_000


def calibrate(rounds: int = 3) -> float:
    """Machine-speed score: iterations/sec of a fixed pure-Python kernel."""
    best: Optional[float] = None
    for _ in range(rounds):
        table: Dict[int, int] = {}
        acc = 0
        t0 = time.perf_counter()
        for i in range(_CALIBRATION_ITERS):
            table[i & 1023] = i
            acc += table.get((i * 7) & 1023, 0)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None and acc >= 0
    return _CALIBRATION_ITERS / best


def _bench_mode(trace, config, repeats: int, batch: bool) -> "tuple[float, int]":
    """Best-of-*repeats* wall time of one cell in one scheduler mode."""
    best: Optional[float] = None
    batched_records = 0
    for _ in range(repeats):
        system = MultiprocessorSystem(trace, config, batch=batch)
        t0 = time.perf_counter()
        system.run()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        batched_records = system.batched_records
    assert best is not None
    return best, batched_records


def bench_cell(trace, config, repeats: int) -> Dict[str, float]:
    """Measure one cell in both scheduler modes.

    The schema-1 keys (``best_seconds``, ``records_per_sec``) hold the
    *batched* (default-mode) numbers; the scalar reference rides along
    under ``scalar_*`` so before/after and mode-vs-mode comparisons read
    off one record.
    """
    n = len(trace)
    batched_best, batched_records = _bench_mode(trace, config, repeats,
                                                batch=True)
    scalar_best, _ = _bench_mode(trace, config, repeats, batch=False)
    return {
        "records": n,
        "best_seconds": batched_best,
        "records_per_sec": n / batched_best,
        "scalar_best_seconds": scalar_best,
        "scalar_records_per_sec": n / scalar_best,
        "batch_speedup": scalar_best / batched_best,
        "batch_coverage": batched_records / n if n else 0.0,
    }


def run_bench(scales: List[float], schemes: List[str], workloads: List[str],
              seed: int, repeats: int) -> Dict[str, object]:
    calibration = calibrate()
    configs = standard_configs()
    cells: Dict[str, Dict[str, float]] = {}
    for scale in scales:
        for workload in workloads:
            trace = generate(workload, seed=seed, scale=scale)
            for scheme in schemes:
                cell = bench_cell(trace, configs[scheme], repeats)
                cell["normalized"] = cell["records_per_sec"] / calibration
                cell["scalar_normalized"] = (
                    cell["scalar_records_per_sec"] / calibration)
                key = f"{scale}/{workload}/{scheme}"
                cells[key] = cell
                print(f"  {key}: {cell['records_per_sec']:,.0f} rec/s "
                      f"(norm {cell['normalized']:.3f}, "
                      f"scalar {cell['scalar_records_per_sec']:,.0f}, "
                      f"speedup {cell['batch_speedup']:.2f}x, "
                      f"cov {cell['batch_coverage']:.0%})", flush=True)
    return {
        "schema": SCHEMA_VERSION,
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "seed": seed,
            "repeats": repeats,
            "calibration_iters_per_sec": calibration,
            "unix_time": int(time.time()),
        },
        "cells": cells,
    }


def check_regression(current: Dict[str, object], baseline_path: str,
                     max_regression: float) -> int:
    """Compare normalized throughput against a committed result file.

    Returns the number of regressed cells (0 means the check passed).
    """
    with open(baseline_path) as fh:
        committed = json.load(fh)
    committed_cells = committed.get("cells", {})
    current_cells = current["cells"]
    shared = sorted(set(committed_cells) & set(current_cells))
    if not shared:
        print(f"check: no overlapping cells with {baseline_path}",
              file=sys.stderr)
        return 1
    failures = 0
    for key in shared:
        base = committed_cells[key]["normalized"]
        cur = current_cells[key]["normalized"]
        floor = base * (1.0 - max_regression)
        status = "ok" if cur >= floor else "REGRESSED"
        if cur < floor:
            failures += 1
        print(f"  check {key}: baseline {base:.3f} -> current {cur:.3f} "
              f"(floor {floor:.3f}) {status}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", default=",".join(map(str, DEFAULT_SCALES)),
                        help="comma-separated workload scales")
    parser.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES),
                        help="comma-separated scheme config names")
    parser.add_argument("--workloads", default=",".join(WORKLOAD_ORDER),
                        help="comma-separated workload names")
    parser.add_argument("--seed", type=int, default=1996)
    parser.add_argument("--repeats", type=int, default=2,
                        help="simulations per cell; best time kept")
    parser.add_argument("--out", default=None,
                        help="write the result JSON here")
    parser.add_argument("--baseline-from", default=None,
                        help="embed this earlier result file as 'baseline'")
    parser.add_argument("--check", default=None, metavar="FILE",
                        help="fail when normalized throughput regresses "
                             "against FILE's cells")
    parser.add_argument("--max-regression", type=float, default=0.2,
                        help="allowed fractional drop for --check")
    args = parser.parse_args(argv)

    scales = [float(s) for s in args.scales.split(",") if s]
    schemes = [s for s in args.schemes.split(",") if s]
    workloads = [w for w in args.workloads.split(",") if w]

    print(f"bench_simcore: scales={scales} schemes={schemes} "
          f"workloads={workloads} repeats={args.repeats}", flush=True)
    result = run_bench(scales, schemes, workloads, args.seed, args.repeats)

    if args.baseline_from:
        with open(args.baseline_from) as fh:
            earlier = json.load(fh)
        result["baseline"] = {"meta": earlier.get("meta"),
                              "cells": earlier.get("cells")}

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.check:
        failures = check_regression(result, args.check, args.max_regression)
        if failures:
            print(f"bench_simcore: {failures} cell(s) regressed more than "
                  f"{args.max_regression:.0%}", file=sys.stderr)
            return 1
        print("bench_simcore: regression check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
