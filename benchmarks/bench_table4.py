"""Regenerate Table 4: copies of blocks smaller than a page."""

from conftest import build_once

from repro.analysis.report import render
from repro.analysis.tables import table4
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_table4(benchmark, runner, results_dir):
    table = build_once(benchmark, table4, runner)
    out = render(table)
    (results_dir / "table4.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        small = table.cell("Small Block Copies / Block Copies (%)", workload)
        ro = table.cell(
            "Read-Only Small Block Copies / Small Block Copies (%)", workload)
        saved = table.cell(
            "Misses Eliminated by Deferred Copy / Total Data Misses (%)",
            workload)
        assert 0.0 <= small <= 100.0
        assert 0.0 <= ro <= 100.0
        # The paper's conclusion: deferred copy saves almost nothing
        # (0.1-0.4 %) — reject the mechanism.  Short benchmark traces
        # inflate the ratio slightly; calibrated runs land near zero.
        assert saved < 12.0
    # Shell performs relatively more small copies than TRFD_4
    # (paper: 83.5 % vs 11 %).
    small_row = table.row("Small Block Copies / Block Copies (%)")
    assert (small_row[WORKLOAD_ORDER.index("Shell")]
            > small_row[WORKLOAD_ORDER.index("TRFD_4")])
