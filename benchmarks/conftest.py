"""Shared fixtures for the benchmark harness.

One session-scoped :class:`ExperimentRunner` is shared by every benchmark
so each trace, transform and simulation is produced once; the benchmarks
then measure (and regenerate) each table/figure build on top of it.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload length multiplier (default 0.2; use
  0.5+ for numbers closer to the calibrated operating point).
* ``REPRO_BENCH_SEED`` — workload seed (default 1996).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentRunner

#: Default scale keeps the full harness to a few minutes.
DEFAULT_SCALE = 0.2


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    seed = int(os.environ.get("REPRO_BENCH_SEED", 1996))
    return ExperimentRunner(scale=scale, seed=seed)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def build_once(benchmark, builder, runner):
    """Run *builder(runner)* once under the benchmark timer."""
    return benchmark.pedantic(builder, args=(runner,), rounds=1, iterations=1)
