"""Regenerate Figure 6: OS execution time vs primary-cache size."""

from conftest import build_once

from repro.analysis.figures import figure6
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure6(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure6, runner)
    out = render(chart)
    (results_dir / "figure6.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        for size in chart.x_values:
            base = chart.values[workload]["Base"][size]
            dma = chart.values[workload]["Blk_Dma"][size]
            full = chart.values[workload]["BCPref"][size]
            assert abs(base - 1.0) < 1e-9
            # Paper: "Blk_Dma always outperforms Base, while BCPref
            # always outperforms Blk_Dma" — at every cache size (ties
            # within half a percent accepted at benchmark scale).
            assert dma < 1.0
            assert full < dma + 0.005
            assert full < 1.0
