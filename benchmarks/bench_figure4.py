"""Regenerate Figure 4: normalized OS misses under coherence support."""

from conftest import build_once

from repro.analysis.figures import figure4
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure4(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure4, runner)
    out = render(chart)
    (results_dir / "figure4.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        assert abs(chart.total(workload, "Base") - 1.0) < 1e-9
        base_coh = chart.values[workload]["Base"]["Coh. Misses"]
        reloc_coh = chart.values[workload]["BCoh_Reloc"]["Coh. Misses"]
        relup_coh = chart.values[workload]["BCoh_RelUp"]["Coh. Misses"]
        # Privatization/relocation trims coherence misses; the selective
        # update protocol then removes most of what remains (paper:
        # BCoh_RelUp eliminates most coherence misses).
        assert reloc_coh <= base_coh + 1e-9
        assert relup_coh < base_coh
        assert relup_coh <= reloc_coh + 1e-9
        # The combined system keeps beating plain Blk_Dma.
        assert (chart.total(workload, "BCoh_RelUp")
                <= chart.total(workload, "Blk_Dma") + 0.02)
    # The update protocol's gain is largest where coherence misses are
    # largest (the gang-scheduled workloads, not Shell).
    gains = {w: (chart.values[w]["BCoh_Reloc"]["Coh. Misses"]
                 - chart.values[w]["BCoh_RelUp"]["Coh. Misses"])
             for w in WORKLOAD_ORDER}
    assert max(gains, key=gains.get) != "Shell"
