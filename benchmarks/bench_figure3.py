"""Regenerate Figure 3: normalized OS execution time, all eight systems."""

from conftest import build_once

from repro.analysis.figures import FIG3_SYSTEMS, figure3
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure3(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure3, runner)
    out = render(chart)
    (results_dir / "figure3.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        assert abs(chart.total(workload, "Base") - 1.0) < 1e-9
        dma = chart.total(workload, "Blk_Dma")
        full = chart.total(workload, "BCPref")
        # Blk_Dma achieves solid reductions (paper: 11-17 %).
        assert dma < 0.97
        # The full stack is the fastest system of all (ties within half
        # a percent are accepted at benchmark scale).
        for system in FIG3_SYSTEMS:
            assert full <= chart.total(workload, system) + 0.005
        # Blk_Bypass is NOT clearly profitable (paper: usually slower);
        # it never meaningfully beats the DMA engine.
        assert chart.total(workload, "Blk_Bypass") > dma - 0.05
    # Average final speedup is substantial (paper: 19 %).
    avg = sum(chart.total(w, "BCPref") for w in WORKLOAD_ORDER) / 4
    assert avg < 0.9
