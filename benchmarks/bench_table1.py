"""Regenerate Table 1: characteristics of the workloads studied."""

from conftest import build_once

from repro.analysis.report import render
from repro.analysis.tables import table1
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_table1(benchmark, runner, results_dir):
    table = build_once(benchmark, table1, runner)
    out = render(table)
    (results_dir / "table1.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        # The workloads are system intensive: the OS gets a large share
        # of time, of data reads and of data misses (paper: 42-54 %,
        # 40-61 %, 53-69 %).
        assert table.cell("OS Time (%)", workload) > 30
        assert table.cell("OS D-Reads / Total D-Reads (%)", workload) > 25
        assert table.cell("OS D-Misses / Total D-Misses (%)", workload) > 40
        # Time shares are a partition.
        total = (table.cell("User Time (%)", workload)
                 + table.cell("Idle Time (%)", workload)
                 + table.cell("OS Time (%)", workload))
        assert abs(total - 100.0) < 0.5
    # Shell is the most idle workload (29.2 % in the paper).
    idles = table.row("Idle Time (%)")
    assert max(idles) == idles[WORKLOAD_ORDER.index("Shell")]
