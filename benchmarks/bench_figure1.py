"""Regenerate Figure 1: components of block-operation overhead."""

from conftest import build_once

from repro.analysis.figures import figure1
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure1(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure1, runner)
    out = render(chart)
    (results_dir / "figure1.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        segs = chart.values[workload]["Base"]
        # Normalized decomposition sums to one.
        assert abs(sum(segs.values()) - 1.0) < 1e-9
        # Read stall, write stall and instruction execution each carry a
        # substantial share (paper: ~30 % each); displacement is the
        # smallest (~10 %).
        assert segs["Read Stall"] > 0.10
        assert segs["Write Stall"] > 0.05
        assert segs["Instr. Exec."] > 0.10
        assert segs["Displ. Stall"] < max(segs["Read Stall"],
                                          segs["Instr. Exec."])
