"""Regenerate Table 5: breakdown of OS coherence misses."""

from conftest import build_once

from repro.analysis.report import render
from repro.analysis.tables import table5
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_table5(benchmark, runner, results_dir):
    table = build_once(benchmark, table5, runner)
    out = render(table)
    (results_dir / "table5.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        total = sum(table.cell(row, workload) for row in
                    ("Barriers (%)", "Infreq. Com. (%)", "Freq. Shared (%)",
                     "Locks (%)", "Other (%)"))
        assert abs(total - 100.0) < 0.5
    barriers = table.row("Barriers (%)")
    shell = WORKLOAD_ORDER.index("Shell")
    # Shell runs serial jobs: almost no barrier synchronization
    # (paper: 4.8 % vs 35-46 % for the gang-scheduled mixes).
    assert barriers[shell] < 10
    for workload in ("TRFD_4", "TRFD+Make", "ARC2D+Fsck"):
        assert table.cell("Barriers (%)", workload) > barriers[shell]
    # Infrequently-communicated counters matter everywhere (paper: 20-26 %).
    for workload in WORKLOAD_ORDER:
        assert table.cell("Infreq. Com. (%)", workload) > 5
