"""Extension bench: section 7's page-placement (cache coloring) idea.

The paper declines to evaluate page placement, noting that "the data
placement is done at a page grain size, which is not optimal for the
many small data structures in the kernel".  This bench runs the
extension anyway: a cache-color-aware frame allocator against the
default allocator, on the two workloads where the outcome differs most.
The expected result is *mixed* — coloring removes the page-copy
self-conflicts of TRFD_4 but disturbs the warm-frame reuse other
workloads rely on — which is exactly the ambivalence section 7 voices.
"""

import os

import pytest

from repro.experiments.extensions import page_coloring_sweep, render_coloring


def test_extension_page_coloring(benchmark, results_dir):
    scale = float(os.environ.get("REPRO_BENCH_SCALE", 0.2))
    results = benchmark.pedantic(
        page_coloring_sweep, kwargs={"scale": scale,
                                     "workloads": ["TRFD_4", "TRFD+Make"]},
        rounds=1, iterations=1)
    out = render_coloring(results)
    (results_dir / "extension_coloring.txt").write_text(out + "\n")
    print("\n" + out)

    trfd = results["TRFD_4"]
    # Coloring pays off where page-aligned copies self-conflict: TRFD_4's
    # page-ins and page-outs stop thrashing their own source lines.
    assert trfd.miss_ratio < 0.95
    assert trfd.time_ratio < 1.0
    # But it is no free lunch across the board (the paper's caveat):
    # at least one workload must NOT see a >20 % win.
    ratios = [r.time_ratio for r in results.values()]
    assert max(ratios) > 0.8
