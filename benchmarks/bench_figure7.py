"""Regenerate Figure 7: OS execution time vs primary-cache line size."""

from conftest import build_once

from repro.analysis.figures import figure7
from repro.analysis.report import render
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_figure7(benchmark, runner, results_dir):
    chart = build_once(benchmark, figure7, runner)
    out = render(chart)
    (results_dir / "figure7.txt").write_text(out + "\n")
    print("\n" + out)

    for line in chart.x_values:
        dma_vals = []
        full_vals = []
        for workload in WORKLOAD_ORDER:
            assert abs(chart.values[workload]["Base"][line] - 1.0) < 1e-9
            dma_vals.append(chart.values[workload]["Blk_Dma"][line])
            full_vals.append(chart.values[workload]["BCPref"][line])
            # No point is meaningfully worse than Base (larger lines give
            # Base free spatial locality, shrinking the margin).
            assert chart.values[workload]["Blk_Dma"][line] < 1.03
            assert chart.values[workload]["BCPref"][line] < 1.03
        # On average the optimized systems win at every line size.
        assert sum(dma_vals) / len(dma_vals) < 1.0
        assert sum(full_vals) / len(full_vals) < sum(dma_vals) / len(dma_vals) + 0.02
        assert sum(full_vals) / len(full_vals) < 0.97
