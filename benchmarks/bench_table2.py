"""Regenerate Table 2: breakdown of operating-system data misses."""

from conftest import build_once

from repro.analysis.report import render
from repro.analysis.tables import table2
from repro.synthetic.workloads import WORKLOAD_ORDER


def test_table2(benchmark, runner, results_dir):
    table = build_once(benchmark, table2, runner)
    out = render(table)
    (results_dir / "table2.txt").write_text(out + "\n")
    print("\n" + out)

    for workload in WORKLOAD_ORDER:
        blk = table.cell("Block Op. (%)", workload)
        coh = table.cell("Coherence (%)", workload)
        other = table.cell("Other (%)", workload)
        # The three sources partition the OS misses.
        assert abs(blk + coh + other - 100.0) < 0.5
        # Block operations are a major source (paper: 27.6-44 %; at
        # benchmark scale the warm-up phase skews Shell downward).
        assert blk > 10
    # Shell, being serial, has the fewest coherence misses (paper: 6.2 %
    # vs 11.3-14.8 % for the parallel mixes).
    coh_row = table.row("Coherence (%)")
    assert coh_row[WORKLOAD_ORDER.index("Shell")] <= max(coh_row)
    # For Shell, "Other" dominates (paper: 66.2 %).
    shell = WORKLOAD_ORDER.index("Shell")
    assert table.row("Other (%)")[shell] > table.row("Block Op. (%)")[shell]
