"""Throughput benchmarks of the library itself.

Unlike the table/figure benches (which regenerate paper artifacts), these
measure the engineering-side costs a user plans around: trace generation
rate, simulation rate, trace transformation, and (de)serialization.
They use multiple benchmark rounds, so their timings are meaningful for
regression tracking.
"""

import pytest

from repro.experiments.artifacts import ArtifactCache
from repro.experiments.runner import ExperimentRunner
from repro.optim.privatize import privatize_and_relocate
from repro.sim.config import standard_configs
from repro.sim.system import simulate
from repro.synthetic.workloads import generate
from repro.trace import npzio, textio

SCALE = 0.1


@pytest.fixture(scope="module")
def shell_trace():
    return generate("Shell", seed=1996, scale=SCALE)


def test_throughput_generation(benchmark):
    trace = benchmark.pedantic(generate, args=("Shell",),
                               kwargs={"seed": 1996, "scale": SCALE},
                               rounds=3, iterations=1)
    assert len(trace) > 1000
    benchmark.extra_info["records"] = len(trace)


def test_throughput_simulation_base(benchmark, shell_trace):
    config = standard_configs()["Base"]
    metrics = benchmark.pedantic(simulate, args=(shell_trace, config),
                                 rounds=3, iterations=1)
    assert metrics.makespan > 0
    benchmark.extra_info["records"] = len(shell_trace)


def test_throughput_simulation_dma(benchmark, shell_trace):
    config = standard_configs()["Blk_Dma"]
    metrics = benchmark.pedantic(simulate, args=(shell_trace, config),
                                 rounds=3, iterations=1)
    assert metrics.dma_ops > 0


def test_throughput_privatize_transform(benchmark, shell_trace):
    out = benchmark.pedantic(privatize_and_relocate, args=(shell_trace, 4),
                             rounds=3, iterations=1)
    assert len(out) >= len(shell_trace)


def test_throughput_npz_roundtrip(benchmark, shell_trace, tmp_path):
    path = str(tmp_path / "t.npz")

    def roundtrip():
        npzio.save(shell_trace, path)
        return npzio.load(path)

    restored = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert len(restored) == len(shell_trace)


def test_throughput_text_serialize(benchmark, shell_trace):
    text = benchmark.pedantic(textio.dumps, args=(shell_trace,),
                              rounds=3, iterations=1)
    assert text.startswith("reprotrace v1")


def test_throughput_warm_artifact_cache(benchmark, tmp_path_factory):
    """Warm-cache rerun of the full derivation chain.

    The cold pass (outside the timer) populates the on-disk artifact
    cache with the trace and all four derived artifacts; the measured
    warm passes must serve every generation/derivation stage from disk —
    zero recomputes — leaving only the simulation itself.
    """
    cache_dir = tmp_path_factory.mktemp("bench-artifact-cache")
    cold = ExperimentRunner(scale=SCALE, seed=1996,
                            cache=ArtifactCache(cache_dir))
    cold.run("Shell", "BCPref")

    def warm_run():
        cache = ArtifactCache(cache_dir)
        runner = ExperimentRunner(scale=SCALE, seed=1996, cache=cache)
        return cache, runner.run("Shell", "BCPref")

    cache, metrics = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert metrics.prefetches_issued > 0
    # All trace generation and derivation stages were skipped.
    recomputed = {event: count for event, count in cache.stats.items()
                  if event.endswith((".miss", ".store", ".corrupt")) and count}
    assert not recomputed, recomputed
    benchmark.extra_info["cache_hits"] = cache.hits()
