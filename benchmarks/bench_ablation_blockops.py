"""Ablations on the block-operation design choices of section 4.

* Blk_Pref's software-pipelining depth: deeper pipelining covers more
  block misses until the bus becomes the bottleneck.
* Blk_Dma's transfer rate: the paper's engine moves 8 bytes per 2 bus
  cycles; slower engines erode the scheme's win over Base.
"""

from repro.experiments.ablations import (
    dma_rate_study,
    prefetch_lead_study,
    render_study,
)


def test_ablation_prefetch_lead(benchmark, runner, results_dir):
    points = benchmark.pedantic(prefetch_lead_study,
                                args=(runner, "TRFD+Make"),
                                rounds=1, iterations=1)
    out = render_study("Blk_Pref pipelining depth (TRFD+Make)", points)
    (results_dir / "ablation_pref_lead.txt").write_text(out + "\n")
    print("\n" + out)

    blocks = [p.extra["block_misses"] for p in points]
    # Deeper software pipelining keeps covering more block misses.
    assert blocks[-1] < blocks[0]
    # But prefetch counts (instruction overhead) grow with depth is NOT
    # expected — one prefetch per source line regardless of depth.
    prefetches = [p.extra["prefetches"] for p in points]
    assert max(prefetches) - min(prefetches) < 0.2 * max(prefetches)


def test_ablation_dma_rate(benchmark, runner, results_dir):
    points = benchmark.pedantic(dma_rate_study, args=(runner, "TRFD_4"),
                                rounds=1, iterations=1)
    out = render_study("Blk_Dma bus rate (TRFD_4)", points)
    (results_dir / "ablation_dma_rate.txt").write_text(out + "\n")
    print("\n" + out)

    stalls = [p.extra["dma_stall"] for p in points]
    times = [p.os_time for p in points]
    assert stalls == sorted(stalls)
    assert times == sorted(times)
    # Misses are rate-independent: the engine always bypasses the caches.
    assert len({p.os_misses for p in points}) == 1
