"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import BASE_MACHINE, CacheParams
from repro.memsys.bus import Bus, BusOp
from repro.memsys.cache import CoherentCache, DirectMappedCache
from repro.memsys.coherence import CoherenceController
from repro.memsys.hierarchy import CpuMemorySystem
from repro.memsys.states import LineState
from repro.memsys.writebuffer import TimedWriteBuffer
from repro.sim.config import SystemConfig
from repro.sim.metrics import MissTracker
from repro.sim.system import MultiprocessorSystem
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder

addresses = st.integers(min_value=0, max_value=1 << 20)


@given(st.lists(addresses, min_size=1, max_size=200))
def test_cache_never_holds_two_lines_in_one_set(addrs):
    cache = DirectMappedCache(CacheParams(1024, 16))
    for addr in addrs:
        cache.fill(addr)
        resident = cache.resident_lines()
        # Direct-mapped: all resident lines map to distinct sets.
        sets = [cache.set_index(line) for line in resident]
        assert len(sets) == len(set(sets))
        # And the tag array is consistent: every resident line is present.
        assert all(cache.present(line) for line in resident)


@given(st.lists(addresses, min_size=1, max_size=200))
def test_fill_then_present_always(addrs):
    cache = DirectMappedCache(CacheParams(2048, 32))
    for addr in addrs:
        cache.fill(addr)
        assert cache.present(addr)


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 60)),
                min_size=1, max_size=100))
def test_write_buffer_fifo_and_bounds(ops):
    wb = TimedWriteBuffer(4)
    t = 0
    completions = []
    for dt, dur in ops:
        t += dt
        insert_t, stall = wb.enqueue(t, lambda start, d=dur: start + d)
        completions.append(wb.last_service_end)
        assert stall >= 0
        assert wb.occupancy(insert_t) <= wb.depth
        t = insert_t
    # FIFO drain: completion times never decrease.
    assert completions == sorted(completions)


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 50)),
                min_size=1, max_size=100))
def test_bus_reservations_disjoint_and_accounted(ops):
    bus = Bus(BASE_MACHINE.bus)
    t = 0
    intervals = []
    total = 0
    for dt, dur in ops:
        t += dt
        grant = bus.acquire(t, dur, BusOp.READ_MEM)
        intervals.append((grant, grant + dur))
        total += dur
    assert bus.busy_cycles == total
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2


@given(st.lists(st.tuples(st.integers(0, 3), addresses, st.booleans()),
                min_size=1, max_size=150))
@settings(max_examples=50, deadline=None)
def test_coherence_single_owner_invariant(ops):
    """Random reads/writes from 4 CPUs never create two owners of a line."""
    machine = BASE_MACHINE
    bus = Bus(machine.bus)
    controller = CoherenceController(machine, bus)
    mems = [CpuMemorySystem(machine, bus, controller, MissTracker())
            for _ in range(4)]
    t = 0
    for cpu, addr, is_write in ops:
        if is_write:
            mems[cpu].write(addr, t)
        else:
            mems[cpu].read(addr, t)
        t += 100
    controller.check_invariants()


@given(st.lists(st.tuples(st.integers(0, 3), addresses, st.booleans()),
                min_size=1, max_size=100))
@settings(max_examples=30, deadline=None)
def test_access_results_well_formed(ops):
    """done >= t, stalls >= 0, for arbitrary interleavings."""
    machine = BASE_MACHINE
    bus = Bus(machine.bus)
    controller = CoherenceController(machine, bus)
    mems = [CpuMemorySystem(machine, bus, controller, MissTracker())
            for _ in range(4)]
    t = 0
    for cpu, addr, is_write in ops:
        res = mems[cpu].write(addr, t) if is_write else mems[cpu].read(addr, t)
        assert res.done >= t
        assert res.stall >= 0
        assert res.pref_stall >= 0
        t = res.done


@st.composite
def small_traces(draw):
    """Random but *valid* 2-CPU traces with locks, barriers and block ops."""
    b = TraceBuilder(2)
    num_barriers = draw(st.integers(0, 2))
    for cpu in range(2):
        n = draw(st.integers(1, 30))
        for _ in range(n):
            kind = draw(st.sampled_from(["r", "w", "lock", "blk"]))
            addr = draw(st.integers(0, 1 << 18)) * 4
            if kind == "r":
                b.emit(cpu, rec.read(addr, pc=0x100, icount=2))
            elif kind == "w":
                b.emit(cpu, rec.write(addr, pc=0x104, icount=2))
            elif kind == "lock":
                b.emit(cpu, rec.lock_acquire(0x40))
                b.emit(cpu, rec.write(0x80, icount=1))
                b.emit(cpu, rec.lock_release(0x40))
            else:
                size = draw(st.sampled_from([64, 256, 1024]))
                src = 0x100000 + draw(st.integers(0, 15)) * 0x1000
                dst = 0x200000 + draw(st.integers(0, 15)) * 0x1000
                if src != dst:
                    b.emit_block_copy(cpu, src=src, dst=dst, size=size)
        for _ in range(num_barriers):
            b.emit(cpu, rec.barrier(0xC0, 2))
    return b.build()


@given(small_traces())
@settings(max_examples=25, deadline=None)
def test_random_traces_simulate_cleanly(trace):
    """Any valid trace runs to completion with consistent accounting."""
    system = MultiprocessorSystem(trace, SystemConfig("prop"))
    metrics = system.run()
    system.check_invariants()
    # Every CPU's attributed time is non-negative and bounded by makespan.
    assert all(0 <= t <= metrics.makespan for t in metrics.cpu_end_times)
    # Miss taxonomy sums to the OS read-miss count.
    assert sum(metrics.os_miss_kind.values()) == metrics.os_read_misses()
    # Reads recorded >= misses recorded.
    for mode, misses in metrics.read_misses.items():
        assert metrics.reads[mode] >= misses


@given(small_traces())
@settings(max_examples=15, deadline=None)
def test_dma_never_slower_to_validate_invariants(trace):
    """Every scheme runs the same random trace without violating coherence."""
    from repro.sim.config import standard_configs
    for name in ("Blk_Pref", "Blk_Bypass", "Blk_ByPref", "Blk_Dma"):
        system = MultiprocessorSystem(trace, standard_configs()[name])
        system.run()
        system.check_invariants()
