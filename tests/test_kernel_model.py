"""Unit tests for the synthetic kernel state machine and services."""

import pytest

from repro.common.rng import RngStream
from repro.common.types import DataClass, Mode, Op
from repro.synthetic import layout as lay
from repro.synthetic import services
from repro.synthetic.kernel import Kernel


@pytest.fixture
def kernel():
    return Kernel(4, RngStream(42, "test"))


def ops_of(kernel, cpu):
    return [r.op for r in kernel.builder.trace.streams[cpu]]


class TestKernelState:
    def test_spawn_assigns_pids(self, kernel):
        a, b = kernel.spawn(), kernel.spawn(parent=1)
        assert (a.pid, b.pid) == (1, 2)
        assert b.parent == 1

    def test_alloc_frame_is_page_aligned(self, kernel):
        for _ in range(20):
            assert kernel.alloc_frame() % lay.PAGE == 0

    def test_free_frames_reused_lifo(self, kernel):
        kernel.frame_reuse_prob = 1.0
        kernel.free_frames([lay.FRAME_POOL + 5 * lay.PAGE])
        assert kernel.alloc_frame() == lay.FRAME_POOL + 5 * lay.PAGE

    def test_free_frame_list_bounded(self, kernel):
        kernel.free_frames([lay.FRAME_POOL + i * lay.PAGE for i in range(100)])
        assert len(kernel._free_frames) <= 64

    def test_next_barrier_partitions_by_parties(self, kernel):
        full = {kernel.next_barrier(4) for _ in range(20)}
        partial = {kernel.next_barrier(3) for _ in range(20)}
        assert full.isdisjoint(partial)

    def test_bump_counter_emits_rmw(self, kernel):
        kernel.bump_counter(0, "v_intr")
        assert ops_of(kernel, 0) == [Op.READ, Op.WRITE]
        assert all(r.dclass == DataClass.INFREQ_COMM
                   for r in kernel.builder.trace.streams[0])

    def test_lock_unlock_validates(self, kernel):
        kernel.lock(1, "sched_lock")
        kernel.unlock(1, "sched_lock")
        kernel.build()  # validation passes

    def test_kmem_walk_emits_requested_refs(self, kernel):
        kernel.kmem_walk(2, refs=50)
        reads = [r for r in kernel.builder.trace.streams[2] if r.op == Op.READ]
        assert len(reads) >= 50
        assert all(lay.KMEM_BASE <= r.addr < lay.KMEM_BASE + lay.KMEM_BYTES
                   for r in reads)

    def test_kmem_walk_uses_many_basic_blocks(self, kernel):
        kernel.kmem_walk(0, refs=400)
        pcs = {r.pc for r in kernel.builder.trace.streams[0]}
        assert len(pcs) > 5

    def test_idle_records_are_idle_mode(self, kernel):
        kernel.idle(3, spins=5)
        stream = kernel.builder.trace.streams[3]
        assert len(stream) == 5
        assert all(r.mode == Mode.IDLE for r in stream)

    def test_readahead_touch_stays_in_range(self, kernel):
        base = lay.BUFFER_CACHE
        kernel.readahead_touch(0, base, 4096, fraction=0.5)
        stream = kernel.builder.trace.streams[0]
        assert stream
        assert all(base <= r.addr < base + 4096 for r in stream)


class TestServices:
    def test_page_fault_zero_emits_block_zero(self, kernel):
        proc = kernel.spawn()
        frame = services.page_fault(kernel, 0, proc)
        assert frame in proc.frames
        ops = ops_of(kernel, 0)
        assert Op.BLOCK_START in ops and Op.BLOCK_END in ops
        # Zero fill: no block-op reads.
        trace = kernel.builder.trace
        assert not any(r.op == Op.READ and r.blockop for r in trace.streams[0])

    def test_page_fault_copy_reads_source(self, kernel):
        proc = kernel.spawn()
        src = kernel.layout.buffer(0)
        services.page_fault(kernel, 0, proc, copy_from=src)
        trace = kernel.builder.trace
        reads = [r for r in trace.streams[0] if r.op == Op.READ and r.blockop]
        assert reads

    def test_fork_copies_pages_and_registers_child(self, kernel):
        parent = kernel.spawn()
        services.page_fault(kernel, 0, parent)
        child = services.fork(kernel, 0, parent, copy_pages=2)
        assert child.pid in kernel.processes
        assert len(child.frames) == 2
        kernel.build()  # locks balanced

    def test_exec_zeroes_bss(self, kernel):
        proc = kernel.spawn()
        services.exec_image(kernel, 1, proc, arg_bytes=256, zero_pages=2)
        assert len(proc.frames) >= 3
        assert len(kernel.builder.trace.blockops) == 3

    def test_file_io_read_copies_buffer_to_user(self, kernel):
        proc = kernel.spawn()
        services.file_io(kernel, 0, proc, size=1024)
        copies = list(kernel.builder.trace.blockops)
        assert len(copies) == 1
        assert copies[0].size == 1024
        kernel.build()

    def test_file_io_write_copies_user_to_buffer(self, kernel):
        proc = kernel.spawn()
        buf = kernel.layout.buffer(3)
        services.file_io(kernel, 0, proc, size=512, is_write=True, buf=buf)
        desc = next(iter(kernel.builder.trace.blockops))
        assert desc.dst == buf

    def test_context_switch_updates_running(self, kernel):
        a, b = kernel.spawn(), kernel.spawn()
        services.context_switch(kernel, 2, a, b)
        assert kernel.running[2] == b.pid
        kernel.build()

    def test_timer_interrupt_balanced_locks(self, kernel):
        services.timer_interrupt(kernel, 0)
        kernel.build()

    def test_cross_interrupt_touches_both_cpus(self, kernel):
        services.cross_interrupt(kernel, 0, 2)
        assert kernel.builder.trace.streams[0]
        assert kernel.builder.trace.streams[2]

    def test_pager_scan_reads_all_counters(self, kernel):
        proc = kernel.spawn()
        for _ in range(4):
            services.page_fault(kernel, 0, proc)
        services.pager_scan(kernel, 1)
        reads = [r for r in kernel.builder.trace.streams[1]
                 if r.dclass == DataClass.INFREQ_COMM and r.op == Op.READ]
        assert len(reads) >= len(lay.INFREQ_COUNTERS)

    def test_pager_reclaims_frames(self, kernel):
        proc = kernel.spawn()
        for _ in range(6):
            services.page_fault(kernel, 0, proc)
        before = len(proc.frames)
        services.pager_scan(kernel, 0)
        assert len(proc.frames) <= before

    def test_process_exit_frees_frames(self, kernel):
        proc = kernel.spawn()
        services.page_fault(kernel, 0, proc)
        services.process_exit(kernel, 0, proc)
        assert proc.pid not in kernel.processes
        assert kernel._free_frames
        kernel.build()

    def test_syscall_reads_dispatch_table(self, kernel):
        proc = kernel.spawn()
        services.syscall(kernel, 0, proc, nr=17)
        reads = [r for r in kernel.builder.trace.streams[0]
                 if r.dclass == DataClass.SYSCALL_TABLE]
        assert len(reads) == 1
        assert reads[0].addr == lay.SYSCALL_TABLE + 17 * 4


class TestNetworkPipeSignal:
    def test_network_receive_chains_two_copies(self, kernel):
        proc = kernel.spawn()
        services.network_receive(kernel, 0, proc, size=512)
        copies = list(kernel.builder.trace.blockops)
        assert len(copies) == 2
        # Chain: the first copy's destination is the second copy's source.
        assert copies[1].src == copies[0].dst
        kernel.build()

    def test_network_send_reverses_direction(self, kernel):
        proc = kernel.spawn()
        proc.frames.append(kernel.alloc_frame())
        services.network_send(kernel, 0, proc, size=256)
        copies = list(kernel.builder.trace.blockops)
        assert len(copies) == 2
        assert copies[0].src == proc.frames[-1]
        assert copies[1].src == copies[0].dst
        kernel.build()

    def test_network_size_clamped_to_mbuf(self, kernel):
        proc = kernel.spawn()
        services.network_receive(kernel, 0, proc, size=100_000)
        assert all(op.size <= lay.MBUF_BYTES
                   for op in kernel.builder.trace.blockops)

    def test_pipe_transfer_chains_through_buffer(self, kernel):
        writer, reader = kernel.spawn(), kernel.spawn()
        services.pipe_transfer(kernel, 1, writer, reader, size=256)
        copies = list(kernel.builder.trace.blockops)
        assert len(copies) == 2
        assert copies[1].src == copies[0].dst
        assert lay.MBUF_POOL <= copies[0].dst < lay.MBUF_POOL + \
            lay.NUM_MBUFS * lay.MBUF_BYTES
        kernel.build()

    def test_signal_delivery_small_copy(self, kernel):
        proc = kernel.spawn()
        services.signal_delivery(kernel, 0, proc)
        copies = list(kernel.builder.trace.blockops)
        assert len(copies) == 1
        assert copies[0].size < 1024
        kernel.build()
