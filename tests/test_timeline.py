"""Tests for the timeline recorder (repro.sim.timeline)."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.system import MultiprocessorSystem
from repro.sim.timeline import TimelineRecorder, render_timeline
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder


def small_system():
    b = TraceBuilder(2)
    for cpu in range(2):
        for i in range(20):
            b.emit(cpu, rec.read(0x10000 * (cpu + 1) + i * 16, icount=2))
        b.emit(cpu, rec.lock_acquire(0x100))
        b.emit(cpu, rec.write(0x200, icount=2))
        b.emit(cpu, rec.lock_release(0x100))
        b.emit(cpu, rec.barrier(0x300, 2))
    b.emit_block_copy(0, src=0x40000, dst=0x51000, size=128)
    return MultiprocessorSystem(b.build(), SystemConfig("t"))


def test_recorder_captures_events():
    recorder = TimelineRecorder(small_system())
    metrics = recorder.run()
    assert metrics.makespan > 0
    assert recorder.events
    assert {e.cpu for e in recorder.events} == {0, 1}


def test_events_are_time_ordered_per_cpu():
    recorder = TimelineRecorder(small_system())
    recorder.run()
    for cpu in (0, 1):
        events = recorder.events_for(cpu)
        starts = [e.start for e in events]
        assert starts == sorted(starts)
        assert all(e.end >= e.start for e in events)


def test_limit_respected():
    recorder = TimelineRecorder(small_system(), limit=5)
    recorder.run()
    assert len(recorder.events) == 5


def test_window_covers_events():
    recorder = TimelineRecorder(small_system())
    recorder.run()
    window = recorder.window()
    assert window is not None
    assert all(window.start <= e.start and e.end <= window.stop
               for e in recorder.events)


def test_render_timeline():
    recorder = TimelineRecorder(small_system())
    recorder.run()
    out = render_timeline(recorder, width=60)
    assert "cpu0 |" in out and "cpu1 |" in out
    assert "legend" in out
    # Reads, locks and barriers appear in the lanes.
    assert "r" in out
    assert "L" in out
    assert "B" in out
    # Lane width respected.
    for line in out.splitlines():
        if line.startswith("cpu"):
            assert len(line.split("|")[1]) == 60


def test_render_empty():
    b = TraceBuilder(1)
    system = MultiprocessorSystem(b.build(), SystemConfig("t"))
    recorder = TimelineRecorder(system)
    recorder.run()
    assert render_timeline(recorder) == "(no events recorded)"


def test_metrics_unaffected_by_recording():
    plain = small_system().run()
    recorder = TimelineRecorder(small_system())
    recorded = recorder.run()
    assert recorded.makespan == plain.makespan
    assert recorded.os_read_misses() == plain.os_read_misses()


def test_run_detaches_wrappers():
    system = small_system()
    recorder = TimelineRecorder(system)
    assert all(getattr(p.step, "_timeline_wrapper", False)
               for p in system.processors)
    recorder.run()
    # run() restored the class method on every processor: no instance
    # attribute left behind, no wrapper marker.
    for proc in system.processors:
        assert "step" not in proc.__dict__
        assert not getattr(proc.step, "_timeline_wrapper", False)


def test_detach_is_idempotent():
    system = small_system()
    recorder = TimelineRecorder(system)
    recorder.detach()
    recorder.detach()
    for proc in system.processors:
        assert "step" not in proc.__dict__


def test_double_attach_raises():
    from repro.common.errors import SimulationError
    system = small_system()
    recorder = TimelineRecorder(system)
    with pytest.raises(SimulationError):
        TimelineRecorder(system)
    # The failed attach must not have clobbered the first recorder.
    recorder.run()
    assert recorder.events


def test_reattach_after_detach_records_fresh():
    system = small_system()
    first = TimelineRecorder(system, limit=5)
    first.run()
    # A second recorder on the *same* (finished) system attaches cleanly
    # and wraps exactly once; with the streams done it records nothing.
    second = TimelineRecorder(system, limit=5)
    second.run()
    assert len(first.events) == 5
    assert second.events == []
    # And on a fresh system the full record/replay cycle works again.
    third = TimelineRecorder(small_system(), limit=5)
    third.run()
    assert len(third.events) == 5


def test_detach_leaves_stacked_wrapper_alone():
    system = small_system()
    recorder = TimelineRecorder(system)
    proc = system.processors[0]
    stacked = proc.step

    def on_top():
        return stacked()

    proc.step = on_top
    recorder.detach()
    # Our wrapper was not restored underneath the test's monkeypatch...
    assert proc.__dict__["step"] is on_top
    # ...but every other CPU was restored normally.
    assert "step" not in system.processors[1].__dict__
