"""Unit tests for the trace-driven processor (repro.sim.processor)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.types import MissKind, Mode, Scheme
from repro.sim import simulate, standard_configs
from repro.sim.config import SystemConfig
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder

SRC = 0x100000
DST = 0x284000  # different L1/L2 sets from SRC


def run(builder, config=None, **kwargs):
    trace = builder.build()
    if config is None:
        config = SystemConfig("test")
    return simulate(trace, config, **kwargs)


def single_cpu_builder():
    return TraceBuilder(1)


class TestBasics:
    def test_empty_trace_finishes(self):
        metrics = run(TraceBuilder(2))
        assert metrics.makespan == 0

    def test_exec_time_charged(self):
        b = single_cpu_builder()
        b.emit(0, rec.read(0x1000, pc=0x100, icount=5))
        m = run(b)
        # 5 instructions + 1 access cycle.
        assert m.time[Mode.OS].exec_cycles == 6

    def test_instruction_misses_counted(self):
        b = single_cpu_builder()
        b.emit(0, rec.read(0x1000, pc=0x100, icount=5))
        m = run(b)
        assert m.time[Mode.OS].imiss > 0

    def test_read_miss_then_hit(self):
        b = single_cpu_builder()
        b.emit(0, rec.read(0x1000, pc=0x100))
        b.emit(0, rec.read(0x1004, pc=0x100))
        m = run(b)
        assert m.reads[Mode.OS] == 2
        assert m.read_misses[Mode.OS] == 1

    def test_user_mode_accounted_separately(self):
        b = single_cpu_builder()
        b.emit(0, rec.read(0x1000, mode=Mode.USER, pc=0x100))
        b.emit(0, rec.read(0x2000, mode=Mode.OS, pc=0x200))
        m = run(b)
        assert m.reads[Mode.USER] == 1
        assert m.reads[Mode.OS] == 1
        assert m.time[Mode.USER].total > 0

    def test_conflict_misses_are_other(self):
        b = single_cpu_builder()
        size = 32 * 1024
        b.emit(0, rec.read(0x1000, pc=0x100))
        b.emit(0, rec.read(0x1000 + size, pc=0x100))
        b.emit(0, rec.read(0x1000, pc=0x100))
        m = run(b)
        assert m.os_miss_kind[MissKind.OTHER] == 3

    def test_miss_pcs_recorded(self):
        b = single_cpu_builder()
        b.emit(0, rec.read(0x1000, pc=0xAA))
        m = run(b)
        assert m.os_miss_pc[0xAA] == 1


class TestLocks:
    def test_uncontended_lock(self):
        b = single_cpu_builder()
        b.emit(0, rec.lock_acquire(0x100))
        b.emit(0, rec.write(0x200))
        b.emit(0, rec.lock_release(0x100))
        m = run(b)
        assert m.makespan > 0

    def test_contended_lock_serializes(self):
        b = TraceBuilder(2)
        for cpu in range(2):
            b.emit(cpu, rec.lock_acquire(0x100, icount=2))
            for i in range(40):
                b.emit(cpu, rec.write(0x2000 + 64 * i, icount=2))
            b.emit(cpu, rec.lock_release(0x100))
        m = run(b)
        # Some CPU must have spun (sync time) because sections overlap.
        total_sync = sum(tb.sync for tb in m.time.values())
        assert total_sync > 0

    def test_lock_migration_causes_coherence_misses(self):
        # Lock ping-pong: once a CPU has held the lock, the other CPU's
        # acquire invalidates its copy, so re-acquiring is a coherence miss.
        b = TraceBuilder(2)
        for round_ in range(4):
            for cpu in range(2):
                b.emit(cpu, rec.lock_acquire(0x100, icount=2))
                b.emit(cpu, rec.write(0x8000 + cpu * 0x40, icount=4))
                b.emit(cpu, rec.lock_release(0x100))
        m = run(b)
        from repro.common.types import DataClass
        assert m.os_coh_dclass[DataClass.LOCK_VAR] >= 1


class TestBarriers:
    def test_barrier_releases_everyone(self):
        b = TraceBuilder(4)
        for cpu in range(4):
            for i in range(cpu * 10):  # staggered arrivals
                b.emit(cpu, rec.read(0x1000 + cpu * 0x2000 + i * 16))
            b.emit(cpu, rec.barrier(0x500, 4))
            b.emit(cpu, rec.read(0x9000 + cpu * 0x2000))
        m = run(b)
        assert m.makespan > 0
        total_sync = sum(tb.sync for tb in m.time.values())
        assert total_sync > 0

    def test_barrier_generates_coherence_misses(self):
        from repro.common.types import DataClass
        b = TraceBuilder(4)
        for round_ in range(3):
            for cpu in range(4):
                b.emit(cpu, rec.barrier(0x500, 4))
        m = run(b)
        assert m.os_coh_dclass[DataClass.BARRIER_VAR] > 0

    def test_two_cpu_barrier_subset(self):
        b = TraceBuilder(4)
        b.emit(0, rec.barrier(0x500, 2))
        b.emit(1, rec.barrier(0x500, 2))
        b.emit(2, rec.read(0x1000))
        b.emit(3, rec.read(0x2000))
        m = run(b)
        assert m.makespan > 0


class TestBlockOps:
    def _copy_builder(self, warm_src=False):
        # Code addresses are placed away from the L2 sets of SRC/DST so
        # unified-L2 code/data conflicts don't perturb the measurements.
        b = single_cpu_builder()
        if warm_src:
            for off in range(0, 4096, 16):
                b.emit(0, rec.read(SRC + off, pc=0x2000))
        b.emit_block_copy(0, src=SRC, dst=DST, size=4096, pc=0x2100)
        return b

    def test_base_counts_block_misses(self):
        m = run(self._copy_builder())
        assert m.os_miss_kind[MissKind.BLOCK_OP] > 0
        assert m.blockops.ops == 1
        assert m.blockops.copies == 1

    def test_warm_source_reduces_block_misses(self):
        cold = run(self._copy_builder())
        warm = run(self._copy_builder(warm_src=True))
        assert (warm.os_miss_kind[MissKind.BLOCK_OP]
                < cold.os_miss_kind[MissKind.BLOCK_OP])

    def test_table3_src_residency_measured(self):
        m = run(self._copy_builder(warm_src=True))
        assert m.blockops.pct_src_cached() == pytest.approx(100.0)

    def test_size_distribution(self):
        b = single_cpu_builder()
        b.emit_block_copy(0, src=SRC, dst=DST, size=4096)
        b.emit_block_copy(0, src=SRC, dst=DST + 0x9000, size=2048)
        b.emit_block_copy(0, src=SRC, dst=DST + 0x13000, size=256)
        m = run(b)
        dist = m.blockops.size_distribution()
        assert dist["page"] == pytest.approx(100.0 / 3)
        assert dist["1k_to_page"] == pytest.approx(100.0 / 3)
        assert dist["lt_1k"] == pytest.approx(100.0 / 3)

    def test_prefetch_scheme_reduces_block_misses(self):
        base = run(self._copy_builder())
        pref = run(self._copy_builder(),
                   SystemConfig("pref", scheme=Scheme.PREF, pref_lead_lines=8))
        assert (pref.os_miss_kind[MissKind.BLOCK_OP]
                < base.os_miss_kind[MissKind.BLOCK_OP])
        assert pref.prefetches_issued > 0

    def test_dma_scheme_eliminates_block_misses(self):
        m = run(self._copy_builder(), standard_configs()["Blk_Dma"])
        assert m.os_miss_kind[MissKind.BLOCK_OP] == 0
        assert m.dma_ops == 1
        assert m.dma_stall > 0

    def test_dma_stall_charged_to_dread(self):
        m = run(self._copy_builder(), standard_configs()["Blk_Dma"])
        assert m.time[Mode.OS].dread >= m.dma_stall

    def test_bypass_scheme_counts_reuses(self):
        b = self._copy_builder()
        # Touch the destination afterwards: reuse misses.
        for off in range(0, 4096, 16):
            b.emit(0, rec.read(DST + off, pc=0x20))
        m = run(b, standard_configs()["Blk_Bypass"])
        assert m.reuse_outside > 0

    def test_fork_chain_inside_reuse(self):
        # dst of copy 1 is src of copy 2 (the fork-fork pattern of §4.1.3).
        b = single_cpu_builder()
        b.emit_block_copy(0, src=SRC, dst=DST, size=1024)
        b.emit_block_copy(0, src=DST, dst=DST + 0x9000, size=1024)
        m = run(b, standard_configs()["Blk_Bypass"])
        assert m.reuse_inside > 0

    def test_zero_op_all_schemes(self):
        for name, config in standard_configs().items():
            b = single_cpu_builder()
            b.emit_block_zero(0, dst=DST, size=1024)
            m = run(b, config)
            assert m.blockops.ops == 1, name

    def test_displacement_misses_tracked(self):
        b = single_cpu_builder()
        victim = SRC + 32 * 1024  # same L1 set as SRC
        b.emit(0, rec.read(victim, pc=0x10))
        b.emit_block_copy(0, src=SRC, dst=DST, size=256)
        b.emit(0, rec.read(victim, pc=0x20))
        m = run(b)
        assert m.displacement_outside >= 1


class TestHotspotPrefetch:
    def test_prefetch_record_hides_latency(self):
        b = single_cpu_builder()
        b.emit(0, rec.prefetch(0x4000, pc=0x10))
        for i in range(20):
            b.emit(0, rec.read(0x8000 + i * 64, pc=0x20, icount=3))
        b.emit(0, rec.read(0x4000, pc=0x30))
        m = run(b)
        # The prefetched read is either fully hidden (no miss) or partially
        # hidden (pref time), never a full stall.
        assert m.time[Mode.OS].dread < 20 * 51

    def test_hotspot_pcs_counted(self):
        b = single_cpu_builder()
        b.emit(0, rec.read(0x4000, pc=0x77))
        m = run(b, hotspot_pcs=[0x77])
        assert m.os_hotspot_misses == 1


class TestUpdatePages:
    def test_update_pages_remove_coherence_misses(self):
        from repro.common.types import DataClass

        def build():
            b = TraceBuilder(2)
            for i in range(10):
                b.emit(0, rec.write(0x10000, pc=0x1, icount=2,
                                    dclass=DataClass.FREQ_SHARED))
                b.emit(1, rec.read(0x10000, pc=0x2, icount=2,
                                   dclass=DataClass.FREQ_SHARED))
            return b.build()

        inval = simulate(build(), SystemConfig("inv"))
        upd = simulate(build(),
                       SystemConfig("upd", selective_update=True),
                       update_pages=[0x10000])
        assert upd.os_miss_kind[MissKind.COHERENCE] < inval.os_miss_kind[MissKind.COHERENCE]
