"""Tests for the privatization/relocation transform (repro.optim.privatize)."""

import pytest

from repro.common.rng import RngStream
from repro.common.types import DataClass, MissKind, Op
from repro.optim.privatize import (
    PrivatizeRelocate,
    privatize_and_relocate,
    replica_addr,
)
from repro.sim import SystemConfig, simulate
from repro.synthetic import layout as lay
from repro.synthetic.kernel import Kernel
from repro.synthetic.layout import KERNEL_PC
from repro.synthetic import services


def make_counter_trace():
    """All four CPUs bump the same counter between stretches of other
    work (so each bump's read lands after remote invalidations); CPU 0's
    pager reads the counter at the end."""
    k = Kernel(4, RngStream(9, "priv"))
    for round_ in range(6):
        for cpu in range(4):
            k.bump_counter(cpu, "v_intr")
            for i in range(20):
                k.read(cpu, 0x80000 + cpu * 0x4000 + (i % 8) * 16,
                       DataClass.OTHER_KERNEL, "namei_code", icount=8)
    k.read(0, k.layout.counter("v_intr"), DataClass.INFREQ_COMM,
           "pte_scan_loop", icount=1)
    return k.build()


def test_writes_remap_to_own_replica():
    trace = privatize_and_relocate(make_counter_trace())
    for cpu, stream in enumerate(trace.streams):
        for rec in stream:
            if rec.op == Op.WRITE and rec.dclass == DataClass.INFREQ_COMM:
                assert rec.addr == replica_addr(0, cpu, 4)


def test_replicas_on_distinct_lines():
    addrs = {replica_addr(0, cpu, 4) for cpu in range(4)}
    assert len({a // 64 for a in addrs}) == 4


def test_pager_read_expands_to_all_replicas():
    original = make_counter_trace()
    transformed = privatize_and_relocate(original)
    pager_pc = KERNEL_PC["pte_scan_loop"]
    expanded = [r for r in transformed.streams[0]
                if r.pc == pager_pc and r.op == Op.READ]
    assert len(expanded) == 4
    assert {r.addr for r in expanded} == {replica_addr(0, c, 4)
                                          for c in range(4)}


def test_non_counter_records_untouched():
    k = Kernel(2, RngStream(1, "x"))
    k.read(0, 0x123450, DataClass.USER_DATA, "bcopy")
    k.write(1, k.layout.proc_entry(3), DataClass.PROC_TABLE, "fork_entry")
    original = k.build()
    transformed = privatize_and_relocate(original, 2)
    assert transformed.streams[0][0].addr == 0x123450
    assert transformed.streams[1][0].addr == original.streams[1][0].addr


def test_transform_is_pure():
    original = make_counter_trace()
    before = [list(s) for s in original.streams]
    privatize_and_relocate(original)
    for stream, saved in zip(original.streams, before):
        assert stream == saved


def test_timer_slots_spread_to_distinct_lines():
    k = Kernel(4, RngStream(2, "t"))
    for cpu in range(4):
        services.timer_interrupt(k, cpu)
    transformed = privatize_and_relocate(k.build())
    slots = {r.addr // 64 for s in transformed.streams for r in s
             if r.dclass == DataClass.TIMER
             and r.addr >= lay.PRIVATE_BASE}
    assert len(slots) == 4


def test_privatization_removes_counter_coherence_misses():
    base = simulate(make_counter_trace(), SystemConfig("b"))
    priv = simulate(privatize_and_relocate(make_counter_trace()),
                    SystemConfig("p"))
    base_coh = base.os_coh_dclass[DataClass.INFREQ_COMM]
    priv_coh = priv.os_coh_dclass[DataClass.INFREQ_COMM]
    assert base_coh > 0
    assert priv_coh < base_coh


def test_metadata_flag_set():
    transformed = privatize_and_relocate(make_counter_trace())
    assert transformed.metadata["privatized"] == 1
