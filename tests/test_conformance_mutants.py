"""Mutant-killing tests: every deliberate protocol bug must be caught.

Each test builds the *smallest directed trace* that exposes one mutant
from :mod:`repro.check.mutants`, asserts the conformance checker raises
with the expected kind, and asserts the same trace passes clean without
the mutant (so the catch is the mutant's fault, not a checker artifact).
A final test drives the full loop the CI job runs: fuzz until caught,
shrink, save, replay.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import fuzz
from repro.check.mutants import MUTANTS, mutant
from repro.common.errors import ConformanceError
from repro.sim.config import all_configs
from repro.sim.system import simulate
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder

CONFIGS = all_configs()
W = 0x40000          # a shared word
BAR = 0x610000
#: Instruction address for every directed record.  The default pc=0 maps
#: to the same direct-mapped L2 set as W, so each record's ifetch would
#: evict the very data line under test; 0x1300 maps elsewhere.
PC = 0x1300


def run_checked(trace, config_name="Base"):
    return simulate(trace, CONFIGS[config_name], check=True)


def expect_catch(trace, kinds, config_name="Base"):
    with pytest.raises(ConformanceError) as excinfo:
        run_checked(trace, config_name)
    assert excinfo.value.kind in kinds, excinfo.value


def test_skip_invalidation_caught():
    # cpu0 and cpu1 both cache W (SHARED), then cpu0 upgrades: without
    # the invalidation, an owned line coexists with cpu1's copy.
    b = TraceBuilder(2)
    b.emit(0, rec.read(W, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    b.emit(0, rec.write(W, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    trace = b.build()
    run_checked(trace)  # sane without the mutant
    with mutant("skip_invalidation"):
        expect_catch(trace, ("owned-and-shared", "stale-read"))


def test_stale_cache_supply_caught():
    # cpu0 dirties W; cpu1's miss is served from memory instead of the
    # dirty cache, so cpu1 reads the pre-write contents.
    b = TraceBuilder(2)
    b.emit(0, rec.write(W, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    trace = b.build()
    run_checked(trace)
    with mutant("stale_cache_supply"):
        expect_catch(trace, ("stale-read",))


def test_lost_dirty_bit_caught():
    # A write hitting an EXCLUSIVE line never becomes MODIFIED, so the
    # value exists nowhere durable once the run ends.
    b = TraceBuilder(1)
    b.emit(0, rec.read(W, pc=PC))   # fill EXCLUSIVE
    b.emit(0, rec.write(W, pc=PC))  # fused owned-line drain, E->M dropped
    trace = b.build()
    run_checked(trace)
    with mutant("lost_dirty_bit"):
        expect_catch(trace, ("clean-copy-diverged", "lost-write"))


def test_dma_stale_source_caught():
    # A REMOTE cache dirties the copy source (the issuing CPU's own dirty
    # lines are flushed before the transfer, so only a remote holder
    # exposes the snoop); the mutant engine skips the source snoop and
    # pipelines stale memory to the destination.
    src, dst = 0x200000, 0x300000
    b = TraceBuilder(2)
    b.emit(1, rec.write(src + 8, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit_block_copy(0, src, dst, 64, pc=PC + 0x40)
    trace = b.build()
    run_checked(trace, "Blk_Dma")
    with mutant("dma_stale_source"):
        expect_catch(trace, ("dma-stale-source",), "Blk_Dma")


def test_adaptive_counter_stuck_caught():
    # cpu1 holds a copy of W while cpu0 writes it N+1 times with no
    # bus-visible re-reference by cpu1: the clean policy drops cpu1 at
    # write N+1, the stuck-counter mutant keeps broadcasting to it.
    n = CONFIGS["Hyb_UpdN"].adaptive_n
    b = TraceBuilder(2)
    b.emit(0, rec.read(W, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    for _ in range(n + 1):
        b.emit(0, rec.write(W, pc=PC))
    trace = b.build()
    run_checked(trace, "Hyb_UpdN")  # sane without the mutant
    with mutant("adaptive_counter_stuck"):
        expect_catch(trace, ("update-past-budget",), "Hyb_UpdN")


def test_adaptive_threshold_off_by_one_caught():
    # A write seeing exactly threshold + 1 remote sharers must switch to
    # invalidation; the off-by-one mutant still broadcasts an update.
    threshold = CONFIGS["Hyb_Deg"].degree_threshold
    sharers = threshold + 1
    b = TraceBuilder(sharers + 1)
    for cpu in range(sharers + 1):
        b.emit(cpu, rec.read(W, pc=PC))
    for cpu in range(sharers + 1):
        b.emit(cpu, rec.barrier(BAR, sharers + 1, pc=PC))
    b.emit(0, rec.write(W, pc=PC))
    trace = b.build()
    run_checked(trace, "Hyb_Deg")
    with mutant("adaptive_threshold_off_by_one"):
        expect_catch(trace, ("adaptive-decision-mismatch",), "Hyb_Deg")


def test_stale_update_after_switch_caught():
    # With N=1, cpu1's budget is spent by the first update while cpu2
    # (filled later) still has budget, so the second write must update
    # cpu2 and drop cpu1 in the same transaction.  The mutant loses the
    # drop: cpu1 keeps a pre-write copy and reads it.
    config = dataclasses.replace(CONFIGS["Hyb_UpdN"], adaptive_n=1)
    b = TraceBuilder(3)
    b.emit(0, rec.read(W, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    for cpu in range(3):
        b.emit(cpu, rec.barrier(BAR, 3, pc=PC))
    b.emit(0, rec.write(W, pc=PC))       # updates cpu1, budget 1 -> 0
    for cpu in range(3):
        b.emit(cpu, rec.barrier(BAR + 0x40, 3, pc=PC))
    b.emit(2, rec.read(W, pc=PC))        # cpu2 fills, fresh budget
    for cpu in range(3):
        b.emit(cpu, rec.barrier(BAR + 0x80, 3, pc=PC))
    b.emit(0, rec.write(W, pc=PC))       # updates cpu2, must drop cpu1
    for cpu in range(3):
        b.emit(cpu, rec.barrier(BAR + 0xc0, 3, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    trace = b.build()
    simulate(trace, config, check=True)  # sane without the mutant
    with mutant("stale_update_after_switch"):
        with pytest.raises(ConformanceError) as excinfo:
            simulate(trace, config, check=True)
        assert excinfo.value.kind in ("stale-read", "clean-copy-diverged",
                                      "owned-and-shared"), excinfo.value


@pytest.mark.parametrize("name", list(MUTANTS))
def test_mutant_restores_original(name):
    """Leaving the context restores the pristine protocol methods."""
    from repro.memsys.adaptive import DegreePolicy, UpdateNPolicy
    from repro.memsys.coherence import CoherenceController
    from repro.memsys.hierarchy import CpuMemorySystem
    def methods():
        return (CoherenceController.upgrade,
                CoherenceController.fetch_shared,
                CoherenceController.dma_snoop_src,
                CoherenceController.adaptive_update,
                CpuMemorySystem._drain_word,
                UpdateNPolicy.decide, DegreePolicy.decide)
    before = methods()
    with mutant(name):
        pass
    assert methods() == before


@pytest.mark.slow
@pytest.mark.fuzz
@pytest.mark.parametrize("name", list(MUTANTS))
def test_fuzzer_catches_every_mutant(name, tmp_path):
    """Fuzz -> catch -> shrink -> save -> replay, per mutant."""
    _, config_names = MUTANTS[name]
    caught = None
    for i in range(20):
        case = fuzz.generate_case(i, race_free=i % 2 == 0)
        for config_name in config_names:
            result = fuzz.run_case(case, config_name, mutant_name=name)
            if result.error is not None:
                caught = fuzz.FuzzFailure(case, config_name, name,
                                          result.error)
                break
        if caught:
            break
    assert caught is not None, f"{name} not caught in 20 rounds"
    shrunk = fuzz.shrink_failure(caught)
    assert len(shrunk) <= len(caught.case)
    path = tmp_path / f"{name}.txt"
    fuzz.save_failure(caught, shrunk, str(path))
    replayed = fuzz.replay(str(path))
    assert replayed.error is not None
    assert replayed.error.kind == caught.error.kind
