"""Mutant-killing tests: every deliberate protocol bug must be caught.

Each test builds the *smallest directed trace* that exposes one mutant
from :mod:`repro.check.mutants`, asserts the conformance checker raises
with the expected kind, and asserts the same trace passes clean without
the mutant (so the catch is the mutant's fault, not a checker artifact).
A final test drives the full loop the CI job runs: fuzz until caught,
shrink, save, replay.
"""

from __future__ import annotations

import pytest

from repro.check import fuzz
from repro.check.mutants import MUTANTS, mutant
from repro.common.errors import ConformanceError
from repro.sim.config import standard_configs
from repro.sim.system import simulate
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder

CONFIGS = standard_configs()
W = 0x40000          # a shared word
BAR = 0x610000
#: Instruction address for every directed record.  The default pc=0 maps
#: to the same direct-mapped L2 set as W, so each record's ifetch would
#: evict the very data line under test; 0x1300 maps elsewhere.
PC = 0x1300


def run_checked(trace, config_name="Base"):
    return simulate(trace, CONFIGS[config_name], check=True)


def expect_catch(trace, kinds, config_name="Base"):
    with pytest.raises(ConformanceError) as excinfo:
        run_checked(trace, config_name)
    assert excinfo.value.kind in kinds, excinfo.value


def test_skip_invalidation_caught():
    # cpu0 and cpu1 both cache W (SHARED), then cpu0 upgrades: without
    # the invalidation, an owned line coexists with cpu1's copy.
    b = TraceBuilder(2)
    b.emit(0, rec.read(W, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    b.emit(0, rec.write(W, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    trace = b.build()
    run_checked(trace)  # sane without the mutant
    with mutant("skip_invalidation"):
        expect_catch(trace, ("owned-and-shared", "stale-read"))


def test_stale_cache_supply_caught():
    # cpu0 dirties W; cpu1's miss is served from memory instead of the
    # dirty cache, so cpu1 reads the pre-write contents.
    b = TraceBuilder(2)
    b.emit(0, rec.write(W, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    b.emit(1, rec.read(W, pc=PC))
    trace = b.build()
    run_checked(trace)
    with mutant("stale_cache_supply"):
        expect_catch(trace, ("stale-read",))


def test_lost_dirty_bit_caught():
    # A write hitting an EXCLUSIVE line never becomes MODIFIED, so the
    # value exists nowhere durable once the run ends.
    b = TraceBuilder(1)
    b.emit(0, rec.read(W, pc=PC))   # fill EXCLUSIVE
    b.emit(0, rec.write(W, pc=PC))  # fused owned-line drain, E->M dropped
    trace = b.build()
    run_checked(trace)
    with mutant("lost_dirty_bit"):
        expect_catch(trace, ("clean-copy-diverged", "lost-write"))


def test_dma_stale_source_caught():
    # A REMOTE cache dirties the copy source (the issuing CPU's own dirty
    # lines are flushed before the transfer, so only a remote holder
    # exposes the snoop); the mutant engine skips the source snoop and
    # pipelines stale memory to the destination.
    src, dst = 0x200000, 0x300000
    b = TraceBuilder(2)
    b.emit(1, rec.write(src + 8, pc=PC))
    b.emit(1, rec.barrier(BAR, 2, pc=PC))
    b.emit(0, rec.barrier(BAR, 2, pc=PC))
    b.emit_block_copy(0, src, dst, 64, pc=PC + 0x40)
    trace = b.build()
    run_checked(trace, "Blk_Dma")
    with mutant("dma_stale_source"):
        expect_catch(trace, ("dma-stale-source",), "Blk_Dma")


@pytest.mark.parametrize("name", list(MUTANTS))
def test_mutant_restores_original(name):
    """Leaving the context restores the pristine protocol methods."""
    from repro.memsys.coherence import CoherenceController
    from repro.memsys.hierarchy import CpuMemorySystem
    before = (CoherenceController.upgrade, CoherenceController.fetch_shared,
              CoherenceController.dma_snoop_src, CpuMemorySystem._drain_word)
    with mutant(name):
        pass
    after = (CoherenceController.upgrade, CoherenceController.fetch_shared,
             CoherenceController.dma_snoop_src, CpuMemorySystem._drain_word)
    assert before == after


@pytest.mark.slow
@pytest.mark.fuzz
@pytest.mark.parametrize("name", list(MUTANTS))
def test_fuzzer_catches_every_mutant(name, tmp_path):
    """Fuzz -> catch -> shrink -> save -> replay, per mutant."""
    _, config_names = MUTANTS[name]
    caught = None
    for i in range(20):
        case = fuzz.generate_case(i, race_free=i % 2 == 0)
        for config_name in config_names:
            result = fuzz.run_case(case, config_name, mutant_name=name)
            if result.error is not None:
                caught = fuzz.FuzzFailure(case, config_name, name,
                                          result.error)
                break
        if caught:
            break
    assert caught is not None, f"{name} not caught in 20 rounds"
    shrunk = fuzz.shrink_failure(caught)
    assert len(shrunk) <= len(caught.case)
    path = tmp_path / f"{name}.txt"
    fuzz.save_failure(caught, shrunk, str(path))
    replayed = fuzz.replay(str(path))
    assert replayed.error is not None
    assert replayed.error.kind == caught.error.kind
