"""Tests for update-protocol core selection (repro.optim.update_select)."""

from repro.common.rng import RngStream
from repro.common.types import DataClass
from repro.optim.update_select import select_update_core
from repro.sim import SystemConfig, simulate
from repro.synthetic import layout as lay
from repro.synthetic.kernel import Kernel
from repro.trace.record import barrier


def contended_trace(lock_rounds=6, barrier_rounds=4):
    k = Kernel(4, RngStream(5, "upd"))
    for _ in range(lock_rounds):
        for cpu in range(4):
            k.lock(cpu, "sched_lock")
            k.write(cpu, lay.SCHED_BASE, DataClass.SCHED, "sched_seq")
            k.unlock(cpu, "sched_lock")
            k.touch_freq_shared(cpu, "freelist_size", write=(cpu == 0),
                                block="sched_seq")
    for _ in range(barrier_rounds):
        k.barrier_all(k.next_barrier(), 4)
    return k.build()


def run_and_select(trace):
    metrics = simulate(trace, SystemConfig("profile"))
    return metrics, select_update_core(metrics, trace.symbols)


def test_selection_includes_barriers_and_hot_lock():
    trace = contended_trace()
    _m, selection = run_and_select(trace)
    assert "gang_barriers" in selection.variables
    assert "sched_lock" in selection.variables


def test_selection_fits_in_sync_page():
    trace = contended_trace()
    _m, selection = run_and_select(trace)
    assert selection.pages == [lay.SYNC_PAGE]


def test_core_bytes_are_modest():
    # The paper's core is 384 bytes; ours must stay the same order.
    trace = contended_trace()
    _m, selection = run_and_select(trace)
    assert 0 < selection.core_bytes <= 1024


def test_lock_cap_respected():
    trace = contended_trace()
    metrics = simulate(trace, SystemConfig("profile"))
    selection = select_update_core(metrics, trace.symbols, max_locks=0)
    assert not any(name.endswith("_lock") for name in selection.variables)


def test_covered_misses_counted():
    trace = contended_trace()
    _m, selection = run_and_select(trace)
    assert selection.covered_misses > 0


def test_empty_metrics_empty_selection():
    from repro.sim.metrics import SystemMetrics
    trace = contended_trace()
    selection = select_update_core(SystemMetrics(4), trace.symbols)
    assert selection.variables == []
    assert selection.pages == []


def test_update_protocol_on_selection_reduces_coherence_misses():
    from repro.common.types import MissKind
    trace = contended_trace()
    base = simulate(trace, SystemConfig("base"))
    selection = select_update_core(base, trace.symbols)
    updated = simulate(contended_trace(),
                       SystemConfig("upd", selective_update=True),
                       update_pages=selection.pages)
    assert (updated.os_miss_kind[MissKind.COHERENCE]
            < base.os_miss_kind[MissKind.COHERENCE])
