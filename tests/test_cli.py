"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_generate_npz_and_inspect(tmp_path, capsys):
    out = tmp_path / "t.npz"
    assert main(["generate", "Shell", "-o", str(out),
                 "--scale", "0.05", "--seed", "3"]) == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "records" in captured.out

    assert main(["inspect", str(out)]) == 0
    captured = capsys.readouterr()
    assert "data references" in captured.out
    assert "Shell" in captured.out


def test_generate_text_format(tmp_path):
    out = tmp_path / "t.txt"
    assert main(["generate", "TRFD_4", "-o", str(out), "--scale", "0.05",
                 "--text"]) == 0
    assert out.read_text().startswith("reprotrace v1")


def test_simulate_workload_by_name(capsys):
    assert main(["simulate", "Shell", "--scale", "0.05",
                 "--config", "Blk_Dma"]) == 0
    out = capsys.readouterr().out
    assert "OS misses" in out
    assert "Blk_Dma" in out


def test_simulate_trace_file(tmp_path, capsys):
    path = tmp_path / "t.npz"
    main(["generate", "Shell", "-o", str(path), "--scale", "0.05"])
    capsys.readouterr()
    assert main(["simulate", str(path)]) == 0
    assert "makespan" in capsys.readouterr().out


def test_simulate_no_batch_same_report(capsys):
    """--no-batch forces the scalar scheduler; the report is unchanged."""
    assert main(["simulate", "Shell", "--scale", "0.05"]) == 0
    batched = capsys.readouterr().out
    assert main(["simulate", "Shell", "--scale", "0.05", "--no-batch"]) == 0
    scalar = capsys.readouterr().out
    assert scalar == batched


def test_simulate_unknown_config(capsys):
    assert main(["simulate", "Shell", "--config", "Nope",
                 "--scale", "0.05"]) == 2
    err = capsys.readouterr().err
    assert "unknown config" in err
    # The listing names every registered scheme, hybrids included.
    for name in ("Base", "BCoh_RelUp", "Hyb_UpdN", "Hyb_Deg", "Hyb_Static"):
        assert name in err


def test_simulate_unknown_config_rejected_before_trace_work(capsys):
    # Config validation must run before the workload is resolved or any
    # trace generated: an unknown config wins over an unknown workload
    # (same fail-fast contract as --profile-spec), and no trace-side
    # error message leaks out.
    assert main(["simulate", "not-a-workload", "--config", "Nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown config 'Nope'" in err
    assert "unknown workload" not in err


def test_simulate_hybrid_config(capsys):
    assert main(["simulate", "Shell", "--config", "Hyb_UpdN",
                 "--scale", "0.05", "--check"]) == 0
    out = capsys.readouterr().out
    assert "config:      Hyb_UpdN" in out
    assert "conformance: ok" in out


def test_report_single_artifact(tmp_path, capsys):
    out = tmp_path / "r.txt"
    assert main(["report", "--scale", "0.05", "--only", "table2",
                 "-o", str(out), "-q"]) == 0
    text = out.read_text()
    assert "### table2" in text
    assert "Block Op. (%)" in text


def test_ablation_unknown_study(capsys):
    assert main(["ablation", "nope", "--scale", "0.05"]) == 2
    assert "unknown study" in capsys.readouterr().err


def test_ablation_write_buffer(capsys):
    assert main(["ablation", "write_buffer_depth", "--workload", "Shell",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "depth=4" in out
    assert "OS misses" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])


# ======================================================================
# Workload profiles through the CLI
# ======================================================================
def test_generate_unknown_profile_lists_available(tmp_path, capsys):
    assert main(["generate", "bogus", "-o", str(tmp_path / "x.npz")]) == 2
    err = capsys.readouterr().err
    assert "unknown workload 'bogus'" in err
    assert "server" in err and "Shell" in err and "--profile-spec" in err


def test_generate_builtin_family(tmp_path, capsys):
    out = tmp_path / "server.npz"
    assert main(["generate", "server", "-o", str(out),
                 "--scale", "0.05", "--seed", "3"]) == 0
    assert out.exists()
    assert "server" in capsys.readouterr().out


def test_generate_gen_name_and_frame_policy(tmp_path):
    out = tmp_path / "g.npz"
    assert main(["generate", "gen:server:c4:i060:steady:0:0", "-o",
                 str(out), "--scale", "0.04",
                 "--frame-policy", "colored"]) == 0
    from repro.trace import npzio
    trace = npzio.load(str(out))
    assert trace.metadata["frame_policy"] == "colored"
    assert trace.metadata["workload"] == "gen:server:c4:i060:steady:0:0"


def test_generate_profile_spec(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text('{"name": "cli-spec", "app": "fsck", "rounds": 12}')
    out = tmp_path / "spec.npz"
    assert main(["generate", "--profile-spec", str(spec), "-o", str(out),
                 "--scale", "0.3"]) == 0
    assert "cli-spec" in capsys.readouterr().out
    assert main(["generate", "othername", "--profile-spec", str(spec),
                 "-o", str(out)]) == 2
    assert "defines 'cli-spec'" in capsys.readouterr().err


def test_generate_bad_profile_spec(tmp_path, capsys):
    spec = tmp_path / "bad.json"
    spec.write_text('{"name": "x", "warp_prob": 2}')
    assert main(["generate", "--profile-spec", str(spec),
                 "-o", str(tmp_path / "x.npz")]) == 2
    assert "bad --profile-spec" in capsys.readouterr().err


def test_generate_requires_some_workload(tmp_path, capsys):
    assert main(["generate", "-o", str(tmp_path / "x.npz")]) == 2
    assert "no workload" in capsys.readouterr().err


def test_simulate_profile_by_name(capsys):
    assert main(["simulate", "bursty_mp", "--scale", "0.05",
                 "--config", "Blk_Dma"]) == 0
    assert "OS misses" in capsys.readouterr().out


def test_simulate_unknown_profile(capsys):
    assert main(["simulate", "not-a-profile", "--scale", "0.05"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_sweep_smoke(tmp_path, capsys):
    out = tmp_path / "sweep.txt"
    assert main(["sweep", "--samples", "2", "--configs", "Base",
                 "--scale", "0.04", "--workers", "1", "--no-cache",
                 "-q", "-o", str(out)]) == 0
    text = out.read_text()
    assert "gen:" in text
    assert "OS time" in capsys.readouterr().out


def test_sweep_rejects_unknown_config(capsys):
    assert main(["sweep", "--samples", "1", "--configs", "Warp"]) == 2
    assert "unknown configs" in capsys.readouterr().err


def test_sweep_rejects_unknown_family(capsys):
    assert main(["sweep", "--samples", "1", "--families", "Shell"]) == 2
    assert "bad sweep" in capsys.readouterr().err


def test_service_client_commands_handle_unreachable_service(capsys):
    url = "http://127.0.0.1:9"  # discard port: nothing listens
    assert main(["status", "--url", url]) == 1
    assert "error:" in capsys.readouterr().err
    assert main(["submit", "--url", url, "--workloads", "Shell"]) == 1
    assert "error:" in capsys.readouterr().err
    assert main(["cancel", "job-0001", "--url", url]) == 1
    assert "error:" in capsys.readouterr().err


def test_submit_and_status_against_live_service(tmp_path, capsys):
    from repro.experiments.service import SweepService
    service = SweepService(str(tmp_path / "cache"), workers=1,
                           heartbeat_interval=None)
    host, port = service.start_http()
    url = f"http://{host}:{port}"
    try:
        assert main(["status", "--url", url]) == 0
        assert '"ok": true' in capsys.readouterr().out
        assert main(["submit", "--url", url, "--workloads", "Shell",
                     "--configs", "Base", "--scales", "0.02",
                     "--seed", "9", "--wait", "--timeout", "300"]) == 0
        out = capsys.readouterr().out
        assert '"state": "done"' in out and '"job_id": "job-0001"' in out
        assert main(["status", "--url", url, "--all"]) == 0
        assert "job-0001" in capsys.readouterr().out
        assert main(["status", "job-0001", "--url", url, "--results"]) == 0
        assert "Shell|Base|0.02" in capsys.readouterr().out
        assert main(["status", "job-0001", "--url", url,
                     "--events", "0"]) == 0
        assert "sweep_end" in capsys.readouterr().out
        assert main(["cancel", "job-0001", "--url", url]) == 0
        assert '"state": "done"' in capsys.readouterr().out  # no-op
    finally:
        service.stop()
