"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


def test_generate_npz_and_inspect(tmp_path, capsys):
    out = tmp_path / "t.npz"
    assert main(["generate", "Shell", "-o", str(out),
                 "--scale", "0.05", "--seed", "3"]) == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "records" in captured.out

    assert main(["inspect", str(out)]) == 0
    captured = capsys.readouterr()
    assert "data references" in captured.out
    assert "Shell" in captured.out


def test_generate_text_format(tmp_path):
    out = tmp_path / "t.txt"
    assert main(["generate", "TRFD_4", "-o", str(out), "--scale", "0.05",
                 "--text"]) == 0
    assert out.read_text().startswith("reprotrace v1")


def test_simulate_workload_by_name(capsys):
    assert main(["simulate", "Shell", "--scale", "0.05",
                 "--config", "Blk_Dma"]) == 0
    out = capsys.readouterr().out
    assert "OS misses" in out
    assert "Blk_Dma" in out


def test_simulate_trace_file(tmp_path, capsys):
    path = tmp_path / "t.npz"
    main(["generate", "Shell", "-o", str(path), "--scale", "0.05"])
    capsys.readouterr()
    assert main(["simulate", str(path)]) == 0
    assert "makespan" in capsys.readouterr().out


def test_simulate_unknown_config(capsys):
    assert main(["simulate", "Shell", "--config", "Nope",
                 "--scale", "0.05"]) == 2
    assert "unknown config" in capsys.readouterr().err


def test_report_single_artifact(tmp_path, capsys):
    out = tmp_path / "r.txt"
    assert main(["report", "--scale", "0.05", "--only", "table2",
                 "-o", str(out), "-q"]) == 0
    text = out.read_text()
    assert "### table2" in text
    assert "Block Op. (%)" in text


def test_ablation_unknown_study(capsys):
    assert main(["ablation", "nope", "--scale", "0.05"]) == 2
    assert "unknown study" in capsys.readouterr().err


def test_ablation_write_buffer(capsys):
    assert main(["ablation", "write_buffer_depth", "--workload", "Shell",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "depth=4" in out
    assert "OS misses" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])
