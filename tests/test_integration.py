"""End-to-end integration: the paper's claims on one consistent pipeline.

These run the real experiment pipeline (generation, profiling, derived
optimizations, the eight systems) at a reduced but non-trivial scale and
check the claims the reproduction stands on.  They are the slowest tests
in the suite (~0.5-1 min total).
"""

import pytest

from repro.common.types import MissKind, Mode
from repro.experiments.runner import ExperimentRunner
from repro.synthetic.workloads import WORKLOAD_ORDER


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.15, seed=1996)


@pytest.fixture(scope="module")
def shell_systems(runner):
    return {name: runner.run("Shell", name)
            for name in ("Base", "Blk_Dma", "BCoh_RelUp", "BCPref")}


def test_full_stack_eliminates_most_misses(runner):
    """Headline: BCPref removes the bulk of OS data misses."""
    ratios = []
    for workload in ("TRFD_4", "Shell"):
        base = runner.run(workload, "Base").os_read_misses()
        full = runner.run(workload, "BCPref").os_read_misses()
        ratios.append(full / max(1, base))
    assert all(r < 0.5 for r in ratios)


def test_full_stack_speeds_up_the_os(runner):
    for workload in ("TRFD_4", "Shell"):
        base = runner.run(workload, "Base").os_time().total
        full = runner.run(workload, "BCPref").os_time().total
        assert full < 0.92 * base


def test_dma_removes_exactly_the_block_misses(shell_systems):
    base = shell_systems["Base"]
    dma = shell_systems["Blk_Dma"]
    assert dma.os_miss_kind.get(MissKind.BLOCK_OP, 0) == 0
    assert base.os_miss_kind.get(MissKind.BLOCK_OP, 0) > 0
    assert dma.dma_ops == base.blockops.ops


def test_update_protocol_removes_coherence_misses(shell_systems):
    base_coh = shell_systems["Base"].os_miss_kind.get(MissKind.COHERENCE, 0)
    relup_coh = shell_systems["BCoh_RelUp"].os_miss_kind.get(
        MissKind.COHERENCE, 0)
    assert relup_coh < 0.6 * max(1, base_coh)


def test_user_work_unaffected_by_os_optimizations(runner):
    """Paper: 'the user execution time is practically unaffected'.

    The OS optimizations never change what user code does: its reads,
    misses and executed instructions are identical.  (User *stall* time
    does move in our simulator — the DMA engine holds the bus, so user
    misses on other CPUs queue longer; deviation D6 in EXPERIMENTS.md.)
    """
    base = runner.run("TRFD_4", "Base")
    full = runner.run("TRFD_4", "BCPref")
    assert base.reads[Mode.USER] == full.reads[Mode.USER]
    assert base.time[Mode.USER].exec_cycles == full.time[Mode.USER].exec_cycles
    base_misses = base.read_misses[Mode.USER]
    full_misses = full.read_misses[Mode.USER]
    # User misses move a little — in Base, OS block operations displace
    # user lines from the shared caches; Blk_Dma stops that, so the
    # optimized system can only *help* user misses.
    assert full_misses <= base_misses * 1.05
    assert abs(full_misses - base_misses) / max(1, base_misses) < 0.25


def test_miss_taxonomy_consistent_across_systems(runner):
    for name in ("Base", "Blk_Dma", "BCPref"):
        m = runner.run("Shell", name)
        assert sum(m.os_miss_kind.values()) == m.os_read_misses()


def test_bus_traffic_of_prefetching_is_modest(runner):
    """Paper (section 6): BCPref's traffic is within ~1 % of BCoh_RelUp's.

    At reduced scale we allow a wider band but the prefetches must not
    blow the traffic up.
    """
    relup = runner.run("Shell", "BCoh_RelUp").bus_busy_cycles
    bcpref = runner.run("Shell", "BCPref").bus_busy_cycles
    assert bcpref < 1.15 * relup


def test_all_workloads_profile_under_base(runner):
    for workload in WORKLOAD_ORDER:
        m = runner.run(workload, "Base")
        assert m.os_read_misses() > 0
        assert m.makespan > 0
        assert m.blockops.ops > 0


def test_update_selection_is_stable_across_runs(runner):
    a = runner.update_selection("TRFD_4")
    fresh = ExperimentRunner(scale=0.15, seed=1996)
    b = fresh.update_selection("TRFD_4")
    assert a.pages == b.pages
    assert a.variables == b.variables
