"""Property-based tests on simulator-level invariants.

These complement tests/test_properties.py: rather than exercising the
memory system directly, they run whole random (valid) traces through the
configured systems and check the paper-level invariants that every
configuration must preserve.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import MissKind, Mode, Op
from repro.sim.config import SystemConfig, standard_configs
from repro.sim.system import MultiprocessorSystem, simulate
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder


@st.composite
def block_heavy_traces(draw):
    """Valid 2-CPU traces biased toward block operations and sharing."""
    b = TraceBuilder(2)
    shared = draw(st.integers(0, 7)) * 64 + 0x9000
    for cpu in range(2):
        n = draw(st.integers(2, 16))
        for _ in range(n):
            kind = draw(st.sampled_from(["r", "w", "s", "copy", "zero"]))
            if kind == "r":
                b.emit(cpu, rec.read(draw(st.integers(0, 1 << 18)) * 4,
                                     icount=draw(st.integers(1, 6))))
            elif kind == "w":
                b.emit(cpu, rec.write(draw(st.integers(0, 1 << 18)) * 4,
                                      icount=draw(st.integers(1, 6))))
            elif kind == "s":
                b.emit(cpu, rec.read(shared, icount=2))
                b.emit(cpu, rec.write(shared, icount=1))
            elif kind == "copy":
                src = 0x100000 + draw(st.integers(0, 30)) * 0x1000
                dst = 0x200000 + draw(st.integers(0, 30)) * 0x1000
                if src != dst:
                    b.emit_block_copy(
                        cpu, src=src, dst=dst,
                        size=draw(st.sampled_from([64, 256, 4096])))
            else:
                b.emit_block_zero(
                    cpu, dst=0x300000 + draw(st.integers(0, 30)) * 0x1000,
                    size=draw(st.sampled_from([128, 1024, 4096])))
    return b.build()


@given(block_heavy_traces())
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic(trace):
    """The same trace and config always produce identical metrics."""
    config = standard_configs()["Base"]
    a = simulate(trace, config)
    b = simulate(trace, config)
    assert a.makespan == b.makespan
    assert a.os_read_misses() == b.os_read_misses()
    assert dict(a.os_miss_kind) == dict(b.os_miss_kind)
    assert a.time[Mode.OS].as_dict() == b.time[Mode.OS].as_dict()


@given(block_heavy_traces())
@settings(max_examples=20, deadline=None)
def test_dma_always_removes_all_block_misses(trace):
    metrics = simulate(trace, standard_configs()["Blk_Dma"])
    assert metrics.os_miss_kind.get(MissKind.BLOCK_OP, 0) == 0
    assert metrics.dma_ops == len(trace.blockops)


@given(block_heavy_traces())
@settings(max_examples=15, deadline=None)
def test_pure_update_never_increases_coherence_misses(trace):
    invalidate = simulate(trace, SystemConfig("inv"))
    update = simulate(trace, SystemConfig("upd", pure_update=True))
    assert (update.os_miss_kind.get(MissKind.COHERENCE, 0)
            <= invalidate.os_miss_kind.get(MissKind.COHERENCE, 0))


@given(block_heavy_traces())
@settings(max_examples=15, deadline=None)
def test_reads_and_writes_preserved_across_schemes(trace):
    """Every non-DMA scheme executes exactly the trace's references."""
    expected_reads = sum(1 for r in trace.records() if r.op == Op.READ)
    expected_writes = sum(1 for r in trace.records() if r.op == Op.WRITE)
    for name in ("Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref"):
        m = simulate(trace, standard_configs()[name])
        assert sum(m.reads.values()) == expected_reads, name
        assert sum(m.writes.values()) == expected_writes, name


@given(block_heavy_traces())
@settings(max_examples=15, deadline=None)
def test_time_components_nonnegative_and_bounded(trace):
    for name in ("Base", "Blk_Dma"):
        m = simulate(trace, standard_configs()[name])
        for mode in Mode:
            tb = m.time[mode]
            assert min(tb.as_dict().values()) >= 0
        # Total attributed CPU time cannot exceed CPUs x makespan.
        assert m.total_cpu_cycles <= trace.num_cpus * m.makespan + 1


@given(block_heavy_traces())
@settings(max_examples=10, deadline=None)
def test_invariants_after_every_scheme(trace):
    for name, config in standard_configs().items():
        system = MultiprocessorSystem(trace, config)
        system.run()
        system.check_invariants()
