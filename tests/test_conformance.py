"""Conformance harness tests (repro.check): oracle, invariants, fuzzer.

The deliberate-bug (mutant) detection tests live in
``test_conformance_mutants.py``; this file covers the harness itself —
transparency of the checker, the oracle passing on correct runs, the
cross-scheme differential, and the fuzz/shrink/replay machinery.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import REPRO_CHECK_ENV
from repro.check import fuzz
from repro.common.errors import ConformanceError
from repro.sim.config import standard_configs
from repro.sim.system import MultiprocessorSystem, simulate
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder

CONFIGS = standard_configs()


def small_trace(seed=7, num_cpus=4):
    case = fuzz.generate_case(seed, num_cpus=num_cpus, length=10,
                              race_free=True)
    return fuzz.build_trace(case)


# ----------------------------------------------------------------------
# Arming and transparency
# ----------------------------------------------------------------------
def test_checker_off_by_default(monkeypatch):
    monkeypatch.delenv(REPRO_CHECK_ENV, raising=False)
    system = MultiprocessorSystem(small_trace(), CONFIGS["Base"])
    assert system.checker is None


def test_checker_enabled_by_env_var(monkeypatch):
    monkeypatch.setenv(REPRO_CHECK_ENV, "1")
    system = MultiprocessorSystem(small_trace(), CONFIGS["Base"])
    assert system.checker is not None
    monkeypatch.setenv(REPRO_CHECK_ENV, "0")
    assert MultiprocessorSystem(small_trace(), CONFIGS["Base"]).checker is None


def test_explicit_check_overrides_env(monkeypatch):
    monkeypatch.setenv(REPRO_CHECK_ENV, "1")
    system = MultiprocessorSystem(small_trace(), CONFIGS["Base"], check=False)
    assert system.checker is None


@pytest.mark.parametrize("config_name",
                         ["Base", "Blk_Bypass", "Blk_Dma", "BCoh_RelUp"])
def test_checker_is_metric_transparent(config_name):
    """Arming the checker must not change a single metric."""
    trace = small_trace(seed=3)
    plain = simulate(trace, CONFIGS[config_name],
                     update_pages=[fuzz.UPDATE_PAGE], check=False)
    checked = simulate(trace, CONFIGS[config_name],
                       update_pages=[fuzz.UPDATE_PAGE], check=True)
    assert plain.snapshot() == checked.snapshot()


def test_checker_actually_checks():
    result = fuzz.run_case(fuzz.generate_case(1, length=8), "Base")
    assert result.ok
    assert result.accesses > 100


# ----------------------------------------------------------------------
# Oracle on correct runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_oracle_passes_all_schemes(config_name):
    case = fuzz.generate_case(11, length=12, race_free=True)
    assert fuzz.run_case(case, config_name).ok


@pytest.mark.parametrize("seed", [2, 5, 9])
def test_oracle_passes_racy_traces(seed):
    case = fuzz.generate_case(seed, length=12, race_free=False)
    for name in ("Base", "Blk_Bypass", "Blk_Dma"):
        assert fuzz.run_case(case, name).ok


# ----------------------------------------------------------------------
# Differential: every scheme ends with Base's architectural memory
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 4, 8])
def test_schemes_agree_on_final_memory(seed):
    case = fuzz.generate_case(seed, length=14, race_free=True)
    base = fuzz.run_case(case, "Base")
    assert base.ok
    assert base.memory  # a vacuous diff would prove nothing
    for name in CONFIGS:
        result = fuzz.run_case(case, name)
        assert result.ok
        assert result.memory == base.memory, name


# ----------------------------------------------------------------------
# Protocol edge cases under the checker
# ----------------------------------------------------------------------
def test_dma_partially_covering_dirty_line_checked():
    """A DMA zero over part of a dirty line must keep the uncovered
    dirty words architecturally visible (dma_update_dst write-back)."""
    line = 0x300000  # 32-byte L2 line
    b = TraceBuilder(2)
    b.emit(1, rec.write(line + 28))          # dirty word outside the zero
    b.emit(1, rec.barrier(0x610000, 2))
    b.emit(0, rec.barrier(0x610000, 2))
    b.emit_block_zero(0, line, 16)           # covers words 0..3 only
    b.emit(0, rec.read(line + 28))           # must still see cpu1's write
    metrics = simulate(b.build(), CONFIGS["Blk_Dma"], check=True)
    assert metrics.makespan > 0


def test_bypass_write_to_update_page_checked():
    """A bypassed block write landing on a Firefly page invalidates the
    sharers at flush time; that is legal (it is not an update) and the
    committed values must still be exact."""
    page = fuzz.UPDATE_PAGE
    config = dataclasses.replace(CONFIGS["Blk_Bypass"],
                                 selective_update=True)
    b = TraceBuilder(2)
    b.emit(1, rec.read(page + 4))            # cpu1 shares the page line
    b.emit(1, rec.barrier(0x610000, 2))
    b.emit(0, rec.barrier(0x610000, 2))
    b.emit_block_zero(0, page, 32)
    b.emit(0, rec.read(page + 4))
    b.emit(1, rec.read(page + 4))            # refetches the zeroed line
    system = MultiprocessorSystem(b.build(), config, update_pages=[page],
                                  check=True)
    system.run()
    assert system.checker.architectural_memory()[page + 4] == "zero"


def test_racing_bypass_registers_commit_in_flush_order():
    """Two CPUs' store-line registers racing on one destination line must
    serialize in flush order — the regression behind SHARED_DST_BASE."""
    for seed in range(6):
        case = fuzz.generate_case(seed * 2 + 1, length=14, race_free=False)
        assert fuzz.run_case(case, "Blk_Bypass").ok, seed


# ----------------------------------------------------------------------
# Fuzz loop, shrinker, persistence
# ----------------------------------------------------------------------
def test_fuzz_rounds_clean():
    for seed in (0, 1):
        assert fuzz.fuzz_round(seed, num_cpus=2, length=8) is None


@pytest.mark.slow
@pytest.mark.fuzz
def test_fuzz_smoke_all_schemes():
    assert fuzz.run_fuzz(6, seed=100) is None


def test_generate_case_is_deterministic():
    a = fuzz.generate_case(42)
    b = fuzz.generate_case(42)
    assert a.events == b.events
    assert fuzz.generate_case(43).events != a.events


def test_generated_traces_validate():
    for seed in range(4):
        trace = fuzz.build_trace(fuzz.generate_case(seed))
        trace.validate()


def test_shrinker_reaches_one_minimality():
    """At the shrinker's fixpoint no single removal still fails."""
    from repro.check.mutants import mutant

    def still_fails(case):
        with mutant("stale_cache_supply"):
            result = fuzz.run_case(case, "Base")
        return (result.error is not None
                and result.error.kind == "stale-read")

    case = fuzz.generate_case(0, length=20, race_free=True)
    assert still_fails(case)
    shrunk = fuzz.shrink_case(case, still_fails)
    assert len(shrunk) < len(case)
    assert still_fails(shrunk)
    for cand in fuzz._candidates(shrunk):
        reduced = fuzz._apply(shrunk, cand)
        if reduced is not None:
            assert not still_fails(reduced), cand


def test_save_and_replay_roundtrip(tmp_path):
    from repro.check.mutants import mutant
    case = fuzz.generate_case(0, length=20, race_free=True)
    with mutant("stale_cache_supply"):
        result = fuzz.run_case(case, "Base")
    assert result.error is not None
    failure = fuzz.FuzzFailure(case, "Base", "stale_cache_supply",
                               result.error)
    path = tmp_path / "failure.txt"
    fuzz.save_failure(failure, case, str(path))
    replayed = fuzz.replay(str(path))
    assert replayed.error is not None
    assert replayed.error.kind == result.error.kind


def test_replay_clean_without_mutant_metadata(tmp_path):
    trace = small_trace(seed=5)
    trace.metadata[fuzz.META_CONFIG] = "Blk_Dma"
    trace.metadata[fuzz.META_UPDATE_PAGES] = [fuzz.UPDATE_PAGE]
    path = tmp_path / "clean.txt"
    from repro.trace import textio
    with open(path, "w") as fp:
        textio.dump(trace, fp)
    assert fuzz.replay(str(path)).ok


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_simulate_check_flag(tmp_path, capsys):
    from repro import cli
    from repro.trace import textio
    path = tmp_path / "t.txt"
    with open(path, "w") as fp:
        textio.dump(small_trace(seed=6), fp)
    assert cli.main(["simulate", str(path), "--config", "Base",
                     "--check"]) == 0
    assert "conformance: ok" in capsys.readouterr().out


def test_check_cli_module(tmp_path, capsys):
    from repro.check.__main__ import main
    assert main(["--rounds", "1", "--seed", "0", "--cpus", "2",
                 "--length", "6", "--configs", "Base,Blk_Dma",
                 "--out-dir", str(tmp_path)]) == 0
    assert "no conformance violation" in capsys.readouterr().out


def test_cli_reports_violation(tmp_path, capsys):
    from repro import cli
    from repro.check.mutants import mutant
    from repro.trace import textio
    case = fuzz.generate_case(0, length=20, race_free=True)
    path = tmp_path / "t.txt"
    with open(path, "w") as fp:
        textio.dump(fuzz.build_trace(case), fp)
    with mutant("stale_cache_supply"):
        code = cli.main(["simulate", str(path), "--config", "Base",
                         "--check"])
    assert code == 1
    assert "conformance violation" in capsys.readouterr().err


def test_conformance_error_carries_kind():
    err = ConformanceError("stale-read: boom", kind="stale-read",
                           details={"cpu": 1})
    assert err.kind == "stale-read"
    assert err.details == {"cpu": 1}
