"""Unit tests for block-operation descriptors (repro.trace.blockop)."""

import pytest

from repro.common.errors import TraceError
from repro.common.types import BlockOpKind
from repro.trace.blockop import BlockOpDescriptor, BlockOpRegistry


class TestDescriptor:
    def test_copy_ranges(self):
        d = BlockOpDescriptor(1, BlockOpKind.COPY, 0x1000, 0x2000, 64)
        assert d.is_copy
        assert list(d.src_range()) == list(range(0x1000, 0x1040))
        assert list(d.dst_range()) == list(range(0x2000, 0x2040))

    def test_zero_has_empty_src_range(self):
        d = BlockOpDescriptor(1, BlockOpKind.ZERO, 0, 0x2000, 64)
        assert not d.is_copy
        assert len(d.src_range()) == 0
        assert len(d.dst_range()) == 64

    def test_contains(self):
        d = BlockOpDescriptor(1, BlockOpKind.COPY, 0x1000, 0x2000, 64)
        assert d.contains_src(0x1000)
        assert d.contains_src(0x103F)
        assert not d.contains_src(0x1040)
        assert d.contains_dst(0x2020)
        assert not d.contains_dst(0x1FFF)

    def test_zero_never_contains_src(self):
        d = BlockOpDescriptor(1, BlockOpKind.ZERO, 0, 0x2000, 64)
        assert not d.contains_src(0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(TraceError):
            BlockOpDescriptor(1, BlockOpKind.COPY, 0x0, 0x100, 0)

    def test_rejects_self_copy(self):
        with pytest.raises(TraceError):
            BlockOpDescriptor(1, BlockOpKind.COPY, 0x100, 0x100, 64)


class TestRegistry:
    def test_ids_are_sequential_from_one(self):
        reg = BlockOpRegistry()
        a = reg.new_copy(0x0, 0x100, 32)
        b = reg.new_zero(0x200, 32)
        assert (a.op_id, b.op_id) == (1, 2)

    def test_get_and_find(self):
        reg = BlockOpRegistry()
        d = reg.new_copy(0x0, 0x100, 32)
        assert reg.get(d.op_id) is d
        assert reg.find(d.op_id) is d
        assert reg.find(99) is None

    def test_get_unknown_raises(self):
        with pytest.raises(TraceError):
            BlockOpRegistry().get(1)

    def test_len_iter_contains(self):
        reg = BlockOpRegistry()
        reg.new_copy(0x0, 0x100, 32)
        reg.new_zero(0x200, 16)
        assert len(reg) == 2
        assert {d.op_id for d in reg} == {1, 2}
        assert 1 in reg and 3 not in reg
