"""Round-trip tests for binary trace serialization (repro.trace.npzio)."""

import numpy as np
import pytest

from repro.common.errors import TraceError
from repro.common.types import DataClass, Mode
from repro.trace import npzio, textio
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder


def sample_trace():
    b = TraceBuilder(2)
    b.symbols.add("proc_table", 0x1000, 512, DataClass.PROC_TABLE)
    b.symbols.add("vmmeter", 0x2000, 64, DataClass.INFREQ_COMM)
    b.trace.metadata.update({"workload": "x", "seed": 5, "scale": 0.25})
    b.emit(0, rec.read(0x1000, mode=Mode.OS, dclass=DataClass.PROC_TABLE,
                       pc=0x40, icount=3))
    b.emit(1, rec.write(0x2000, mode=Mode.USER, pc=0x80))
    b.emit(0, rec.lock_acquire(0x3000))
    b.emit(0, rec.lock_release(0x3000))
    b.emit(1, rec.barrier(0x88, 1))
    b.emit_block_copy(0, src=0x4000, dst=0x5000, size=64)
    b.emit_block_zero(1, dst=0x6000, size=32)
    return b.build()


def test_roundtrip_identical(tmp_path):
    original = sample_trace()
    path = str(tmp_path / "t.npz")
    npzio.save(original, path)
    restored = npzio.load(path)
    assert restored.num_cpus == original.num_cpus
    assert restored.metadata == original.metadata
    for a, b in zip(original.streams, restored.streams):
        assert a == b
    assert len(restored.blockops) == len(original.blockops)
    assert restored.symbols.names() == original.symbols.names()
    restored.validate()


def test_roundtrip_matches_text_format(tmp_path):
    original = sample_trace()
    path = str(tmp_path / "t.npz")
    npzio.save(original, path)
    restored = npzio.load(path)
    assert textio.dumps(restored) == textio.dumps(original)


def test_workload_roundtrip(tmp_path):
    from repro.synthetic import generate
    trace = generate("Shell", seed=2, scale=0.05)
    path = str(tmp_path / "w.npz")
    npzio.save(trace, path)
    restored = npzio.load(path)
    assert len(restored) == len(trace)
    for a, b in zip(trace.records(), restored.records()):
        assert a == b


def test_compression_beats_text(tmp_path):
    from repro.synthetic import generate
    import os
    trace = generate("Shell", seed=2, scale=0.05)
    npz_path = str(tmp_path / "w.npz")
    txt_path = str(tmp_path / "w.txt")
    npzio.save(trace, npz_path)
    with open(txt_path, "w") as fp:
        textio.dump(trace, fp)
    assert os.path.getsize(npz_path) < os.path.getsize(txt_path) / 3


def test_bad_archive_rejected(tmp_path):
    path = str(tmp_path / "bogus.npz")
    np.savez_compressed(path, something=np.zeros(3))
    with pytest.raises(TraceError, match="not a repro npz trace"):
        npzio.load(path)


def test_empty_trace_roundtrip(tmp_path):
    from repro.trace.stream import Trace
    trace = Trace(1)
    path = str(tmp_path / "empty.npz")
    npzio.save(trace, path)
    restored = npzio.load(path)
    assert len(restored) == 0
    assert restored.num_cpus == 1
