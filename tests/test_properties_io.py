"""Property-based tests on serialization and trace transformations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import DataClass, Mode, Op
from repro.optim.privatize import privatize_and_relocate
from repro.trace import npzio, textio
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


#: Space-free identifiers usable as metadata keys and symbol names.
_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,11}", fullmatch=True)

#: Metadata values across every JSON-representable shape the trace
#: carries, deliberately including numeric-looking strings ("007",
#: "1e3") and strings with internal runs of spaces.
_meta_values = st.one_of(
    st.integers(-2**40, 2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.sampled_from(["007", "1e3", "0x10", ""]),
    st.text(alphabet="abcXYZ 09_.", max_size=20),
)


@st.composite
def random_traces(draw):
    """Arbitrary (not necessarily semantically valid) record streams,
    with random metadata and symbol tables (possibly empty)."""
    num_cpus = draw(st.integers(1, 4))
    trace = Trace(num_cpus)
    trace.metadata.update(draw(st.dictionaries(_names, _meta_values,
                                               max_size=4)))
    for i, name in enumerate(draw(st.lists(_names, unique=True,
                                           max_size=3))):
        # Disjoint 1 MB regions per symbol (overlaps are rejected).
        trace.symbols.add(name, (i + 1) * 2**20 + draw(st.integers(0, 255)) * 4,
                          draw(st.sampled_from([4, 64, 4096])),
                          draw(st.sampled_from(list(DataClass))))
    for cpu in range(num_cpus):
        n = draw(st.integers(0, 40))
        for _ in range(n):
            op = draw(st.sampled_from([Op.READ, Op.WRITE, Op.PREFETCH]))
            trace.streams[cpu].append(TraceRecord(
                op,
                draw(st.integers(0, 2**31 - 1)),
                draw(st.sampled_from(list(Mode))),
                draw(st.sampled_from(list(DataClass))),
                pc=draw(st.integers(0, 2**24)),
                icount=draw(st.integers(0, 50)),
                size=draw(st.sampled_from([1, 2, 4])),
                arg=draw(st.integers(0, 100)),
            ))
    return trace


def _assert_faithful(trace, restored):
    """Records, symbols, and metadata reproduced exactly — values AND
    types (the int 7 is not the string "007")."""
    assert restored.num_cpus == trace.num_cpus
    for a, b in zip(trace.streams, restored.streams):
        assert a == b
    assert restored.metadata == trace.metadata
    for key, value in trace.metadata.items():
        assert type(restored.metadata[key]) is type(value), key
    assert restored.symbols.names() == trace.symbols.names()
    for a, b in zip(trace.symbols, restored.symbols):
        assert (a.name, a.base, a.size, a.dclass) == \
            (b.name, b.base, b.size, b.dclass)


@given(random_traces())
@settings(max_examples=40, deadline=None)
def test_textio_roundtrip_property(trace):
    _assert_faithful(trace, textio.loads(textio.dumps(trace)))


@given(random_traces())
@settings(max_examples=25, deadline=None)
def test_npzio_roundtrip_property(trace):
    import os
    import tempfile

    fd, path = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        npzio.save(trace, path)
        _assert_faithful(trace, npzio.load(path))
    finally:
        os.unlink(path)


def _blockop_trace():
    from repro.trace.stream import TraceBuilder

    b = TraceBuilder(2)
    b.trace.metadata["tag"] = "007"
    b.emit_block_copy(0, src=0x4000, dst=0x5000, size=32)
    b.emit_block_zero(1, dst=0x6000, size=16)
    return b.build()


def test_textio_blockops_roundtrip_exactly():
    trace = _blockop_trace()
    restored = textio.loads(textio.dumps(trace))
    _assert_faithful(trace, restored)
    assert len(restored.blockops) == len(trace.blockops)
    for op in trace.blockops:
        got = restored.blockops.get(op.op_id)
        assert (got.kind, got.src, got.dst, got.size, got.pc) == \
            (op.kind, op.src, op.dst, op.size, op.pc)


def test_npzio_blockops_roundtrip_exactly(tmp_path):
    trace = _blockop_trace()
    path = str(tmp_path / "t.npz")
    npzio.save(trace, path)
    restored = npzio.load(path)
    _assert_faithful(trace, restored)
    for op in trace.blockops:
        got = restored.blockops.get(op.op_id)
        assert (got.kind, got.src, got.dst, got.size, got.pc) == \
            (op.kind, op.src, op.dst, op.size, op.pc)


@given(st.text(alphabet="r symblockopmeta 0123456789.ab\n", max_size=120))
@settings(max_examples=60, deadline=None)
def test_textio_never_leaks_bare_value_error(body):
    """Garbage after a valid header either parses or raises TraceError —
    never ValueError/IndexError."""
    from repro.common.errors import TraceError

    try:
        textio.loads("reprotrace v1\ncpus 2\n" + body)
    except TraceError:
        pass


@given(random_traces())
@settings(max_examples=30, deadline=None)
def test_privatize_preserves_structure(trace):
    """Privatization only ever touches counter/cpievents/timer addresses:
    record counts can only grow (pager-read expansion), every original
    non-target record survives verbatim, and data classes are kept."""
    out = privatize_and_relocate(trace, trace.num_cpus)
    assert out.num_cpus == trace.num_cpus
    for orig, new in zip(trace.streams, out.streams):
        assert len(new) >= len(orig)
        # Records outside the transformed classes appear unchanged, in order.
        def untouched(stream):
            return [r for r in stream
                    if r.dclass not in (DataClass.INFREQ_COMM,
                                        DataClass.FREQ_SHARED,
                                        DataClass.TIMER)]
        assert untouched(new) == untouched(orig)
        # Writes are never duplicated or dropped (only reads expand).
        assert sum(1 for r in new if r.op == Op.WRITE) == \
            sum(1 for r in orig if r.op == Op.WRITE)


@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=60),
       st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_tracestats_sharing_bounds(addresses, num_cpus):
    """Sharing profile invariants for arbitrary read streams."""
    from repro.analysis.tracestats import TraceStats
    trace = Trace(num_cpus)
    for i, addr in enumerate(addresses):
        trace.streams[i % num_cpus].append(
            TraceRecord(Op.READ, addr * 4, Mode.OS, DataClass.NONE, 0, 1))
    stats = TraceStats(trace)
    profile = stats.sharing_profile()
    assert 0 <= profile.lines_shared <= profile.lines_total
    assert 0 <= profile.lines_write_shared <= profile.lines_shared
    assert profile.max_sharers <= num_cpus
    assert stats.data_references() == len(addresses)
