"""Property-based tests on serialization and trace transformations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import DataClass, Mode, Op
from repro.optim.privatize import privatize_and_relocate
from repro.trace import npzio, textio
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace


@st.composite
def random_traces(draw):
    """Arbitrary (not necessarily semantically valid) record streams."""
    num_cpus = draw(st.integers(1, 4))
    trace = Trace(num_cpus)
    for cpu in range(num_cpus):
        n = draw(st.integers(0, 40))
        for _ in range(n):
            op = draw(st.sampled_from([Op.READ, Op.WRITE, Op.PREFETCH]))
            trace.streams[cpu].append(TraceRecord(
                op,
                draw(st.integers(0, 2**31 - 1)),
                draw(st.sampled_from(list(Mode))),
                draw(st.sampled_from(list(DataClass))),
                pc=draw(st.integers(0, 2**24)),
                icount=draw(st.integers(0, 50)),
                size=draw(st.sampled_from([1, 2, 4])),
                arg=draw(st.integers(0, 100)),
            ))
    return trace


@given(random_traces())
@settings(max_examples=40, deadline=None)
def test_textio_roundtrip_property(trace):
    restored = textio.loads(textio.dumps(trace))
    assert restored.num_cpus == trace.num_cpus
    for a, b in zip(trace.streams, restored.streams):
        assert a == b


@given(random_traces())
@settings(max_examples=25, deadline=None)
def test_npzio_roundtrip_property(trace):
    import os
    import tempfile

    fd, path = tempfile.mkstemp(suffix=".npz")
    os.close(fd)
    try:
        npzio.save(trace, path)
        restored = npzio.load(path)
        for a, b in zip(trace.streams, restored.streams):
            assert a == b
    finally:
        os.unlink(path)


@given(random_traces())
@settings(max_examples=30, deadline=None)
def test_privatize_preserves_structure(trace):
    """Privatization only ever touches counter/cpievents/timer addresses:
    record counts can only grow (pager-read expansion), every original
    non-target record survives verbatim, and data classes are kept."""
    out = privatize_and_relocate(trace, trace.num_cpus)
    assert out.num_cpus == trace.num_cpus
    for orig, new in zip(trace.streams, out.streams):
        assert len(new) >= len(orig)
        # Records outside the transformed classes appear unchanged, in order.
        def untouched(stream):
            return [r for r in stream
                    if r.dclass not in (DataClass.INFREQ_COMM,
                                        DataClass.FREQ_SHARED,
                                        DataClass.TIMER)]
        assert untouched(new) == untouched(orig)
        # Writes are never duplicated or dropped (only reads expand).
        assert sum(1 for r in new if r.op == Op.WRITE) == \
            sum(1 for r in orig if r.op == Op.WRITE)


@given(st.lists(st.integers(0, 2**20), min_size=1, max_size=60),
       st.integers(2, 4))
@settings(max_examples=40, deadline=None)
def test_tracestats_sharing_bounds(addresses, num_cpus):
    """Sharing profile invariants for arbitrary read streams."""
    from repro.analysis.tracestats import TraceStats
    trace = Trace(num_cpus)
    for i, addr in enumerate(addresses):
        trace.streams[i % num_cpus].append(
            TraceRecord(Op.READ, addr * 4, Mode.OS, DataClass.NONE, 0, 1))
    stats = TraceStats(trace)
    profile = stats.sharing_profile()
    assert 0 <= profile.lines_shared <= profile.lines_total
    assert 0 <= profile.lines_write_shared <= profile.lines_shared
    assert profile.max_sharers <= num_cpus
    assert stats.data_references() == len(addresses)
