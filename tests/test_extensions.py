"""Tests for the section-7 extension experiments (page coloring)."""

import pytest

from repro.common.rng import RngStream
from repro.experiments.extensions import (
    ColoringResult,
    page_coloring_study,
    page_coloring_sweep,
    render_coloring,
)
from repro.synthetic import layout as lay
from repro.synthetic.kernel import Kernel
from repro.synthetic.workloads import generate


class TestColoredAllocator:
    def make(self):
        return Kernel(2, RngStream(4, "color"), frame_policy="colored")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            Kernel(2, RngStream(4, "x"), frame_policy="bogus")

    def test_color_honored_for_fresh_frames(self):
        k = self.make()
        for color in (0, 7, 63, 64):
            frame = k.alloc_frame(color=color)
            assert k.frame_color(frame) == color % Kernel.NUM_COLORS

    def test_free_frame_of_right_color_reused(self):
        k = self.make()
        frame = lay.FRAME_POOL + 5 * lay.PAGE  # color 5
        k.free_frames([frame])
        assert k.alloc_frame(color=5) == frame

    def test_free_frame_of_wrong_color_skipped(self):
        k = self.make()
        k.free_frames([lay.FRAME_POOL + 5 * lay.PAGE])
        got = k.alloc_frame(color=6)
        assert k.frame_color(got) == 6
        assert k._free_frames  # the color-5 frame is still free

    def test_same_color_requests_get_distinct_frames(self):
        k = self.make()
        frames = {k.alloc_frame(color=3) for _ in range(5)}
        assert len(frames) == 5
        assert all(k.frame_color(f) == 3 for f in frames)

    def test_default_policy_ignores_color_path(self):
        k = Kernel(2, RngStream(4, "x"))
        frame = k.alloc_frame()
        assert frame % lay.PAGE == 0


class TestColoredWorkloads:
    def test_colored_trace_validates(self):
        trace = generate("TRFD_4", seed=3, scale=0.06,
                         frame_policy="colored")
        trace.validate()
        assert trace.metadata["frame_policy"] == "colored"

    def test_colored_differs_from_default(self):
        default = generate("TRFD_4", seed=3, scale=0.06)
        colored = generate("TRFD_4", seed=3, scale=0.06,
                           frame_policy="colored")
        assert any(a != b for a, b in zip(default.records(),
                                          colored.records()))

    def test_copy_src_dst_colors_disjoint(self):
        trace = generate("TRFD_4", seed=3, scale=0.06,
                         frame_policy="colored")
        l1_sets = 32 * 1024 // lay.PAGE  # 8 page classes in the L1D
        for op in trace.blockops:
            if op.is_copy and op.size == lay.PAGE:
                assert (op.src // lay.PAGE) % l1_sets != \
                    (op.dst // lay.PAGE) % l1_sets


class TestStudy:
    def test_single_study_fields(self):
        result = page_coloring_study("TRFD_4", seed=5, scale=0.06)
        assert result.workload == "TRFD_4"
        assert result.default_misses > 0
        assert result.colored_misses > 0
        assert 0 < result.miss_ratio < 5
        assert 0 < result.time_ratio < 5

    def test_sweep_and_render(self):
        results = page_coloring_sweep(seed=5, scale=0.06,
                                      workloads=["Shell"])
        assert set(results) == {"Shell"}
        out = render_coloring(results)
        assert "Page-coloring" in out
        assert "Shell" in out

    def test_ratios_guard_zero(self):
        r = ColoringResult("x", 0, 0, 0, 0, 0, 0)
        assert r.miss_ratio == 0.0
        assert r.time_ratio == 0.0
