"""System-level tests: scheduling, deadlock detection, invariants."""

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.common.types import Mode
from repro.sim.config import SystemConfig, standard_configs
from repro.sim.system import MultiprocessorSystem, simulate
from repro.trace import record as rec
from repro.trace.stream import Trace, TraceBuilder


def test_standard_configs_names_and_order():
    names = list(standard_configs())
    assert names == ["Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref",
                     "Blk_Dma", "BCoh_Reloc", "BCoh_RelUp", "BCPref"]


def test_trace_with_too_many_cpus_rejected():
    trace = Trace(8)
    with pytest.raises(SimulationError):
        MultiprocessorSystem(trace, SystemConfig("t"))


def test_per_cpu_times_monotonic():
    b = TraceBuilder(4)
    for cpu in range(4):
        for i in range(100):
            b.emit(cpu, rec.read(0x10000 * (cpu + 1) + (i * 16) % 2048,
                                 pc=0x100 + cpu * 64, icount=2))
    system = MultiprocessorSystem(b.build(), SystemConfig("t"))
    metrics = system.run()
    assert all(t > 0 for t in metrics.cpu_end_times)
    assert metrics.makespan == max(metrics.cpu_end_times)


def test_invariants_hold_after_mixed_run():
    b = TraceBuilder(4)
    for cpu in range(4):
        b.emit(cpu, rec.lock_acquire(0x100))
        b.emit(cpu, rec.write(0x3000, icount=2))
        b.emit(cpu, rec.lock_release(0x100))
        for i in range(50):
            b.emit(cpu, rec.read(0x3000 + (i % 8) * 4, icount=2))
        b.emit(cpu, rec.barrier(0x400, 4))
    b.emit_block_copy(0, src=0x100000, dst=0x209000, size=1024)
    system = MultiprocessorSystem(b.build(), SystemConfig("t"))
    system.run()
    system.check_invariants()


def test_invariants_hold_for_every_scheme():
    for name, config in standard_configs().items():
        b = TraceBuilder(2)
        b.emit_block_copy(0, src=0x100000, dst=0x209000, size=512)
        b.emit(1, rec.read(0x100000, icount=2))
        b.emit(1, rec.write(0x209000, icount=2))
        system = MultiprocessorSystem(b.build(), config)
        system.run()
        system.check_invariants()


def test_barrier_deadlock_detected():
    # CPU 0 waits at a 2-party barrier that nobody else ever reaches —
    # construct the malformed trace directly, bypassing validation.
    trace = Trace(2)
    trace.streams[0].append(rec.barrier(0x100, 2))
    trace.streams[1].append(rec.read(0x200))
    with pytest.raises(DeadlockError):
        MultiprocessorSystem(trace, SystemConfig("t")).run()


def test_lock_contention_counted():
    b = TraceBuilder(2)
    for cpu in range(2):
        b.emit(cpu, rec.lock_acquire(0x100))
        for i in range(30):
            b.emit(cpu, rec.write(0x2000 + i * 16, icount=3))
        b.emit(cpu, rec.lock_release(0x100))
    system = MultiprocessorSystem(b.build(), SystemConfig("t"))
    system.run()
    assert system.locks.acquisitions == 2


def test_mutual_exclusion_preserved():
    """Critical sections on the same lock never overlap in simulated time."""
    intervals = []

    b = TraceBuilder(4)
    for cpu in range(4):
        b.emit(cpu, rec.lock_acquire(0x100))
        for i in range(25):
            b.emit(cpu, rec.write(0x5000 + i * 16, icount=2))
        b.emit(cpu, rec.lock_release(0x100))
    system = MultiprocessorSystem(b.build(), SystemConfig("t"))

    # Instrument the lock table to capture (acquire, release) windows.
    locks = system.locks
    original_try = locks.try_acquire
    original_release = locks.release
    starts = {}

    def try_acquire(addr, cpu, t):
        ok, grant = original_try(addr, cpu, t)
        if ok:
            starts[(addr, cpu)] = grant
        return ok, grant

    def release(addr, cpu, t):
        original_release(addr, cpu, t)
        intervals.append((starts.pop((addr, cpu)), t))

    locks.try_acquire = try_acquire
    locks.release = release
    system.run()

    intervals.sort()
    assert len(intervals) == 4
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2, f"critical sections overlap: {(s1, e1)} vs {(s2, e2)}"


def test_simulate_convenience_wrapper():
    b = TraceBuilder(1)
    b.emit(0, rec.read(0x1000))
    metrics = simulate(b.build(), SystemConfig("t"))
    assert metrics.reads[Mode.OS] == 1


def test_idle_mode_time_attributed():
    b = TraceBuilder(1)
    b.emit(0, rec.read(0x1000, mode=Mode.IDLE, icount=50))
    metrics = simulate(b.build(), SystemConfig("t"))
    assert metrics.time[Mode.IDLE].total > 0
    assert metrics.mode_fraction(Mode.IDLE) > 0.5
