"""Tests for hot-spot detection and prefetch insertion (repro.optim.hotspots)."""

from repro.common.types import Op
from repro.optim.hotspots import (
    HotspotPrefetcher,
    find_hotspots,
    hotspot_coverage,
    insert_hotspot_prefetches,
)
from repro.sim import SystemConfig, simulate
from repro.trace import record as rec
from repro.trace.stream import TraceBuilder

HOT = 0x1100
COLD = 0x2200


def conflict_trace(n=40):
    """A streaming loop whose reads miss at one hot basic block."""
    b = TraceBuilder(1)
    for i in range(n):
        # Stream through new lines: every HOT read is a cold/capacity miss.
        b.emit(0, rec.read(0x10000 + i * 64, pc=HOT, icount=3))
        b.emit(0, rec.read(0x500 + (i % 4) * 4, pc=COLD, icount=3))
    return b.build()


def test_find_hotspots_ranks_by_misses():
    metrics = simulate(conflict_trace(), SystemConfig("t"))
    hot = find_hotspots(metrics, count=1)
    assert hot == [HOT]


def test_hotspot_coverage():
    metrics = simulate(conflict_trace(), SystemConfig("t"))
    cov = hotspot_coverage(metrics, [HOT])
    assert 0.5 < cov <= 1.0
    assert hotspot_coverage(metrics, []) == 0.0


def test_insertion_adds_prefetch_records():
    trace = conflict_trace()
    out = insert_hotspot_prefetches(trace, [HOT], lead=8)
    prefetches = [r for s in out.streams for r in s if r.op == Op.PREFETCH]
    assert prefetches
    assert all(r.pc == HOT for r in prefetches)


def test_insertion_preserves_original_records():
    trace = conflict_trace()
    out = insert_hotspot_prefetches(trace, [HOT], lead=8)
    original_ops = [r for r in trace.streams[0]]
    kept = [r for r in out.streams[0] if r.op != Op.PREFETCH]
    assert kept == original_ops


def test_prefetch_leads_are_positive():
    out = insert_hotspot_prefetches(conflict_trace(), [HOT], lead=12)
    stream = out.streams[0]
    for i, r in enumerate(stream):
        if r.op == Op.PREFETCH:
            # The covered demand read appears later in the stream.
            assert any(s.op == Op.READ and s.addr == r.addr
                       for s in stream[i + 1:])


def test_duplicate_line_prefetches_skipped():
    b = TraceBuilder(1)
    for i in range(20):
        b.emit(0, rec.read(0x4000 + (i % 4) * 4, pc=HOT, icount=2))  # one line
    pref = HotspotPrefetcher([HOT], lead=10)
    out = pref.apply(b.build())
    prefetches = [r for r in out.streams[0] if r.op == Op.PREFETCH]
    # Reads of one cache line within the lead window share one prefetch.
    assert len(prefetches) <= 3
    assert pref.skipped_duplicates > 0


def test_block_op_reads_not_prefetched():
    b = TraceBuilder(1)
    b.emit_block_copy(0, src=0x10000, dst=0x20000, size=256, pc=HOT)
    out = insert_hotspot_prefetches(b.build(), [HOT])
    assert not any(r.op == Op.PREFETCH for r in out.streams[0])


def test_cold_pcs_untouched():
    out = insert_hotspot_prefetches(conflict_trace(), [0x9999])
    assert not any(r.op == Op.PREFETCH for s in out.streams for r in s)


def test_prefetching_hides_hotspot_misses():
    base = simulate(conflict_trace(100), SystemConfig("t"))
    prefetched_trace = insert_hotspot_prefetches(conflict_trace(100), [HOT],
                                                 lead=20)
    after = simulate(prefetched_trace, SystemConfig("t"),
                     hotspot_pcs=[HOT])
    assert after.os_miss_pc[HOT] < base.os_miss_pc[HOT]


def test_instruction_overhead_is_small():
    trace = conflict_trace(200)
    pref = HotspotPrefetcher([HOT], lead=16)
    out = pref.apply(trace)
    added = sum(r.icount for s in out.streams for r in s
                if r.op == Op.PREFETCH)
    total = sum(r.icount for s in trace.streams for r in s)
    # Paper: prefetches add ~3.2% dynamic instructions in the hot spots.
    assert added / total < 0.25
