"""End-to-end tests for the machine axis: CPU counts beyond the paper's
four, set-associative machine points, and the trace/machine-shape
bugfixes (narrow traces must get machines their own size, not the 4-CPU
Base with phantom idle processors).
"""

import pytest

from repro.analysis.tables import (MACHINE_COMPARE_SCHEMES, MACHINE_POINTS,
                                   machine_point, machine_workload)
from repro.common.params import BASE_MACHINE, machine_for
from repro.experiments.all import artifact_cells
from repro.experiments.queue import BadRequestError, SweepRequest
from repro.sim.config import all_configs, resolve_config
from repro.sim.system import MultiprocessorSystem, simulate
from repro.synthetic.profiles import generate

SCALE = 0.1
SEED = 1996


def _trace(num_cpus, scale=SCALE):
    return generate(f"gen:server:c{num_cpus}:i060:steady:0:0",
                    seed=SEED, scale=scale)


class TestNarrowTraceMachineSizing:
    """Regression: ``repro simulate`` used to hand every trace the
    4-CPU BASE_MACHINE, so a 2-CPU workload simulated against a machine
    with two phantom idle CPUs and any 8-CPU workload crashed."""

    def test_machine_matches_trace_width(self, capsys):
        import argparse

        from repro.cli import _machine_from_args, main
        args = argparse.Namespace(assoc=1, bus_width=None)
        assert _machine_from_args(2, args).num_cpus == 2
        assert _machine_from_args(4, args) is BASE_MACHINE
        # And the command itself runs the narrow workload cleanly.
        assert main(["simulate", "gen:server:c2:i060:steady:0:0",
                     "--scale", "0.05"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_wide_trace_no_longer_crashes(self):
        trace = _trace(8, scale=0.02)
        config = resolve_config("Base", machine_for(8))
        metrics = simulate(trace, config)
        assert metrics.makespan > 0

    def test_system_rejects_trace_wider_than_machine(self):
        from repro.common.errors import SimulationError
        trace = _trace(8, scale=0.02)
        with pytest.raises(SimulationError, match="8 CPUs"):
            MultiprocessorSystem(trace, resolve_config("Base"))


class TestResolveConfig:
    def test_registry_names_pass_through(self):
        for name in all_configs():
            assert resolve_config(name).name == name

    def test_parameterized_hybrids(self):
        assert resolve_config("Hyb_UpdN@N2").name == "Hyb_UpdN@N2"
        assert resolve_config("Hyb_Deg@T4").name == "Hyb_Deg@T4"

    def test_default_knob_is_canonical(self):
        # Hyb_UpdN's default budget is N=4: the explicit spelling must
        # resolve to the registry entry so cached cells are shared.
        assert resolve_config("Hyb_UpdN@N4").name == "Hyb_UpdN"
        assert resolve_config("Hyb_Deg@T2").name == "Hyb_Deg"

    def test_bad_names_raise(self):
        with pytest.raises(KeyError):
            resolve_config("Hyb_UpdN@X3")
        with pytest.raises(KeyError):
            resolve_config("Hyb_Deg@T0")
        with pytest.raises(KeyError):
            resolve_config("NoSuchScheme")

    def test_registry_unchanged(self):
        # The parameterized forms must not leak into the registry.
        assert not any("@" in name for name in all_configs())


class TestSetAssociativeEndToEnd:
    """An 8-CPU 2-way machine must run every scheme cleanly with the
    conformance checker armed, and checked == unchecked."""

    @pytest.mark.parametrize("scheme", ["Base", "Blk_Dma", "Hyb_UpdN@N2"])
    def test_checked_equals_unchecked(self, scheme):
        trace = _trace(8, scale=0.02)
        machine = machine_for(8, assoc=2, bus_width_bytes=16)
        config = resolve_config(scheme, machine)
        unchecked = simulate(trace, config, check=False)
        checked = simulate(trace, config, check=True)
        assert checked.makespan == unchecked.makespan
        assert checked.os_time().total == unchecked.os_time().total
        assert checked.os_read_misses() == unchecked.os_read_misses()

    def test_batched_scheduler_auto_disabled(self):
        # The batched tiers hard-code direct-mapped indexing; on a
        # set-associative machine the system must fall back to the
        # scalar path by itself rather than mis-simulate.
        trace = _trace(8, scale=0.02)
        config = resolve_config("Base", machine_for(8, assoc=2))
        system = MultiprocessorSystem(trace, config, batch=True)
        system.run()
        assert system.batched_records == 0

    def test_direct_mapped_still_batches(self):
        trace = _trace(8, scale=0.02)
        config = resolve_config("Base", machine_for(8))
        system = MultiprocessorSystem(trace, config, batch=True)
        system.run()
        assert system.batched_records > 0

    def test_assoc_machine_differs_from_direct_mapped(self):
        # Same geometry, different organization: conflict misses should
        # drop, so the runs must not be accidentally identical.
        trace = _trace(8, scale=0.02)
        direct = simulate(trace, resolve_config("Base", machine_for(8)))
        assoc = simulate(trace,
                         resolve_config("Base", machine_for(8, assoc=4)))
        assert assoc.makespan != direct.makespan


class TestPaperPointUnchanged:
    def test_base_machine_is_direct_mapped(self):
        assert (BASE_MACHINE.l1i.assoc, BASE_MACHINE.l1d.assoc,
                BASE_MACHINE.l2.assoc) == (1, 1, 1)

    def test_machine_for_4_is_base(self):
        assert machine_for(4) is BASE_MACHINE


class TestSweepRequestMachineFields:
    def test_assoc_and_bus_width_accepted(self):
        request = SweepRequest.from_payload(
            {"workloads": ["gen:server:c8:i060:steady:0:0"],
             "configs": ["Base"], "scale": 0.05, "assoc": 2,
             "bus_width": 16})
        request.validate()
        machine = request.machine()
        assert machine.num_cpus == 8
        assert machine.l1d.assoc == 2
        assert machine.bus.width_bytes == 16
        assert "assoc" in request.describe()

    def test_defaults_build_base_shaped_machine(self):
        request = SweepRequest.from_payload(
            {"workloads": ["Shell"], "configs": ["Base"]})
        assert request.machine() is BASE_MACHINE

    def test_bad_assoc_rejected(self):
        with pytest.raises(BadRequestError, match="power of two"):
            SweepRequest.from_payload(
                {"workloads": ["Shell"], "configs": ["Base"], "assoc": 3})
        with pytest.raises(BadRequestError):
            SweepRequest.from_payload(
                {"workloads": ["Shell"], "configs": ["Base"],
                 "assoc": "two"})

    def test_parameterized_config_accepted(self):
        request = SweepRequest.from_payload(
            {"workloads": ["Shell"], "configs": ["Hyb_UpdN@N8"]})
        request.validate()
        with pytest.raises(BadRequestError):
            SweepRequest.from_payload(
                {"workloads": ["Shell"],
                 "configs": ["Hyb_UpdN@X8"]}).validate()


class TestMachinesArtifact:
    def test_machines_artifact_has_parallel_cells(self):
        # Same contract as the hybrid table: the parallel engine
        # pre-computes artifact_cells(name), so the declared grid must
        # cover every (workload, scheme, machine) the builder asks for.
        cells = artifact_cells("machines")
        expected_pairs = {
            (machine_workload(cpus), s)
            for (_label, cpus, _assoc, _bw) in MACHINE_POINTS
            for s in ["Base"] + MACHINE_COMPARE_SCHEMES}
        assert {(w, s) for (w, s, _) in cells} == expected_pairs
        for (_label, cpus, assoc, bw) in MACHINE_POINTS:
            machine = machine_point(cpus, assoc, bw)
            assert machine.num_cpus == cpus
            assert machine.l1d.assoc == assoc

    def test_paper_point_is_first_and_exact(self):
        label, cpus, assoc, bw = MACHINE_POINTS[0]
        assert (cpus, assoc, bw) == (4, 1, None)
        assert machine_point(cpus, assoc, bw) is BASE_MACHINE

    def test_all_schemes_resolve(self):
        for scheme in MACHINE_COMPARE_SCHEMES:
            assert resolve_config(scheme, machine_for(8, assoc=2))
