"""Fault-injection tests for the parallel engine (repro.experiments).

The engine's contract under faults: SIGKILL-ing a worker mid-sweep, a
job overrunning its wall-clock timeout, and a bit-flipped cache
artifact must each produce a *completed* sweep whose merged
``SystemMetrics`` snapshots are bit-identical to a clean serial run,
with the recovery visible in the JSONL run ledger.
"""

import glob
import os

import pytest

from repro.common.errors import JobFailedError
from repro.experiments import ledger as ledger_mod
from repro.experiments.artifacts import ArtifactCache
from repro.experiments.faults import (FAULT_HANG, FAULT_KILL, FAULT_RAISE,
                                      RetryPolicy, arm_fault, consume_fault)
from repro.experiments.parallel import ParallelEngine
from repro.experiments.runner import ExperimentRunner

SCALE = 0.03
SEED = 9

#: One raw-trace cell and one block-scheme cell: exercises the trace job
#: plus two sim jobs without the (slow) derivation pipeline.
CELLS = [("Shell", "Base", None), ("Shell", "Blk_Dma", None)]

#: Fast backoff so retry storms do not slow the suite down.
FAST = dict(max_retries=2, backoff_base=0.01, backoff_cap=0.05)


def _snapshots(results):
    return {key: metrics.snapshot() for key, metrics in results.items()}


def _events(path):
    return [event["event"] for event in ledger_mod.read_events(path)]


@pytest.fixture(scope="module")
def clean_serial():
    """Golden snapshot: the sweep run serially, in-process, no faults."""
    runner = ExperimentRunner(scale=SCALE, seed=SEED)
    return _snapshots(runner.run_cells(CELLS))


def _engine(tmp_path, policy, fault_dir=None, workers=2):
    return ParallelEngine(scale=SCALE, seed=SEED,
                          cache=ArtifactCache(tmp_path / "cache"),
                          workers=workers, retry_policy=policy,
                          fault_dir=str(fault_dir) if fault_dir else None)


def _assert_matches_golden(clean_serial, results):
    got = _snapshots(results)
    assert set(got) == set(clean_serial)
    for key in clean_serial:
        assert got[key] == clean_serial[key], (
            f"metrics diverged from clean run for {key}")


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_deterministic_backoff():
    policy = RetryPolicy()
    a = [policy.delay(1996, "sim:Shell:Base:xyz", n) for n in (1, 2, 3)]
    b = [policy.delay(1996, "sim:Shell:Base:xyz", n) for n in (1, 2, 3)]
    assert a == b
    assert all(delay > 0 for delay in a)
    # Bounded: never above the cap, even at absurd attempt numbers.
    assert policy.delay(1996, "sim:Shell:Base:xyz", 40) <= policy.backoff_cap
    # Seed- and job-sensitive (different runs/jobs decorrelate).
    assert policy.delay(1997, "sim:Shell:Base:xyz", 1) != a[0] or \
        policy.delay(1996, "sim:Other", 1) != a[0]


def test_retry_policy_budget():
    policy = RetryPolicy(max_retries=2)
    assert not policy.exhausted(2)
    assert policy.exhausted(3)


def test_fault_markers_fire_exactly_once(tmp_path):
    arm_fault(str(tmp_path), FAULT_RAISE, "sim:Shell", count=2)
    assert consume_fault(str(tmp_path), "sim:Shell:Base:abc") == FAULT_RAISE
    assert consume_fault(str(tmp_path), "sim:Shell:Base:abc") == FAULT_RAISE
    assert consume_fault(str(tmp_path), "sim:Shell:Base:abc") is None
    assert consume_fault(str(tmp_path), "trace:Shell") is None  # no match
    assert consume_fault(None, "sim:Shell:Base:abc") is None


# ----------------------------------------------------------------------
# Scenario 1: worker death (SIGKILL mid-job)
# ----------------------------------------------------------------------
def test_worker_kill_recovers_bit_identical(clean_serial, tmp_path):
    faults = tmp_path / "faults"
    arm_fault(str(faults), FAULT_KILL, "sim:Shell:Blk_Dma", count=1)
    engine = _engine(tmp_path, RetryPolicy(**FAST), fault_dir=faults)
    results = engine.execute(CELLS)
    _assert_matches_golden(clean_serial, results)
    events = _events(engine.ledger_path)
    assert "pool_broken" in events
    assert "pool_rebuilt" in events
    assert "retried" in events
    assert events[0] == "sweep_start" and events[-1] == "sweep_end"
    # The killed job really was re-run.
    assert any(n >= 1 for job, n in engine.last_attempts.items()
               if job.startswith("sim:Shell:Blk_Dma"))


# ----------------------------------------------------------------------
# Scenario 2: hung job exceeding its wall-clock timeout
# ----------------------------------------------------------------------
def test_job_timeout_recovers_bit_identical(clean_serial, tmp_path):
    faults = tmp_path / "faults"
    arm_fault(str(faults), FAULT_HANG, "sim:Shell:Base", count=1)
    engine = _engine(tmp_path,
                     RetryPolicy(job_timeout=2.0, **FAST),
                     fault_dir=faults)
    results = engine.execute(CELLS)
    _assert_matches_golden(clean_serial, results)
    events = _events(engine.ledger_path)
    assert "timed_out" in events
    timed = [e for e in ledger_mod.read_events(engine.ledger_path)
             if e["event"] == "timed_out"]
    assert timed[0]["timeout"] == 2.0
    assert timed[0]["job"].startswith("sim:Shell:Base")


# ----------------------------------------------------------------------
# Scenario 3: bit-flipped cache artifact
# ----------------------------------------------------------------------
def test_corrupt_artifact_quarantined_bit_identical(clean_serial, tmp_path):
    warm = _engine(tmp_path, RetryPolicy(**FAST))
    warm.execute(CELLS)  # populate the cache
    (npz,) = glob.glob(str(tmp_path / "cache" / "v1" / "*" / "*.npz"))
    with open(npz, "r+b") as fp:  # flip one payload bit
        fp.seek(50)
        byte = fp.read(1)
        fp.seek(50)
        fp.write(bytes([byte[0] ^ 0xFF]))

    engine = _engine(tmp_path, RetryPolicy(**FAST))
    results = engine.execute(CELLS)
    _assert_matches_golden(clean_serial, results)
    quarantined = glob.glob(str(tmp_path / "cache" / "v1" / "*"
                                / "*.quarantined"))
    assert any(q.endswith(".npz.quarantined") for q in quarantined)
    assert os.path.exists(npz)  # regenerated in place
    events = _events(engine.ledger_path)
    assert "quarantined" in events
    assert engine.last_stats["trace.quarantine"] == 1


# ----------------------------------------------------------------------
# Exhaustion, degradation, ledger plumbing
# ----------------------------------------------------------------------
def test_persistent_failure_raises_job_failed(tmp_path):
    faults = tmp_path / "faults"
    arm_fault(str(faults), FAULT_RAISE, "sim:Shell:Blk_Dma", count=10)
    engine = _engine(tmp_path,
                     RetryPolicy(max_retries=1, backoff_base=0.01),
                     fault_dir=faults)
    with pytest.raises(JobFailedError) as excinfo:
        engine.execute(CELLS)
    assert excinfo.value.job_id.startswith("sim:Shell:Blk_Dma")
    assert excinfo.value.attempts == 2  # first try + one retry
    events = _events(engine.ledger_path)
    assert "job_failed" in events
    assert events[-1] == "sweep_end"


def test_degrades_to_serial_when_pool_keeps_breaking(clean_serial, tmp_path):
    faults = tmp_path / "faults"
    arm_fault(str(faults), FAULT_KILL, "sim:Shell:Blk_Dma", count=1)
    engine = _engine(tmp_path,
                     RetryPolicy(max_pool_rebuilds=0, **FAST),
                     fault_dir=faults)
    results = engine.execute(CELLS)
    _assert_matches_golden(clean_serial, results)
    events = _events(engine.ledger_path)
    assert "degraded_serial" in events
    assert "pool_rebuilt" not in events


def test_rebuilt_pool_sized_by_remaining_jobs(tmp_path):
    """A pool rebuilt late in a sweep must be sized by the jobs still
    to run, not the full DAG (regression: rebuilds used len(jobs))."""
    from repro.common.params import BASE_MACHINE
    from repro.experiments.ledger import RunLedger
    from repro.experiments.parallel import _Scheduler, plan_jobs

    engine = ParallelEngine(scale=SCALE, seed=SEED, workers=8,
                            retry_policy=RetryPolicy(**FAST))
    cells = [("Shell", config, BASE_MACHINE)
             for config in ("Base", "Blk_Pref", "Blk_Bypass", "Blk_ByPref",
                            "Blk_Dma")]
    jobs = plan_jobs(cells, BASE_MACHINE)  # 1 trace + 5 sims
    assert len(jobs) == 6
    scheduler = _Scheduler(engine, jobs, str(tmp_path), RunLedger.null(),
                           verbose=False)
    scheduler.done_count = len(jobs) - 2  # only two jobs left to run
    assert scheduler._rebuild_pool()
    try:
        assert scheduler.pool._max_workers == 2
    finally:
        scheduler.pool.shutdown(wait=False, cancel_futures=True)


def test_serial_engine_writes_ledger(clean_serial, tmp_path):
    """workers=1 runs in-process yet still ledgers every event."""
    ledger_path = tmp_path / "run.jsonl"
    engine = ParallelEngine(scale=SCALE, seed=SEED,
                            cache=ArtifactCache(tmp_path / "cache"),
                            workers=1, ledger_path=str(ledger_path))
    results = engine.execute(CELLS)
    _assert_matches_golden(clean_serial, results)
    assert engine.ledger_path == str(ledger_path)
    events = _events(str(ledger_path))
    assert events.count("finished") == 3  # trace + 2 sims
    assert events[0] == "sweep_start" and events[-1] == "sweep_end"


def test_runner_threads_policy_and_ledger_through(clean_serial, tmp_path):
    runner = ExperimentRunner(scale=SCALE, seed=SEED,
                              cache=ArtifactCache(tmp_path / "cache"),
                              workers=2,
                              retry_policy=RetryPolicy(**FAST),
                              ledger_path=str(tmp_path / "sweep.jsonl"))
    results = runner.run_cells(CELLS)
    _assert_matches_golden(clean_serial, results)
    assert runner.last_ledger_path == str(tmp_path / "sweep.jsonl")
    assert os.path.exists(runner.last_ledger_path)


def test_ledger_summarize_renders(tmp_path):
    engine = _engine(tmp_path, RetryPolicy(**FAST))
    engine.execute(CELLS)
    text = ledger_mod.summarize(engine.ledger_path)
    assert "stage" in text and "sim" in text and "trace" in text
    assert "retried" in text
    assert ledger_mod.main([engine.ledger_path, "--summarize"]) == 0
    assert ledger_mod.main([str(tmp_path / "missing.jsonl")]) == 2
