"""Unit tests for lock and barrier management (repro.sim.sync)."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.sync import BarrierManager, LockTable


class TestLockTable:
    def test_acquire_free_lock(self):
        locks = LockTable()
        ok, grant = locks.try_acquire(0x10, 0, 100)
        assert ok and grant == 100
        assert locks.holder(0x10) == 0

    def test_acquire_held_lock_fails(self):
        locks = LockTable()
        locks.try_acquire(0x10, 0, 0)
        ok, _ = locks.try_acquire(0x10, 1, 50)
        assert not ok
        assert locks.holder(0x10) == 0

    def test_reacquire_own_lock_is_error(self):
        locks = LockTable()
        locks.try_acquire(0x10, 0, 0)
        with pytest.raises(SimulationError):
            locks.try_acquire(0x10, 0, 10)

    def test_release_then_reacquire(self):
        locks = LockTable()
        locks.try_acquire(0x10, 0, 0)
        locks.release(0x10, 0, 50)
        assert locks.holder(0x10) is None
        ok, grant = locks.try_acquire(0x10, 1, 20)
        assert ok
        # The hand-off cannot predate the release.
        assert grant == 50

    def test_release_not_held_is_error(self):
        locks = LockTable()
        with pytest.raises(SimulationError):
            locks.release(0x10, 0, 0)

    def test_release_by_wrong_cpu_is_error(self):
        locks = LockTable()
        locks.try_acquire(0x10, 0, 0)
        with pytest.raises(SimulationError):
            locks.release(0x10, 1, 10)

    def test_statistics(self):
        locks = LockTable()
        locks.try_acquire(0x10, 0, 0)
        locks.note_contention()
        assert locks.acquisitions == 1
        assert locks.contended_acquisitions == 1

    def test_held_locks_listing(self):
        locks = LockTable()
        locks.try_acquire(0x20, 0, 0)
        locks.try_acquire(0x10, 1, 0)
        assert locks.held_locks() == [0x10, 0x20]


class TestBarrierManager:
    def test_incomplete_episode_returns_none(self):
        barriers = BarrierManager(release_cycles=40)
        assert barriers.arrive(0x100, 3, 0, 10) is None
        assert barriers.arrive(0x100, 3, 1, 20) is None
        assert barriers.waiting_cpus() == [0, 1]

    def test_last_arrival_releases(self):
        barriers = BarrierManager(release_cycles=40)
        barriers.arrive(0x100, 3, 0, 10)
        barriers.arrive(0x100, 3, 1, 20)
        outcome = barriers.arrive(0x100, 3, 2, 30)
        assert outcome is not None
        release, waiters = outcome
        assert release == 70  # max arrival (30) + release overhead (40)
        assert sorted(waiters) == [0, 1]
        assert barriers.episodes_completed == 1

    def test_episode_resets_after_release(self):
        barriers = BarrierManager(release_cycles=40)
        for cpu in range(2):
            barriers.arrive(0x100, 2, cpu, cpu * 10)
        assert barriers.arrive(0x100, 2, 0, 100) is None

    def test_single_participant_releases_immediately(self):
        barriers = BarrierManager(release_cycles=40)
        outcome = barriers.arrive(0x100, 1, 0, 10)
        assert outcome == (50, [])

    def test_double_arrival_is_error(self):
        barriers = BarrierManager(release_cycles=40)
        barriers.arrive(0x100, 3, 0, 10)
        with pytest.raises(SimulationError):
            barriers.arrive(0x100, 3, 0, 20)

    def test_inconsistent_participants_is_error(self):
        barriers = BarrierManager(release_cycles=40)
        barriers.arrive(0x100, 3, 0, 10)
        with pytest.raises(SimulationError):
            barriers.arrive(0x100, 2, 1, 20)

    def test_independent_barriers(self):
        barriers = BarrierManager(release_cycles=10)
        barriers.arrive(0x100, 2, 0, 0)
        barriers.arrive(0x200, 2, 1, 0)
        assert barriers.waiting_cpus() == [0, 1]
        outcome = barriers.arrive(0x100, 2, 2, 5)
        assert outcome is not None and sorted(outcome[1]) == [0]
