"""Tests for the figure builders (repro.analysis.figures)."""

import pytest

from repro.analysis.figures import (
    BarChart,
    FIG2_SYSTEMS,
    FIG3_SYSTEMS,
    LineChart,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.runner import ExperimentRunner
from repro.synthetic.workloads import WORKLOAD_ORDER


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.06, seed=11)


class TestChartContainers:
    def test_bar_chart_set_total(self):
        c = BarChart("x", "t", ["w"], ["s"], ["a", "b"])
        c.set("w", "s", "a", 0.4)
        c.set("w", "s", "b", 0.2)
        assert c.total("w", "s") == pytest.approx(0.6)

    def test_line_chart_set(self):
        c = LineChart("x", "t", ["w"], ["s"], [1, 2], "X")
        c.set("w", "s", 1, 0.9)
        assert c.values["w"]["s"][1] == 0.9


def test_figure1_normalized(runner):
    chart = figure1(runner)
    for workload in WORKLOAD_ORDER:
        assert chart.total(workload, "Base") == pytest.approx(1.0)
        assert all(v >= 0 for v in chart.values[workload]["Base"].values())


def test_figure2_base_is_unit(runner):
    chart = figure2(runner)
    assert chart.systems == FIG2_SYSTEMS
    for workload in WORKLOAD_ORDER:
        assert chart.total(workload, "Base") == pytest.approx(1.0)
        # Blk_Dma leaves no block misses by construction.
        assert chart.values[workload]["Blk_Dma"]["Block Read Misses"] == 0.0


def test_figure3_has_all_systems(runner):
    chart = figure3(runner)
    assert chart.systems == FIG3_SYSTEMS
    for workload in WORKLOAD_ORDER:
        assert chart.total(workload, "Base") == pytest.approx(1.0)
        for system in FIG3_SYSTEMS:
            assert chart.total(workload, system) > 0


def test_figure4_coherence_never_increases(runner):
    chart = figure4(runner)
    for workload in WORKLOAD_ORDER:
        base = chart.values[workload]["Base"]["Coh. Misses"]
        relup = chart.values[workload]["BCoh_RelUp"]["Coh. Misses"]
        assert relup <= base + 1e-9


def test_figure5_hotspots_shrink(runner):
    chart = figure5(runner)
    for workload in WORKLOAD_ORDER:
        relup = chart.values[workload]["BCoh_RelUp"]["Hot Spot Misses"]
        bcpref = chart.values[workload]["BCPref"]["Hot Spot Misses"]
        assert bcpref <= relup + 1e-9


def test_figure6_sweep_points(runner):
    chart = figure6(runner, sizes_kb=(16, 32))
    assert chart.x_values == [16, 32]
    for workload in WORKLOAD_ORDER:
        for size in (16, 32):
            assert chart.values[workload]["Base"][size] == pytest.approx(1.0)
            assert chart.values[workload]["Blk_Dma"][size] > 0


def test_figure7_sweep_points(runner):
    chart = figure7(runner, line_sizes=(16, 32))
    assert chart.x_values == [16, 32]
    for workload in WORKLOAD_ORDER:
        for line in (16, 32):
            assert chart.values[workload]["Base"][line] == pytest.approx(1.0)
