"""Tests for the four workload generators (repro.synthetic.workloads)."""

import pytest

from repro.common.types import BlockOpKind, Mode, Op
from repro.synthetic.workloads import WORKLOAD_ORDER, WORKLOADS, generate

TINY = 0.1


@pytest.fixture(scope="module")
def traces():
    return {name: generate(name, seed=7, scale=TINY) for name in WORKLOAD_ORDER}


def test_workload_order_matches_paper():
    assert WORKLOAD_ORDER == ["TRFD_4", "TRFD+Make", "ARC2D+Fsck", "Shell"]
    assert set(WORKLOADS) == set(WORKLOAD_ORDER)


def test_unknown_workload_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        generate("bogus")


def test_traces_validate(traces):
    for trace in traces.values():
        trace.validate()


def test_traces_have_four_cpus(traces):
    for trace in traces.values():
        assert trace.num_cpus == 4
        assert all(stream for stream in trace.streams)


def test_metadata_recorded(traces):
    for name, trace in traces.items():
        assert trace.metadata["workload"] == name
        assert trace.metadata["seed"] == 7
        assert trace.metadata["scale"] == TINY


def test_determinism():
    a = generate("Shell", seed=3, scale=TINY)
    b = generate("Shell", seed=3, scale=TINY)
    for sa, sb in zip(a.streams, b.streams):
        assert sa == sb


def test_seed_changes_trace():
    a = generate("Shell", seed=3, scale=TINY)
    b = generate("Shell", seed=4, scale=TINY)
    assert any(sa != sb for sa, sb in zip(a.streams, b.streams))


def test_scale_grows_trace():
    small = generate("TRFD_4", seed=3, scale=TINY)
    large = generate("TRFD_4", seed=3, scale=2 * TINY)
    assert len(large) > len(small)


def test_all_have_user_and_os_references(traces):
    for name, trace in traces.items():
        assert trace.data_reference_count(Mode.USER) > 0, name
        assert trace.data_reference_count(Mode.OS) > 0, name


def test_all_have_block_operations(traces):
    for name, trace in traces.items():
        assert len(trace.blockops) > 0, name


def test_parallel_workloads_have_barriers(traces):
    for name in ("TRFD_4", "TRFD+Make", "ARC2D+Fsck"):
        counts = traces[name].count_ops()
        assert counts[Op.BARRIER] > 0, name


def test_shell_has_no_barriers(traces):
    # Shell's jobs are all serial (Table 5: barrier misses ~0).
    assert traces["Shell"].count_ops()[Op.BARRIER] == 0


def test_all_have_locks(traces):
    for name, trace in traces.items():
        counts = trace.count_ops()
        assert counts[Op.LOCK_ACQ] > 0, name
        assert counts[Op.LOCK_ACQ] == counts[Op.LOCK_REL], name


def test_shell_block_sizes_skew_small(traces):
    shell = [op.size for op in traces["Shell"].blockops]
    trfd = [op.size for op in traces["TRFD_4"].blockops]
    small_shell = sum(1 for s in shell if s < 1024) / len(shell)
    small_trfd = sum(1 for s in trfd if s < 1024) / len(trfd)
    assert small_shell > small_trfd


def test_trfd_blocks_mostly_page_sized(traces):
    sizes = [op.size for op in traces["TRFD_4"].blockops]
    assert sum(1 for s in sizes if s == 4096) / len(sizes) > 0.5


def test_workloads_include_zero_and_copy_ops(traces):
    for name, trace in traces.items():
        kinds = {op.kind for op in trace.blockops}
        assert BlockOpKind.COPY in kinds, name


def test_shell_has_idle_time(traces):
    idle = sum(1 for r in traces["Shell"].records() if r.mode == Mode.IDLE)
    assert idle > 0
