"""Edge-case tests for the per-CPU memory hierarchy."""

import pytest

from repro.common.errors import SimulationError
from repro.memsys.states import LineState

ADDR = 0x60000


class TestIfetchEdges:
    def test_zero_icount_free(self, rig):
        assert rig[0].ifetch(0x1000, 0, 0) == 0

    def test_ifetch_spanning_l2_lines(self, rig):
        # 16 instructions = 64 bytes = 4 I-lines = 2 L2 lines.
        stall = rig[0].ifetch(0x1000, 16, 0)
        assert stall > 0
        for line in range(0x1000, 0x1040, 16):
            assert rig[0].l1i.present(line)

    def test_code_shares_unified_l2(self, rig):
        rig[0].ifetch(0x1000, 4, 0)
        assert rig[0].l2.present(0x1000)

    def test_unaligned_pc(self, rig):
        stall = rig[0].ifetch(0x100C, 2, 0)  # crosses a line boundary
        assert stall > 0
        assert rig[0].l1i.present(0x1000)


class TestPrefetchEdges:
    def test_double_prefetch_single_pending(self, rig):
        rig[0].prefetch_line(ADDR, 0)
        pending_before = len(rig[0].pending)
        rig[0].prefetch_line(ADDR, 1)  # line now present: no-op
        assert len(rig[0].pending) == pending_before

    def test_pending_dropped_on_eviction(self, rig):
        rig[0].prefetch_line(ADDR, 0)
        # Conflict-evict the prefetched line before it is consumed.
        rig[0].read(ADDR + rig.machine.l1d.size_bytes, 5)
        assert rig[0].pending.peek(ADDR) is None

    def test_prefetch_then_write_then_read(self, rig):
        rig[0].prefetch_line(ADDR, 0)
        rig[0].write(ADDR, 10)
        res = rig[0].read(ADDR, 500)
        assert not res.miss

    def test_buffer_prefetch_skips_buffered_line(self, rig):
        rig[0].prefetch_into_buffer(ADDR, 0)
        size_before = len(rig[0].pref_buffer)
        rig[0].prefetch_into_buffer(ADDR, 1)
        assert len(rig[0].pref_buffer) == size_before

    def test_buffer_fifo_eviction(self, rig):
        capacity = rig[0].pref_buffer.capacity
        line_bytes = rig.machine.l1d.line_bytes
        for i in range(capacity + 2):
            rig[0].pref_buffer.insert(ADDR + i * line_bytes, 10)
        assert len(rig[0].pref_buffer) == capacity
        assert not rig[0].pref_buffer.contains(ADDR)


class TestWriteEdges:
    def test_write_to_update_page_keeps_sharers(self, rig):
        rig.controller.set_update_pages([ADDR])
        rig[0].read(ADDR, 0)
        rig[1].read(ADDR, 100)
        rig[0].write(ADDR, 1000)
        assert rig[1].l2.state_of(ADDR) != LineState.INVALID

    def test_write_miss_on_update_page(self, rig):
        rig.controller.set_update_pages([ADDR])
        rig[1].read(ADDR, 0)
        # cpu0 writes without ever holding the line: fetch + update.
        rig[0].write(ADDR, 100)
        assert rig[1].l2.state_of(ADDR) == LineState.SHARED

    def test_sequential_words_single_ownership(self, rig):
        rig[0].write(ADDR, 0)
        busy_after_first = rig.bus.busy_cycles
        for i in range(1, 8):
            rig[0].write(ADDR + i * 4, 10 * i)
        # Only the first word needed the bus (ownership fetch).
        assert rig.bus.busy_cycles == busy_after_first

    def test_drain_writes_empty(self, rig):
        assert rig[0].drain_writes(42) == 42


class TestBypassEdges:
    def test_end_block_op_without_activity(self, rig):
        assert rig[0].end_block_op(10) == 0

    def test_bypass_dst_flush_invalidates_remote(self, rig):
        rig[1].read(ADDR, 0)
        line_bytes = rig.machine.l1d.line_bytes
        for i in range(line_bytes // 4):
            rig[0].write_bypass(ADDR + i * 4, 100 + i)
        rig[0].end_block_op(500)
        assert rig[1].l2.state_of(ADDR) == LineState.INVALID

    def test_bypass_read_register_granularity(self, rig):
        l1 = rig.machine.l1d.line_bytes
        rig[0].bypass_l2_wide = False
        rig[0].read_bypass(ADDR, 0)
        res = rig[0].read_bypass(ADDR + l1, 100)  # next L1 line
        assert res.miss  # narrow register: new L1 line misses

    def test_bypass_read_wide_register(self, rig):
        l1 = rig.machine.l1d.line_bytes
        rig[0].bypass_l2_wide = True
        rig[0].read_bypass(ADDR, 0)
        res = rig[0].read_bypass(ADDR + l1, 100)  # same L2 line
        assert not res.miss


class TestInclusion:
    def test_l2_conflict_drops_l1_data(self, rig):
        rig[0].read(ADDR, 0)
        conflicting = ADDR + rig.machine.l2.size_bytes
        rig[0].read(conflicting, 100)
        assert not rig[0].l1d.present(ADDR)
        rig.controller.check_invariants()

    def test_code_data_l2_conflict(self, rig):
        rig[0].read(ADDR, 0)
        rig[0].ifetch(ADDR + rig.machine.l2.size_bytes, 4, 100)
        assert not rig[0].l1d.present(ADDR)
        rig.controller.check_invariants()
