"""Tests for the table builders (repro.analysis.tables).

These run the real pipeline at a very small scale: the assertions cover
structure and internal consistency, not calibrated magnitudes (the
benchmarks check those at a larger scale).
"""

import pytest

from repro.analysis.tables import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    TABLE3_ROWS,
    TABLE4_ROWS,
    TABLE5_ROWS,
    TableData,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.runner import ExperimentRunner
from repro.synthetic.workloads import WORKLOAD_ORDER


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.06, seed=11)


class TestTableData:
    def test_set_and_cell(self):
        t = TableData("t", "title", ["r1", "r2"], ["c1", "c2"])
        t.set(0, 1, 3.5)
        assert t.cell("r1", "c2") == 3.5
        assert t.row("r2") == [0.0, 0.0]

    def test_as_dict(self):
        t = TableData("t", "title", ["r"], ["c"])
        t.set(0, 0, 7.0)
        assert t.as_dict() == {"r": {"c": 7.0}}

    def test_unknown_labels_raise(self):
        t = TableData("t", "title", ["r"], ["c"])
        with pytest.raises(ValueError):
            t.cell("missing", "c")


def test_table1_structure(runner):
    t = table1(runner)
    assert t.row_labels == TABLE1_ROWS
    assert t.col_labels == WORKLOAD_ORDER
    for workload in WORKLOAD_ORDER:
        time_sum = (t.cell("User Time (%)", workload)
                    + t.cell("Idle Time (%)", workload)
                    + t.cell("OS Time (%)", workload))
        assert time_sum == pytest.approx(100.0, abs=0.5)
        assert 0 <= t.cell("D-Miss Rate in Primary Cache (%)", workload) <= 100


def test_table2_partitions(runner):
    t = table2(runner)
    assert t.row_labels == TABLE2_ROWS
    for workload in WORKLOAD_ORDER:
        total = sum(t.cell(r, workload) for r in TABLE2_ROWS)
        assert total == pytest.approx(100.0, abs=0.5)


def test_table3_structure(runner):
    t = table3(runner)
    assert t.row_labels == TABLE3_ROWS
    for workload in WORKLOAD_ORDER:
        sizes = (t.cell("Blocks of size = 4 Kbytes (%)", workload)
                 + t.cell("Blocks of size < 4 Kbytes and >= 1 Kbyte (%)",
                          workload)
                 + t.cell("Blocks of size < 1 Kbyte (%)", workload))
        assert sizes == pytest.approx(100.0, abs=0.5)
        for row in TABLE3_ROWS:
            assert 0.0 <= t.cell(row, workload) <= 100.0


def test_table4_bounds(runner):
    t = table4(runner)
    assert t.row_labels == TABLE4_ROWS
    for workload in WORKLOAD_ORDER:
        for row in TABLE4_ROWS:
            assert 0.0 <= t.cell(row, workload) <= 100.0


def test_table5_partitions(runner):
    t = table5(runner)
    assert t.row_labels == TABLE5_ROWS
    for workload in WORKLOAD_ORDER:
        total = sum(t.cell(r, workload) for r in TABLE5_ROWS)
        assert total == pytest.approx(100.0, abs=0.5)
