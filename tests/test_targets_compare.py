"""Tests for paper targets and the comparison machinery."""

import pytest

from repro.analysis import targets
from repro.analysis.compare import (
    CellComparison,
    ComparisonReport,
    compare_tables,
    render_comparison,
)
from repro.experiments.runner import ExperimentRunner


class TestTargets:
    def test_tables_have_four_workload_columns(self):
        for name, table in targets.ALL_TABLES.items():
            for row, values in table.items():
                assert len(values) == 4, (name, row)

    def test_table2_rows_partition(self):
        for i in range(4):
            total = sum(values[i] for values in targets.TABLE2.values())
            assert total == pytest.approx(100.0, abs=0.1)

    def test_table5_rows_partition(self):
        for i in range(4):
            total = sum(values[i] for values in targets.TABLE5.values())
            assert total == pytest.approx(100.0, abs=0.2)

    def test_table3_size_rows_partition(self):
        size_rows = [
            "Blocks of size = 4 Kbytes (%)",
            "Blocks of size < 4 Kbytes and >= 1 Kbyte (%)",
            "Blocks of size < 1 Kbyte (%)",
        ]
        for i in range(4):
            total = sum(targets.TABLE3[row][i] for row in size_rows)
            assert total == pytest.approx(100.0, abs=0.1)

    def test_paper_value_lookup(self):
        assert targets.paper_value("table2", "Block Op. (%)", "Shell") == 27.6
        assert targets.paper_value("table1", "Idle Time (%)",
                                   "TRFD_4") == 8.0

    def test_rows_order_matches_builders(self):
        from repro.analysis.tables import (
            TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS, TABLE4_ROWS, TABLE5_ROWS)
        assert targets.rows("table1") == TABLE1_ROWS
        assert targets.rows("table2") == TABLE2_ROWS
        assert targets.rows("table3") == TABLE3_ROWS
        assert targets.rows("table4") == TABLE4_ROWS
        assert targets.rows("table5") == TABLE5_ROWS

    def test_as_pairs_count(self):
        pairs = targets.as_pairs("table2")
        assert len(pairs) == 12
        assert ("Block Op. (%)", "Shell", 27.6) in pairs

    def test_figure3_base_is_unit(self):
        assert targets.FIGURE3["Base"] == [1.0, 1.0, 1.0, 1.0]


class TestCellComparison:
    def test_ratio(self):
        cell = CellComparison("t", "r", "w", paper=40.0, measured=50.0)
        assert cell.ratio == pytest.approx(1.25)
        assert cell.within(2.0)
        assert not cell.within(1.2)

    def test_small_paper_values_compared_absolutely(self):
        cell = CellComparison("t", "r", "w", paper=0.5, measured=3.0)
        assert cell.ratio is None
        assert cell.within(2.0)          # within 5 points
        cell = CellComparison("t", "r", "w", paper=0.5, measured=9.0)
        assert not cell.within(2.0)

    def test_report_agreement(self):
        cells = [CellComparison("t", "r", "w", 40.0, 50.0),
                 CellComparison("t", "r2", "w", 40.0, 200.0)]
        report = ComparisonReport(cells)
        assert report.agreement(2.0) == 0.5
        assert report.worst(1)[0].row == "r2"

    def test_empty_report(self):
        assert ComparisonReport([]).agreement() == 0.0


class TestCompareTables:
    @pytest.fixture(scope="class")
    def report(self):
        runner = ExperimentRunner(scale=0.08, seed=17)
        return compare_tables(runner, which=["table2", "table5"])

    def test_cells_cover_requested_tables(self, report):
        assert len(report.for_table("table2")) == 12
        assert len(report.for_table("table5")) == 20
        assert report.for_table("table1") == []

    def test_render(self, report):
        out = render_comparison(report)
        assert "### table2" in out
        assert "agreement within" in out
        assert "largest deviations" in out
