"""Tests for the regenerate-everything driver (repro.experiments.all)."""

import re
import time as real_time

import pytest

from repro.analysis.tables import HYBRID_COMPARE_SCHEMES, HYBRID_FAMILIES
from repro.experiments import all as all_mod
from repro.experiments.all import (ARTIFACT_ORDER, EXTRA_ARTIFACTS,
                                   artifact_cells, main, run_all)


def test_artifact_order_covers_everything():
    assert len(ARTIFACT_ORDER) == 12
    assert {n for n in ARTIFACT_ORDER if n.startswith("table")} == {
        "table1", "table2", "table3", "table4", "table5"}
    assert {n for n in ARTIFACT_ORDER if n.startswith("figure")} == {
        f"figure{i}" for i in range(1, 8)}
    assert EXTRA_ARTIFACTS == ["hybrid", "machines"]


def test_hybrid_artifact_has_parallel_cells():
    # The parallel engine pre-computes artifact_cells(name); the hybrid
    # table must declare its full family x scheme grid or --workers > 1
    # crashes on it while --workers 1 silently works.
    cells = artifact_cells("hybrid")
    assert {(w, s) for (w, s, _) in cells} == {
        (w, s) for w in HYBRID_FAMILIES
        for s in ["Base"] + HYBRID_COMPARE_SCHEMES}
    assert all(machine is None for (_, _, machine) in cells)


def test_run_all_selected_artifacts():
    report = run_all(scale=0.05, seed=3, only=["table2"], verbose=False)
    assert "### table2" in report
    assert "Block Op. (%)" in report
    assert "figure3" not in report


def test_run_all_unknown_artifact():
    with pytest.raises(KeyError, match="unknown artifact"):
        run_all(scale=0.05, only=["table9"], verbose=False)


class BackwardsWallClock:
    """A ``time`` stand-in whose wall clock steps backwards on every
    read (a hostile NTP adjustment), with everything else real — the
    same hostile clock the ledger regression test uses."""

    def __init__(self):
        self._wall = 1_000_000.0

    def time(self):
        self._wall -= 100.0
        return self._wall

    def __getattr__(self, name):  # monotonic, sleep, strftime, ...
        return getattr(real_time, name)


def test_artifact_elapsed_survives_backwards_wall_clock(
        monkeypatch, capsys):
    monkeypatch.setattr(all_mod, "time", BackwardsWallClock())
    report = run_all(scale=0.05, seed=3, only=["table2"], verbose=True)
    assert "### table2" in report
    timings = re.findall(r"\[table2 built in (-?[\d.]+)s\]",
                         capsys.readouterr().err)
    assert timings, "verbose run should report per-artifact build times"
    assert all(float(t) >= 0 for t in timings)


def test_main_writes_output(tmp_path, capsys):
    out = tmp_path / "report.txt"
    code = main(["--scale", "0.05", "--seed", "3", "--only", "table2",
                 "--out", str(out)])
    assert code == 0
    text = out.read_text()
    assert "### table2" in text
    captured = capsys.readouterr()
    assert "### table2" in captured.out
