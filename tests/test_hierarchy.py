"""Unit tests for the per-CPU memory hierarchy access paths."""

import pytest

from repro.memsys.hierarchy import (
    LEVEL_BUFFER,
    LEVEL_L1,
    LEVEL_L2,
    LEVEL_MEM,
    LEVEL_PREF,
    LEVEL_REGISTER,
)
from repro.memsys.states import LineState

ADDR = 0x40000


class TestRead:
    def test_cold_read_misses_to_memory(self, rig):
        res = rig[0].read(ADDR, 0)
        assert res.miss and res.level == LEVEL_MEM
        assert res.done == 51
        assert res.stall == 50

    def test_second_read_hits_l1(self, rig):
        rig[0].read(ADDR, 0)
        res = rig[0].read(ADDR + 4, 100)
        assert not res.miss and res.level == LEVEL_L1
        assert res.done == 101

    def test_l2_hit_after_l1_conflict(self, rig):
        rig[0].read(ADDR, 0)
        # Evict from L1 (same L1 set, different line) but stay in L2.
        rig[0].read(ADDR + rig.machine.l1d.size_bytes, 100)
        res = rig[0].read(ADDR, 200)
        assert res.miss and res.level == LEVEL_L2
        assert res.done == 212

    def test_read_of_remote_dirty_line(self, rig):
        rig[1].write(ADDR, 0)
        assert rig[1].l2.state_of(ADDR) == LineState.MODIFIED
        res = rig[0].read(ADDR, 1000)
        assert res.miss
        assert res.done - 1000 == 35  # cache-to-cache supply

    def test_coherence_miss_flag_set(self, rig):
        rig[0].read(ADDR, 0)
        rig[1].write(ADDR, 100)  # invalidates cpu0's copy
        res = rig[0].read(ADDR, 1000)
        assert res.miss and res.flags.coherence


class TestWrite:
    def test_write_allocates_l1(self, rig):
        rig[0].write(ADDR, 0)
        assert rig[0].l1d.present(ADDR)

    def test_write_makes_line_modified(self, rig):
        rig[0].write(ADDR, 0)
        assert rig[0].l2.state_of(ADDR) == LineState.MODIFIED

    def test_write_to_owned_line_is_fast(self, rig):
        rig[0].write(ADDR, 0)
        res = rig[0].write(ADDR + 4, 1000)
        assert res.done == 1001
        assert res.stall == 0

    def test_write_to_shared_line_invalidates(self, rig):
        rig[0].read(ADDR, 0)
        rig[1].read(ADDR, 100)
        rig[0].write(ADDR, 1000)
        assert rig[1].l2.state_of(ADDR) == LineState.INVALID

    def test_write_buffer_overflow_stalls(self, rig):
        # A burst of bus-bound writes to distinct cold lines backs up
        # through WB2 (8 deep) into WB1 (4 deep) and stalls the processor.
        stalls = 0
        t = 0
        for i in range(30):
            res = rig[0].write(ADDR + i * 0x1000, t)
            stalls += res.stall
            t = res.done
        assert stalls > 0

    def test_release_drain_waits_for_writes(self, rig):
        rig[0].write(ADDR, 0)
        assert rig[0].drain_writes(0) > 0


class TestIfetch:
    def test_cold_ifetch_stalls(self, rig):
        stall = rig[0].ifetch(0x1000, 4, 0)
        assert stall > 0
        assert rig[0].l1i.present(0x1000)

    def test_warm_ifetch_free(self, rig):
        rig[0].ifetch(0x1000, 4, 0)
        assert rig[0].ifetch(0x1000, 4, 100) == 0

    def test_ifetch_spanning_lines(self, rig):
        rig[0].ifetch(0x1000, 8, 0)  # 32 bytes = 2 I-lines
        assert rig[0].l1i.present(0x1000)
        assert rig[0].l1i.present(0x1010)

    def test_ifetch_l2_hit_cheaper_than_memory(self, rig):
        cold = rig[0].ifetch(0x1000, 4, 0)
        rig[0].l1i.invalidate(0x1000)  # still in L2
        warm = rig[0].ifetch(0x1000, 4, 100)
        assert warm < cold


class TestPrefetch:
    def test_prefetch_then_late_read_hits(self, rig):
        rig[0].prefetch_line(ADDR, 0)
        res = rig[0].read(ADDR, 500)
        assert not res.miss

    def test_prefetch_then_early_read_partially_hidden(self, rig):
        rig[0].prefetch_line(ADDR, 0)
        res = rig[0].read(ADDR, 10)
        assert res.miss and res.level == LEVEL_PREF
        assert 0 < res.pref_stall < 51

    def test_prefetch_of_present_line_is_noop(self, rig):
        rig[0].read(ADDR, 0)
        rig[0].prefetch_line(ADDR, 100)
        assert len(rig[0].pending) == 0


class TestBypass:
    def test_bypass_read_does_not_fill_cache(self, rig):
        res = rig[0].read_bypass(ADDR, 0)
        assert res.miss and res.level == LEVEL_MEM
        assert not rig[0].l1d.present(ADDR)
        assert not rig[0].l2.present(ADDR)

    def test_bypass_read_register_reuse(self, rig):
        rig[0].read_bypass(ADDR, 0)
        res = rig[0].read_bypass(ADDR + 4, 100)
        assert not res.miss and res.level == LEVEL_REGISTER

    def test_bypass_read_of_cached_line_hits(self, rig):
        rig[0].read(ADDR, 0)
        res = rig[0].read_bypass(ADDR, 100)
        assert not res.miss

    def test_bypass_marks_line_for_reuse(self, rig):
        rig[0].read_bypass(ADDR, 0)
        assert ADDR in rig.trackers[0].bypassed

    def test_bypass_write_accumulates_then_flushes(self, rig):
        line_bytes = rig.machine.l1d.line_bytes
        for i in range(line_bytes // 4):
            res = rig[0].write_bypass(ADDR + i * 4, i)
            assert res.level == LEVEL_REGISTER
        # Crossing to the next line flushes the register via WB2.
        rig[0].write_bypass(ADDR + line_bytes, 100)
        assert rig[0].wb2.enqueues == 1
        assert not rig[0].l1d.present(ADDR)

    def test_bypass_write_to_cached_line_uses_cache(self, rig):
        rig[0].read(ADDR, 0)
        res = rig[0].write_bypass(ADDR, 100)
        assert res.level != LEVEL_REGISTER

    def test_end_block_op_flushes_register(self, rig):
        rig[0].write_bypass(ADDR, 0)
        rig[0].end_block_op(10)
        assert rig[0].bypass_dst_line == -1
        assert rig[0].wb2.enqueues == 1

    def test_buffer_prefetch_hit(self, rig):
        rig[0].prefetch_into_buffer(ADDR, 0)
        res = rig[0].read_bypass(ADDR, 500)
        assert not res.miss and res.level == LEVEL_BUFFER

    def test_buffer_prefetch_early_access_counts_miss(self, rig):
        rig[0].prefetch_into_buffer(ADDR, 0)
        res = rig[0].read_bypass(ADDR, 5)
        assert res.miss and res.pref_stall > 0

    def test_buffer_does_not_fill_cache(self, rig):
        rig[0].prefetch_into_buffer(ADDR, 0)
        rig[0].read_bypass(ADDR, 500)
        assert not rig[0].l1d.present(ADDR)


class TestDisplacementTracking:
    def test_blockop_fill_marks_displaced_victim(self, rig):
        mem = rig[0]
        victim = ADDR
        mem.read(victim, 0)
        mem.in_blockop = True
        rig.trackers[0].in_blockop = True
        conflicting = victim + rig.machine.l1d.size_bytes
        mem.read(conflicting, 100)
        assert victim in rig.trackers[0].displaced
        mem.in_blockop = False
        rig.trackers[0].in_blockop = False
        res = mem.read(victim, 1000)
        assert res.miss and res.flags.displaced

    def test_normal_fill_does_not_mark(self, rig):
        mem = rig[0]
        mem.read(ADDR, 0)
        mem.read(ADDR + rig.machine.l1d.size_bytes, 100)
        assert ADDR not in rig.trackers[0].displaced
